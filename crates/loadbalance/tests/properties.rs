//! Property-based invariants of the load-balancing simulator.

use loadbalance::server::Discipline;
use loadbalance::sim::{run_simulation, SimConfig};
use loadbalance::task::{BernoulliWorkload, TaskType};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_strategy() -> impl proptest::strategy::Strategy<Value = loadbalance::Strategy> {
    prop_oneof![
        Just(loadbalance::Strategy::UniformRandom),
        Just(loadbalance::Strategy::RoundRobin),
        Just(loadbalance::Strategy::PowerOfTwoChoices),
        Just(loadbalance::Strategy::PairedAlwaysSplit),
        Just(loadbalance::Strategy::PairedMatchTypes),
        Just(loadbalance::Strategy::quantum_ideal()),
        (0.1f64..0.9).prop_map(|f| loadbalance::Strategy::DedicatedServers {
            dedicated_fraction: f,
        }),
    ]
}

fn arb_discipline() -> impl proptest::strategy::Strategy<Value = Discipline> {
    prop_oneof![
        Just(Discipline::PaperPairedC),
        Just(Discipline::FifoPairedC),
        Just(Discipline::ExclusiveFirst),
        Just(Discipline::SingleSlot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every strategy returns in-range server assignments for any task
    /// mix.
    #[test]
    fn assignments_in_range(
        strategy in arb_strategy(),
        tasks in proptest::collection::vec(
            prop_oneof![
                Just(TaskType::Exclusive),
                (0u8..4).prop_map(TaskType::Colocate)
            ],
            1..20),
        n_servers in 2usize..12,
        seed in 0u64..512)
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = strategy.build(n_servers);
        let lens = vec![0usize; n_servers];
        let out = s.assign_all(&tasks, &lens, &mut rng);
        prop_assert_eq!(out.len(), tasks.len());
        for srv in out {
            prop_assert!(srv < n_servers);
        }
    }

    /// The end-to-end simulation satisfies conservation: tasks served in
    /// the window never exceed tasks generated plus the warmup backlog,
    /// and the queue statistics are finite and non-negative.
    #[test]
    fn simulation_conservation(
        strategy in arb_strategy(),
        discipline in arb_discipline(),
        n_balancers in 4usize..30,
        n_servers in 2usize..20,
        p_colocate in 0.0f64..1.0,
        seed in 0u64..256)
    {
        let config = SimConfig {
            n_balancers,
            n_servers,
            timesteps: 120,
            warmup: 40,
            discipline,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut workload = BernoulliWorkload::new(p_colocate, 2);
        let r = run_simulation(config, strategy, &mut workload, &mut rng);
        prop_assert_eq!(r.generated, 120 * n_balancers as u64);
        // Warmup backlog is at most warmup × balancers tasks.
        prop_assert!(r.served <= r.generated + 40 * n_balancers as u64);
        prop_assert!(r.avg_queue_len >= 0.0);
        prop_assert!(r.avg_queue_len.is_finite());
        prop_assert!(r.max_queue_len < 1_000_000);
    }

    /// SingleSlot servers serve at most one task per step: the served
    /// count is bounded by steps × servers.
    #[test]
    fn single_slot_throughput_bound(
        n_balancers in 4usize..20,
        n_servers in 2usize..10,
        seed in 0u64..128)
    {
        let steps = 100u64;
        let config = SimConfig {
            n_balancers,
            n_servers,
            timesteps: steps,
            warmup: 0,
            discipline: Discipline::SingleSlot,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut workload = BernoulliWorkload::paper();
        let r = run_simulation(config, loadbalance::Strategy::UniformRandom, &mut workload, &mut rng);
        prop_assert!(r.served <= steps * n_servers as u64);
    }

    /// Paired strategies' CC co-location statistic stays within the
    /// physically-possible band [0, 1], and quantum sits strictly between
    /// the two classical extremes.
    #[test]
    fn quantum_colocation_between_classical_extremes(seed in 0u64..64) {
        let config = SimConfig {
            n_balancers: 20,
            n_servers: 10,
            timesteps: 300,
            warmup: 50,
            discipline: Discipline::PaperPairedC,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let run = |s, rng: &mut StdRng| {
            run_simulation(config, s, &mut BernoulliWorkload::paper(), rng)
                .cc_colocation_rate
        };
        let split = run(loadbalance::Strategy::PairedAlwaysSplit, &mut rng);
        let matcht = run(loadbalance::Strategy::PairedMatchTypes, &mut rng);
        let quantum = run(loadbalance::Strategy::quantum_ideal(), &mut rng);
        prop_assert_eq!(split, 0.0);
        prop_assert_eq!(matcht, 1.0);
        prop_assert!(quantum > 0.7 && quantum < 0.95, "quantum {}", quantum);
    }
}
