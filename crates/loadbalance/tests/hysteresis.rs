//! Acceptance tests for the fallback governor's hysteresis: no flapping
//! inside the dead band, prompt trips on hard outages, recovery only
//! after sustained delivery.

use loadbalance::degrade::{CoordinationMode, Degrading, FallbackGovernor, HysteresisConfig};
use loadbalance::strategy::AssignmentStrategy;
use loadbalance::task::TaskType;
use qnet::{
    ConsumePolicy, DistributorConfig, EprSource, FaultKind, FaultPlan, FaultWindow, FiberLink,
    LinkSide, SimTime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> HysteresisConfig {
    HysteresisConfig::default() // window 8, trip 0.5, recover 0.8, min_dwell 4
}

/// Feeds `rounds` rounds at `rate` (out of 100 polls) and returns the
/// sequence of modes the governor reported.
fn drive(g: &mut FallbackGovernor, rate: f64, rounds: usize) -> Vec<CoordinationMode> {
    (0..rounds)
        .map(|_| g.observe((rate * 100.0).round() as u64, 100))
        .collect()
}

#[test]
fn never_flaps_inside_the_dead_band() {
    let c = config();
    // From the quantum side: any rate in (trip, recover) holds Quantum.
    for rate in [0.51, 0.6, 0.7, 0.79] {
        let mut g = FallbackGovernor::new(c);
        let modes = drive(&mut g, rate, 200);
        assert!(
            modes.iter().all(|&m| m == CoordinationMode::Quantum),
            "rate {rate} flapped out of Quantum"
        );
        assert_eq!(g.transitions(), 0);
    }
    // From the classical side: trip first, then the same band rates must
    // hold ClassicalShared — no bouncing back and forth.
    for rate in [0.51, 0.6, 0.7, 0.79] {
        let mut g = FallbackGovernor::new(c);
        drive(&mut g, 0.1, 50);
        assert_eq!(g.mode(), CoordinationMode::ClassicalShared);
        let tripped = g.transitions();
        let modes = drive(&mut g, rate, 200);
        assert!(
            modes.iter().all(|&m| m == CoordinationMode::ClassicalShared),
            "rate {rate} flapped out of ClassicalShared"
        );
        assert_eq!(g.transitions(), tripped, "no further transitions in the band");
    }
}

#[test]
fn trips_within_one_window_of_a_hard_outage() {
    let c = config();
    let mut g = FallbackGovernor::new(c);
    drive(&mut g, 1.0, 100);
    assert_eq!(g.mode(), CoordinationMode::Quantum);
    // Hard outage: zero delivery. The stale full-delivery samples age out
    // of the window after `window` rounds, so the governor must have left
    // Quantum by then (min_dwell < window and dwell is long past).
    let mut left_at = None;
    for round in 1..=c.window {
        if g.observe(0, 100) != CoordinationMode::Quantum {
            left_at = Some(round);
            break;
        }
    }
    let left_at = left_at.expect("governor failed to trip within one window");
    assert!(
        left_at <= c.window,
        "tripped after {left_at} rounds > window {}",
        c.window
    );
}

#[test]
fn recovers_only_after_sustained_delivery() {
    let c = config();
    let mut g = FallbackGovernor::new(c);
    drive(&mut g, 1.0, 20);
    drive(&mut g, 0.0, 20);
    assert_eq!(g.mode(), CoordinationMode::IndependentRandom);

    // A single good round is not sustained delivery: the window still
    // remembers the outage.
    g.observe(100, 100);
    assert_eq!(g.mode(), CoordinationMode::IndependentRandom);

    // Sustained full delivery climbs back to Quantum (via the classical
    // tier), within a few windows plus dwell.
    let budget = 4 * c.window + 2 * c.min_dwell as usize;
    let modes = drive(&mut g, 1.0, budget);
    assert_eq!(*modes.last().unwrap(), CoordinationMode::Quantum);
    // Tiered recovery: classical appears before quantum in the sequence.
    let classical_at = modes
        .iter()
        .position(|&m| m == CoordinationMode::ClassicalShared)
        .expect("recovery passes through ClassicalShared");
    let quantum_at = modes
        .iter()
        .position(|&m| m == CoordinationMode::Quantum)
        .expect("recovery reaches Quantum");
    assert!(classical_at < quantum_at);
}

#[test]
fn degrading_strategy_trips_and_recovers_on_a_real_outage() {
    // End-to-end: the wrapped pipeline strategy under one long both-link
    // outage must leave Quantum during the outage and return after it.
    let timestep = Duration::from_micros(100);
    let mut faults = FaultPlan::none();
    faults.push(FaultWindow {
        start: SimTime::from_micros(3_000),
        end: SimTime::from_micros(9_000),
        kind: FaultKind::LinkOutage(LinkSide::Both),
    });
    let pipeline = DistributorConfig {
        source: EprSource::new(1e5, 1.0),
        link_a: FiberLink::new(0.1),
        link_b: FiberLink::new(0.1),
        qnic_capacity: 16,
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(80),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults,
        emission: qnet::EmissionMode::Batched,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut strat = Degrading::new(8, 4, pipeline, timestep, config(), &mut rng);
    let tasks = vec![TaskType::Colocate(0); 8];
    let lens = vec![0usize; 4];

    let mut saw_degraded = false;
    for _ in 0..200 {
        // 200 rounds × 100 µs: healthy (to 3 ms), outage (3–9 ms),
        // healthy again (to 20 ms).
        strat.assign_all(&tasks, &lens, &mut rng);
        saw_degraded |= strat.governor().mode() != CoordinationMode::Quantum;
    }
    assert!(saw_degraded, "governor never left Quantum during the outage");
    assert_eq!(
        strat.governor().mode(),
        CoordinationMode::Quantum,
        "governor failed to recover after the outage cleared"
    );
    assert!(strat.governor().transitions() >= 2);
    assert!(strat.coordinated_fraction() < 1.0);
    assert!(strat.pipeline().fault_transitions() >= 2, "both fault edges replayed");
}
