//! The governor's own transition counters must agree with what it emits
//! through the `qnlg.fallback.*` obs counters.
//!
//! This lives in its own integration-test binary (single `#[test]`): the
//! obs registry is process-global, so sharing a process with tests that
//! toggle `obs::set_enabled` or drive other governors would corrupt the
//! counts.

use loadbalance::degrade::{CoordinationMode, FallbackGovernor, HysteresisConfig};

#[test]
fn transition_counts_match_obs_counters() {
    obs::reset();
    obs::set_enabled(true);

    let mut g = FallbackGovernor::new(HysteresisConfig::default());
    // A full excursion: healthy → degraded → blackout → recovered, with
    // some dead-band dwell in between.
    let trace: &[(f64, usize)] = &[
        (1.0, 30),  // healthy
        (0.65, 20), // dead band: no transitions
        (0.1, 30),  // trip to classical
        (0.0, 30),  // blackout: down to independent
        (0.3, 30),  // partial recovery: back to classical
        (1.0, 40),  // full recovery: quantum
    ];
    let mut rounds = 0u64;
    for &(rate, n) in trace {
        for _ in 0..n {
            g.observe((rate * 100.0).round() as u64, 100);
            rounds += 1;
        }
    }
    assert_eq!(g.mode(), CoordinationMode::Quantum);
    assert!(g.transitions() >= 4, "expected a full excursion, got {}", g.transitions());

    let snap = obs::snapshot();
    obs::set_enabled(false);
    let counter = |name: &str| snap.counter(name).unwrap_or(0);

    assert_eq!(counter("qnlg.fallback.transitions"), g.transitions());
    let entries = g.entries();
    assert_eq!(counter("qnlg.fallback.to_quantum"), entries[0]);
    assert_eq!(counter("qnlg.fallback.to_classical"), entries[1]);
    assert_eq!(counter("qnlg.fallback.to_independent"), entries[2]);
    let per_mode = g.rounds();
    assert_eq!(counter("qnlg.fallback.rounds.quantum"), per_mode[0]);
    assert_eq!(counter("qnlg.fallback.rounds.classical"), per_mode[1]);
    assert_eq!(counter("qnlg.fallback.rounds.independent"), per_mode[2]);
    assert_eq!(per_mode.iter().sum::<u64>(), rounds);
}
