//! Parity line between the production compatibility path
//! (`sim::run_simulation`) and the frozen pre-shard AoS loop
//! (`aos::run_simulation_aos`).
//!
//! `run_simulation` stayed API-compatible through the SoA refactor, but
//! its internals changed (bounded wait reservoir, hoisted obs flushes).
//! These tests hold the determinism contract: for any `(config,
//! strategy, workload, seed)` the production path must produce a
//! `SimResult` equal field-for-field to the frozen loop — same RNG
//! consumption order, same reservoir survivors, same percentiles, same
//! windowed series.

use loadbalance::aos::run_simulation_aos;
use loadbalance::task::{BernoulliWorkload, BurstyWorkload};
use loadbalance::{run_simulation, Discipline, QuantumMode, SimConfig, Strategy, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// NaN-tolerant equality: `SimResult` holds NaN rates for unpaired
/// strategies, and NaN != NaN under `PartialEq`.
fn assert_same(a: &loadbalance::SimResult, b: &loadbalance::SimResult, label: &str) {
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "parity broken: {label}");
}

fn strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("uniform", Strategy::UniformRandom),
        ("round-robin", Strategy::RoundRobin),
        ("p2c", Strategy::PowerOfTwoChoices),
        ("always-split", Strategy::PairedAlwaysSplit),
        ("match-types", Strategy::PairedMatchTypes),
        ("quantum-fast", Strategy::quantum_ideal()),
        (
            "quantum-exact",
            Strategy::PairedQuantum {
                mode: QuantumMode::ExactSimulation,
                availability: 0.9,
                visibility: 0.95,
            },
        ),
        (
            "dedicated",
            Strategy::DedicatedServers {
                dedicated_fraction: 0.3,
            },
        ),
    ]
}

#[test]
fn every_strategy_matches_the_frozen_loop_on_a_quick_config() {
    let config = SimConfig {
        n_balancers: 24,
        n_servers: 20,
        timesteps: 300,
        warmup: 100,
        discipline: Discipline::PaperPairedC,
    };
    for (label, strategy) in strategies() {
        let mut rng_a = StdRng::seed_from_u64(0x9a11);
        let mut rng_b = StdRng::seed_from_u64(0x9a11);
        let a = run_simulation(config, strategy, &mut BernoulliWorkload::paper(), &mut rng_a);
        let b = run_simulation_aos(config, strategy, &mut BernoulliWorkload::paper(), &mut rng_b)
            .unwrap();
        assert_same(&a, &b, label);
    }
}

#[test]
fn the_paper_config_matches_at_the_knee() {
    let config = SimConfig::paper(1.2);
    for (label, strategy) in [
        ("classical", Strategy::UniformRandom),
        ("quantum", Strategy::quantum_ideal()),
    ] {
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let a = run_simulation(config, strategy, &mut BernoulliWorkload::paper(), &mut rng_a);
        let b = run_simulation_aos(config, strategy, &mut BernoulliWorkload::paper(), &mut rng_b)
            .unwrap();
        assert_same(&a, &b, label);
    }
}

#[test]
fn every_discipline_matches_under_a_bursty_workload() {
    for discipline in [
        Discipline::PaperPairedC,
        Discipline::FifoPairedC,
        Discipline::ExclusiveFirst,
        Discipline::CPrioritySingle,
        Discipline::SingleSlot,
    ] {
        let config = SimConfig {
            n_balancers: 16,
            n_servers: 14,
            timesteps: 250,
            warmup: 50,
            discipline,
        };
        let mut wl_a = BurstyWorkload::new(0.9, 0.1, 0.05);
        let mut wl_b = BurstyWorkload::new(0.9, 0.1, 0.05);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let a = run_simulation(config, Strategy::quantum_ideal(), &mut wl_a, &mut rng_a);
        let b = run_simulation_aos(config, Strategy::quantum_ideal(), &mut wl_b, &mut rng_b)
            .unwrap();
        assert_same(&a, &b, discipline.label());
    }
}

#[test]
fn the_workload_rng_stream_is_untouched_by_the_refactor() {
    // After a run, both engines must leave the caller's generator in the
    // same state: drawing more values yields the same sequence. This
    // pins "no extra draws were added" (the reservoir is seeded by a
    // constant, not the simulation stream).
    let config = SimConfig {
        n_balancers: 10,
        n_servers: 9,
        timesteps: 120,
        warmup: 30,
        discipline: Discipline::PaperPairedC,
    };
    let mut rng_a = StdRng::seed_from_u64(1234);
    let mut rng_b = StdRng::seed_from_u64(1234);
    let _ = run_simulation(
        config,
        Strategy::quantum_ideal(),
        &mut BernoulliWorkload::paper(),
        &mut rng_a,
    );
    let _ = run_simulation_aos(
        config,
        Strategy::quantum_ideal(),
        &mut BernoulliWorkload::paper(),
        &mut rng_b,
    )
    .unwrap();
    let tail_a: Vec<u64> = (0..8).map(|_| rand::Rng::gen::<u64>(&mut rng_a)).collect();
    let tail_b: Vec<u64> = (0..8).map(|_| rand::Rng::gen::<u64>(&mut rng_b)).collect();
    assert_eq!(tail_a, tail_b, "engines consumed different draw counts");
}

#[test]
fn reservoir_percentiles_are_exact_on_small_runs() {
    // Below the reservoir capacity (8192 samples) the bounded reservoir
    // keeps every wait, so percentiles are exactly the full-population
    // percentiles the unbounded seed implementation reported.
    let config = SimConfig {
        n_balancers: 8,
        n_servers: 7,
        timesteps: 400,
        warmup: 100,
        discipline: Discipline::PaperPairedC,
    };
    // 8 balancers x 400 steps = 3200 window tasks at most: under cap.
    let mut rng = StdRng::seed_from_u64(99);
    let r = run_simulation(
        config,
        Strategy::quantum_ideal(),
        &mut BernoulliWorkload::paper(),
        &mut rng,
    );
    assert!(r.served <= 8192, "test must stay below reservoir capacity");
    assert!(r.p50_wait <= r.p99_wait);
    assert!(r.p99_wait <= r.max_queue_len as f64 * config.warmup as f64 + r.served as f64);
}

#[test]
fn on_step_hook_draws_nothing() {
    // A workload that uses on_step (diurnal) must still leave the rng
    // stream identical to an equivalent stateless workload making the
    // same number of draws.
    use loadbalance::task::DiurnalWorkload;
    let config = SimConfig {
        n_balancers: 6,
        n_servers: 6,
        timesteps: 100,
        warmup: 20,
        discipline: Discipline::PaperPairedC,
    };
    // At zero amplitude the period is irrelevant — two generators with
    // different periods must produce identical trajectories, which they
    // only can if `on_step` consumes no randomness and the phase clock
    // never leaks into the draw sequence.
    let mut flat_a = DiurnalWorkload::new(0.5, 0.0, 50);
    let mut flat_b = DiurnalWorkload::new(0.5, 0.0, 13);
    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_b = StdRng::seed_from_u64(5);
    let a = run_simulation(config, Strategy::quantum_ideal(), &mut flat_a, &mut rng_a);
    let b = run_simulation(config, Strategy::quantum_ideal(), &mut flat_b, &mut rng_b);
    assert_same(&a, &b, "diurnal(amp=0) period independence");
    let _ = Workload::name(&flat_a);
}
