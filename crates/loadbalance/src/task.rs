//! Task types and workload generators.

use rand::Rng;

/// The two task classes of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskType {
    /// Type-C: benefits from co-location with other type-C tasks *of the
    /// same subtype* (shared caches, static in-memory objects, GPU
    /// parallelism). The paper's base simulation uses a single subtype
    /// (`Colocate(0)`); multiple subtypes model the §4.1 caveat that
    /// "multiple subtypes of type-C tasks … do not like being mixed".
    Colocate(u8),
    /// Type-E: prefers exclusive access; runs one at a time.
    Exclusive,
}

impl TaskType {
    /// True for any type-C task.
    #[inline]
    pub fn is_colocate(self) -> bool {
        matches!(self, TaskType::Colocate(_))
    }

    /// The CHSH input bit this task maps to (§4.1: "inputs x and y are set
    /// to 1 if the corresponding load balancer receives a type-C task").
    #[inline]
    pub fn chsh_input(self) -> usize {
        usize::from(self.is_colocate())
    }
}

/// A task instance flowing through the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// The task's class.
    pub ty: TaskType,
    /// Timestep at which the task entered a server queue.
    pub enqueued_at: u64,
}

/// A per-load-balancer task source.
pub trait Workload {
    /// Draws the next task type for one load balancer.
    fn next_task<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TaskType;

    /// Called once at the start of each timestep, before any
    /// [`Workload::next_task`] draws for that step. Time-varying
    /// workloads (e.g. [`DiurnalWorkload`]) use it to observe the clock;
    /// the default is a no-op and draws nothing, so stationary workloads
    /// are unaffected.
    fn on_step(&mut self, _t: u64) {}

    /// Name for report tables.
    fn name(&self) -> &'static str {
        "workload"
    }
}

/// The paper's workload: "each load balancer receives either a type-C or
/// type-E request with equal probability" — generalized to probability
/// `p_colocate` and `subtypes ≥ 1` C-subtypes drawn uniformly.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliWorkload {
    p_colocate: f64,
    subtypes: u8,
}

impl BernoulliWorkload {
    /// The exact Figure 4 workload: C with probability 1/2, one subtype.
    pub fn paper() -> Self {
        BernoulliWorkload::new(0.5, 1)
    }

    /// General Bernoulli workload.
    ///
    /// # Panics
    /// Panics if `p_colocate ∉ [0,1]` or `subtypes == 0`.
    pub fn new(p_colocate: f64, subtypes: u8) -> Self {
        assert!((0.0..=1.0).contains(&p_colocate), "bad probability");
        assert!(subtypes >= 1, "need at least one subtype");
        BernoulliWorkload {
            p_colocate,
            subtypes,
        }
    }
}

impl Workload for BernoulliWorkload {
    fn next_task<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TaskType {
        if rng.gen::<f64>() < self.p_colocate {
            TaskType::Colocate(rng.gen_range(0..self.subtypes))
        } else {
            TaskType::Exclusive
        }
    }

    fn name(&self) -> &'static str {
        "bernoulli"
    }
}

/// A two-state Markov-modulated workload: alternates between a C-heavy
/// and an E-heavy phase, producing the bursty arrival correlation real
/// request streams show (§4.1 caveats discussion).
#[derive(Debug, Clone, Copy)]
pub struct BurstyWorkload {
    /// P(type-C) in the C-heavy phase.
    p_c_hot: f64,
    /// P(type-C) in the E-heavy phase.
    p_c_cold: f64,
    /// Per-draw probability of switching phase.
    switch_prob: f64,
    hot: bool,
}

impl BurstyWorkload {
    /// A bursty workload alternating between C-heavy (`p_c_hot`) and
    /// E-heavy (`p_c_cold`) phases.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities.
    pub fn new(p_c_hot: f64, p_c_cold: f64, switch_prob: f64) -> Self {
        for p in [p_c_hot, p_c_cold, switch_prob] {
            assert!((0.0..=1.0).contains(&p), "bad probability {p}");
        }
        BurstyWorkload {
            p_c_hot,
            p_c_cold,
            switch_prob,
            hot: true,
        }
    }
}

impl Workload for BurstyWorkload {
    fn next_task<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TaskType {
        if rng.gen::<f64>() < self.switch_prob {
            self.hot = !self.hot;
        }
        let p = if self.hot { self.p_c_hot } else { self.p_c_cold };
        if rng.gen::<f64>() < p {
            TaskType::Colocate(0)
        } else {
            TaskType::Exclusive
        }
    }

    fn name(&self) -> &'static str {
        "bursty"
    }
}

/// A diurnal workload: P(type-C) follows a sinusoid over the day,
/// modelling the interactive-vs-batch mix shift of real request streams.
///
/// `p_c(t) = clamp(mean + amplitude · sin(2π t / period), 0, 1)`
#[derive(Debug, Clone, Copy)]
pub struct DiurnalWorkload {
    mean: f64,
    amplitude: f64,
    period: u64,
    t: u64,
}

impl DiurnalWorkload {
    /// A diurnal workload oscillating around `mean` with the given
    /// `amplitude` and `period` (timesteps per full cycle).
    ///
    /// # Panics
    /// Panics if `mean ∉ [0,1]`, `amplitude < 0`, or `period == 0`.
    pub fn new(mean: f64, amplitude: f64, period: u64) -> Self {
        assert!((0.0..=1.0).contains(&mean), "bad probability {mean}");
        assert!(amplitude >= 0.0, "negative amplitude");
        assert!(period > 0, "need a positive period");
        DiurnalWorkload {
            mean,
            amplitude,
            period,
            t: 0,
        }
    }

    /// P(type-C) at step `t`.
    pub fn p_colocate_at(&self, t: u64) -> f64 {
        let phase = (t % self.period) as f64 / self.period as f64;
        (self.mean + self.amplitude * (std::f64::consts::TAU * phase).sin()).clamp(0.0, 1.0)
    }
}

impl Workload for DiurnalWorkload {
    fn next_task<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TaskType {
        if rng.gen::<f64>() < self.p_colocate_at(self.t) {
            TaskType::Colocate(0)
        } else {
            TaskType::Exclusive
        }
    }

    fn on_step(&mut self, t: u64) {
        self.t = t;
    }

    fn name(&self) -> &'static str {
        "diurnal"
    }
}

/// Arrival-model *specification* for the sharded engine
/// ([`crate::shard`]).
///
/// A [`Workload`] implementor is one mutable generator shared by every
/// balancer, which ties arrivals to a single global draw order — exactly
/// what a sharded simulator cannot have. An `ArrivalModel` is instead a
/// pure description: the engine keeps any per-balancer phase state in its
/// own flat arrays and draws from per-pair RNG sub-streams, so arrivals
/// are a pure function of `(master seed, balancer, step)` at any shard or
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// i.i.d. Bernoulli: type-C with probability `p_c` each step (the
    /// Figure 4 workload at `p_c = 0.5`).
    Bernoulli {
        /// P(type-C) per draw.
        p_c: f64,
    },
    /// Two-state MMPP (Markov-modulated): each balancer carries a
    /// hot/cold phase bit and flips it with `switch_prob` per draw —
    /// the sharded counterpart of [`BurstyWorkload`].
    Mmpp {
        /// P(type-C) in the C-heavy phase.
        p_c_hot: f64,
        /// P(type-C) in the E-heavy phase.
        p_c_cold: f64,
        /// Per-draw probability of switching phase.
        switch_prob: f64,
    },
    /// Sinusoidal daily cycle — the sharded counterpart of
    /// [`DiurnalWorkload`].
    Diurnal {
        /// Mean P(type-C).
        mean: f64,
        /// Oscillation amplitude.
        amplitude: f64,
        /// Timesteps per full cycle.
        period: u64,
    },
}

impl ArrivalModel {
    /// The paper's Figure 4 workload: C with probability 1/2.
    pub fn paper() -> Self {
        ArrivalModel::Bernoulli { p_c: 0.5 }
    }

    /// Label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalModel::Bernoulli { .. } => "bernoulli",
            ArrivalModel::Mmpp { .. } => "mmpp",
            ArrivalModel::Diurnal { .. } => "diurnal",
        }
    }

    /// True when every parameter is a valid probability / period.
    pub fn is_valid(&self) -> bool {
        let prob = |p: f64| (0.0..=1.0).contains(&p);
        match *self {
            ArrivalModel::Bernoulli { p_c } => prob(p_c),
            ArrivalModel::Mmpp {
                p_c_hot,
                p_c_cold,
                switch_prob,
            } => prob(p_c_hot) && prob(p_c_cold) && prob(switch_prob),
            ArrivalModel::Diurnal {
                mean,
                amplitude,
                period,
            } => prob(mean) && amplitude >= 0.0 && period > 0,
        }
    }

    /// Per-draw phase-switch probability (0 for phase-free models).
    #[inline]
    pub fn switch_prob(&self) -> f64 {
        match *self {
            ArrivalModel::Mmpp { switch_prob, .. } => switch_prob,
            _ => 0.0,
        }
    }

    /// P(type-C) at step `t` for a balancer currently in phase `hot`.
    #[inline]
    pub fn p_colocate(&self, t: u64, hot: bool) -> f64 {
        match *self {
            ArrivalModel::Bernoulli { p_c } => p_c,
            ArrivalModel::Mmpp {
                p_c_hot, p_c_cold, ..
            } => {
                if hot {
                    p_c_hot
                } else {
                    p_c_cold
                }
            }
            ArrivalModel::Diurnal {
                mean,
                amplitude,
                period,
            } => {
                let phase = (t % period) as f64 / period as f64;
                (mean + amplitude * (std::f64::consts::TAU * phase).sin()).clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chsh_input_mapping() {
        assert_eq!(TaskType::Colocate(0).chsh_input(), 1);
        assert_eq!(TaskType::Colocate(3).chsh_input(), 1);
        assert_eq!(TaskType::Exclusive.chsh_input(), 0);
        assert!(TaskType::Colocate(1).is_colocate());
        assert!(!TaskType::Exclusive.is_colocate());
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = BernoulliWorkload::paper();
        let trials = 20_000;
        let c = (0..trials)
            .filter(|_| w.next_task(&mut rng).is_colocate())
            .count();
        let f = c as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.02, "C rate {f}");
    }

    #[test]
    fn subtypes_are_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = BernoulliWorkload::new(1.0, 4);
        let mut counts = [0usize; 4];
        let trials = 20_000;
        for _ in 0..trials {
            match w.next_task(&mut rng) {
                TaskType::Colocate(s) => counts[s as usize] += 1,
                TaskType::Exclusive => panic!("p_colocate = 1"),
            }
        }
        for (s, c) in counts.iter().enumerate() {
            let f = *c as f64 / trials as f64;
            assert!((f - 0.25).abs() < 0.02, "subtype {s}: {f}");
        }
    }

    #[test]
    fn bursty_switches_phases() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = BurstyWorkload::new(0.9, 0.1, 0.01);
        // Long-run C rate should sit near the phase average, 0.5.
        let trials = 100_000;
        let c = (0..trials)
            .filter(|_| w.next_task(&mut rng).is_colocate())
            .count();
        let f = c as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.05, "long-run C rate {f}");
    }

    #[test]
    #[should_panic(expected = "at least one subtype")]
    fn zero_subtypes_panics() {
        BernoulliWorkload::new(0.5, 0);
    }

    #[test]
    fn diurnal_rate_oscillates_and_averages_to_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut w = DiurnalWorkload::new(0.5, 0.4, 200);
        // Peak (quarter period) vs trough (three-quarter period).
        assert!(w.p_colocate_at(50) > 0.85);
        assert!(w.p_colocate_at(150) < 0.15);
        // Long-run C rate over whole cycles sits at the mean.
        let mut c = 0usize;
        let trials = 100_000u64;
        for t in 0..trials {
            w.on_step(t % 200);
            if w.next_task(&mut rng).is_colocate() {
                c += 1;
            }
        }
        let f = c as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.02, "long-run C rate {f}");
    }

    #[test]
    fn arrival_model_matches_workload_counterparts() {
        // The sharded-engine spec and the legacy generators must agree on
        // P(type-C) in every phase/step.
        let m = ArrivalModel::Mmpp {
            p_c_hot: 0.9,
            p_c_cold: 0.1,
            switch_prob: 0.01,
        };
        assert_eq!(m.p_colocate(0, true), 0.9);
        assert_eq!(m.p_colocate(0, false), 0.1);
        assert_eq!(m.switch_prob(), 0.01);

        let d = ArrivalModel::Diurnal {
            mean: 0.5,
            amplitude: 0.4,
            period: 200,
        };
        let w = DiurnalWorkload::new(0.5, 0.4, 200);
        for t in [0u64, 17, 50, 123, 199] {
            assert_eq!(d.p_colocate(t, true), w.p_colocate_at(t));
        }
        assert_eq!(d.switch_prob(), 0.0);
        assert_eq!(ArrivalModel::paper().p_colocate(7, false), 0.5);
    }

    #[test]
    fn arrival_model_validation() {
        assert!(ArrivalModel::paper().is_valid());
        assert!(!ArrivalModel::Bernoulli { p_c: 1.5 }.is_valid());
        assert!(!ArrivalModel::Mmpp {
            p_c_hot: 0.5,
            p_c_cold: -0.1,
            switch_prob: 0.0
        }
        .is_valid());
        assert!(!ArrivalModel::Diurnal {
            mean: 0.5,
            amplitude: 0.1,
            period: 0
        }
        .is_valid());
        assert_eq!(ArrivalModel::paper().label(), "bernoulli");
    }
}
