//! Task types and workload generators.

use rand::Rng;

/// The two task classes of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskType {
    /// Type-C: benefits from co-location with other type-C tasks *of the
    /// same subtype* (shared caches, static in-memory objects, GPU
    /// parallelism). The paper's base simulation uses a single subtype
    /// (`Colocate(0)`); multiple subtypes model the §4.1 caveat that
    /// "multiple subtypes of type-C tasks … do not like being mixed".
    Colocate(u8),
    /// Type-E: prefers exclusive access; runs one at a time.
    Exclusive,
}

impl TaskType {
    /// True for any type-C task.
    #[inline]
    pub fn is_colocate(self) -> bool {
        matches!(self, TaskType::Colocate(_))
    }

    /// The CHSH input bit this task maps to (§4.1: "inputs x and y are set
    /// to 1 if the corresponding load balancer receives a type-C task").
    #[inline]
    pub fn chsh_input(self) -> usize {
        usize::from(self.is_colocate())
    }
}

/// A task instance flowing through the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// The task's class.
    pub ty: TaskType,
    /// Timestep at which the task entered a server queue.
    pub enqueued_at: u64,
}

/// A per-load-balancer task source.
pub trait Workload {
    /// Draws the next task type for one load balancer.
    fn next_task<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TaskType;

    /// Name for report tables.
    fn name(&self) -> &'static str {
        "workload"
    }
}

/// The paper's workload: "each load balancer receives either a type-C or
/// type-E request with equal probability" — generalized to probability
/// `p_colocate` and `subtypes ≥ 1` C-subtypes drawn uniformly.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliWorkload {
    p_colocate: f64,
    subtypes: u8,
}

impl BernoulliWorkload {
    /// The exact Figure 4 workload: C with probability 1/2, one subtype.
    pub fn paper() -> Self {
        BernoulliWorkload::new(0.5, 1)
    }

    /// General Bernoulli workload.
    ///
    /// # Panics
    /// Panics if `p_colocate ∉ [0,1]` or `subtypes == 0`.
    pub fn new(p_colocate: f64, subtypes: u8) -> Self {
        assert!((0.0..=1.0).contains(&p_colocate), "bad probability");
        assert!(subtypes >= 1, "need at least one subtype");
        BernoulliWorkload {
            p_colocate,
            subtypes,
        }
    }
}

impl Workload for BernoulliWorkload {
    fn next_task<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TaskType {
        if rng.gen::<f64>() < self.p_colocate {
            TaskType::Colocate(rng.gen_range(0..self.subtypes))
        } else {
            TaskType::Exclusive
        }
    }

    fn name(&self) -> &'static str {
        "bernoulli"
    }
}

/// A two-state Markov-modulated workload: alternates between a C-heavy
/// and an E-heavy phase, producing the bursty arrival correlation real
/// request streams show (§4.1 caveats discussion).
#[derive(Debug, Clone, Copy)]
pub struct BurstyWorkload {
    /// P(type-C) in the C-heavy phase.
    p_c_hot: f64,
    /// P(type-C) in the E-heavy phase.
    p_c_cold: f64,
    /// Per-draw probability of switching phase.
    switch_prob: f64,
    hot: bool,
}

impl BurstyWorkload {
    /// A bursty workload alternating between C-heavy (`p_c_hot`) and
    /// E-heavy (`p_c_cold`) phases.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities.
    pub fn new(p_c_hot: f64, p_c_cold: f64, switch_prob: f64) -> Self {
        for p in [p_c_hot, p_c_cold, switch_prob] {
            assert!((0.0..=1.0).contains(&p), "bad probability {p}");
        }
        BurstyWorkload {
            p_c_hot,
            p_c_cold,
            switch_prob,
            hot: true,
        }
    }
}

impl Workload for BurstyWorkload {
    fn next_task<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TaskType {
        if rng.gen::<f64>() < self.switch_prob {
            self.hot = !self.hot;
        }
        let p = if self.hot { self.p_c_hot } else { self.p_c_cold };
        if rng.gen::<f64>() < p {
            TaskType::Colocate(0)
        } else {
            TaskType::Exclusive
        }
    }

    fn name(&self) -> &'static str {
        "bursty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chsh_input_mapping() {
        assert_eq!(TaskType::Colocate(0).chsh_input(), 1);
        assert_eq!(TaskType::Colocate(3).chsh_input(), 1);
        assert_eq!(TaskType::Exclusive.chsh_input(), 0);
        assert!(TaskType::Colocate(1).is_colocate());
        assert!(!TaskType::Exclusive.is_colocate());
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = BernoulliWorkload::paper();
        let trials = 20_000;
        let c = (0..trials)
            .filter(|_| w.next_task(&mut rng).is_colocate())
            .count();
        let f = c as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.02, "C rate {f}");
    }

    #[test]
    fn subtypes_are_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = BernoulliWorkload::new(1.0, 4);
        let mut counts = [0usize; 4];
        let trials = 20_000;
        for _ in 0..trials {
            match w.next_task(&mut rng) {
                TaskType::Colocate(s) => counts[s as usize] += 1,
                TaskType::Exclusive => panic!("p_colocate = 1"),
            }
        }
        for (s, c) in counts.iter().enumerate() {
            let f = *c as f64 / trials as f64;
            assert!((f - 0.25).abs() < 0.02, "subtype {s}: {f}");
        }
    }

    #[test]
    fn bursty_switches_phases() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = BurstyWorkload::new(0.9, 0.1, 0.01);
        // Long-run C rate should sit near the phase average, 0.5.
        let trials = 100_000;
        let c = (0..trials)
            .filter(|_| w.next_task(&mut rng).is_colocate())
            .count();
        let f = c as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.05, "long-run C rate {f}");
    }

    #[test]
    #[should_panic(expected = "at least one subtype")]
    fn zero_subtypes_panics() {
        BernoulliWorkload::new(0.5, 0);
    }
}
