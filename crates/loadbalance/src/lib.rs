//! # loadbalance — quantum-assisted application-level load balancing (§4.1)
//!
//! Reproduces the paper's Figure 4 simulation and its ablations:
//! `N` load balancers forward tasks to `M` servers each timestep. Type-C
//! tasks benefit from co-location (a server runs two of them
//! simultaneously); type-E tasks want isolation (served one at a time).
//!
//! The quantum strategy pairs load balancers; each pair uses pre-shared
//! classical randomness to pick two candidate servers per round and the
//! *flipped CHSH protocol* (`a ⊕ b = ¬(x ∧ y)`) to decide who goes where:
//! same server exactly when both tasks are type-C — correctly 85.36% of
//! the time, versus 75% for the best possible classical pairing.
//!
//! ## Modules
//!
//! - [`task`]: task types and workload generators (Bernoulli C/E as in the
//!   paper, plus multi-subtype and bursty generators for the caveat
//!   ablations).
//! - [`server`]: server queue disciplines — the paper's
//!   ("two type-C simultaneously first, then type-E one at a time") and
//!   alternates for the footnote-2 robustness claim.
//! - [`strategy`]: assignment strategies — uniform random, round-robin,
//!   power-of-two-choices, classical pairings, dedicated-server hybrid,
//!   and the quantum CHSH pairing (with exact-simulation and fast
//!   closed-form sampling modes, plus finite pair availability).
//! - [`sim`]: the timestep loop of Figure 4 (compatibility path: any
//!   strategy, caller-supplied RNG, bit-stable historical trajectories).
//! - [`shard`]: the sharded, structure-of-arrays, batch-advanced engine
//!   for production-scale runs (1e6 servers), byte-identical at any
//!   worker/shard count.
//! - [`aos`]: the frozen pre-shard array-of-structs loop, kept as the
//!   determinism oracle and the ablation baseline for `benches/scale.rs`.
//! - [`metrics`]: queue-length and waiting-time statistics, including the
//!   bounded deterministic wait reservoir.
//! - [`error`]: typed configuration/engine errors.
//! - [`degrade`]: graceful degradation — a hysteretic governor that
//!   watches pair delivery and falls back from quantum CHSH to classical
//!   coordination (and recovers) as the entanglement plane faults and
//!   heals.

pub mod aos;
pub mod degrade;
pub mod error;
pub mod metrics;
pub mod pipeline;
pub mod server;
pub mod shard;
pub mod sim;
pub mod strategy;
pub mod task;

pub use degrade::{CoordinationMode, Degrading, FallbackGovernor, HysteresisConfig};
pub use error::SimError;
pub use metrics::{SimResult, WaitReservoir};
pub use server::{Discipline, Server};
pub use pipeline::PipelinePairedQuantum;
pub use shard::{run_scaled, ScaleConfig, ScaleStrategy};
pub use sim::{
    run_simulation, run_simulation_with, try_run_simulation, try_run_simulation_with, SimConfig,
};
pub use strategy::{AssignmentStrategy, PairDecision, QuantumMode, Strategy};
pub use task::{ArrivalModel, Task, TaskType, Workload};
