//! Degradation-aware coordination: graceful fallback under faults.
//!
//! The entanglement plane fails in ways classical networks don't — link
//! outages kill every in-flight photon, source brownouts starve the
//! buffers, decoherence spikes rot what's stored. A load balancer wired
//! directly to [`crate::pipeline::PipelinePairedQuantum`] would silently
//! degrade into its per-round miss path. This module makes degradation a
//! *first-class, observable mode change* instead:
//!
//! - [`FallbackGovernor`] watches pair delivery over a sliding window and
//!   switches between three [`CoordinationMode`]s with hysteresis
//!   (distinct trip and recover thresholds plus a minimum dwell time, so
//!   a noisy delivery rate cannot flap the mode).
//! - [`Degrading`] wraps the pipeline strategy: in `Quantum` mode it
//!   plays flipped CHSH off real buffered pairs; in `ClassicalShared`
//!   mode it falls back to the best classical pairing (always-split via
//!   pre-shared randomness, CHSH value 0.75); in `IndependentRandom`
//!   mode — the deep-fault floor where even shared randomness is assumed
//!   stale — each balancer picks servers independently. In the classical
//!   modes the hardware keeps being polled at the same cadence, so the
//!   governor can see delivery recover once the fault clears.
//!
//! Every transition is counted and timed through `qnlg-obs`
//! (`qnlg.fallback.*`), so a repro artifact can assert the chaos schedule
//! actually exercised the state machine.

use crate::pipeline::PipelinePairedQuantum;
use crate::strategy::AssignmentStrategy;
use crate::task::TaskType;
use obs::{LazyCounter, LazyGauge};
use qnet::DistributorConfig;
use rand::Rng;
use std::collections::VecDeque;
use std::time::Duration;

static FALLBACK_TRANSITIONS: LazyCounter = LazyCounter::new("qnlg.fallback.transitions");
static FALLBACK_TO_QUANTUM: LazyCounter = LazyCounter::new("qnlg.fallback.to_quantum");
static FALLBACK_TO_CLASSICAL: LazyCounter = LazyCounter::new("qnlg.fallback.to_classical");
static FALLBACK_TO_INDEPENDENT: LazyCounter = LazyCounter::new("qnlg.fallback.to_independent");
static ROUNDS_QUANTUM: LazyCounter = LazyCounter::new("qnlg.fallback.rounds.quantum");
static ROUNDS_CLASSICAL: LazyCounter = LazyCounter::new("qnlg.fallback.rounds.classical");
static ROUNDS_INDEPENDENT: LazyCounter = LazyCounter::new("qnlg.fallback.rounds.independent");
static FALLBACK_MODE: LazyGauge = LazyGauge::new("qnlg.fallback.mode");

/// How a balancer pair coordinates this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinationMode {
    /// Flipped CHSH over real buffered pairs (win rate ≈ 0.8536 when
    /// pairs flow).
    Quantum,
    /// Best classical pairing: always-split via pre-shared randomness
    /// (win rate 0.75).
    ClassicalShared,
    /// Deep-fault floor: independent uniform choices, no shared resource
    /// at all.
    IndependentRandom,
}

impl CoordinationMode {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CoordinationMode::Quantum => "quantum",
            CoordinationMode::ClassicalShared => "classical-shared",
            CoordinationMode::IndependentRandom => "independent-random",
        }
    }

    fn gauge_value(self) -> i64 {
        match self {
            CoordinationMode::Quantum => 0,
            CoordinationMode::ClassicalShared => 1,
            CoordinationMode::IndependentRandom => 2,
        }
    }

    fn index(self) -> usize {
        self.gauge_value() as usize
    }

    /// Trace instant name for a transition *into* this mode.
    fn trace_name(self) -> &'static str {
        match self {
            CoordinationMode::Quantum => "mode.quantum",
            CoordinationMode::ClassicalShared => "mode.classical-shared",
            CoordinationMode::IndependentRandom => "mode.independent-random",
        }
    }
}

/// Hysteresis thresholds for the fallback state machine.
///
/// All thresholds are windowed pair-delivery rates (delivered / polled
/// over the last [`Self::window`] rounds). Trip thresholds must sit
/// strictly below their recover counterparts; the open interval between
/// them is the dead band in which the governor holds its current mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisConfig {
    /// Sliding-window length, in rounds.
    pub window: usize,
    /// Quantum → ClassicalShared when the rate falls below this.
    pub trip: f64,
    /// ClassicalShared → Quantum when the rate rises to this or above.
    pub recover: f64,
    /// Anything → IndependentRandom when the rate falls below this.
    pub deep_trip: f64,
    /// IndependentRandom → ClassicalShared when the rate reaches this
    /// (recovery re-enters quantum via the classical tier, never in one
    /// jump).
    pub deep_recover: f64,
    /// Minimum rounds to dwell in a mode before the next transition.
    pub min_dwell: u64,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        HysteresisConfig {
            window: 8,
            trip: 0.5,
            recover: 0.8,
            deep_trip: 0.02,
            deep_recover: 0.25,
            min_dwell: 4,
        }
    }
}

impl HysteresisConfig {
    fn validate(&self) {
        assert!(self.window >= 1, "window must be at least one round");
        assert!(self.min_dwell >= 1, "min_dwell must be at least one round");
        assert!(
            0.0 <= self.deep_trip && self.deep_trip < self.deep_recover,
            "need deep_trip < deep_recover"
        );
        assert!(
            self.deep_trip < self.trip && self.trip < self.recover && self.recover <= 1.0,
            "need deep_trip < trip < recover <= 1"
        );
        assert!(
            self.deep_recover <= self.recover,
            "deep_recover must not exceed recover"
        );
    }
}

/// The hysteretic fallback state machine. Pure bookkeeping — it never
/// touches hardware or randomness, so it is exactly testable with
/// synthetic delivery traces.
#[derive(Debug)]
pub struct FallbackGovernor {
    config: HysteresisConfig,
    window: VecDeque<(u64, u64)>,
    mode: CoordinationMode,
    dwell: u64,
    transitions: u64,
    entries: [u64; 3],
    rounds: [u64; 3],
}

impl FallbackGovernor {
    /// A governor starting in [`CoordinationMode::Quantum`].
    ///
    /// # Panics
    /// Panics if the config's thresholds are not strictly ordered
    /// (`deep_trip < trip < recover`, `deep_trip < deep_recover ≤
    /// recover`) or its window/dwell are zero.
    pub fn new(config: HysteresisConfig) -> Self {
        config.validate();
        FallbackGovernor {
            config,
            window: VecDeque::with_capacity(config.window),
            mode: CoordinationMode::Quantum,
            dwell: 0,
            transitions: 0,
            entries: [0; 3],
            rounds: [0; 3],
        }
    }

    /// Current mode.
    pub fn mode(&self) -> CoordinationMode {
        self.mode
    }

    /// Total mode transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Times each mode has been *entered* (indexed quantum, classical,
    /// independent; the initial Quantum state is not counted).
    pub fn entries(&self) -> [u64; 3] {
        self.entries
    }

    /// Rounds spent in each mode (indexed quantum, classical,
    /// independent).
    pub fn rounds(&self) -> [u64; 3] {
        self.rounds
    }

    /// Windowed delivery rate, or `None` until a full window with at
    /// least one poll has accumulated.
    pub fn window_rate(&self) -> Option<f64> {
        if self.window.len() < self.config.window {
            return None;
        }
        let (delivered, polled) = self
            .window
            .iter()
            .fold((0u64, 0u64), |(d, p), &(dd, pp)| (d + dd, p + pp));
        if polled == 0 {
            return None;
        }
        Some(delivered as f64 / polled as f64)
    }

    /// Feeds one round of delivery evidence (`delivered` pairs out of
    /// `polled` attempts) and returns the mode to use for the *next*
    /// round.
    pub fn observe(&mut self, delivered: u64, polled: u64) -> CoordinationMode {
        debug_assert!(delivered <= polled, "delivered {delivered} > polled {polled}");
        match self.mode {
            CoordinationMode::Quantum => ROUNDS_QUANTUM.inc(),
            CoordinationMode::ClassicalShared => ROUNDS_CLASSICAL.inc(),
            CoordinationMode::IndependentRandom => ROUNDS_INDEPENDENT.inc(),
        }
        self.rounds[self.mode.index()] += 1;
        if self.window.len() == self.config.window {
            self.window.pop_front();
        }
        self.window.push_back((delivered, polled));
        self.dwell += 1;
        if self.dwell < self.config.min_dwell {
            return self.mode;
        }
        let Some(rate) = self.window_rate() else {
            return self.mode;
        };
        let c = self.config;
        let next = match self.mode {
            CoordinationMode::Quantum if rate < c.deep_trip => CoordinationMode::IndependentRandom,
            CoordinationMode::Quantum if rate < c.trip => CoordinationMode::ClassicalShared,
            CoordinationMode::ClassicalShared if rate < c.deep_trip => {
                CoordinationMode::IndependentRandom
            }
            CoordinationMode::ClassicalShared if rate >= c.recover => CoordinationMode::Quantum,
            CoordinationMode::IndependentRandom if rate >= c.deep_recover => {
                CoordinationMode::ClassicalShared
            }
            hold => hold,
        };
        if next != self.mode {
            self.transition_to(next);
        }
        self.mode
    }

    /// [`Self::observe`] for a *routed chain* (metro topology): pairs
    /// delivered below the CHSH crossover visibility `1/√2` cannot beat
    /// classical coordination, so they count as zero evidence — a chain
    /// re-routed onto a lossy backup trunk trips the governor even while
    /// its delivered-pair *rate* stays healthy. `delivered` out of
    /// `requested` attempts arrived, at end-to-end visibility
    /// `visibility`.
    pub fn observe_delivery(
        &mut self,
        delivered: u64,
        requested: u64,
        visibility: f64,
    ) -> CoordinationMode {
        let effective = if visibility > qsim::noise::WERNER_CHSH_THRESHOLD {
            delivered
        } else {
            0
        };
        self.observe(effective, requested)
    }

    fn transition_to(&mut self, next: CoordinationMode) {
        let _span = obs::span!("fallback.transition");
        self.mode = next;
        self.dwell = 0;
        self.transitions += 1;
        self.entries[next.index()] += 1;
        FALLBACK_TRANSITIONS.inc();
        match next {
            CoordinationMode::Quantum => FALLBACK_TO_QUANTUM.inc(),
            CoordinationMode::ClassicalShared => FALLBACK_TO_CLASSICAL.inc(),
            CoordinationMode::IndependentRandom => FALLBACK_TO_INDEPENDENT.inc(),
        }
        FALLBACK_MODE.set(next.gauge_value());
    }
}

/// The degradation-aware strategy: [`PipelinePairedQuantum`] wrapped in a
/// [`FallbackGovernor`].
pub struct Degrading {
    inner: PipelinePairedQuantum,
    governor: FallbackGovernor,
    n_servers: usize,
    pair_rounds: u64,
    /// Trace timeline for this governor's window evaluations and mode
    /// transitions.
    track: trace::Track,
}

impl Degrading {
    /// Builds the wrapped pipeline strategy. Parameters as in
    /// [`PipelinePairedQuantum::new`], plus the hysteresis thresholds.
    ///
    /// # Panics
    /// Panics on invalid pipeline or hysteresis parameters (see
    /// [`PipelinePairedQuantum::new`] and [`FallbackGovernor::new`]).
    pub fn new<R: Rng>(
        n_balancers: usize,
        n_servers: usize,
        pipeline: DistributorConfig,
        timestep: Duration,
        hysteresis: HysteresisConfig,
        rng: &mut R,
    ) -> Self {
        Degrading {
            inner: PipelinePairedQuantum::new(n_balancers, n_servers, pipeline, timestep, rng),
            governor: FallbackGovernor::new(hysteresis),
            n_servers,
            pair_rounds: 0,
            track: trace::Track::Governor(trace::next_lane()),
        }
    }

    /// The governor (mode, transition counts, windowed rate).
    pub fn governor(&self) -> &FallbackGovernor {
        &self.governor
    }

    /// The wrapped pipeline strategy.
    pub fn pipeline(&self) -> &PipelinePairedQuantum {
        &self.inner
    }

    /// Fraction of pair-decision rounds coordinated with a real quantum
    /// pair (1.0 when the plane is healthy; drops during faults).
    pub fn coordinated_fraction(&self) -> f64 {
        if self.pair_rounds == 0 {
            return 0.0;
        }
        self.inner.stats().quantum_rounds as f64 / self.pair_rounds as f64
    }

    fn assign_classical_shared(
        &self,
        tasks: &[TaskType],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        // Always-split via shared randomness: both halves of a pair agree
        // on (s0, s1) and take one each — the optimal classical pairing.
        let mut out = vec![0usize; tasks.len()];
        let mut i = 0;
        while i + 1 < tasks.len() {
            let s0 = rng.gen_range(0..self.n_servers);
            let mut s1 = rng.gen_range(0..self.n_servers - 1);
            if s1 >= s0 {
                s1 += 1;
            }
            out[i] = s0;
            out[i + 1] = s1;
            i += 2;
        }
        if i < tasks.len() {
            out[i] = rng.gen_range(0..self.n_servers);
        }
        out
    }

    fn assign_independent(&self, tasks: &[TaskType], rng: &mut dyn rand::RngCore) -> Vec<usize> {
        tasks
            .iter()
            .map(|_| rng.gen_range(0..self.n_servers))
            .collect()
    }
}

impl AssignmentStrategy for Degrading {
    fn assign_all(
        &mut self,
        tasks: &[TaskType],
        queue_lens: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        self.pair_rounds += (tasks.len() / 2) as u64;
        let mode_before = self.governor.mode();
        let (out, delivered, polled) = match mode_before {
            CoordinationMode::Quantum => {
                let before = self.inner.stats();
                let out = self.inner.assign_all(tasks, queue_lens, rng);
                let after = self.inner.stats();
                let delivered = after.quantum_rounds - before.quantum_rounds;
                let polled = delivered + (after.fallback_rounds - before.fallback_rounds);
                (out, delivered, polled)
            }
            CoordinationMode::ClassicalShared => {
                let (delivered, polled) = self.inner.poll_delivery();
                (self.assign_classical_shared(tasks, rng), delivered, polled)
            }
            CoordinationMode::IndependentRandom => {
                let (delivered, polled) = self.inner.poll_delivery();
                (self.assign_independent(tasks, rng), delivered, polled)
            }
        };
        let mode_after = self.governor.observe(delivered, polled);
        if trace::enabled() {
            // Governor timeline: one instant per window evaluation, plus
            // a named instant on each mode transition — the degradation
            // story of a chaos run at a glance in Perfetto.
            let t = self.inner.now().as_nanos();
            trace::instant_sim(self.track, "governor.eval", t);
            if mode_after != mode_before {
                trace::instant_sim(self.track, mode_after.trace_name(), t);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        // The "paired" prefix opts into the simulator's pair statistics.
        "paired-degrading"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_hysteresis() -> HysteresisConfig {
        HysteresisConfig {
            window: 4,
            min_dwell: 2,
            ..HysteresisConfig::default()
        }
    }

    #[test]
    fn starts_quantum_and_holds_under_full_delivery() {
        let mut g = FallbackGovernor::new(quick_hysteresis());
        for _ in 0..50 {
            assert_eq!(g.observe(10, 10), CoordinationMode::Quantum);
        }
        assert_eq!(g.transitions(), 0);
    }

    #[test]
    fn trips_to_classical_then_recovers() {
        let mut g = FallbackGovernor::new(quick_hysteresis());
        for _ in 0..10 {
            g.observe(10, 10);
        }
        for _ in 0..10 {
            g.observe(1, 10); // 10% delivery: below trip, above deep_trip
        }
        assert_eq!(g.mode(), CoordinationMode::ClassicalShared);
        for _ in 0..10 {
            g.observe(10, 10);
        }
        assert_eq!(g.mode(), CoordinationMode::Quantum);
        assert_eq!(g.transitions(), 2);
    }

    #[test]
    fn total_blackout_reaches_independent_and_steps_back_up() {
        let mut g = FallbackGovernor::new(quick_hysteresis());
        for _ in 0..20 {
            g.observe(0, 10);
        }
        assert_eq!(g.mode(), CoordinationMode::IndependentRandom);
        // Recovery is tiered: independent → classical → quantum.
        for _ in 0..20 {
            g.observe(10, 10);
        }
        assert_eq!(g.mode(), CoordinationMode::Quantum);
        assert_eq!(g.entries(), [1, 1, 1]);
    }

    #[test]
    fn dead_band_rate_never_flaps() {
        // 65% sits between trip (50%) and recover (80%): whatever mode
        // the governor is in, it must hold it.
        let mut g = FallbackGovernor::new(quick_hysteresis());
        for _ in 0..40 {
            g.observe(13, 20);
        }
        assert_eq!(g.mode(), CoordinationMode::Quantum);
        assert_eq!(g.transitions(), 0);
    }

    #[test]
    fn empty_window_reports_no_rate() {
        let mut g = FallbackGovernor::new(quick_hysteresis());
        assert_eq!(g.window_rate(), None);
        g.observe(0, 0);
        g.observe(0, 0);
        g.observe(0, 0);
        g.observe(0, 0);
        // Full window but zero polls: still no evidence, no transition.
        assert_eq!(g.window_rate(), None);
        assert_eq!(g.mode(), CoordinationMode::Quantum);
    }

    #[test]
    fn sub_threshold_visibility_trips_despite_healthy_rate() {
        // Full delivery at v = 0.63 (< 1/√2): the pairs arrive but cannot
        // witness advantage, so the governor must leave Quantum.
        let mut g = FallbackGovernor::new(quick_hysteresis());
        for _ in 0..20 {
            g.observe_delivery(10, 10, 0.63);
        }
        assert_eq!(g.mode(), CoordinationMode::IndependentRandom);
        // Back above the crossover: tiered recovery to Quantum.
        for _ in 0..20 {
            g.observe_delivery(10, 10, 0.9);
        }
        assert_eq!(g.mode(), CoordinationMode::Quantum);
    }

    #[test]
    fn above_threshold_visibility_passes_delivery_through() {
        let mut g = FallbackGovernor::new(quick_hysteresis());
        for _ in 0..50 {
            assert_eq!(
                g.observe_delivery(10, 10, 0.85),
                CoordinationMode::Quantum
            );
        }
        assert_eq!(g.transitions(), 0);
    }

    #[test]
    #[should_panic(expected = "deep_trip < trip < recover")]
    fn inverted_thresholds_panic() {
        FallbackGovernor::new(HysteresisConfig {
            trip: 0.9,
            recover: 0.8,
            ..HysteresisConfig::default()
        });
    }
}
