//! The fully-integrated quantum strategy: CHSH pairing driven by a live
//! simulated entanglement-distribution pipeline.
//!
//! [`crate::strategy::Strategy::PairedQuantum`] abstracts the hardware
//! into two numbers (availability, visibility). This module removes the
//! abstraction: each balancer pair owns an
//! [`qnet::EntanglementDistributor`] — SPDC source, two fibers, two
//! QNICs with finite memory lifetime — and every coordination round
//! consumes an actual buffered pair, with whatever storage decoherence it
//! accumulated. Misses fall back to the classical always-split rule.
//!
//! This is experiment E8's engine: the end-to-end Figure 4 effect of real
//! source rates and memory lifetimes.

use crate::strategy::AssignmentStrategy;
use crate::task::TaskType;
use games::chsh::{alice_angle, bob_angle};
use qnet::{DistributorConfig, EntanglementDistributor, SimTime};
use qsim::Party;
use rand::Rng;
use std::time::Duration;

/// Counters describing how the pipeline-backed strategy behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Rounds coordinated with a real pair.
    pub quantum_rounds: u64,
    /// Rounds that fell back to the classical rule (no pair buffered).
    pub fallback_rounds: u64,
}

impl PipelineStats {
    /// Fraction of rounds that used a quantum pair.
    pub fn quantum_fraction(&self) -> f64 {
        let total = self.quantum_rounds + self.fallback_rounds;
        if total == 0 {
            return 0.0;
        }
        self.quantum_rounds as f64 / total as f64
    }
}

/// A paired-CHSH strategy whose entanglement comes from per-pair
/// simulated distribution pipelines.
pub struct PipelinePairedQuantum {
    n_servers: usize,
    timestep: Duration,
    now: SimTime,
    distributors: Vec<EntanglementDistributor>,
    stats: PipelineStats,
}

impl PipelinePairedQuantum {
    /// Builds the strategy: one distribution pipeline per balancer pair,
    /// each configured identically. `timestep` is the wall-clock duration
    /// of one simulation step (the paper's "task execution time ≈ RTT"
    /// regime corresponds to tens of microseconds).
    ///
    /// # Panics
    /// Panics if `n_servers < 2`, `n_balancers == 0`, or `timestep` is
    /// zero.
    pub fn new<R: Rng>(
        n_balancers: usize,
        n_servers: usize,
        pipeline: DistributorConfig,
        timestep: Duration,
        rng: &mut R,
    ) -> Self {
        assert!(n_servers >= 2, "need at least two servers");
        assert!(n_balancers > 0, "need balancers");
        assert!(!timestep.is_zero(), "timestep must be positive");
        let n_pairs = n_balancers / 2;
        let distributors = (0..n_pairs)
            .map(|_| EntanglementDistributor::new(pipeline.clone(), rng))
            .collect();
        PipelinePairedQuantum {
            n_servers,
            timestep,
            now: SimTime::ZERO,
            distributors,
            stats: PipelineStats::default(),
        }
    }

    /// Behaviour counters so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Aggregated distributor statistics across all pairs.
    pub fn distributor_stats(&self) -> qnet::DistributorStats {
        let mut total = qnet::DistributorStats::default();
        for d in &self.distributors {
            let s = d.stats();
            total.emitted += s.emitted;
            total.lost_in_fiber += s.lost_in_fiber;
            total.dropped_full += s.dropped_full;
            total.expired += s.expired;
            total.consumed += s.consumed;
            total.misses += s.misses;
            total.lost_outage += s.lost_outage;
            total.suppressed += s.suppressed;
            total.clamp_evicted += s.clamp_evicted;
        }
        total
    }

    /// Number of balancer pairs (= distribution pipelines).
    pub fn n_pairs(&self) -> usize {
        self.distributors.len()
    }

    /// Current simulation time (advanced one timestep per round).
    pub fn now(&self) -> qnet::SimTime {
        self.now
    }

    /// Total fault-window edges replayed across all pipelines.
    pub fn fault_transitions(&self) -> u64 {
        self.distributors.iter().map(|d| d.fault_transitions()).sum()
    }

    /// Advances every pipeline one timestep and polls each for a pair,
    /// without coordinating any tasks. Returns `(delivered, polled)`.
    ///
    /// This is the degradation probe: while a
    /// [`crate::degrade::FallbackGovernor`] holds the strategy in a
    /// classical mode, the wrapper keeps calling this so the hardware
    /// keeps running (and consuming pairs at the same cadence), letting
    /// the governor observe delivery recover after a fault clears.
    pub fn poll_delivery(&mut self) -> (u64, u64) {
        self.now += self.timestep;
        let mut delivered = 0u64;
        for d in &mut self.distributors {
            if d.take_werner(self.now).is_some() {
                delivered += 1;
            }
        }
        (delivered, self.distributors.len() as u64)
    }

    /// Coordinates one CHSH round on pipeline `pair_idx` with inputs
    /// `(x, y)`, returning the two (already flipped-game-adjusted)
    /// decision bits, or `None` on a miss.
    ///
    /// By default this runs the closed-form Werner kernel
    /// ([`qnet::EntanglementDistributor::take_werner`] +
    /// [`qsim::WernerPair::sample`]): one RNG draw per round, no density
    /// matrices. `QNLG_EXACT_QSIM=1` routes through the gate-evolution
    /// oracle instead; the two paths sample the same joint distribution
    /// (proven by the `werner_stat` suite) but consume different RNG
    /// stream positions, so artifacts are comparable statistically, not
    /// byte-for-byte.
    fn coordinate(
        &mut self,
        pair_idx: usize,
        x: usize,
        y: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Option<(bool, bool)> {
        if qsim::werner::exact_qsim() {
            let mut pair = self.distributors[pair_idx].take_pair(self.now)?;
            let a = pair
                .measure_angle(Party::A, alice_angle(x), rng)
                .expect("fresh pair");
            let b = pair
                .measure_angle(Party::B, bob_angle(y), rng)
                .expect("fresh pair");
            // Flipped game: negate Bob's bit (§4.1).
            Some((a == 1, b == 0))
        } else {
            let kernel = self.distributors[pair_idx].take_werner(self.now)?;
            let (a, b) = kernel.sample(alice_angle(x), bob_angle(y), rng);
            Some((a == 1, b == 0))
        }
    }
}

impl AssignmentStrategy for PipelinePairedQuantum {
    fn assign_all(
        &mut self,
        tasks: &[TaskType],
        _queue_lens: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        self.now += self.timestep;
        let mut out = vec![0usize; tasks.len()];
        let mut i = 0;
        let mut pair_idx = 0;
        while i + 1 < tasks.len() {
            let s0 = rng.gen_range(0..self.n_servers);
            let mut s1 = rng.gen_range(0..self.n_servers - 1);
            if s1 >= s0 {
                s1 += 1;
            }
            let (x, y) = (tasks[i].chsh_input(), tasks[i + 1].chsh_input());
            let (a, b) = match self.coordinate(pair_idx, x, y, rng) {
                Some(bits) => {
                    self.stats.quantum_rounds += 1;
                    bits
                }
                None => {
                    self.stats.fallback_rounds += 1;
                    (false, true) // classical always-split fallback
                }
            };
            out[i] = if a { s1 } else { s0 };
            out[i + 1] = if b { s1 } else { s0 };
            i += 2;
            pair_idx += 1;
        }
        if i < tasks.len() {
            out[i] = rng.gen_range(0..self.n_servers);
        }
        out
    }

    fn name(&self) -> &'static str {
        "paired-pipeline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Discipline;
    use crate::sim::{run_simulation, run_simulation_with, SimConfig};
    use crate::strategy::Strategy;
    use crate::task::BernoulliWorkload;
    use qnet::{ConsumePolicy, EprSource, FiberLink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_pipeline(rate_hz: f64) -> DistributorConfig {
        DistributorConfig {
            source: EprSource::new(rate_hz, 1.0),
            link_a: FiberLink::new(0.1),
            link_b: FiberLink::new(0.1),
            qnic_capacity: 16,
            memory_lifetime: Duration::from_micros(100),
            max_age: Duration::from_micros(80),
            consume_policy: ConsumePolicy::FreshestFirst,
            faults: qnet::FaultPlan::none(),
            emission: qnet::EmissionMode::Batched,
        }
    }

    fn quick(load: f64) -> SimConfig {
        SimConfig {
            n_balancers: 40,
            n_servers: (40.0 / load).round() as usize,
            timesteps: 500,
            warmup: 150,
            discipline: Discipline::PaperPairedC,
        }
    }

    #[test]
    fn fast_source_matches_ideal_quantum() {
        // 1M pairs/s vs 10k decisions/s per pair: never starved, perfect
        // pairs → queue lengths within noise of the ideal abstraction.
        let load = 1.1;
        let config = quick(load);
        let mut rng = StdRng::seed_from_u64(1);
        let mut strat = PipelinePairedQuantum::new(
            config.n_balancers,
            config.n_servers,
            fast_pipeline(1e6),
            Duration::from_micros(100),
            &mut rng,
        );
        let piped = run_simulation_with(
            config,
            &mut strat,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        assert!(strat.stats().quantum_fraction() > 0.99);
        let ideal = run_simulation(
            config,
            Strategy::quantum_ideal(),
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        let rel = (piped.avg_queue_len - ideal.avg_queue_len).abs()
            / ideal.avg_queue_len.max(1e-9);
        assert!(
            rel < 0.4,
            "pipeline {} vs ideal {}",
            piped.avg_queue_len,
            ideal.avg_queue_len
        );
        // Pair stats reflect real CHSH coordination.
        assert!(
            (piped.cc_colocation_rate - games::chsh_quantum_value()).abs() < 0.04,
            "CC co-location {}",
            piped.cc_colocation_rate
        );
    }

    #[test]
    fn starved_source_degenerates_to_classical_split() {
        // 100 pairs/s against 10k decisions/s: essentially every round
        // falls back.
        let load = 1.1;
        let config = quick(load);
        let mut rng = StdRng::seed_from_u64(2);
        let mut strat = PipelinePairedQuantum::new(
            config.n_balancers,
            config.n_servers,
            fast_pipeline(100.0),
            Duration::from_micros(100),
            &mut rng,
        );
        let piped = run_simulation_with(
            config,
            &mut strat,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        assert!(strat.stats().quantum_fraction() < 0.1);
        // Fallback is always-split: CC co-location ≈ 0.
        assert!(
            piped.cc_colocation_rate < 0.1,
            "CC co-location {}",
            piped.cc_colocation_rate
        );
    }

    #[test]
    fn queue_length_improves_with_source_rate() {
        let load = 1.15;
        let config = quick(load);
        let mut results = Vec::new();
        for (i, rate) in [3e3, 3e4, 1e6].iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(10 + i as u64);
            let mut strat = PipelinePairedQuantum::new(
                config.n_balancers,
                config.n_servers,
                fast_pipeline(*rate),
                Duration::from_micros(100),
                &mut rng,
            );
            let r = run_simulation_with(
                config,
                &mut strat,
                &mut BernoulliWorkload::paper(),
                &mut rng,
            );
            results.push(r.avg_queue_len);
        }
        assert!(
            results[2] < results[0],
            "1M pairs/s {} should beat 3k pairs/s {}",
            results[2],
            results[0]
        );
    }

    #[test]
    fn distributor_stats_aggregate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut strat = PipelinePairedQuantum::new(
            8,
            4,
            fast_pipeline(1e5),
            Duration::from_micros(100),
            &mut rng,
        );
        let tasks = vec![crate::task::TaskType::Exclusive; 8];
        let lens = vec![0usize; 4];
        for _ in 0..50 {
            let _ = strat.assign_all(&tasks, &lens, &mut rng);
        }
        let stats = strat.distributor_stats();
        assert!(stats.emitted > 0);
        assert_eq!(
            stats.consumed + stats.misses,
            strat.stats().quantum_rounds + strat.stats().fallback_rounds
        );
    }
}
