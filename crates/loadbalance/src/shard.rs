//! The sharded, structure-of-arrays, batch-advanced Figure 4 engine.
//!
//! [`crate::sim::run_simulation`] advances a `Vec<Server>` one timestep
//! at a time with a caller-supplied generator — the right contract for
//! paper-sized runs (100 balancers) and for bit-stable history, but a
//! dead end at the ROADMAP's "millions of users" scale: array-of-structs
//! queues, per-step allocations, and a single global RNG that serializes
//! everything. This module is the scale path. Same model, different
//! shape:
//!
//! - **Structure of arrays.** A server is a row across flat arrays —
//!   queue counts (`q_len`), in-service slots (`in_service`), wait
//!   accumulators (`served`/`total_wait`), and two FIFO *lanes* of `u32`
//!   arrival steps (type-C and type-E). Lanes are exact for the
//!   disciplines whose serve choice depends only on (lane, age) — the
//!   paper's rule, C-priority-single, and exclusive-first — because with
//!   a single C subtype "the first type-C and the next of the same
//!   subtype" is just the two oldest entries of the C lane.
//!   Order-sensitive disciplines (FIFO-paired-C, single-slot) interleave
//!   lanes within a step and stay on the compatibility path
//!   ([`SimError::UnsupportedDiscipline`]).
//! - **Sharding.** Servers are partitioned into contiguous shards, and
//!   balancer *pairs* into pair-shards, advanced by [`runtime`] workers.
//!   Each epoch runs two lock-free phases: pair-shards draw arrivals and
//!   assignments, appending packed `(step, server, lane)` entries to one
//!   outbox per server-shard (phase A); server-shards then drain their
//!   inboxes in pair-shard order and serve (phase B). Cross-shard
//!   handoff is only ever through these per-epoch mailboxes — the step
//!   path takes no locks.
//! - **Determinism at any shard/worker count.** The PR 1/PR 5 stream
//!   pattern, pushed one level deeper: one master seed, and each balancer
//!   pair owns the [`runtime::SplitMix64`] sub-stream
//!   `stream_seed(master, pair)` — a shard owns the streams of its pair
//!   range, so every draw is a pure function of `(master, pair, step)`
//!   and the partition only decides *who computes it*. Shard-local stats
//!   merge in shard-index order; wait percentiles come from the
//!   order-invariant bottom-R reservoir ([`crate::metrics::WaitReservoir`]),
//!   seeded from the reserved stream index past the pair range. Results
//!   are byte-identical across `QNLG_THREADS` and shard counts.
//!
//! The one deliberate semantic difference from the step-at-a-time loop:
//! informed strategies (power-of-two) see queue lengths refreshed per
//! *epoch*, not per step — the staleness any real probe-based balancer
//! has at this scale. Epoch length 1 recovers per-step freshness.

use crate::error::SimError;
use crate::metrics::{SimResult, WaitReservoir};
use crate::server::Discipline;
use crate::sim::{
    SimConfig, CC_COLOCATED, CC_ROUNDS, OTHER_ROUNDS, OTHER_SPLIT, QUEUE_SERIES_WINDOWS,
    QUEUE_TOTAL, SIM_RUNS, SIM_STEPS, TASKS_ASSIGNED,
};
use crate::task::ArrivalModel;
use runtime::{par_map_mut_threads, stream_seed, SplitMix64};
use std::collections::VecDeque;

/// Default steps per epoch: long enough to amortize the two phase
/// dispatches and the mailbox churn, short enough that informed
/// strategies' queue snapshot stays fresh.
pub const DEFAULT_EPOCH_LEN: u64 = 64;

/// Mailbox entries must address a step within the epoch in 16 bits.
const MAX_EPOCH_LEN: u64 = u16::MAX as u64;

/// Configuration of one sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// The simulated system (balancers, servers, horizon, discipline).
    pub sim: SimConfig,
    /// Arrival model (the engine keeps per-balancer phase state itself).
    pub workload: ArrivalModel,
    /// Server/pair shard count. Results are byte-identical for any value;
    /// it only controls parallel grain. Clamped to at least 1 by
    /// [`ScaleConfig::validate`] callers via error, not silently.
    pub shards: usize,
    /// Steps per epoch (mailbox batch size), capped at 65535.
    pub epoch_len: u64,
    /// Worker threads; 0 means the configured count
    /// ([`runtime::thread_count`]).
    pub threads: usize,
}

impl ScaleConfig {
    /// A sharded run of `sim` under `workload` with default epoch length
    /// and auto shard/worker counts.
    pub fn new(sim: SimConfig, workload: ArrivalModel) -> Self {
        ScaleConfig {
            sim,
            workload,
            shards: default_shards(sim.n_servers),
            epoch_len: DEFAULT_EPOCH_LEN,
            threads: 0,
        }
    }

    /// Checks the configuration, including the u32 step-counter bound the
    /// packed lane entries impose.
    pub fn validate(&self) -> Result<(), SimError> {
        self.sim.validate()?;
        if !self.workload.is_valid() {
            return Err(SimError::BadArrivalModel {
                model: self.workload.label(),
            });
        }
        if self.shards == 0 {
            return Err(SimError::NoShards);
        }
        if self.epoch_len == 0 {
            return Err(SimError::EmptyEpoch);
        }
        // Arrival steps live in u32 lanes and mailbox entries.
        let horizon = self.sim.warmup + self.sim.timesteps; // validated add
        if horizon > u32::MAX as u64 || self.sim.n_servers > u32::MAX as usize {
            return Err(SimError::HorizonOverflow {
                warmup: self.sim.warmup,
                timesteps: self.sim.timesteps,
            });
        }
        Ok(())
    }
}

/// A deterministic shard count for a given system size: one shard per
/// ~64k servers, between 1 and 16. Fixed by size (never by machine) so
/// artifacts stay machine-independent even though results are
/// shard-count invariant anyway.
pub fn default_shards(n_servers: usize) -> usize {
    (n_servers / 65_536).clamp(1, 16).max(1)
}

/// Assignment kernels of the sharded engine.
///
/// These are closed-form re-implementations of the [`crate::strategy`]
/// menu entries that scale runs sweep; labels match so downstream tables
/// and checks treat both engines uniformly. Stateful strategies (round
/// robin, pipeline, degradation governor) stay on the compatibility
/// path, which accepts any `dyn AssignmentStrategy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleStrategy {
    /// Each balancer picks a uniformly random server.
    UniformRandom,
    /// Probe two random servers, pick the shorter queue (epoch-stale).
    PowerOfTwoChoices,
    /// Paired, always split.
    PairedAlwaysSplit,
    /// Paired, match types (`a = x, b = y`).
    PairedMatchTypes,
    /// Paired, flipped-CHSH quantum box with the closed-form correlated
    /// sampler: P(same server) = (1 ± v/√2)/2, + exactly when both tasks
    /// are type-C.
    PairedQuantum {
        /// Probability a fresh pair is available (misses split).
        availability: f64,
        /// Bell-pair visibility (Werner scaling of the correlation).
        visibility: f64,
    },
}

impl ScaleStrategy {
    /// The ideal quantum strategy.
    pub fn quantum_ideal() -> Self {
        ScaleStrategy::PairedQuantum {
            availability: 1.0,
            visibility: 1.0,
        }
    }

    /// Label for report tables (matches the [`crate::strategy`] names).
    pub fn name(&self) -> &'static str {
        match self {
            ScaleStrategy::UniformRandom => "uniform-random",
            ScaleStrategy::PowerOfTwoChoices => "power-of-two",
            ScaleStrategy::PairedAlwaysSplit => "paired-always-split",
            ScaleStrategy::PairedMatchTypes => "paired-match-types",
            ScaleStrategy::PairedQuantum { .. } => "paired-quantum",
        }
    }

    fn is_paired(&self) -> bool {
        matches!(
            self,
            ScaleStrategy::PairedAlwaysSplit
                | ScaleStrategy::PairedMatchTypes
                | ScaleStrategy::PairedQuantum { .. }
        )
    }

    fn needs_queue_lens(&self) -> bool {
        matches!(self, ScaleStrategy::PowerOfTwoChoices)
    }
}

/// Contiguous partition range `i` of `n` items over `shards` parts.
#[inline]
fn part(i: usize, n: usize, shards: usize) -> (usize, usize) {
    (i * n / shards, (i + 1) * n / shards)
}

/// The shard whose [`part`] range contains item `s` — the exact inverse
/// of `part`'s floored boundaries: `ceil((s+1)·shards / n) - 1`, written
/// division-safe as `floor((s·shards + shards - 1) / n)`.
#[inline]
fn part_of(s: usize, n: usize, shards: usize) -> usize {
    (s * shards + shards - 1) / n
}

/// Packed mailbox entry: `step_off << 40 | server << 8 | lane`.
#[inline]
fn pack(step_off: u64, server: u32, colocate: bool) -> u64 {
    (step_off << 40) | (u64::from(server) << 8) | u64::from(colocate)
}

/// One shard of balancer pairs: the pair sub-streams it owns, the MMPP
/// phase bits of its balancers, and one outbox per server shard.
struct PairShard {
    g0: usize,
    g1: usize,
    /// Raw SplitMix64 state per owned pair (flat, resumable).
    rng: Vec<u64>,
    /// MMPP phase per owned pair: bit 0 = left balancer hot, bit 1 =
    /// right. Both start hot, like [`crate::task::BurstyWorkload`].
    hot: Vec<u8>,
    /// Packed task handoffs, one outbox per server shard, refilled each
    /// epoch (allocation-free at steady state).
    outbox: Vec<Vec<u64>>,
    cc_rounds: u64,
    cc_colocated: u64,
    other_rounds: u64,
    other_split: u64,
}

impl PairShard {
    /// Phase A for steps `[e0, e1)`: draw arrivals and assignments for
    /// every owned pair, appending handoffs in (step, pair) order — which
    /// is why server shards can drain inboxes sequentially per step with
    /// no sort.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch(
        &mut self,
        e0: u64,
        e1: u64,
        cfg: &ScaleConfig,
        strategy: ScaleStrategy,
        n_balancers: usize,
        n_servers: u32,
        server_shards: usize,
        queue_lens: &[u32],
    ) -> u64 {
        for b in self.outbox.iter_mut() {
            b.clear();
        }
        let model = cfg.workload;
        let switch = model.switch_prob();
        let warmup = cfg.sim.warmup;
        let paired = strategy.is_paired();
        let mut assigned = 0u64;
        for t in e0..e1 {
            let off = t - e0;
            for g in self.g0..self.g1 {
                let li = g - self.g0;
                let mut rng = SplitMix64::from_raw(self.rng[li]);
                let full = 2 * g + 1 < n_balancers;

                // Arrival draws, left then right (per-balancer MMPP
                // phase chains flip before each type draw).
                let mut hot = self.hot[li];
                if switch > 0.0 && rng.next_f64() < switch {
                    hot ^= 1;
                }
                let x_c = rng.next_f64() < model.p_colocate(t, hot & 1 != 0);
                let y_c = if full {
                    if switch > 0.0 && rng.next_f64() < switch {
                        hot ^= 2;
                    }
                    rng.next_f64() < model.p_colocate(t, hot & 2 != 0)
                } else {
                    false
                };
                self.hot[li] = hot;

                // Assignment draws.
                let (sl, sr) = if full {
                    match strategy {
                        ScaleStrategy::UniformRandom => {
                            (rng.gen_range(n_servers), Some(rng.gen_range(n_servers)))
                        }
                        ScaleStrategy::PowerOfTwoChoices => {
                            let l = probe_two(&mut rng, n_servers, queue_lens);
                            let r = probe_two(&mut rng, n_servers, queue_lens);
                            (l, Some(r))
                        }
                        _ => {
                            // Pre-shared randomness: two distinct
                            // candidate servers per round.
                            let s0 = rng.gen_range(n_servers);
                            let mut s1 = rng.gen_range(n_servers - 1);
                            if s1 >= s0 {
                                s1 += 1;
                            }
                            let (a, b) = match strategy {
                                ScaleStrategy::PairedAlwaysSplit => (false, true),
                                ScaleStrategy::PairedMatchTypes => (x_c, y_c),
                                ScaleStrategy::PairedQuantum {
                                    availability,
                                    visibility,
                                } => {
                                    if rng.next_f64() < availability {
                                        // Flipped CHSH, closed form: the
                                        // pair co-locates with probability
                                        // (1 + E)/2, E = ±v/√2 (+ for CC).
                                        let e = if x_c && y_c {
                                            visibility * std::f64::consts::FRAC_1_SQRT_2
                                        } else {
                                            -visibility * std::f64::consts::FRAC_1_SQRT_2
                                        };
                                        let same = rng.next_f64() < 0.5 * (1.0 + e);
                                        let a = rng.next_u64() >> 63 != 0;
                                        (a, a == same)
                                    } else {
                                        (false, true)
                                    }
                                }
                                _ => unreachable!("non-paired handled above"),
                            };
                            (
                                if a { s1 } else { s0 },
                                Some(if b { s1 } else { s0 }),
                            )
                        }
                    }
                } else {
                    // Odd balancer out: uniform for paired strategies
                    // (the legacy fallback); native kernel otherwise.
                    let s = match strategy {
                        ScaleStrategy::PowerOfTwoChoices => {
                            probe_two(&mut rng, n_servers, queue_lens)
                        }
                        _ => rng.gen_range(n_servers),
                    };
                    (s, None)
                };
                self.rng[li] = rng.raw();

                let shard_of = |s: u32| part_of(s as usize, n_servers as usize, server_shards);
                self.outbox[shard_of(sl)].push(pack(off, sl, x_c));
                assigned += 1;
                if let Some(sr) = sr {
                    self.outbox[shard_of(sr)].push(pack(off, sr, y_c));
                    assigned += 1;
                    if paired && t >= warmup {
                        let same = sl == sr;
                        if x_c && y_c {
                            self.cc_rounds += 1;
                            self.cc_colocated += u64::from(same);
                        } else {
                            self.other_rounds += 1;
                            self.other_split += u64::from(!same);
                        }
                    }
                }
            }
        }
        assigned
    }
}

#[inline]
fn probe_two(rng: &mut SplitMix64, n_servers: u32, queue_lens: &[u32]) -> u32 {
    let s1 = rng.gen_range(n_servers);
    let s2 = rng.gen_range(n_servers);
    if queue_lens[s1 as usize] <= queue_lens[s2 as usize] {
        s1
    } else {
        s2
    }
}

/// One shard of servers in structure-of-arrays form.
struct ServerShard {
    s0: usize,
    s1: usize,
    /// FIFO lanes of arrival steps, per local server.
    c_lane: Vec<VecDeque<u32>>,
    e_lane: Vec<VecDeque<u32>>,
    /// Queue length per local server (`c + e`), the probe snapshot source.
    q_len: Vec<u32>,
    /// Service slots filled in the server's latest step (0, 1, or 2).
    in_service: Vec<u8>,
    /// Per-server completion counter — the reservoir sample sequence.
    served_seq: Vec<u32>,
    /// Dense list of local indices with non-empty queues; only these are
    /// stepped, so an idle system costs arrivals, not O(servers)/step.
    active: Vec<u32>,
    in_active: Vec<bool>,
    /// Running total queue length of the shard (post-serve).
    q_total: u64,
    /// Inbox read cursors, one per pair shard, reset each epoch.
    cursor: Vec<usize>,
    // Window statistics (merged in shard-index order at the end).
    queue_len_sum: u64,
    max_q: u32,
    served: u64,
    total_wait: u64,
    dual_serves: u64,
    waits: WaitReservoir,
    win_queue_sum: Vec<u64>,
    win_samples: Vec<u64>,
}

impl ServerShard {
    fn new(s0: usize, s1: usize, pair_shards: usize, windows: usize, resv_seed: u64) -> Self {
        let n = s1 - s0;
        ServerShard {
            s0,
            s1,
            c_lane: (0..n).map(|_| VecDeque::new()).collect(),
            e_lane: (0..n).map(|_| VecDeque::new()).collect(),
            q_len: vec![0; n],
            in_service: vec![0; n],
            served_seq: vec![0; n],
            active: Vec::new(),
            in_active: vec![false; n],
            q_total: 0,
            cursor: vec![0; pair_shards],
            queue_len_sum: 0,
            max_q: 0,
            served: 0,
            total_wait: 0,
            dual_serves: 0,
            waits: WaitReservoir::new(resv_seed),
            win_queue_sum: vec![0; windows],
            win_samples: vec![0; windows],
        }
    }

    /// Phase B for steps `[e0, e1)`: per step, drain every pair shard's
    /// handoffs for this step (in pair-shard order — global balancer
    /// order, matching the one-shard run exactly), then serve the active
    /// servers and accumulate window statistics.
    fn run_epoch(&mut self, e0: u64, e1: u64, me: usize, inboxes: &[&Vec<u64>], cfg: &ScaleConfig) {
        debug_assert_eq!(inboxes.len(), self.cursor.len());
        let _ = me;
        for c in self.cursor.iter_mut() {
            *c = 0;
        }
        let discipline = cfg.sim.discipline;
        let warmup = cfg.sim.warmup;
        let timesteps = cfg.sim.timesteps;
        let windows = self.win_queue_sum.len();
        for t in e0..e1 {
            let off = t - e0;
            // Deliver this step's arrivals.
            for (a, inbox) in inboxes.iter().enumerate() {
                let cur = &mut self.cursor[a];
                while *cur < inbox.len() {
                    let entry = inbox[*cur];
                    if entry >> 40 != off {
                        break;
                    }
                    *cur += 1;
                    let server = (entry >> 8) as u32;
                    let li = server as usize - self.s0;
                    if entry & 1 != 0 {
                        self.c_lane[li].push_back(t as u32);
                    } else {
                        self.e_lane[li].push_back(t as u32);
                    }
                    self.q_len[li] += 1;
                    self.q_total += 1;
                    if !self.in_active[li] {
                        self.in_active[li] = true;
                        self.active.push(li as u32);
                    }
                }
            }
            // Serve. Every non-empty server is active; empty servers have
            // nothing to do, so skipping them is exact.
            let measured = t >= warmup;
            let mut i = 0;
            while i < self.active.len() {
                let li = self.active[i] as usize;
                let mut slots = 0u8;
                let mut wait_sum = 0u64;
                let mut w0 = 0u64;
                let mut w1 = 0u64;
                match discipline {
                    Discipline::PaperPairedC => {
                        if let Some(at) = self.c_lane[li].pop_front() {
                            w0 = t - u64::from(at);
                            slots = 1;
                            if let Some(at2) = self.c_lane[li].pop_front() {
                                w1 = t - u64::from(at2);
                                slots = 2;
                            }
                        } else if let Some(at) = self.e_lane[li].pop_front() {
                            w0 = t - u64::from(at);
                            slots = 1;
                        }
                    }
                    Discipline::CPrioritySingle => {
                        if let Some(at) = self.c_lane[li].pop_front() {
                            w0 = t - u64::from(at);
                            slots = 1;
                        } else if let Some(at) = self.e_lane[li].pop_front() {
                            w0 = t - u64::from(at);
                            slots = 1;
                        }
                    }
                    Discipline::ExclusiveFirst => {
                        if let Some(at) = self.e_lane[li].pop_front() {
                            w0 = t - u64::from(at);
                            slots = 1;
                        } else if let Some(at) = self.c_lane[li].pop_front() {
                            w0 = t - u64::from(at);
                            slots = 1;
                            if let Some(at2) = self.c_lane[li].pop_front() {
                                w1 = t - u64::from(at2);
                                slots = 2;
                            }
                        }
                    }
                    Discipline::FifoPairedC | Discipline::SingleSlot => {
                        unreachable!("rejected by run_scaled validation")
                    }
                }
                self.in_service[li] = slots;
                if slots > 0 {
                    wait_sum += w0;
                    if slots == 2 {
                        wait_sum += w1;
                        self.dual_serves += 1;
                    }
                    self.q_len[li] -= u32::from(slots);
                    self.q_total -= u64::from(slots);
                    if measured {
                        self.served += u64::from(slots);
                        self.total_wait += wait_sum;
                        let sid = (self.s0 + li) as u64;
                        let seq = &mut self.served_seq[li];
                        self.waits.offer(sid, u64::from(*seq), w0);
                        *seq += 1;
                        if slots == 2 {
                            self.waits.offer(sid, u64::from(*seq), w1);
                            *seq += 1;
                        }
                    }
                }
                if measured {
                    self.max_q = self.max_q.max(self.q_len[li]);
                }
                if self.q_len[li] == 0 {
                    self.in_active[li] = false;
                    self.active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if measured {
                self.queue_len_sum += self.q_total;
                let w = ((t - warmup) as usize * windows) / timesteps as usize;
                self.win_queue_sum[w] += self.q_total;
                self.win_samples[w] += (self.s1 - self.s0) as u64;
            }
        }
    }
}

/// Runs one sharded simulation with deterministic per-pair sub-streams
/// derived from `master_seed`.
///
/// The result is byte-identical for any `cfg.shards` and `cfg.threads`;
/// informed strategies additionally depend on `cfg.epoch_len` (snapshot
/// staleness), all others do not.
pub fn run_scaled(
    cfg: &ScaleConfig,
    strategy: ScaleStrategy,
    master_seed: u64,
) -> Result<SimResult, SimError> {
    cfg.validate()?;
    match cfg.sim.discipline {
        Discipline::FifoPairedC | Discipline::SingleSlot => {
            return Err(SimError::UnsupportedDiscipline {
                discipline: cfg.sim.discipline.label(),
            });
        }
        _ => {}
    }
    if strategy.is_paired() && cfg.sim.n_servers < 2 {
        return Err(SimError::TooFewServers {
            n_servers: cfg.sim.n_servers,
            min: 2,
        });
    }
    if let ScaleStrategy::PairedQuantum {
        availability,
        visibility,
    } = strategy
    {
        assert!((0.0..=1.0).contains(&availability), "bad availability");
        assert!((0.0..=1.0).contains(&visibility), "bad visibility");
    }

    let n_balancers = cfg.sim.n_balancers;
    let n_servers = cfg.sim.n_servers;
    let n_groups = n_balancers.div_ceil(2);
    let shards = cfg.shards;
    let threads = if cfg.threads == 0 {
        runtime::thread_count()
    } else {
        cfg.threads
    };
    let epoch_len = cfg.epoch_len.min(MAX_EPOCH_LEN);
    let total_steps = cfg.sim.warmup + cfg.sim.timesteps;
    let windows = QUEUE_SERIES_WINDOWS.min(cfg.sim.timesteps as usize);
    // Reserved stream index past the pair range: the reservoir seed is
    // drawn from the run's master stream without touching any pair's.
    let resv_seed = stream_seed(master_seed, n_groups as u64);

    let mut pair_shards: Vec<PairShard> = (0..shards)
        .map(|a| {
            let (g0, g1) = part(a, n_groups, shards);
            PairShard {
                g0,
                g1,
                rng: (g0..g1)
                    .map(|g| stream_seed(master_seed, g as u64))
                    .collect(),
                hot: vec![0b11; g1 - g0],
                outbox: (0..shards).map(|_| Vec::new()).collect(),
                cc_rounds: 0,
                cc_colocated: 0,
                other_rounds: 0,
                other_split: 0,
            }
        })
        .collect();
    let mut server_shards: Vec<ServerShard> = (0..shards)
        .map(|b| {
            let (s0, s1) = part(b, n_servers, shards);
            ServerShard::new(s0, s1, shards, windows, resv_seed)
        })
        .collect();

    let needs_lens = strategy.needs_queue_lens();
    let mut queue_lens: Vec<u32> = vec![0; if needs_lens { n_servers } else { 0 }];

    let mut e0 = 0u64;
    while e0 < total_steps {
        let e1 = (e0 + epoch_len).min(total_steps);
        if needs_lens {
            // Epoch-start snapshot, assembled in shard order.
            for ss in &server_shards {
                queue_lens[ss.s0..ss.s1].copy_from_slice(&ss.q_len);
            }
        }
        let queue_lens_ref: &[u32] = &queue_lens;
        let cfg_ref = cfg;
        par_map_mut_threads(threads, &mut pair_shards, |_, ps| {
            ps.run_epoch(
                e0,
                e1,
                cfg_ref,
                strategy,
                n_balancers,
                n_servers as u32,
                shards,
                queue_lens_ref,
            )
        });
        let pair_ref: &[PairShard] = &pair_shards;
        par_map_mut_threads(threads, &mut server_shards, |b, ss| {
            let inboxes: Vec<&Vec<u64>> = pair_ref.iter().map(|ps| &ps.outbox[b]).collect();
            ss.run_epoch(e0, e1, b, &inboxes, cfg_ref);
        });
        e0 = e1;
    }

    // Merge shard-local statistics in shard-index order.
    let mut queue_len_sum = 0u64;
    let mut max_queue = 0u32;
    let mut served = 0u64;
    let mut total_wait = 0u64;
    let mut win_queue_sum = vec![0u64; windows];
    let mut win_samples = vec![0u64; windows];
    let mut waits = WaitReservoir::new(resv_seed);
    for ss in &server_shards {
        queue_len_sum += ss.queue_len_sum;
        max_queue = max_queue.max(ss.max_q);
        served += ss.served;
        total_wait += ss.total_wait;
        for (acc, &v) in win_queue_sum.iter_mut().zip(&ss.win_queue_sum) {
            *acc += v;
        }
        for (acc, &v) in win_samples.iter_mut().zip(&ss.win_samples) {
            *acc += v;
        }
        waits.merge(&ss.waits);
    }
    let mut cc_rounds = 0u64;
    let mut cc_colocated = 0u64;
    let mut other_rounds = 0u64;
    let mut other_split = 0u64;
    for ps in &pair_shards {
        cc_rounds += ps.cc_rounds;
        cc_colocated += ps.cc_colocated;
        other_rounds += ps.other_rounds;
        other_split += ps.other_split;
    }

    let generated = n_balancers as u64 * cfg.sim.timesteps;
    let samples = cfg.sim.timesteps * n_servers as u64;
    let wait_samples = waits.sorted_waits();

    // Obs flushes: once per run, never on the step path.
    SIM_RUNS.inc();
    SIM_STEPS.add(total_steps);
    TASKS_ASSIGNED.add(n_balancers as u64 * total_steps);
    for &w in &win_queue_sum {
        QUEUE_TOTAL.record(w);
    }
    CC_ROUNDS.add(cc_rounds);
    CC_COLOCATED.add(cc_colocated);
    OTHER_ROUNDS.add(other_rounds);
    OTHER_SPLIT.add(other_split);

    let queue_len_series: Vec<f64> = win_queue_sum
        .iter()
        .zip(&win_samples)
        .filter(|(_, &n)| n > 0)
        .map(|(&s, &n)| s as f64 / n as f64)
        .collect();

    Ok(SimResult {
        strategy: strategy.name(),
        load: cfg.sim.load(),
        avg_queue_len: queue_len_sum as f64 / samples as f64,
        avg_wait: if served > 0 {
            total_wait as f64 / served as f64
        } else {
            f64::NAN
        },
        p50_wait: crate::metrics::percentile(&wait_samples, 0.5),
        p99_wait: crate::metrics::percentile(&wait_samples, 0.99),
        max_queue_len: max_queue as usize,
        served,
        generated,
        cc_colocation_rate: if cc_rounds > 0 {
            cc_colocated as f64 / cc_rounds as f64
        } else {
            f64::NAN
        },
        split_rate: if other_rounds > 0 {
            other_split as f64 / other_rounds as f64
        } else {
            f64::NAN
        },
        cc_rounds,
        cc_colocated,
        other_rounds,
        other_split,
        queue_len_series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ArrivalModel;

    fn quick(load: f64, n_balancers: usize) -> ScaleConfig {
        let n_servers = (n_balancers as f64 / load).round() as usize;
        ScaleConfig {
            sim: SimConfig {
                n_balancers,
                n_servers,
                timesteps: 400,
                warmup: 100,
                discipline: Discipline::PaperPairedC,
            },
            workload: ArrivalModel::paper(),
            shards: 4,
            epoch_len: 32,
            threads: 1,
        }
    }

    /// NaN-tolerant result fingerprint (`cc` rates are NaN for unpaired
    /// strategies, and NaN != NaN under `PartialEq`).
    fn key(r: &SimResult) -> String {
        format!("{r:?}")
    }

    #[test]
    fn results_are_shard_and_thread_count_invariant() {
        for strategy in [
            ScaleStrategy::quantum_ideal(),
            ScaleStrategy::UniformRandom,
            ScaleStrategy::PowerOfTwoChoices,
            ScaleStrategy::PairedMatchTypes,
        ] {
            let mut cfg = quick(1.2, 61); // odd: exercises the half pair
            let reference = {
                cfg.shards = 1;
                cfg.threads = 1;
                key(&run_scaled(&cfg, strategy, 0xc0ffee).unwrap())
            };
            for (shards, threads) in [(1, 2), (4, 1), (4, 3), (16, 4), (7, 2)] {
                cfg.shards = shards;
                cfg.threads = threads;
                let r = key(&run_scaled(&cfg, strategy, 0xc0ffee).unwrap());
                assert_eq!(
                    r,
                    reference,
                    "{}: shards={shards} threads={threads} diverged",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn epoch_length_does_not_change_uninformed_results() {
        // Only informed strategies may see epoch boundaries (snapshot
        // staleness); everything else must be epoch-length invariant.
        let mut cfg = quick(1.2, 60);
        let reference = key(&run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 9).unwrap());
        for epoch_len in [1, 7, 100, 10_000] {
            cfg.epoch_len = epoch_len;
            let r = key(&run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 9).unwrap());
            assert_eq!(r, reference, "epoch_len={epoch_len} diverged");
        }
    }

    #[test]
    fn quantum_beats_classical_at_the_knee() {
        let cfg = quick(1.2, 200);
        let classical = run_scaled(&cfg, ScaleStrategy::UniformRandom, 7).unwrap();
        let quantum = run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 7).unwrap();
        assert!(
            quantum.avg_queue_len < classical.avg_queue_len,
            "quantum {} vs classical {}",
            quantum.avg_queue_len,
            classical.avg_queue_len
        );
    }

    #[test]
    fn pair_stats_match_chsh_rates() {
        let mut cfg = quick(1.0, 400);
        cfg.sim.timesteps = 600;
        let r = run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 11).unwrap();
        let expect = games::chsh_quantum_value();
        assert!(
            (r.cc_colocation_rate - expect).abs() < 0.02,
            "CC co-location {} vs {expect}",
            r.cc_colocation_rate
        );
        assert!(
            (r.split_rate - expect).abs() < 0.02,
            "split rate {} vs {expect}",
            r.split_rate
        );
    }

    #[test]
    fn agrees_with_the_compat_engine_statistically() {
        // Different generators, same model: the sharded engine and the
        // step-at-a-time loop must agree on the physics (mean queue
        // lengths within Monte-Carlo noise at a stable load).
        use crate::task::BernoulliWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = quick(1.0, 120);
        let scaled = run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let legacy = crate::sim::run_simulation(
            cfg.sim,
            crate::strategy::Strategy::quantum_ideal(),
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        let rel = (scaled.avg_queue_len - legacy.avg_queue_len).abs()
            / legacy.avg_queue_len.max(0.05);
        assert!(
            rel < 0.35,
            "scaled {} vs legacy {} (rel {rel})",
            scaled.avg_queue_len,
            legacy.avg_queue_len
        );
        // Serve accounting conserves: in a stable system nearly all
        // generated tasks are served within the window.
        assert!(scaled.served > 0 && scaled.generated > 0);
    }

    #[test]
    fn disciplines_match_compat_semantics_statistically() {
        use crate::task::BernoulliWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for discipline in [
            Discipline::PaperPairedC,
            Discipline::CPrioritySingle,
            Discipline::ExclusiveFirst,
        ] {
            let mut cfg = quick(0.9, 120);
            cfg.sim.discipline = discipline;
            let scaled = run_scaled(&cfg, ScaleStrategy::UniformRandom, 3).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            let legacy = crate::sim::run_simulation(
                cfg.sim,
                crate::strategy::Strategy::UniformRandom,
                &mut BernoulliWorkload::paper(),
                &mut rng,
            );
            let diff = (scaled.avg_wait - legacy.avg_wait).abs();
            assert!(
                diff < legacy.avg_wait.max(1.0) * 0.4,
                "{}: scaled wait {} vs legacy {}",
                discipline.label(),
                scaled.avg_wait,
                legacy.avg_wait
            );
        }
    }

    #[test]
    fn mmpp_and_diurnal_models_run_and_stay_sane() {
        for workload in [
            ArrivalModel::Mmpp {
                p_c_hot: 0.9,
                p_c_cold: 0.1,
                switch_prob: 0.02,
            },
            ArrivalModel::Diurnal {
                mean: 0.5,
                amplitude: 0.3,
                period: 100,
            },
        ] {
            let mut cfg = quick(0.8, 80);
            cfg.workload = workload;
            let r = run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 13).unwrap();
            assert!(r.avg_queue_len.is_finite() && r.avg_queue_len >= 0.0);
            assert!(r.served > 0, "{}: no tasks served", workload.label());
            // Still byte-stable across shard counts with phase state.
            let mut cfg16 = cfg;
            cfg16.shards = 16;
            cfg16.threads = 3;
            let r16 = run_scaled(&cfg16, ScaleStrategy::quantum_ideal(), 13).unwrap();
            assert_eq!(key(&r), key(&r16), "{}", workload.label());
        }
    }

    #[test]
    fn unsupported_configs_are_typed_errors() {
        let mut cfg = quick(1.0, 40);
        cfg.sim.discipline = Discipline::SingleSlot;
        assert_eq!(
            run_scaled(&cfg, ScaleStrategy::UniformRandom, 1).unwrap_err(),
            SimError::UnsupportedDiscipline {
                discipline: "single-slot"
            }
        );
        let mut cfg = quick(1.0, 40);
        cfg.shards = 0;
        assert_eq!(
            run_scaled(&cfg, ScaleStrategy::UniformRandom, 1).unwrap_err(),
            SimError::NoShards
        );
        let mut cfg = quick(1.0, 40);
        cfg.epoch_len = 0;
        assert_eq!(
            run_scaled(&cfg, ScaleStrategy::UniformRandom, 1).unwrap_err(),
            SimError::EmptyEpoch
        );
        let mut cfg = quick(1.0, 40);
        cfg.workload = ArrivalModel::Bernoulli { p_c: 2.0 };
        assert_eq!(
            run_scaled(&cfg, ScaleStrategy::UniformRandom, 1).unwrap_err(),
            SimError::BadArrivalModel { model: "bernoulli" }
        );
        let mut cfg = quick(1.0, 40);
        cfg.sim.n_servers = 1;
        assert_eq!(
            run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 1).unwrap_err(),
            SimError::TooFewServers {
                n_servers: 1,
                min: 2
            }
        );
    }

    #[test]
    fn part_of_is_the_exact_inverse_of_part() {
        for &(n, shards) in &[(1usize, 1usize), (5, 4), (41, 4), (165, 4), (165, 16), (100, 7)] {
            for s in 0..n {
                let b = part_of(s, n, shards);
                let (lo, hi) = part(b, n, shards);
                assert!(
                    (lo..hi).contains(&s),
                    "n={n} shards={shards}: item {s} routed to shard {b} = [{lo},{hi})"
                );
            }
        }
    }

    #[test]
    fn default_shards_scale_with_system_size() {
        assert_eq!(default_shards(100), 1);
        assert_eq!(default_shards(100_000), 1);
        assert_eq!(default_shards(1_000_000), 15);
        assert_eq!(default_shards(10_000_000), 16);
    }
}
