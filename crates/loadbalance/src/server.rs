//! Servers and their queue disciplines.
//!
//! The paper's discipline (§4.1): "Servers can simultaneously process two
//! type-C requests first, followed by type-E requests, which are executed
//! one at a time." Footnote 2 claims the observed advantage "is robust to
//! other server execution strategies"; the alternates here back that
//! ablation (experiment E2c).

use crate::metrics::{WaitReservoir, WAIT_RESERVOIR_SEED};
use crate::task::{Task, TaskType};
use std::collections::VecDeque;

/// How a server picks work each timestep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// The paper's rule: if any type-C is queued, serve up to two type-C
    /// (same subtype) this step; otherwise serve one type-E.
    PaperPairedC,
    /// Strict FIFO, but if the head task is type-C, a second queued
    /// type-C of the same subtype rides along (no reordering past type-E).
    FifoPairedC,
    /// Type-E first (E tasks are latency-critical): serve one type-E if
    /// queued, else up to two same-subtype type-C.
    ExclusiveFirst,
    /// C-priority like the paper's rule, but serve only ONE type-C per
    /// step (no pairing). Isolates the two mechanisms behind the quantum
    /// advantage: if quantum still helps here, the benefit comes from
    /// relieving type-E starvation on other servers, not from C-pairing.
    CPrioritySingle,
    /// One task per step regardless of type — no co-location benefit at
    /// all (the control: quantum pairing should NOT help here).
    SingleSlot,
}

impl Discipline {
    /// Label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Discipline::PaperPairedC => "paper-paired-c",
            Discipline::FifoPairedC => "fifo-paired-c",
            Discipline::ExclusiveFirst => "exclusive-first",
            Discipline::CPrioritySingle => "c-priority-single",
            Discipline::SingleSlot => "single-slot",
        }
    }
}

/// A backend server with a task queue.
#[derive(Debug, Clone)]
pub struct Server {
    queue: VecDeque<Task>,
    discipline: Discipline,
    /// Identity used to key reservoir sample priorities; distinct per
    /// server within a run so sample identities never collide.
    id: u64,
    /// Total tasks served.
    pub served: u64,
    /// Sum of queueing delays (in timesteps) of served tasks.
    pub total_wait: u64,
    /// Bounded reservoir of per-task queueing delays (for percentile
    /// statistics). Replaces the historical unbounded `wait_samples`
    /// vector, whose O(timesteps × servers) growth ruled out
    /// million-server runs. Callers may [`WaitReservoir::clear`] it at a
    /// measurement-window boundary; the exact `total_wait`/`served`
    /// counters are unaffected.
    pub waits: WaitReservoir,
}

impl Server {
    /// An empty server with the given discipline (id 0 — fine for unit
    /// use; simulations give each server a distinct id via [`Server::with_id`]).
    pub fn new(discipline: Discipline) -> Self {
        Server::with_id(discipline, 0)
    }

    /// An empty server with the given discipline and reservoir identity.
    pub fn with_id(discipline: Discipline, id: u64) -> Self {
        Server {
            queue: VecDeque::new(),
            discipline,
            id,
            served: 0,
            total_wait: 0,
            waits: WaitReservoir::new(WAIT_RESERVOIR_SEED),
        }
    }

    /// Current queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues an arriving task.
    pub fn enqueue(&mut self, task: Task) {
        self.queue.push_back(task);
    }

    /// Runs one service timestep at time `now`, removing the tasks served
    /// per the discipline. Returns how many tasks were served.
    pub fn step(&mut self, now: u64) -> usize {
        let indices = self.select_indices();
        // Remove back-to-front so indices stay valid.
        let mut served = 0;
        for &i in indices.iter().rev() {
            let task = self.queue.remove(i).expect("selected index in range");
            let wait = now.saturating_sub(task.enqueued_at);
            self.total_wait += wait;
            // `served` doubles as the per-server completion sequence: it
            // never resets, so sample identities stay unique even across
            // a measurement-window `waits.clear()`.
            self.waits.offer(self.id, self.served, wait);
            self.served += 1;
            served += 1;
        }
        served
    }

    /// Picks the queue indices to serve this step (ascending order).
    fn select_indices(&self) -> Vec<usize> {
        match self.discipline {
            Discipline::PaperPairedC => {
                if let Some(first_c) = self.first_colocate(0) {
                    self.pair_of_colocate(first_c)
                } else if self.queue.is_empty() {
                    vec![]
                } else {
                    // No type-C queued: serve the oldest (type-E) task.
                    vec![0]
                }
            }
            Discipline::FifoPairedC => match self.queue.front() {
                None => vec![],
                Some(t) if t.ty.is_colocate() => self.pair_of_colocate(0),
                Some(_) => vec![0],
            },
            Discipline::ExclusiveFirst => {
                if let Some(first_e) = self
                    .queue
                    .iter()
                    .position(|t| !t.ty.is_colocate())
                {
                    vec![first_e]
                } else if let Some(first_c) = self.first_colocate(0) {
                    self.pair_of_colocate(first_c)
                } else {
                    vec![]
                }
            }
            Discipline::CPrioritySingle => {
                if let Some(first_c) = self.first_colocate(0) {
                    vec![first_c]
                } else if self.queue.is_empty() {
                    vec![]
                } else {
                    vec![0]
                }
            }
            Discipline::SingleSlot => {
                if self.queue.is_empty() {
                    vec![]
                } else {
                    vec![0]
                }
            }
        }
    }

    /// Index of the first type-C task at or after `from`.
    fn first_colocate(&self, from: usize) -> Option<usize> {
        self.queue
            .iter()
            .skip(from)
            .position(|t| t.ty.is_colocate())
            .map(|p| p + from)
    }

    /// The first type-C at `first`, plus the next type-C of the *same
    /// subtype*, if any.
    fn pair_of_colocate(&self, first: usize) -> Vec<usize> {
        let subtype = match self.queue[first].ty {
            TaskType::Colocate(s) => s,
            TaskType::Exclusive => unreachable!("caller guarantees type-C"),
        };
        let partner = self
            .queue
            .iter()
            .enumerate()
            .skip(first + 1)
            .find(|(_, t)| t.ty == TaskType::Colocate(subtype))
            .map(|(i, _)| i);
        match partner {
            Some(p) => vec![first, p],
            None => vec![first],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(sub: u8, at: u64) -> Task {
        Task {
            ty: TaskType::Colocate(sub),
            enqueued_at: at,
        }
    }
    fn e(at: u64) -> Task {
        Task {
            ty: TaskType::Exclusive,
            enqueued_at: at,
        }
    }

    #[test]
    fn paper_discipline_pairs_two_c() {
        let mut s = Server::new(Discipline::PaperPairedC);
        s.enqueue(c(0, 0));
        s.enqueue(c(0, 0));
        s.enqueue(e(0));
        assert_eq!(s.step(1), 2, "both Cs served together");
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.step(2), 1, "then the E");
        assert_eq!(s.served, 3);
    }

    #[test]
    fn paper_discipline_c_priority_over_e() {
        let mut s = Server::new(Discipline::PaperPairedC);
        s.enqueue(e(0));
        s.enqueue(c(0, 0));
        assert_eq!(s.step(1), 1, "the C is served first despite FIFO order");
        assert_eq!(s.queue_len(), 1);
        assert!(!s.queue.front().unwrap().ty.is_colocate());
    }

    #[test]
    fn paper_discipline_lone_c_costs_full_step() {
        let mut s = Server::new(Discipline::PaperPairedC);
        s.enqueue(c(0, 0));
        assert_eq!(s.step(1), 1, "a lone C still consumes the step");
    }

    #[test]
    fn subtypes_do_not_mix() {
        let mut s = Server::new(Discipline::PaperPairedC);
        s.enqueue(c(0, 0));
        s.enqueue(c(1, 0));
        s.enqueue(c(0, 0));
        // First step pairs the two subtype-0 Cs, skipping the subtype-1.
        assert_eq!(s.step(1), 2);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.queue.front().unwrap().ty, TaskType::Colocate(1));
    }

    #[test]
    fn fifo_does_not_jump_past_e() {
        let mut s = Server::new(Discipline::FifoPairedC);
        s.enqueue(e(0));
        s.enqueue(c(0, 0));
        s.enqueue(c(0, 0));
        assert_eq!(s.step(1), 1, "head E served first under FIFO");
        assert_eq!(s.step(2), 2, "then the C pair");
    }

    #[test]
    fn exclusive_first_prioritizes_e() {
        let mut s = Server::new(Discipline::ExclusiveFirst);
        s.enqueue(c(0, 0));
        s.enqueue(e(0));
        assert_eq!(s.step(1), 1);
        assert!(s.queue.front().unwrap().ty.is_colocate());
    }

    #[test]
    fn single_slot_serves_one() {
        let mut s = Server::new(Discipline::SingleSlot);
        s.enqueue(c(0, 0));
        s.enqueue(c(0, 0));
        assert_eq!(s.step(1), 1, "no pairing under single-slot");
    }

    #[test]
    fn wait_accounting() {
        let mut s = Server::new(Discipline::PaperPairedC);
        s.enqueue(e(0));
        s.enqueue(e(0));
        s.step(3); // first E waited 3
        s.step(5); // second E waited 5
        assert_eq!(s.total_wait, 8);
        assert_eq!(s.served, 2);
    }

    #[test]
    fn empty_server_serves_nothing() {
        for d in [
            Discipline::PaperPairedC,
            Discipline::FifoPairedC,
            Discipline::ExclusiveFirst,
            Discipline::CPrioritySingle,
            Discipline::SingleSlot,
        ] {
            let mut s = Server::new(d);
            assert_eq!(s.step(1), 0, "{}", d.label());
        }
    }
}

#[cfg(test)]
mod c_priority_single_tests {
    use super::*;

    #[test]
    fn serves_one_c_at_a_time_with_priority() {
        let mut s = Server::new(Discipline::CPrioritySingle);
        s.enqueue(Task { ty: TaskType::Exclusive, enqueued_at: 0 });
        s.enqueue(Task { ty: TaskType::Colocate(0), enqueued_at: 0 });
        s.enqueue(Task { ty: TaskType::Colocate(0), enqueued_at: 0 });
        assert_eq!(s.step(1), 1, "one C served, with priority over the E");
        assert_eq!(s.step(2), 1, "second C");
        assert_eq!(s.step(3), 1, "then the E");
        assert_eq!(s.served, 3);
    }
}
