//! The frozen array-of-structs Figure 4 loop.
//!
//! This is the pre-shard simulation loop, kept verbatim as (a) the
//! determinism oracle — [`crate::sim::run_simulation`] must stay
//! bit-identical to it for any `(config, strategy, workload, seed)` — and
//! (b) the baseline arm of the `benches/scale.rs` AoS-vs-SoA ablation.
//! It advances a `Vec<Server>` one timestep at a time, allocating a fresh
//! serve-index vector per server per step, exactly as the seed
//! implementation did.
//!
//! It records no obs metrics: it exists for tests and benches, where
//! counting its work alongside the production path's would double-book
//! every artifact counter.

use crate::error::SimError;
use crate::metrics::{SimResult, WaitReservoir, WAIT_RESERVOIR_SEED};
use crate::server::Server;
use crate::sim::{SimConfig, QUEUE_SERIES_WINDOWS};
use crate::strategy::Strategy;
use crate::task::{Task, TaskType, Workload};
use rand::Rng;

/// Runs one simulation on the frozen AoS loop. Same contract as
/// [`crate::sim::try_run_simulation`]; the result must be equal, field
/// for field — `tests/parity.rs` holds that line.
pub fn run_simulation_aos<W, R>(
    config: SimConfig,
    strategy: Strategy,
    workload: &mut W,
    rng: &mut R,
) -> Result<SimResult, SimError>
where
    W: Workload + ?Sized,
    R: Rng,
{
    config.validate()?;
    let mut strat = strategy.build(config.n_servers);
    let mut servers: Vec<Server> = (0..config.n_servers)
        .map(|i| Server::with_id(config.discipline, i as u64))
        .collect();
    let paired = strat.name().starts_with("paired");

    let total_steps = config.warmup + config.timesteps;
    let mut queue_len_sum = 0u64;
    let mut max_queue = 0usize;
    let mut generated = 0u64;
    let mut served_before_window = 0u64;
    let mut wait_before_window = 0u64;

    let mut cc_rounds = 0u64;
    let mut cc_colocated = 0u64;
    let mut other_rounds = 0u64;
    let mut other_split = 0u64;

    let mut tasks: Vec<TaskType> = Vec::with_capacity(config.n_balancers);
    let mut queue_lens: Vec<usize> = vec![0; config.n_servers];

    let windows = QUEUE_SERIES_WINDOWS.min(config.timesteps as usize);
    let mut win_queue_sum = vec![0u64; windows];
    let mut win_samples = vec![0u64; windows];

    for t in 0..total_steps {
        if t == config.warmup {
            served_before_window = servers.iter().map(|s| s.served).sum();
            wait_before_window = servers.iter().map(|s| s.total_wait).sum();
            for s in servers.iter_mut() {
                s.waits.clear();
            }
        }
        workload.on_step(t);
        tasks.clear();
        for _ in 0..config.n_balancers {
            tasks.push(workload.next_task(rng));
        }
        for (len, s) in queue_lens.iter_mut().zip(&servers) {
            *len = s.queue_len();
        }
        let assignment = strat.assign_all(&tasks, &queue_lens, rng);

        for (i, &srv) in assignment.iter().enumerate() {
            servers[srv].enqueue(Task {
                ty: tasks[i],
                enqueued_at: t,
            });
        }
        for s in servers.iter_mut() {
            s.step(t);
        }

        if t >= config.warmup {
            generated += config.n_balancers as u64;
            let mut step_total = 0u64;
            for s in &servers {
                let q = s.queue_len();
                queue_len_sum += q as u64;
                step_total += q as u64;
                max_queue = max_queue.max(q);
            }
            let w = ((t - config.warmup) as usize * windows) / config.timesteps as usize;
            win_queue_sum[w] += step_total;
            win_samples[w] += config.n_servers as u64;
            if paired {
                let mut i = 0;
                while i + 1 < tasks.len() {
                    let both_c = tasks[i].is_colocate() && tasks[i + 1].is_colocate();
                    let same = assignment[i] == assignment[i + 1];
                    if both_c {
                        cc_rounds += 1;
                        cc_colocated += u64::from(same);
                    } else {
                        other_rounds += 1;
                        other_split += u64::from(!same);
                    }
                    i += 2;
                }
            }
        }
    }

    let mut waits = WaitReservoir::new(WAIT_RESERVOIR_SEED);
    for s in &servers {
        waits.merge(&s.waits);
    }
    let wait_samples = waits.sorted_waits();
    let served: u64 = servers.iter().map(|s| s.served).sum::<u64>() - served_before_window;
    let total_wait: u64 = servers.iter().map(|s| s.total_wait).sum::<u64>() - wait_before_window;
    let samples = config.timesteps * config.n_servers as u64;

    let queue_len_series: Vec<f64> = win_queue_sum
        .iter()
        .zip(&win_samples)
        .filter(|(_, &n)| n > 0)
        .map(|(&s, &n)| s as f64 / n as f64)
        .collect();

    Ok(SimResult {
        strategy: strat.name(),
        load: config.load(),
        avg_queue_len: queue_len_sum as f64 / samples as f64,
        avg_wait: if served > 0 {
            total_wait as f64 / served as f64
        } else {
            f64::NAN
        },
        p50_wait: crate::metrics::percentile(&wait_samples, 0.5),
        p99_wait: crate::metrics::percentile(&wait_samples, 0.99),
        max_queue_len: max_queue,
        served,
        generated,
        cc_colocation_rate: if cc_rounds > 0 {
            cc_colocated as f64 / cc_rounds as f64
        } else {
            f64::NAN
        },
        split_rate: if other_rounds > 0 {
            other_split as f64 / other_rounds as f64
        } else {
            f64::NAN
        },
        cc_rounds,
        cc_colocated,
        other_rounds,
        other_split,
        queue_len_series,
    })
}
