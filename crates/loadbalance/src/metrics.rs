//! Simulation metrics.

use runtime::mix64;
use std::collections::BinaryHeap;

/// Default capacity of [`WaitReservoir`]: enough for exact percentiles on
/// every unit-test-sized run, and a 256 KiB ceiling per simulation at
/// scale (vs. the old unbounded `wait_samples`, which was
/// O(timesteps × servers) and made 1e6-server runs impossible).
pub const WAIT_RESERVOIR_CAP: usize = 8192;

/// Seed used by the compatibility simulation path. It must be a constant
/// there — drawing it from the caller's generator would shift every
/// subsequent draw and break bit-compatibility with the historical
/// `run_simulation` trajectory. The sharded engine derives its reservoir
/// seed from the run's master stream instead.
pub const WAIT_RESERVOIR_SEED: u64 = 0x5eed_4a17_5a3b_1e55;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ResEntry {
    /// Hash priority; smallest `cap` entries are kept. Derived comparison
    /// order (pri, then server, then seq) is total, so survivorship never
    /// depends on insertion order.
    pri: u64,
    server: u64,
    seq: u64,
    wait: u64,
}

/// Deterministic fixed-size wait-sample reservoir.
///
/// Each sample is identified by `(server, seq)` — the serving server and
/// that server's completion counter — and given the hash priority
/// `mix64(seed ^ mix64(server · φ64 + seq))`. The reservoir keeps the
/// `cap` samples with the *smallest* priorities (a max-heap of survivors).
/// Because priority is a pure function of identity and seed, the surviving
/// set is independent of both insertion order and of how samples were
/// partitioned first: merging per-shard reservoirs and re-taking the
/// bottom-`cap` yields exactly the global reservoir, since the global
/// bottom-`cap` of the union is always contained in the union of the
/// per-shard bottom-`cap`s. That is what keeps p50/p99 byte-identical at
/// any worker or shard count.
///
/// When fewer than `cap` samples were offered the reservoir holds all of
/// them and percentiles are exact; a unit test pins this against the
/// exact computation.
#[derive(Debug, Clone)]
pub struct WaitReservoir {
    seed: u64,
    cap: usize,
    /// Max-heap of survivors: the root is the first entry to evict.
    heap: BinaryHeap<ResEntry>,
    /// Total samples offered (≥ `heap.len()`).
    seen: u64,
}

impl WaitReservoir {
    /// Reservoir with the default capacity ([`WAIT_RESERVOIR_CAP`]).
    pub fn new(seed: u64) -> Self {
        Self::with_capacity(seed, WAIT_RESERVOIR_CAP)
    }

    /// Reservoir with an explicit capacity (tests use tiny ones).
    pub fn with_capacity(seed: u64, cap: usize) -> Self {
        assert!(cap > 0, "reservoir capacity must be positive");
        WaitReservoir {
            seed,
            cap,
            heap: BinaryHeap::with_capacity(cap + 1),
            seen: 0,
        }
    }

    #[inline]
    fn priority(&self, server: u64, seq: u64) -> u64 {
        mix64(
            self.seed
                ^ mix64(
                    server
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(seq),
                ),
        )
    }

    /// Offers the wait of completion number `seq` on `server`.
    #[inline]
    pub fn offer(&mut self, server: u64, seq: u64, wait: u64) {
        self.seen += 1;
        let entry = ResEntry {
            pri: self.priority(server, seq),
            server,
            seq,
            wait,
        };
        if self.heap.len() < self.cap {
            self.heap.push(entry);
        } else if entry < *self.heap.peek().expect("non-empty at cap") {
            self.heap.pop();
            self.heap.push(entry);
        }
    }

    /// Merges another reservoir (same seed and capacity) into this one,
    /// re-taking the bottom-`cap` of the union.
    pub fn merge(&mut self, other: &WaitReservoir) {
        assert_eq!(self.seed, other.seed, "reservoir seeds must match");
        assert_eq!(self.cap, other.cap, "reservoir capacities must match");
        self.seen += other.seen;
        for &entry in other.heap.iter() {
            if self.heap.len() < self.cap {
                self.heap.push(entry);
            } else if entry < *self.heap.peek().expect("non-empty at cap") {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Drops all samples (measurement-window reset). Seed and capacity
    /// are retained.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seen = 0;
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no samples are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total samples offered since the last clear.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// True while every offered sample is still held (percentiles exact).
    pub fn is_exact(&self) -> bool {
        self.seen <= self.cap as u64
    }

    /// The surviving waits, sorted ascending — the input [`percentile`]
    /// expects.
    pub fn sorted_waits(&self) -> Vec<u64> {
        let mut waits: Vec<u64> = self.heap.iter().map(|e| e.wait).collect();
        waits.sort_unstable();
        waits
    }
}

/// Aggregate result of one load-balancing simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Strategy label.
    pub strategy: &'static str,
    /// Load ratio N/M.
    pub load: f64,
    /// Mean queue length per server, time-averaged over the measurement
    /// window (the Figure 4 y-axis).
    pub avg_queue_len: f64,
    /// Mean queueing delay (timesteps) of tasks served in the window.
    pub avg_wait: f64,
    /// Median queueing delay (timesteps) in the window.
    pub p50_wait: f64,
    /// 99th-percentile queueing delay (timesteps) in the window.
    pub p99_wait: f64,
    /// Largest queue observed in the window.
    pub max_queue_len: usize,
    /// Tasks served in the window.
    pub served: u64,
    /// Tasks generated in the window.
    pub generated: u64,
    /// Fraction of CC pair-rounds that co-located (quantum ≈ 0.854,
    /// always-split = 0, match-types = 1). NaN for unpaired strategies.
    pub cc_colocation_rate: f64,
    /// Fraction of non-CC pair-rounds that split. NaN for unpaired
    /// strategies.
    pub split_rate: f64,
    /// CC pair-rounds observed (denominator of `cc_colocation_rate`;
    /// raw counts let reports attach binomial confidence intervals).
    pub cc_rounds: u64,
    /// CC pair-rounds that co-located (numerator of `cc_colocation_rate`).
    pub cc_colocated: u64,
    /// Non-CC pair-rounds observed (denominator of `split_rate`).
    pub other_rounds: u64,
    /// Non-CC pair-rounds that split (numerator of `split_rate`).
    pub other_split: u64,
    /// Mean queue length per server in consecutive windows of the
    /// measurement period (time series for stability diagnostics; up to
    /// [`crate::sim::QUEUE_SERIES_WINDOWS`] entries, fewer when the run
    /// has fewer timesteps than windows).
    pub queue_len_series: Vec<f64>,
}

impl SimResult {
    /// True if the system looks unstable (queues grew without bound
    /// relative to the serve rate). A coarse indicator used by knee
    /// detection.
    pub fn is_saturated(&self) -> bool {
        self.served + 2 * self.generated / 100 < self.generated
    }
}

/// Percentile of a sample set (nearest-rank); NaN on empty input.
pub fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    debug_assert!((0.0..=1.0).contains(&q));
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Finds the knee of a (load, avg_queue_len) curve: the first load at
/// which the queue length exceeds `threshold`. Returns `None` if the curve
/// never crosses.
pub fn knee_load(points: &[(f64, f64)], threshold: f64) -> Option<f64> {
    points
        .iter()
        .find(|(_, q)| *q > threshold)
        .map(|(load, _)| *load)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_detection() {
        let curve = [(0.5, 0.1), (0.8, 0.4), (1.0, 1.5), (1.2, 9.0)];
        assert_eq!(knee_load(&curve, 1.0), Some(1.0));
        assert_eq!(knee_load(&curve, 100.0), None);
        assert_eq!(knee_load(&[], 1.0), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&s, 0.5), 5.0);
        assert_eq!(percentile(&s, 0.99), 10.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn reservoir_is_exact_below_capacity() {
        let mut r = WaitReservoir::with_capacity(7, 64);
        let waits: Vec<u64> = (0..50).map(|i| (i * 13) % 41).collect();
        for (i, &w) in waits.iter().enumerate() {
            r.offer(i as u64 % 5, i as u64, w);
        }
        assert!(r.is_exact());
        let mut exact = waits.clone();
        exact.sort_unstable();
        assert_eq!(r.sorted_waits(), exact);
        assert_eq!(percentile(&r.sorted_waits(), 0.5), percentile(&exact, 0.5));
    }

    #[test]
    fn reservoir_survivors_are_insertion_order_invariant() {
        let offers: Vec<(u64, u64, u64)> =
            (0..500).map(|i| (i % 17, i / 17, i * 3 % 97)).collect();
        let mut fwd = WaitReservoir::with_capacity(99, 32);
        for &(s, k, w) in &offers {
            fwd.offer(s, k, w);
        }
        let mut rev = WaitReservoir::with_capacity(99, 32);
        for &(s, k, w) in offers.iter().rev() {
            rev.offer(s, k, w);
        }
        assert!(!fwd.is_exact());
        assert_eq!(fwd.sorted_waits(), rev.sorted_waits());
        assert_eq!(fwd.seen(), rev.seen());
    }

    #[test]
    fn reservoir_merge_equals_global_reservoir() {
        // Partition the offers across 4 "shards", merge, and compare with
        // one global reservoir over the same offers: byte-identical.
        let offers: Vec<(u64, u64, u64)> =
            (0..1000).map(|i| (i % 23, i / 23, (i * 7) % 113)).collect();
        let mut global = WaitReservoir::with_capacity(3, 64);
        for &(s, k, w) in &offers {
            global.offer(s, k, w);
        }
        let mut shards: Vec<WaitReservoir> =
            (0..4).map(|_| WaitReservoir::with_capacity(3, 64)).collect();
        for &(s, k, w) in &offers {
            shards[(s % 4) as usize].offer(s, k, w);
        }
        let mut merged = WaitReservoir::with_capacity(3, 64);
        for sh in &shards {
            merged.merge(sh);
        }
        assert_eq!(merged.sorted_waits(), global.sorted_waits());
        assert_eq!(merged.seen(), global.seen());
    }

    #[test]
    fn reservoir_percentiles_track_exact_under_subsampling() {
        // 20k uniform waits through a 2k reservoir: p50/p99 land within a
        // few percent of the exact values (hash-uniform subsample).
        let waits: Vec<u64> = (0..20_000u64)
            .map(|i| mix64(i.wrapping_mul(0x1234_5678_9abc_def1)) % 1000)
            .collect();
        let mut r = WaitReservoir::with_capacity(5, 2048);
        for (i, &w) in waits.iter().enumerate() {
            r.offer(i as u64 % 100, i as u64 / 100, w);
        }
        let mut exact = waits.clone();
        exact.sort_unstable();
        for q in [0.5, 0.99] {
            let est = percentile(&r.sorted_waits(), q);
            let truth = percentile(&exact, q);
            assert!(
                (est - truth).abs() <= 0.05 * 1000.0,
                "q={q}: est {est} vs exact {truth}"
            );
        }
    }

    #[test]
    fn saturation_heuristic() {
        let mut r = SimResult {
            strategy: "x",
            load: 1.0,
            avg_queue_len: 0.0,
            avg_wait: 0.0,
            p50_wait: 0.0,
            p99_wait: 0.0,
            max_queue_len: 0,
            served: 1000,
            generated: 1000,
            cc_colocation_rate: f64::NAN,
            split_rate: f64::NAN,
            cc_rounds: 0,
            cc_colocated: 0,
            other_rounds: 0,
            other_split: 0,
            queue_len_series: Vec::new(),
        };
        assert!(!r.is_saturated());
        r.served = 500;
        assert!(r.is_saturated());
    }
}
