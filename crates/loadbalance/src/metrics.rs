//! Simulation metrics.

/// Aggregate result of one load-balancing simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Strategy label.
    pub strategy: &'static str,
    /// Load ratio N/M.
    pub load: f64,
    /// Mean queue length per server, time-averaged over the measurement
    /// window (the Figure 4 y-axis).
    pub avg_queue_len: f64,
    /// Mean queueing delay (timesteps) of tasks served in the window.
    pub avg_wait: f64,
    /// Median queueing delay (timesteps) in the window.
    pub p50_wait: f64,
    /// 99th-percentile queueing delay (timesteps) in the window.
    pub p99_wait: f64,
    /// Largest queue observed in the window.
    pub max_queue_len: usize,
    /// Tasks served in the window.
    pub served: u64,
    /// Tasks generated in the window.
    pub generated: u64,
    /// Fraction of CC pair-rounds that co-located (quantum ≈ 0.854,
    /// always-split = 0, match-types = 1). NaN for unpaired strategies.
    pub cc_colocation_rate: f64,
    /// Fraction of non-CC pair-rounds that split. NaN for unpaired
    /// strategies.
    pub split_rate: f64,
    /// CC pair-rounds observed (denominator of `cc_colocation_rate`;
    /// raw counts let reports attach binomial confidence intervals).
    pub cc_rounds: u64,
    /// CC pair-rounds that co-located (numerator of `cc_colocation_rate`).
    pub cc_colocated: u64,
    /// Non-CC pair-rounds observed (denominator of `split_rate`).
    pub other_rounds: u64,
    /// Non-CC pair-rounds that split (numerator of `split_rate`).
    pub other_split: u64,
    /// Mean queue length per server in consecutive windows of the
    /// measurement period (time series for stability diagnostics; up to
    /// [`crate::sim::QUEUE_SERIES_WINDOWS`] entries, fewer when the run
    /// has fewer timesteps than windows).
    pub queue_len_series: Vec<f64>,
}

impl SimResult {
    /// True if the system looks unstable (queues grew without bound
    /// relative to the serve rate). A coarse indicator used by knee
    /// detection.
    pub fn is_saturated(&self) -> bool {
        self.served + 2 * self.generated / 100 < self.generated
    }
}

/// Percentile of a sample set (nearest-rank); NaN on empty input.
pub fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    debug_assert!((0.0..=1.0).contains(&q));
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Finds the knee of a (load, avg_queue_len) curve: the first load at
/// which the queue length exceeds `threshold`. Returns `None` if the curve
/// never crosses.
pub fn knee_load(points: &[(f64, f64)], threshold: f64) -> Option<f64> {
    points
        .iter()
        .find(|(_, q)| *q > threshold)
        .map(|(load, _)| *load)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_detection() {
        let curve = [(0.5, 0.1), (0.8, 0.4), (1.0, 1.5), (1.2, 9.0)];
        assert_eq!(knee_load(&curve, 1.0), Some(1.0));
        assert_eq!(knee_load(&curve, 100.0), None);
        assert_eq!(knee_load(&[], 1.0), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&s, 0.5), 5.0);
        assert_eq!(percentile(&s, 0.99), 10.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn saturation_heuristic() {
        let mut r = SimResult {
            strategy: "x",
            load: 1.0,
            avg_queue_len: 0.0,
            avg_wait: 0.0,
            p50_wait: 0.0,
            p99_wait: 0.0,
            max_queue_len: 0,
            served: 1000,
            generated: 1000,
            cc_colocation_rate: f64::NAN,
            split_rate: f64::NAN,
            cc_rounds: 0,
            cc_colocated: 0,
            other_rounds: 0,
            other_split: 0,
            queue_len_series: Vec::new(),
        };
        assert!(!r.is_saturated());
        r.served = 500;
        assert!(r.is_saturated());
    }
}
