//! Load-balancer assignment strategies.
//!
//! The classical baselines (§4.1): uniform random, round-robin, power of
//! two choices, and the best *classical pairing* strategies. The quantum
//! strategy pairs balancers and plays the flipped CHSH game per round.
//!
//! ## Locality discipline
//!
//! Every strategy here uses only (a) the balancer's own input, (b)
//! resources fixed *before* inputs arrive (shared randomness, entangled
//! pairs), and — for power-of-two only — (c) server queue lengths, which
//! models an *informed* baseline that already pays a communication cost
//! the others don't. No strategy lets one balancer's input influence
//! another balancer's output beyond what its pre-shared resource allows;
//! the quantum pairing inherits this from [`games::CorrelationBox`] /
//! [`qsim::SharedPair`], whose no-signaling property is tested upstream.

use crate::task::TaskType;
use games::chsh::{alice_angle, bob_angle};
use games::CorrelationBox;
use qmath::RMatrix;
use qsim::{Party, SharedPair};
use rand::Rng;

/// How the quantum pairing samples its correlated bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumMode {
    /// Full statevector/density-matrix simulation of the Bell-pair
    /// measurement (slow; the ground truth).
    ExactSimulation,
    /// Direct sampling from the closed-form CHSH joint distribution
    /// (statistically identical for ideal pairs; ~50× faster — see the
    /// `chsh` benchmark).
    FastSampling,
}

/// The outcome of one pair-coordination round (exposed for tests and for
/// the `qnlg-core` coordinator API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairDecision {
    /// First balancer's output bit (selects between the two candidate
    /// servers).
    pub a: bool,
    /// Second balancer's output bit.
    pub b: bool,
}

/// An assignment strategy: maps this timestep's tasks to server indices.
pub trait AssignmentStrategy {
    /// Assigns each balancer's task to a server. `queue_lens` holds each
    /// server's queue length at the start of the step (used only by
    /// informed strategies).
    fn assign_all(
        &mut self,
        tasks: &[TaskType],
        queue_lens: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize>;

    /// Name for report tables.
    fn name(&self) -> &'static str;
}

/// Strategy selector — the menu of strategies the experiments sweep over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Paper's classical baseline: each balancer picks a uniformly random
    /// server, independently.
    UniformRandom,
    /// Round-robin with a random per-balancer starting offset.
    RoundRobin,
    /// Power of two choices: probe two random servers, pick the shorter
    /// queue (an *informed* strategy — it reads server state).
    PowerOfTwoChoices,
    /// Classical pairing, always-split: the two balancers always pick
    /// different servers (wins the CE/EC/EE cases, never co-locates CC).
    PairedAlwaysSplit,
    /// Classical pairing, match-types (`a = x, b = y`): co-locates CC and
    /// splits CE/EC, but collides both Es (fails EE).
    PairedMatchTypes,
    /// Quantum pairing: flipped CHSH over pre-shared entanglement.
    PairedQuantum {
        /// Sampling mode.
        mode: QuantumMode,
        /// Probability a fresh pair is available at decision time
        /// (1.0 = ideal pipeline); misses fall back to always-split.
        availability: f64,
        /// Bell-pair visibility (1.0 = perfect, < 1 = Werner noise).
        /// Only honoured in [`QuantumMode::ExactSimulation`]; fast
        /// sampling scales the correlation magnitude by the visibility,
        /// which is the exact Werner-state behaviour.
        visibility: f64,
    },
    /// Hybrid: a fixed fraction of servers is dedicated to type-C tasks;
    /// C goes to a random dedicated server, E to a random general server.
    DedicatedServers {
        /// Fraction of servers reserved for type-C.
        dedicated_fraction: f64,
    },
}

impl Strategy {
    /// The ideal quantum strategy (fast sampling, full availability,
    /// perfect pairs).
    pub fn quantum_ideal() -> Self {
        Strategy::PairedQuantum {
            mode: QuantumMode::FastSampling,
            availability: 1.0,
            visibility: 1.0,
        }
    }

    /// Instantiates the runnable strategy state.
    pub fn build(self, n_servers: usize) -> Box<dyn AssignmentStrategy> {
        assert!(n_servers >= 2, "need at least two servers");
        match self {
            Strategy::UniformRandom => Box::new(UniformRandom { n_servers }),
            Strategy::RoundRobin => Box::new(RoundRobin {
                n_servers,
                offsets: Vec::new(),
            }),
            Strategy::PowerOfTwoChoices => Box::new(PowerOfTwo { n_servers }),
            Strategy::PairedAlwaysSplit => Box::new(Paired {
                n_servers,
                decider: Decider::AlwaysSplit,
            }),
            Strategy::PairedMatchTypes => Box::new(Paired {
                n_servers,
                decider: Decider::MatchTypes,
            }),
            Strategy::PairedQuantum {
                mode,
                availability,
                visibility,
            } => {
                assert!((0.0..=1.0).contains(&availability), "bad availability");
                assert!((0.0..=1.0).contains(&visibility), "bad visibility");
                let decider = match mode {
                    QuantumMode::FastSampling => Decider::QuantumBox {
                        boxx: flipped_chsh_box(visibility),
                        availability,
                    },
                    QuantumMode::ExactSimulation => Decider::QuantumExact {
                        visibility,
                        availability,
                    },
                };
                Box::new(Paired { n_servers, decider })
            }
            Strategy::DedicatedServers { dedicated_fraction } => {
                assert!(
                    (0.0..=1.0).contains(&dedicated_fraction),
                    "bad dedicated fraction"
                );
                let dedicated = ((n_servers as f64 * dedicated_fraction).round() as usize)
                    .clamp(1, n_servers - 1);
                Box::new(Dedicated {
                    n_servers,
                    dedicated,
                })
            }
        }
    }
}

/// The flipped-CHSH correlation box scaled by pair visibility:
/// `E[(−1)^{a⊕b} | x, y] = v/√2 · (+1 if x∧y else −1)`.
fn flipped_chsh_box(visibility: f64) -> CorrelationBox {
    let f = visibility * std::f64::consts::FRAC_1_SQRT_2;
    CorrelationBox::new(RMatrix::from_fn(2, 2, |x, y| {
        if x == 1 && y == 1 {
            f
        } else {
            -f
        }
    }))
}

struct UniformRandom {
    n_servers: usize,
}

impl AssignmentStrategy for UniformRandom {
    fn assign_all(
        &mut self,
        tasks: &[TaskType],
        _queue_lens: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        tasks
            .iter()
            .map(|_| rng.gen_range(0..self.n_servers))
            .collect()
    }

    fn name(&self) -> &'static str {
        "uniform-random"
    }
}

struct RoundRobin {
    n_servers: usize,
    offsets: Vec<usize>,
}

impl AssignmentStrategy for RoundRobin {
    fn assign_all(
        &mut self,
        tasks: &[TaskType],
        _queue_lens: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        if self.offsets.len() != tasks.len() {
            self.offsets = (0..tasks.len())
                .map(|_| rng.gen_range(0..self.n_servers))
                .collect();
        }
        self.offsets
            .iter_mut()
            .map(|off| {
                *off = (*off + 1) % self.n_servers;
                *off
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

struct PowerOfTwo {
    n_servers: usize,
}

impl AssignmentStrategy for PowerOfTwo {
    fn assign_all(
        &mut self,
        tasks: &[TaskType],
        queue_lens: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        tasks
            .iter()
            .map(|_| {
                let s1 = rng.gen_range(0..self.n_servers);
                let s2 = rng.gen_range(0..self.n_servers);
                // Queue lengths are start-of-step (stale within the step)
                // — the standard idealization.
                if queue_lens[s1] <= queue_lens[s2] {
                    s1
                } else {
                    s2
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "power-of-two"
    }
}

enum Decider {
    AlwaysSplit,
    MatchTypes,
    QuantumBox {
        boxx: CorrelationBox,
        availability: f64,
    },
    QuantumExact {
        visibility: f64,
        availability: f64,
    },
}

impl Decider {
    fn decide(&self, x: usize, y: usize, rng: &mut dyn rand::RngCore) -> PairDecision {
        match self {
            Decider::AlwaysSplit => PairDecision { a: false, b: true },
            Decider::MatchTypes => PairDecision {
                a: x == 1,
                b: y == 1,
            },
            Decider::QuantumBox { boxx, availability } => {
                if rng.gen::<f64>() < *availability {
                    let (a, b) = boxx.sample(x, y, rng);
                    PairDecision { a, b }
                } else {
                    PairDecision { a: false, b: true }
                }
            }
            Decider::QuantumExact {
                visibility,
                availability,
            } => {
                if rng.gen::<f64>() < *availability {
                    let mut pair = if *visibility >= 1.0 {
                        SharedPair::ideal()
                    } else {
                        SharedPair::werner(*visibility).expect("validated visibility")
                    };
                    let a = pair
                        .measure_angle(Party::A, alice_angle(x), rng)
                        .expect("fresh pair");
                    let b = pair
                        .measure_angle(Party::B, bob_angle(y), rng)
                        .expect("fresh pair");
                    // Flip Bob's bit: implements a⊕b = ¬(x∧y) (§4.1).
                    PairDecision {
                        a: a == 1,
                        b: b == 0,
                    }
                } else {
                    PairDecision { a: false, b: true }
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Decider::AlwaysSplit => "paired-always-split",
            Decider::MatchTypes => "paired-match-types",
            Decider::QuantumBox { .. } => "paired-quantum",
            Decider::QuantumExact { .. } => "paired-quantum-exact",
        }
    }
}

struct Paired {
    n_servers: usize,
    decider: Decider,
}

impl AssignmentStrategy for Paired {
    fn assign_all(
        &mut self,
        tasks: &[TaskType],
        _queue_lens: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        let mut out = vec![0usize; tasks.len()];
        let mut i = 0;
        while i + 1 < tasks.len() {
            // Pre-shared randomness picks two distinct candidate servers
            // per round (§4.1: "each pair randomly selects a pair of
            // servers in each round").
            let s0 = rng.gen_range(0..self.n_servers);
            let mut s1 = rng.gen_range(0..self.n_servers - 1);
            if s1 >= s0 {
                s1 += 1;
            }
            let (x, y) = (tasks[i].chsh_input(), tasks[i + 1].chsh_input());
            let d = self.decider.decide(x, y, rng);
            out[i] = if d.a { s1 } else { s0 };
            out[i + 1] = if d.b { s1 } else { s0 };
            i += 2;
        }
        if i < tasks.len() {
            // Odd balancer out: uniform random.
            out[i] = rng.gen_range(0..self.n_servers);
        }
        out
    }

    fn name(&self) -> &'static str {
        self.decider.label()
    }
}

struct Dedicated {
    n_servers: usize,
    dedicated: usize,
}

impl AssignmentStrategy for Dedicated {
    fn assign_all(
        &mut self,
        tasks: &[TaskType],
        _queue_lens: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        tasks
            .iter()
            .map(|t| {
                if t.is_colocate() {
                    rng.gen_range(0..self.dedicated)
                } else {
                    rng.gen_range(self.dedicated..self.n_servers)
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "dedicated-servers"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const C: TaskType = TaskType::Colocate(0);
    const E: TaskType = TaskType::Exclusive;

    fn lens(n: usize) -> Vec<usize> {
        vec![0; n]
    }

    #[test]
    fn uniform_random_spreads() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = Strategy::UniformRandom.build(10);
        let mut counts = vec![0usize; 10];
        for _ in 0..5000 {
            for srv in s.assign_all(&[C, E], &lens(10), &mut rng) {
                counts[srv] += 1;
            }
        }
        for c in counts {
            let f = c as f64 / 10_000.0;
            assert!((f - 0.1).abs() < 0.02, "server load {f}");
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = Strategy::RoundRobin.build(4);
        let a1 = s.assign_all(&[C], &lens(4), &mut rng)[0];
        let a2 = s.assign_all(&[C], &lens(4), &mut rng)[0];
        let a3 = s.assign_all(&[C], &lens(4), &mut rng)[0];
        assert_eq!((a1 + 1) % 4, a2);
        assert_eq!((a2 + 1) % 4, a3);
    }

    #[test]
    fn power_of_two_prefers_short_queue() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Strategy::PowerOfTwoChoices.build(2);
        // Server 0 is very long: nearly all picks should land on 1.
        let queue_lens = vec![100, 0];
        let mut to_short = 0;
        for _ in 0..1000 {
            if s.assign_all(&[C], &queue_lens, &mut rng)[0] == 1 {
                to_short += 1;
            }
        }
        // Picks 1 unless both probes hit 0 (prob 1/4).
        let f = to_short as f64 / 1000.0;
        assert!((f - 0.75).abs() < 0.05, "short-queue rate {f}");
    }

    #[test]
    fn always_split_never_collides() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = Strategy::PairedAlwaysSplit.build(8);
        for _ in 0..500 {
            let a = s.assign_all(&[C, C], &lens(8), &mut rng);
            assert_ne!(a[0], a[1]);
        }
    }

    #[test]
    fn match_types_colocates_cc_collides_ee() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Strategy::PairedMatchTypes.build(8);
        for _ in 0..200 {
            let a = s.assign_all(&[C, C], &lens(8), &mut rng);
            assert_eq!(a[0], a[1], "CC must co-locate");
            let a = s.assign_all(&[E, E], &lens(8), &mut rng);
            assert_eq!(a[0], a[1], "EE collides under match-types");
            let a = s.assign_all(&[C, E], &lens(8), &mut rng);
            assert_ne!(a[0], a[1], "CE splits");
        }
    }

    #[test]
    fn quantum_box_meets_chsh_rates() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = Strategy::quantum_ideal().build(8);
        let cases: [(&[TaskType; 2], bool); 4] = [
            (&[C, C], true),  // want same server
            (&[C, E], false), // want different
            (&[E, C], false),
            (&[E, E], false),
        ];
        let trials = 20_000;
        for (tasks, want_same) in cases {
            let mut ok = 0usize;
            for _ in 0..trials {
                let a = s.assign_all(tasks.as_slice(), &lens(8), &mut rng);
                ok += usize::from((a[0] == a[1]) == want_same);
            }
            let f = ok as f64 / trials as f64;
            let expect = games::chsh_quantum_value();
            assert!(
                (f - expect).abs() < 0.015,
                "{tasks:?}: success {f}, expected {expect}"
            );
        }
    }

    #[test]
    fn exact_simulation_matches_fast_sampling() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut fast = Strategy::quantum_ideal().build(4);
        let mut exact = Strategy::PairedQuantum {
            mode: QuantumMode::ExactSimulation,
            availability: 1.0,
            visibility: 1.0,
        }
        .build(4);
        let trials = 8_000;
        for tasks in [[C, C], [C, E], [E, E]] {
            let mut same_fast = 0usize;
            let mut same_exact = 0usize;
            for _ in 0..trials {
                let a = fast.assign_all(&tasks, &lens(4), &mut rng);
                same_fast += usize::from(a[0] == a[1]);
                let a = exact.assign_all(&tasks, &lens(4), &mut rng);
                same_exact += usize::from(a[0] == a[1]);
            }
            let diff =
                (same_fast as f64 - same_exact as f64).abs() / trials as f64;
            assert!(diff < 0.03, "{tasks:?}: fast vs exact differ by {diff}");
        }
    }

    #[test]
    fn zero_availability_degenerates_to_split() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut s = Strategy::PairedQuantum {
            mode: QuantumMode::FastSampling,
            availability: 0.0,
            visibility: 1.0,
        }
        .build(8);
        for _ in 0..200 {
            let a = s.assign_all(&[C, C], &lens(8), &mut rng);
            assert_ne!(a[0], a[1], "fallback is always-split");
        }
    }

    #[test]
    fn degraded_visibility_weakens_correlation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = Strategy::PairedQuantum {
            mode: QuantumMode::FastSampling,
            availability: 1.0,
            visibility: 0.0, // fully depolarized: coin-flip correlation
        }
        .build(8);
        let trials = 20_000;
        let mut same = 0usize;
        for _ in 0..trials {
            let a = s.assign_all(&[C, C], &lens(8), &mut rng);
            same += usize::from(a[0] == a[1]);
        }
        let f = same as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.02, "v=0 co-location rate {f}");
    }

    #[test]
    fn dedicated_partitions_by_type() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut s = Strategy::DedicatedServers {
            dedicated_fraction: 0.5,
        }
        .build(10);
        for _ in 0..200 {
            let a = s.assign_all(&[C, E], &lens(10), &mut rng);
            assert!(a[0] < 5, "C goes to dedicated half");
            assert!(a[1] >= 5, "E goes to general half");
        }
    }

    #[test]
    fn odd_balancer_count_is_handled() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = Strategy::quantum_ideal().build(4);
        let a = s.assign_all(&[C, C, E], &lens(4), &mut rng);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&srv| srv < 4));
    }

    #[test]
    #[should_panic(expected = "at least two servers")]
    fn one_server_panics() {
        Strategy::UniformRandom.build(1);
    }
}
