//! The Figure 4 simulation loop.
//!
//! "At each timestep, each load balancer receives either a type-C or
//! type-E request with equal probability. They forward it to a server
//! according to its load balancing algorithm. Servers can simultaneously
//! process two type-C requests first, followed by type-E requests, which
//! are executed one at a time. We measure average queue length as a
//! function of system load, quantified by the ratio N/M."

use crate::error::SimError;
use crate::metrics::{SimResult, WaitReservoir, WAIT_RESERVOIR_SEED};
use crate::server::{Discipline, Server};
use crate::strategy::Strategy;
use crate::task::{Task, TaskType, Workload};
use rand::Rng;

/// Maximum length of [`SimResult::queue_len_series`]: the measurement
/// period is split into this many equal windows.
pub const QUEUE_SERIES_WINDOWS: usize = 32;

/// Simulation runs completed.
pub(crate) static SIM_RUNS: obs::LazyCounter = obs::LazyCounter::new("lb.sim.runs");
/// Timesteps simulated (warmup included).
pub(crate) static SIM_STEPS: obs::LazyCounter = obs::LazyCounter::new("lb.sim.steps");
/// Tasks routed through a strategy's `assign_all`, across all runs —
/// the numerator of the artifact `perf.tasks_per_sec` throughput.
/// Flushed once per run (hoisted out of the step loop).
pub(crate) static TASKS_ASSIGNED: obs::LazyCounter = obs::LazyCounter::new("lb.tasks.assigned");
/// Total queue length across servers, accumulated per measured timestep
/// but flushed per measurement window (one sample per series window), so
/// the hot loop carries no obs traffic. The histogram *sum* is unchanged
/// from the historical per-step recording: total queue·steps.
pub(crate) static QUEUE_TOTAL: obs::LazyHist = obs::LazyHist::new("lb.queue.total");
/// CC pair-rounds that co-located / all CC pair-rounds.
pub(crate) static CC_COLOCATED: obs::LazyCounter = obs::LazyCounter::new("lb.pairs.cc_colocated");
pub(crate) static CC_ROUNDS: obs::LazyCounter = obs::LazyCounter::new("lb.pairs.cc_rounds");
/// Non-CC pair-rounds that split / all non-CC pair-rounds.
pub(crate) static OTHER_SPLIT: obs::LazyCounter = obs::LazyCounter::new("lb.pairs.other_split");
pub(crate) static OTHER_ROUNDS: obs::LazyCounter = obs::LazyCounter::new("lb.pairs.other_rounds");

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of load balancers N (the paper's figure uses 100).
    pub n_balancers: usize,
    /// Number of servers M.
    pub n_servers: usize,
    /// Measured timesteps (after warmup).
    pub timesteps: u64,
    /// Warmup timesteps excluded from statistics.
    pub warmup: u64,
    /// Server queue discipline.
    pub discipline: Discipline,
}

impl SimConfig {
    /// The paper's setup at a given load: N = 100 balancers,
    /// M = ⌈N/load⌉ servers, paper discipline.
    ///
    /// # Panics
    /// Panics if `load` is not positive or implies fewer than 2 servers;
    /// [`SimConfig::paper_checked`] is the non-panicking variant.
    pub fn paper(load: f64) -> Self {
        match Self::paper_checked(load) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// The paper's setup at a given load, with a typed error instead of a
    /// panic: rejects non-positive/non-finite loads and loads implying
    /// fewer than 2 servers (a paired strategy could never split).
    pub fn paper_checked(load: f64) -> Result<Self, SimError> {
        if !load.is_finite() || load <= 0.0 {
            return Err(SimError::BadLoad { load });
        }
        let n_balancers = 100;
        let n_servers = (n_balancers as f64 / load).round() as usize;
        if n_servers < 2 {
            return Err(SimError::TooFewServers { n_servers, min: 2 });
        }
        let config = SimConfig {
            n_balancers,
            n_servers,
            timesteps: 2_000,
            warmup: 500,
            discipline: Discipline::PaperPairedC,
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks the configuration is simulatable: at least one balancer,
    /// server, and measured timestep, and a total horizon
    /// `warmup + timesteps` that does not overflow the u64 step counter
    /// (checked, so it is safe at u64 extremes).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n_balancers == 0 {
            return Err(SimError::NoBalancers);
        }
        if self.n_servers == 0 {
            return Err(SimError::TooFewServers {
                n_servers: 0,
                min: 1,
            });
        }
        if self.timesteps == 0 {
            return Err(SimError::NoTimesteps);
        }
        if self.warmup.checked_add(self.timesteps).is_none() {
            return Err(SimError::HorizonOverflow {
                warmup: self.warmup,
                timesteps: self.timesteps,
            });
        }
        Ok(())
    }

    /// The realized load ratio N/M.
    pub fn load(&self) -> f64 {
        self.n_balancers as f64 / self.n_servers as f64
    }
}

/// Runs one simulation and returns aggregate metrics.
///
/// ```
/// use loadbalance::{run_simulation, SimConfig, Strategy};
/// use loadbalance::task::BernoulliWorkload;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let result = run_simulation(
///     SimConfig::paper(1.0),
///     Strategy::quantum_ideal(),
///     &mut BernoulliWorkload::paper(),
///     &mut rng,
/// );
/// assert!(result.avg_queue_len < 5.0); // stable at load 1.0
/// ```
///
/// # Panics
/// Panics on degenerate configurations (no balancers/servers/steps);
/// [`try_run_simulation`] is the non-panicking variant.
pub fn run_simulation<W, R>(
    config: SimConfig,
    strategy: Strategy,
    workload: &mut W,
    rng: &mut R,
) -> SimResult
where
    W: Workload + ?Sized,
    R: Rng,
{
    match try_run_simulation(config, strategy, workload, rng) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`run_simulation`], but rejects degenerate configurations with a
/// typed [`SimError`] instead of panicking mid-run.
pub fn try_run_simulation<W, R>(
    config: SimConfig,
    strategy: Strategy,
    workload: &mut W,
    rng: &mut R,
) -> Result<SimResult, SimError>
where
    W: Workload + ?Sized,
    R: Rng,
{
    config.validate()?;
    let mut strat = strategy.build(config.n_servers);
    try_run_simulation_with(config, strat.as_mut(), workload, rng)
}

/// Like [`run_simulation`], but takes an already-built (possibly
/// stateful) strategy — required for strategies that own simulation
/// state of their own, such as
/// [`crate::pipeline::PipelinePairedQuantum`], which carries a live
/// entanglement-distribution pipeline.
///
/// # Panics
/// Panics on degenerate configurations (no balancers/servers/steps);
/// [`try_run_simulation_with`] is the non-panicking variant.
pub fn run_simulation_with<W, R>(
    config: SimConfig,
    strat: &mut dyn crate::strategy::AssignmentStrategy,
    workload: &mut W,
    rng: &mut R,
) -> SimResult
where
    W: Workload + ?Sized,
    R: Rng,
{
    match try_run_simulation_with(config, strat, workload, rng) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`run_simulation_with`], but rejects degenerate configurations
/// with a typed [`SimError`] instead of panicking mid-run.
///
/// This is the compatibility path: a single-shard, epoch-length-1 advance
/// that consumes the caller's generator in the exact historical draw
/// order, so any `(config, strategy, workload, seed)` gives a trajectory
/// bit-identical to the pre-shard `run_simulation`. The sharded
/// structure-of-arrays engine for scale runs lives in [`crate::shard`].
pub fn try_run_simulation_with<W, R>(
    config: SimConfig,
    strat: &mut dyn crate::strategy::AssignmentStrategy,
    workload: &mut W,
    rng: &mut R,
) -> Result<SimResult, SimError>
where
    W: Workload + ?Sized,
    R: Rng,
{
    config.validate()?;
    let mut servers: Vec<Server> = (0..config.n_servers)
        .map(|i| Server::with_id(config.discipline, i as u64))
        .collect();
    let paired = strat.name().starts_with("paired");

    let total_steps = config.warmup + config.timesteps;
    let mut queue_len_sum = 0u64;
    let mut max_queue = 0usize;
    let mut generated = 0u64;
    let mut served_before_window = 0u64;
    let mut wait_before_window = 0u64;

    // Pair-level coordination stats.
    let mut cc_rounds = 0u64;
    let mut cc_colocated = 0u64;
    let mut other_rounds = 0u64;
    let mut other_split = 0u64;

    let mut tasks: Vec<TaskType> = Vec::with_capacity(config.n_balancers);
    let mut queue_lens: Vec<usize> = vec![0; config.n_servers];

    // Per-window queue-length accumulators for the time series.
    let windows = QUEUE_SERIES_WINDOWS.min(config.timesteps as usize);
    let mut win_queue_sum = vec![0u64; windows];
    let mut win_samples = vec![0u64; windows];

    for t in 0..total_steps {
        if t == config.warmup {
            served_before_window = servers.iter().map(|s| s.served).sum();
            wait_before_window = servers.iter().map(|s| s.total_wait).sum();
            for s in servers.iter_mut() {
                s.waits.clear();
            }
        }
        workload.on_step(t);
        tasks.clear();
        for _ in 0..config.n_balancers {
            tasks.push(workload.next_task(rng));
        }
        for (len, s) in queue_lens.iter_mut().zip(&servers) {
            *len = s.queue_len();
        }
        let assignment = strat.assign_all(&tasks, &queue_lens, rng);
        debug_assert_eq!(assignment.len(), tasks.len());

        for (i, &srv) in assignment.iter().enumerate() {
            servers[srv].enqueue(Task {
                ty: tasks[i],
                enqueued_at: t,
            });
        }
        for s in servers.iter_mut() {
            s.step(t);
        }

        if t >= config.warmup {
            generated += config.n_balancers as u64;
            let mut step_total = 0u64;
            for s in &servers {
                let q = s.queue_len();
                queue_len_sum += q as u64;
                step_total += q as u64;
                max_queue = max_queue.max(q);
            }
            let w = ((t - config.warmup) as usize * windows) / config.timesteps as usize;
            win_queue_sum[w] += step_total;
            win_samples[w] += config.n_servers as u64;
            if paired {
                let mut i = 0;
                while i + 1 < tasks.len() {
                    let both_c = tasks[i].is_colocate() && tasks[i + 1].is_colocate();
                    let same = assignment[i] == assignment[i + 1];
                    if both_c {
                        cc_rounds += 1;
                        cc_colocated += u64::from(same);
                    } else {
                        other_rounds += 1;
                        other_split += u64::from(!same);
                    }
                    i += 2;
                }
            }
        }
    }

    // Global bottom-R over the union of the per-server reservoirs — the
    // same surviving set one flat reservoir over every sample would keep.
    let mut waits = WaitReservoir::new(WAIT_RESERVOIR_SEED);
    for s in &servers {
        waits.merge(&s.waits);
    }
    let wait_samples = waits.sorted_waits();
    let served: u64 = servers.iter().map(|s| s.served).sum::<u64>() - served_before_window;
    let total_wait: u64 =
        servers.iter().map(|s| s.total_wait).sum::<u64>() - wait_before_window;
    let samples = config.timesteps * config.n_servers as u64;

    // Obs flushes, hoisted out of the step loop: counters once per run,
    // the queue histogram once per series window (sum unchanged from the
    // historical per-step recording).
    SIM_RUNS.inc();
    SIM_STEPS.add(total_steps);
    TASKS_ASSIGNED.add(config.n_balancers as u64 * total_steps);
    for &w in &win_queue_sum {
        QUEUE_TOTAL.record(w);
    }
    CC_ROUNDS.add(cc_rounds);
    CC_COLOCATED.add(cc_colocated);
    OTHER_ROUNDS.add(other_rounds);
    OTHER_SPLIT.add(other_split);

    let queue_len_series: Vec<f64> = win_queue_sum
        .iter()
        .zip(&win_samples)
        .filter(|(_, &n)| n > 0)
        .map(|(&s, &n)| s as f64 / n as f64)
        .collect();

    Ok(SimResult {
        strategy: strat.name(),
        load: config.load(),
        avg_queue_len: queue_len_sum as f64 / samples as f64,
        avg_wait: if served > 0 {
            total_wait as f64 / served as f64
        } else {
            f64::NAN
        },
        p50_wait: crate::metrics::percentile(&wait_samples, 0.5),
        p99_wait: crate::metrics::percentile(&wait_samples, 0.99),
        max_queue_len: max_queue,
        served,
        generated,
        cc_colocation_rate: if cc_rounds > 0 {
            cc_colocated as f64 / cc_rounds as f64
        } else {
            f64::NAN
        },
        split_rate: if other_rounds > 0 {
            other_split as f64 / other_rounds as f64
        } else {
            f64::NAN
        },
        cc_rounds,
        cc_colocated,
        other_rounds,
        other_split,
        queue_len_series,
    })
}

/// Sweeps the load axis of Figure 4 for one strategy, returning
/// `(load, avg_queue_len)` points.
///
/// Points run concurrently on the shared pool, each on a seed stream
/// derived from one draw on `rng` — the result depends only on the
/// caller's RNG state, never on the worker count.
pub fn load_sweep<R: Rng>(
    strategy: Strategy,
    loads: &[f64],
    rng: &mut R,
) -> Vec<(f64, f64)> {
    let master = rng.next_u64();
    runtime::par_sweep(master, loads, |_, &load, rng| {
        let _span = obs::span!("sweep.point");
        let config = SimConfig::paper(load);
        let mut workload = crate::task::BernoulliWorkload::paper();
        let r = run_simulation(config, strategy, &mut workload, rng);
        (load, r.avg_queue_len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::BernoulliWorkload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick(load: f64) -> SimConfig {
        SimConfig {
            n_balancers: 40,
            n_servers: (40.0 / load).round() as usize,
            timesteps: 600,
            warmup: 200,
            discipline: Discipline::PaperPairedC,
        }
    }

    #[test]
    fn low_load_queues_stay_short() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = run_simulation(
            quick(0.5),
            Strategy::UniformRandom,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        assert!(r.avg_queue_len < 1.0, "avg queue {}", r.avg_queue_len);
        assert!(!r.is_saturated());
    }

    #[test]
    fn overload_saturates() {
        let mut rng = StdRng::seed_from_u64(2);
        // Load 2.0: even all-C traffic (capacity 2/step) can't keep up
        // once E tasks are in the mix.
        let r = run_simulation(
            quick(2.0),
            Strategy::UniformRandom,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        assert!(r.avg_queue_len > 5.0, "avg queue {}", r.avg_queue_len);
    }

    #[test]
    fn quantum_beats_classical_at_moderate_load() {
        // The headline claim (Figure 4): near the classical knee, the
        // quantum strategy has strictly shorter queues.
        let mut rng = StdRng::seed_from_u64(3);
        let load = 1.2;
        let classical = run_simulation(
            quick(load),
            Strategy::UniformRandom,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        let quantum = run_simulation(
            quick(load),
            Strategy::quantum_ideal(),
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        assert!(
            quantum.avg_queue_len < classical.avg_queue_len,
            "quantum {} vs classical {}",
            quantum.avg_queue_len,
            classical.avg_queue_len
        );
    }

    #[test]
    fn quantum_beats_best_classical_pairing() {
        let mut rng = StdRng::seed_from_u64(4);
        let load = 1.2;
        let split = run_simulation(
            quick(load),
            Strategy::PairedAlwaysSplit,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        let quantum = run_simulation(
            quick(load),
            Strategy::quantum_ideal(),
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        assert!(
            quantum.avg_queue_len < split.avg_queue_len,
            "quantum {} vs always-split {}",
            quantum.avg_queue_len,
            split.avg_queue_len
        );
    }

    #[test]
    fn pair_stats_match_chsh_rates() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = run_simulation(
            quick(1.0),
            Strategy::quantum_ideal(),
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        let expect = games::chsh_quantum_value();
        assert!(
            (r.cc_colocation_rate - expect).abs() < 0.02,
            "CC co-location {} vs {expect}",
            r.cc_colocation_rate
        );
        assert!(
            (r.split_rate - expect).abs() < 0.02,
            "split rate {} vs {expect}",
            r.split_rate
        );
    }

    #[test]
    fn queue_series_and_raw_counts_are_consistent() {
        let mut rng = StdRng::seed_from_u64(9);
        let r = run_simulation(
            quick(1.0),
            Strategy::quantum_ideal(),
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        assert_eq!(r.queue_len_series.len(), QUEUE_SERIES_WINDOWS);
        // Window means aggregate to (approximately — windows differ by at
        // most one step in width) the overall mean.
        let series_mean =
            r.queue_len_series.iter().sum::<f64>() / r.queue_len_series.len() as f64;
        assert!(
            (series_mean - r.avg_queue_len).abs() < 0.05 * r.avg_queue_len.max(1.0),
            "series mean {series_mean} vs avg {}",
            r.avg_queue_len
        );
        // The published rates are exactly the raw-count ratios.
        assert!(r.cc_rounds > 0);
        assert_eq!(
            r.cc_colocation_rate,
            r.cc_colocated as f64 / r.cc_rounds as f64
        );
        assert_eq!(r.split_rate, r.other_split as f64 / r.other_rounds as f64);
    }

    #[test]
    fn unpaired_strategies_report_nan_pair_stats() {
        let mut rng = StdRng::seed_from_u64(6);
        let r = run_simulation(
            quick(1.0),
            Strategy::UniformRandom,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        assert!(r.cc_colocation_rate.is_nan());
        assert!(r.split_rate.is_nan());
    }

    #[test]
    fn conservation_served_le_generated() {
        let mut rng = StdRng::seed_from_u64(7);
        let r = run_simulation(
            quick(1.4),
            Strategy::UniformRandom,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        // Within the window, served can exceed generated only by draining
        // warmup backlog; at saturating load it must lag.
        assert!(r.generated > 0);
        assert!(r.served > 0);
    }

    #[test]
    fn load_sweep_is_monotone_ish() {
        let mut rng = StdRng::seed_from_u64(8);
        let pts = load_sweep(Strategy::UniformRandom, &[0.5, 1.0, 1.6], &mut rng);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].1 < pts[2].1, "queues grow with load: {pts:?}");
    }

    #[test]
    fn paper_config_realizes_requested_load() {
        let c = SimConfig::paper(1.25);
        assert_eq!(c.n_balancers, 100);
        assert_eq!(c.n_servers, 80);
        assert!((c.load() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn checked_constructors_reject_degenerate_configs() {
        use crate::error::SimError;
        assert_eq!(
            SimConfig::paper_checked(0.0).unwrap_err(),
            SimError::BadLoad { load: 0.0 }
        );
        assert!(matches!(
            SimConfig::paper_checked(f64::NAN).unwrap_err(),
            SimError::BadLoad { .. }
        ));
        assert!(matches!(
            SimConfig::paper_checked(f64::INFINITY).unwrap_err(),
            SimError::BadLoad { .. }
        ));
        assert_eq!(
            SimConfig::paper_checked(100.0).unwrap_err(),
            SimError::TooFewServers {
                n_servers: 1,
                min: 2
            }
        );
        assert!(SimConfig::paper_checked(1.2).is_ok());
    }

    #[test]
    fn validate_is_overflow_safe_at_u64_extremes() {
        use crate::error::SimError;
        let mut c = SimConfig::paper(1.0);
        c.warmup = u64::MAX;
        // warmup + timesteps would wrap; checked validation reports it.
        assert_eq!(
            c.validate().unwrap_err(),
            SimError::HorizonOverflow {
                warmup: u64::MAX,
                timesteps: c.timesteps
            }
        );
        c.warmup = u64::MAX - c.timesteps;
        assert!(c.validate().is_ok(), "exact fit must not be rejected");
    }

    #[test]
    fn try_run_returns_typed_error_instead_of_panicking() {
        use crate::error::SimError;
        let mut c = SimConfig::paper(1.0);
        c.n_servers = 0;
        let mut rng = StdRng::seed_from_u64(1);
        let err = try_run_simulation(
            c,
            Strategy::UniformRandom,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::TooFewServers {
                n_servers: 0,
                min: 1
            }
        );
    }
}

#[cfg(test)]
mod delay_metric_tests {
    use super::*;
    use crate::task::BernoulliWorkload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wait_percentiles_are_ordered_and_quantum_improves_them() {
        let config = SimConfig {
            n_balancers: 40,
            n_servers: 36, // load ≈ 1.11
            timesteps: 800,
            warmup: 200,
            discipline: Discipline::PaperPairedC,
        };
        // A single replicate's p99 at this budget has seed-level spread
        // comparable to the effect, so compare tails averaged over seeds.
        let run_arm = |strategy: Strategy, lane: u64| -> Vec<SimResult> {
            (0..4)
                .map(|r| {
                    let mut rng = StdRng::seed_from_u64(5 + lane * 100 + r);
                    run_simulation(config, strategy, &mut BernoulliWorkload::paper(), &mut rng)
                })
                .collect()
        };
        let classical = run_arm(Strategy::UniformRandom, 0);
        let quantum = run_arm(Strategy::quantum_ideal(), 1);
        for r in classical.iter().chain(&quantum) {
            assert!(r.p50_wait >= 0.0);
            assert!(r.p99_wait >= r.p50_wait, "{}: p99 < p50", r.strategy);
            assert!(r.avg_wait.is_finite());
        }
        // The paper's Figure 4 caption is about queuing delay: quantum
        // must improve the tail, not just the mean queue length.
        let mean_p99 = |rs: &[SimResult]| rs.iter().map(|r| r.p99_wait).sum::<f64>() / rs.len() as f64;
        let (cp, qp) = (mean_p99(&classical), mean_p99(&quantum));
        assert!(qp <= cp, "quantum mean p99 {qp} vs classical {cp}");
    }
}
