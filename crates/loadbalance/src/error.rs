//! Error type for simulation configuration and the sharded engine.

use std::fmt;

/// Errors produced by simulation configuration validation and the
/// sharded engine ([`crate::shard`]).
///
/// Mirrors [`games::GameError`]: configurations the paper studies never
/// error; these signal structurally impossible requests up front, instead
/// of panicking from deep inside a simulation loop.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// `n_balancers == 0`: no task sources, nothing to simulate.
    NoBalancers,
    /// Fewer servers than the configuration can route to (`0` for any
    /// run; paired strategies need at least 2 to ever split a pair).
    TooFewServers {
        /// Servers requested.
        n_servers: usize,
        /// Minimum the configuration requires.
        min: usize,
    },
    /// `timesteps == 0`: an empty measurement window.
    NoTimesteps,
    /// `warmup + timesteps` overflows u64, so the step counter would
    /// wrap — rejected up front rather than looping forever.
    HorizonOverflow {
        /// Warmup steps requested.
        warmup: u64,
        /// Measured steps requested.
        timesteps: u64,
    },
    /// A load ratio that is not a positive finite number.
    BadLoad {
        /// The offending load.
        load: f64,
    },
    /// An arrival model with an out-of-range probability or period.
    BadArrivalModel {
        /// Label of the offending model.
        model: &'static str,
    },
    /// A queue discipline the lane-split structure-of-arrays backend
    /// cannot represent faithfully.
    UnsupportedDiscipline {
        /// Label of the offending discipline.
        discipline: &'static str,
    },
    /// `shards == 0`: state must live somewhere.
    NoShards,
    /// `epoch_len == 0`: the batch advance would never make progress.
    EmptyEpoch,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoBalancers => write!(f, "need at least one load balancer"),
            SimError::TooFewServers { n_servers, min } => write!(
                f,
                "need at least {min} servers, got {n_servers}"
            ),
            SimError::NoTimesteps => write!(f, "need at least one measured timestep"),
            SimError::HorizonOverflow { warmup, timesteps } => write!(
                f,
                "warmup {warmup} + timesteps {timesteps} overflows the u64 step counter"
            ),
            SimError::BadLoad { load } => {
                write!(f, "load must be a positive finite number, got {load}")
            }
            SimError::BadArrivalModel { model } => {
                write!(f, "arrival model {model:?} has out-of-range parameters")
            }
            SimError::UnsupportedDiscipline { discipline } => write!(
                f,
                "discipline {discipline:?} is not representable in the lane-split \
                 shard backend; use the compatibility path (run_simulation)"
            ),
            SimError::NoShards => write!(f, "need at least one shard"),
            SimError::EmptyEpoch => write!(f, "epoch length must be at least one step"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_numbers() {
        let e = SimError::TooFewServers {
            n_servers: 0,
            min: 2,
        };
        let s = e.to_string();
        assert!(s.contains('0') && s.contains('2'), "{s}");
        let o = SimError::HorizonOverflow {
            warmup: u64::MAX,
            timesteps: 1,
        }
        .to_string();
        assert!(o.contains("overflow"), "{o}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SimError::NoBalancers, SimError::NoBalancers);
        assert_ne!(
            SimError::NoTimesteps,
            SimError::TooFewServers {
                n_servers: 1,
                min: 2
            }
        );
    }
}
