//! Statistical acceptance tests for the CHSH, Mermin, and Magic Square
//! win rates.
//!
//! Every assertion here goes through `qmath::assert_prob_in!`, which
//! checks the *theoretical* win probability against the Wilson interval
//! of the observed counts at an explicit confidence level — the sample
//! size and confidence are part of the assertion, not folded into a
//! hand-tuned tolerance. Run `make test-stat` to see the accounting.

use games::chsh::{ChshGame, ChshVariant, QuantumChshStrategy};
use games::game::{PairStrategy, TwoPlayerGame};
use qmath::assert_prob_in;
use qsim::SharedPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Confidence for all acceptance intervals in this file. At n = 50 000
/// the 99.9% Wilson interval around 0.8536 is ≈ ±0.0052 — tight enough
/// to catch an angle or sign error (worth ≥ 0.02), loose enough that a
/// correct implementation passes for any reasonable seed.
const CONF: f64 = 0.999;
const ROUNDS: u64 = 50_000;

/// Plays `ROUNDS` rounds of `game` with uniform inputs and returns the
/// win count.
fn wins<S: PairStrategy>(game: &ChshGame, strategy: &mut S, rng: &mut StdRng) -> u64 {
    let mut wins = 0u64;
    for _ in 0..ROUNDS {
        let (x, y) = (usize::from(rng.gen::<bool>()), usize::from(rng.gen::<bool>()));
        let (a, b) = strategy.play(x, y, rng);
        wins += u64::from(game.wins(x, y, a, b));
    }
    wins
}

#[test]
fn ideal_chsh_hits_the_tsirelson_win_rate() {
    // cos²(π/8) = 1/2 + √2/4 ≈ 0.85355.
    let mut rng = StdRng::seed_from_u64(100);
    let game = ChshGame::standard();
    let w = wins(&game, &mut QuantumChshStrategy::ideal(), &mut rng);
    assert_prob_in!(w, ROUNDS, games::chsh_quantum_value(), conf = CONF);
}

#[test]
fn flipped_chsh_hits_the_same_value() {
    let mut rng = StdRng::seed_from_u64(101);
    let game = ChshGame::flipped();
    let w = wins(&game, &mut QuantumChshStrategy::ideal_flipped(), &mut rng);
    assert_prob_in!(w, ROUNDS, games::chsh_quantum_value(), conf = CONF);
}

#[test]
fn depolarized_pairs_hit_the_werner_closed_form() {
    // A Bell pair depolarized to visibility v (qsim::noise::werner) wins
    // CHSH with probability exactly 1/2 + v·√2/4.
    for (lane, v) in [0.9f64, 0.6].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(200 + lane as u64);
        let game = ChshGame::standard();
        let rho = qsim::noise::werner(v).expect("valid visibility");
        let mut strategy = QuantumChshStrategy::with_source(
            move || SharedPair::from_density(rho.clone()).expect("valid Werner state"),
            ChshVariant::Standard,
        );
        let w = wins(&game, &mut strategy, &mut rng);
        let expected = 0.5 + v * std::f64::consts::SQRT_2 / 4.0;
        assert_prob_in!(w, ROUNDS, expected, conf = CONF);
    }
}

#[test]
fn sub_threshold_visibility_is_significantly_below_classical() {
    // v = 0.5 < 1/√2: the upper Wilson bound must sit below 0.75, i.e.
    // the degradation is statistically significant, not just a smaller
    // point estimate.
    let mut rng = StdRng::seed_from_u64(300);
    let game = ChshGame::standard();
    let v = 0.5;
    let mut strategy = QuantumChshStrategy::with_source(
        move || SharedPair::werner(v).expect("valid visibility"),
        ChshVariant::Standard,
    );
    let w = wins(&game, &mut strategy, &mut rng);
    let check = assert_prob_in!(w, ROUNDS, 0.5 + v * std::f64::consts::SQRT_2 / 4.0, conf = CONF);
    assert!(
        check.hi < 0.75,
        "upper bound {:.4} must fall below the classical optimum (n = {ROUNDS}, conf = {CONF})",
        check.hi
    );
}

#[test]
fn mermin_kernel_hits_the_closed_form_for_three_to_eight_players() {
    // The X/Y strategy on a visibility-v GHZ state wins the Mermin game
    // with probability exactly (1 + v)/2 for EVERY player count — the
    // ISSUE-mandated pinning of the kernel win rate, n = 3..8 at
    // 99.9%/50k.
    for n in 3..=8usize {
        for (lane, v) in [1.0f64, 0.8, 0.4].into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(400 + 10 * n as u64 + lane as u64);
            let kernel = qsim::ghz::NoisyGhz::new(n, v).expect("valid visibility");
            let batch = games::multiparty::play_mermin_batch(&kernel, ROUNDS, &mut rng);
            assert_prob_in!(
                batch.wins,
                ROUNDS,
                games::multiparty::mermin_quantum_win(v),
                conf = CONF
            );
        }
    }
}

#[test]
fn mermin_kernel_beats_the_classical_bound_above_crossover() {
    // At n = 6, v = 0.6 sits well above the crossover v* = 2^{-2} = 0.25:
    // the LOWER Wilson bound must clear the classical ceiling 0.625.
    let mut rng = StdRng::seed_from_u64(500);
    let n = 6;
    let v = 0.6;
    let kernel = qsim::ghz::NoisyGhz::new(n, v).expect("valid visibility");
    let batch = games::multiparty::play_mermin_batch(&kernel, ROUNDS, &mut rng);
    let check = assert_prob_in!(
        batch.wins,
        ROUNDS,
        games::multiparty::mermin_quantum_win(v),
        conf = CONF
    );
    let bound = games::multiparty::mermin_classical_bound(n);
    assert!(
        check.lo > bound,
        "lower bound {:.4} must clear the classical ceiling {bound} (n = {ROUNDS}, conf = {CONF})",
        check.lo
    );
}

#[test]
fn magic_square_hits_its_closed_form() {
    // Two visibility-v Werner pairs win the Magic Square with probability
    // exactly 1/2 + (4v + 5v²)/18 under uniform referee questions.
    for (lane, v) in [1.0f64, 0.9, 0.5].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(600 + lane as u64);
        let game = games::magic::MagicSquare::new(v).expect("valid visibility");
        let batch = game.play_batch(ROUNDS, &mut rng);
        assert_prob_in!(batch.wins, ROUNDS, games::magic::quantum_win(v), conf = CONF);
    }
}
