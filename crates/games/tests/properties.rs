//! Property-based invariants of the games layer.

use games::{AffinityGraph, CorrelationBox, XorGame};
use proptest::prelude::*;
use qmath::RMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random XOR game from proptest-supplied raw weights/targets.
fn build_game(weights: &[f64], targets: &[bool], n: usize) -> XorGame {
    let total: f64 = weights.iter().sum();
    let prob = RMatrix::from_fn(n, n, |x, y| weights[x * n + y] / total);
    let target = (0..n)
        .map(|x| (0..n).map(|y| targets[x * n + y]).collect())
        .collect();
    XorGame::new(prob, target)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quantum value ≥ classical value for arbitrary games (vectors can
    /// always embed a deterministic sign strategy).
    #[test]
    fn quantum_dominates_classical(
        weights in proptest::collection::vec(0.01f64..1.0, 9),
        targets in proptest::collection::vec(any::<bool>(), 9),
        seed in 0u64..512)
    {
        let game = build_game(&weights, &targets, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let q = game.quantum_solution(6, &mut rng).value;
        let c = game.classical_value().unwrap();
        prop_assert!(q >= c - 1e-6, "quantum {} < classical {}", q, c);
    }

    /// Game values always lie in [1/2, 1]: random answers win half the
    /// weight of any XOR condition, and nothing exceeds certainty.
    #[test]
    fn values_are_bounded(
        weights in proptest::collection::vec(0.01f64..1.0, 9),
        targets in proptest::collection::vec(any::<bool>(), 9),
        seed in 0u64..512)
    {
        let game = build_game(&weights, &targets, 3);
        let c = game.classical_value().unwrap();
        prop_assert!((0.5..=1.0 + 1e-9).contains(&c), "classical {}", c);
        let mut rng = StdRng::seed_from_u64(seed);
        let q = game.quantum_value(&mut rng);
        prop_assert!(q <= 1.0 + 1e-6, "quantum {}", q);
    }

    /// Correlation boxes built from solver output always satisfy
    /// normalization and no-signaling structure.
    #[test]
    fn solver_boxes_are_proper_distributions(
        weights in proptest::collection::vec(0.01f64..1.0, 4),
        targets in proptest::collection::vec(any::<bool>(), 4),
        seed in 0u64..512)
    {
        let game = build_game(&weights, &targets, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let sol = game.quantum_solution(6, &mut rng);
        let boxx = CorrelationBox::new(sol.correlation_matrix());
        for x in 0..2 {
            for y in 0..2 {
                let mut total = 0.0;
                for a in [false, true] {
                    for b in [false, true] {
                        let p = boxx.probability(x, y, a, b);
                        prop_assert!((0.0..=1.0).contains(&p));
                        total += p;
                    }
                }
                prop_assert!((total - 1.0).abs() < 1e-9);
                // Uniform marginals by construction.
                let pa1 = boxx.probability(x, y, true, false)
                    + boxx.probability(x, y, true, true);
                prop_assert!((pa1 - 0.5).abs() < 1e-9);
            }
        }
        prop_assert!(boxx.satisfies_tsirelson());
    }

    /// Random affinity graphs: the game value equals 1 exactly when the
    /// labeling is classically satisfiable, and the quantum value then
    /// offers no advantage.
    #[test]
    fn satisfiable_graphs_have_no_advantage(seed in 0u64..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = AffinityGraph::random(4, 0.3, &mut rng);
        let game = g.to_xor_game(true);
        let c = game.classical_value().unwrap();
        if (c - 1.0).abs() < 1e-12 {
            prop_assert!(!game.has_quantum_advantage(1e-4, &mut rng).unwrap());
        }
    }

    /// Gray-code classical enumeration agrees with the naive
    /// full-rescan oracle on random games up to n = 12 inputs per side.
    /// (Incremental column-sum updates accumulate rounding over 2^n
    /// steps; 1e-9 absolute leaves ~4 orders of magnitude of headroom.)
    #[test]
    fn gray_code_matches_naive_oracle(
        n in 2usize..13,
        seed in 0u64..1024)
    {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut weights = vec![0.0; n * n];
        for w in weights.iter_mut() {
            *w = rng.gen::<f64>() + 0.01;
        }
        let targets: Vec<bool> = (0..n * n).map(|_| rng.gen()).collect();
        let game = build_game(&weights, &targets, n);
        let gray = game.classical_bias().unwrap();
        let naive = game.classical_bias_naive().unwrap();
        prop_assert!(
            (gray - naive).abs() < 1e-9,
            "n = {}: gray {} vs naive {}", n, gray, naive
        );
    }

    /// Canonical cache keys are invariant under vertex relabelings of
    /// the same affinity graph (the cache's hit-rate guarantee for the
    /// Figure 3 sweeps).
    #[test]
    fn canonical_key_relabeling_invariance(
        n in 3usize..8,
        seed in 0u64..1024)
    {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = AffinityGraph::random(n, 0.5, &mut rng);
        // Fisher-Yates permutation of the vertices.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((perm[i], perm[j], g.is_exclusive(i, j)));
            }
        }
        let relabeled = AffinityGraph::from_edges(n, &edges);
        prop_assert_eq!(
            games::cache::canonical_key(&g.to_xor_game(true)),
            games::cache::canonical_key(&relabeled.to_xor_game(true))
        );
    }

    /// The empirical win rate of the solved strategy matches the solved
    /// value (referee-level self-consistency).
    #[test]
    fn solution_value_is_achievable(seed in 0u64..64) {
        use games::game::TwoPlayerGame;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = AffinityGraph::random(3, 0.5, &mut rng);
        let game = g.to_xor_game(true);
        let sol = game.quantum_solution(8, &mut rng);
        let boxx = CorrelationBox::new(sol.correlation_matrix());
        let rounds = 30_000;
        let mut wins = 0usize;
        for _ in 0..rounds {
            let (x, y) = game.sample_inputs(&mut rng);
            let (a, b) = boxx.sample(x, y, &mut rng);
            wins += usize::from(game.wins(x, y, a, b));
        }
        let rate = wins as f64 / rounds as f64;
        prop_assert!(
            (rate - sol.value).abs() < 0.02,
            "empirical {} vs solved {}", rate, sol.value
        );
    }
}
