//! Quantum correlation boxes: sampling correlated outputs directly from a
//! correlation matrix.
//!
//! For XOR games, the optimal quantum strategy is characterized by unit
//! vectors whose inner products form a correlation matrix `C[x][y] ∈ [−1,1]`
//! (Tsirelson). The realized joint distribution with *uniform marginals* is
//!
//! ```text
//! p(a, b | x, y) = (1 + (−1)^{a⊕b} · C[x][y]) / 4
//! ```
//!
//! Sampling from this closed form is statistically identical to simulating
//! the entangled measurement but ~50× cheaper (benchmark `chsh`), which
//! matters for the large load-balancing sweeps. Every matrix that is the
//! Gram cross-block of unit vectors is quantum-realizable, so this is not a
//! super-quantum "PR box" shortcut — [`CorrelationBox::new`] enforces
//! `|C| ≤ 1` and callers obtain `C` from [`crate::xor::QuantumSolution`].

use qmath::RMatrix;
use rand::Rng;

/// A two-party correlation box with uniform marginals.
///
/// Construction precomputes, per input pair `(x, y)`, the joint
/// probability table and its CDF over the four outcomes
/// `(a, b) ∈ {00, 01, 10, 11}` — the sweep inner loops (Fig 4, E8) call
/// [`CorrelationBox::sample`] millions of times, and the cached CDF turns
/// each call into a single uniform draw plus three comparisons instead of
/// two draws and a rebuilt distribution.
#[derive(Debug, Clone)]
pub struct CorrelationBox {
    c: RMatrix,
    /// Row-major per-(x,y) joint probabilities `[p00, p01, p10, p11]`.
    joint: Vec<[f64; 4]>,
    /// Row-major per-(x,y) CDF prefix `[p00, p00+p01, p00+p01+p10]` (the
    /// final 1.0 is implicit), scaled by 2⁵³ and rounded up. A uniform
    /// f64 in [0,1) is exactly `(next_u64() >> 11) · 2⁻⁵³`, so comparing
    /// the raw 53-bit draw against `ceil(p · 2⁵³)` realizes the identical
    /// distribution while keeping the hot path in integer registers.
    cdf: Vec<[u64; 3]>,
}

/// 2⁵³ as f64 — the probability-to-threshold scale.
const CDF_ONE: f64 = (1u64 << 53) as f64;

impl CorrelationBox {
    /// Builds a box from a correlation matrix.
    ///
    /// # Panics
    /// Panics if any entry falls outside `[−1, 1]` (allowing `1e-9` slack
    /// for solver round-off, which is clamped).
    pub fn new(mut c: RMatrix) -> Self {
        let (rows, cols) = (c.rows(), c.cols());
        let mut joint = Vec::with_capacity(rows * cols);
        let mut cdf = Vec::with_capacity(rows * cols);
        for x in 0..rows {
            for y in 0..cols {
                let v = c[(x, y)];
                assert!(v.abs() <= 1.0 + 1e-9, "correlation {v} out of range");
                let v = v.clamp(-1.0, 1.0);
                c[(x, y)] = v;
                let agree = (1.0 + v) / 4.0;
                let differ = (1.0 - v) / 4.0;
                // Outcome order (a, b): 00, 01, 10, 11.
                joint.push([agree, differ, differ, agree]);
                let scale = |p: f64| (p * CDF_ONE).ceil() as u64;
                cdf.push([
                    scale(agree),
                    scale(agree + differ),
                    scale(agree + 2.0 * differ),
                ]);
            }
        }
        let boxx = CorrelationBox { c, joint, cdf };
        boxx.debug_assert_tables_normalized();
        boxx
    }

    /// Debug-only invariant: every cached joint distribution sums to 1
    /// within 1e-12 and its scaled CDF is monotone in `[0, 2⁵³]` (the
    /// integer image of `[0, 1]`, with 1e-12 of slack scaled alike).
    #[inline]
    fn debug_assert_tables_normalized(&self) {
        if cfg!(debug_assertions) {
            for (k, (p, t)) in self.joint.iter().zip(&self.cdf).enumerate() {
                let total: f64 = p.iter().sum();
                debug_assert!(
                    (total - 1.0).abs() <= 1e-12,
                    "joint table {k} sums to {total}"
                );
                debug_assert!(
                    t[0] <= t[1]
                        && t[1] <= t[2]
                        && (t[2] as f64) <= (1.0 + 1e-12) * CDF_ONE,
                    "CDF table {k} not monotone: {t:?}"
                );
            }
        }
    }

    #[inline]
    fn table_index(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.c.rows() && y < self.c.cols());
        x * self.c.cols() + y
    }

    /// The optimal CHSH correlation box: `C[x][y] = (−1)^{x∧y}/√2`.
    pub fn chsh_optimal() -> Self {
        let f = std::f64::consts::FRAC_1_SQRT_2;
        CorrelationBox::new(RMatrix::from_fn(2, 2, |x, y| {
            if x == 1 && y == 1 {
                -f
            } else {
                f
            }
        }))
    }

    /// The correlation value `C[x][y] = E[(−1)^{a⊕b} | x, y]`.
    pub fn correlation(&self, x: usize, y: usize) -> f64 {
        self.c[(x, y)]
    }

    /// Number of Alice inputs.
    pub fn n_a(&self) -> usize {
        self.c.rows()
    }

    /// Number of Bob inputs.
    pub fn n_b(&self) -> usize {
        self.c.cols()
    }

    /// Samples one round: returns `(a, b)` from `p(a,b|x,y)` with uniform
    /// marginals.
    ///
    /// Hot path: one uniform draw inverted through the precomputed CDF
    /// (three branchless integer comparisons — no float conversion).
    /// Uniform marginals hold exactly because `p00 = p11` and `p01 = p10`
    /// by construction.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, x: usize, y: usize, rng: &mut R) -> (bool, bool) {
        let t = &self.cdf[self.table_index(x, y)];
        // The top 53 bits are the same draw `gen::<f64>()` would make.
        let h = rng.next_u64() >> 11;
        let k = usize::from(h >= t[0]) + usize::from(h >= t[1]) + usize::from(h >= t[2]);
        (k & 0b10 != 0, k & 0b01 != 0)
    }

    /// Probability of `(a, b)` given `(x, y)` (cached table lookup).
    #[inline]
    pub fn probability(&self, x: usize, y: usize, a: bool, b: bool) -> f64 {
        self.joint[self.table_index(x, y)][(usize::from(a) << 1) | usize::from(b)]
    }

    /// The CHSH operator value
    /// `S = C[0][0] + C[0][1] + C[1][0] − C[1][1]` (for 2×2 boxes).
    ///
    /// # Panics
    /// Panics for non-2×2 boxes.
    pub fn chsh_operator(&self) -> f64 {
        assert_eq!((self.c.rows(), self.c.cols()), (2, 2), "CHSH needs 2x2");
        self.c[(0, 0)] + self.c[(0, 1)] + self.c[(1, 0)] - self.c[(1, 1)]
    }

    /// True if the box satisfies Tsirelson's bound `|S| ≤ 2√2` (all
    /// quantum-realizable 2×2 boxes do; a PR box would violate it).
    pub fn satisfies_tsirelson(&self) -> bool {
        self.chsh_operator().abs() <= 2.0 * std::f64::consts::SQRT_2 + 1e-9
    }

    /// Empirically verifies no-signaling: Alice's marginal distribution of
    /// `a` is independent of `y` (and symmetrically for Bob). Returns the
    /// worst absolute marginal deviation from 1/2 over all inputs — exactly
    /// 0 in theory; bounded by Monte-Carlo error in `samples` draws.
    pub fn no_signaling_deviation<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> f64 {
        let mut worst: f64 = 0.0;
        for x in 0..self.n_a() {
            for y in 0..self.n_b() {
                let mut a_ones = 0usize;
                let mut b_ones = 0usize;
                for _ in 0..samples {
                    let (a, b) = self.sample(x, y, rng);
                    a_ones += usize::from(a);
                    b_ones += usize::from(b);
                }
                worst = worst
                    .max((a_ones as f64 / samples as f64 - 0.5).abs())
                    .max((b_ones as f64 / samples as f64 - 0.5).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let boxx = CorrelationBox::chsh_optimal();
        for x in 0..2 {
            for y in 0..2 {
                let total: f64 = [(false, false), (false, true), (true, false), (true, true)]
                    .iter()
                    .map(|&(a, b)| boxx.probability(x, y, a, b))
                    .sum();
                assert!((total - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sample_statistics_match_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let boxx = CorrelationBox::chsh_optimal();
        let trials = 50_000;
        for x in 0..2 {
            for y in 0..2 {
                let mut agree = 0usize;
                for _ in 0..trials {
                    let (a, b) = boxx.sample(x, y, &mut rng);
                    agree += usize::from(a == b);
                }
                let f = agree as f64 / trials as f64;
                let expect = (1.0 + boxx.correlation(x, y)) / 2.0;
                assert!((f - expect).abs() < 0.01, "({x},{y}): {f} vs {expect}");
            }
        }
    }

    #[test]
    fn cached_tables_match_closed_form() {
        // The precomputed joint/CDF tables must agree exactly with the
        // (1 ± c)/4 closed form they replaced.
        let boxx = CorrelationBox::new(RMatrix::from_fn(3, 2, |x, y| {
            (0.9 - 0.35 * x as f64) * if y == 0 { 1.0 } else { -1.0 }
        }));
        for x in 0..3 {
            for y in 0..2 {
                let c = boxx.correlation(x, y);
                for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                    let sign = if a == b { 1.0 } else { -1.0 };
                    let closed = (1.0 + sign * c) / 4.0;
                    assert!(
                        (boxx.probability(x, y, a, b) - closed).abs() < 1e-15,
                        "({x},{y},{a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn sample_joint_frequencies_match_tables() {
        // The single-draw CDF inversion must realize the cached joint
        // distribution, not merely the agreement rate.
        let mut rng = StdRng::seed_from_u64(6);
        let boxx = CorrelationBox::chsh_optimal();
        let trials = 80_000;
        for x in 0..2 {
            for y in 0..2 {
                let mut counts = [0usize; 4];
                for _ in 0..trials {
                    let (a, b) = boxx.sample(x, y, &mut rng);
                    counts[(usize::from(a) << 1) | usize::from(b)] += 1;
                }
                for (k, &n) in counts.iter().enumerate() {
                    let (a, b) = (k & 0b10 != 0, k & 0b01 != 0);
                    let expect = boxx.probability(x, y, a, b);
                    let freq = n as f64 / trials as f64;
                    assert!(
                        (freq - expect).abs() < 0.01,
                        "({x},{y}) outcome {k}: {freq} vs {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn chsh_operator_at_tsirelson_bound() {
        let boxx = CorrelationBox::chsh_optimal();
        assert!((boxx.chsh_operator() - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(boxx.satisfies_tsirelson());
    }

    #[test]
    fn pr_box_would_violate_tsirelson() {
        // The (non-quantum) PR box has C = [[1,1],[1,-1]], S = 4.
        let pr = CorrelationBox::new(RMatrix::from_fn(2, 2, |x, y| {
            if x == 1 && y == 1 {
                -1.0
            } else {
                1.0
            }
        }));
        assert!(!pr.satisfies_tsirelson());
    }

    #[test]
    fn no_signaling_holds() {
        let mut rng = StdRng::seed_from_u64(2);
        let boxx = CorrelationBox::chsh_optimal();
        let dev = boxx.no_signaling_deviation(20_000, &mut rng);
        assert!(dev < 0.02, "marginal deviation {dev}");
    }

    #[test]
    fn chsh_win_rate_from_box() {
        // Playing CHSH by sampling the optimal box achieves cos²(π/8).
        let mut rng = StdRng::seed_from_u64(3);
        let boxx = CorrelationBox::chsh_optimal();
        let trials = 100_000;
        let mut wins = 0usize;
        for i in 0..trials {
            let (x, y) = ((i / 2) % 2, i % 2);
            let (a, b) = boxx.sample(x, y, &mut rng);
            let target = x == 1 && y == 1;
            wins += usize::from((a ^ b) == target);
        }
        let rate = wins as f64 / trials as f64;
        assert!(
            (rate - crate::chsh_quantum_value()).abs() < 0.01,
            "rate {rate}"
        );
    }

    #[test]
    fn box_from_solver_solution_is_valid() {
        let mut rng = StdRng::seed_from_u64(4);
        let sol = crate::xor::XorGame::chsh().quantum_solution(8, &mut rng);
        let boxx = CorrelationBox::new(sol.correlation_matrix());
        assert!(boxx.satisfies_tsirelson());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_correlation_panics() {
        CorrelationBox::new(RMatrix::from_fn(1, 1, |_, _| 1.5));
    }

    #[test]
    fn perfect_correlation_and_anticorrelation() {
        let mut rng = StdRng::seed_from_u64(5);
        let boxx = CorrelationBox::new(RMatrix::from_fn(1, 2, |_, y| {
            if y == 0 {
                1.0
            } else {
                -1.0
            }
        }));
        for _ in 0..100 {
            let (a, b) = boxx.sample(0, 0, &mut rng);
            assert_eq!(a, b);
            let (a, b) = boxx.sample(0, 1, &mut rng);
            assert_ne!(a, b);
        }
    }
}
