//! The Mermin–Peres Magic Square game: two-player pseudo-telepathy.
//!
//! Alongside the n-player Mermin parity game, the Magic Square is the
//! other canonical pseudo-telepathy workload ROADMAP item 2 calls for
//! (da Silva & Wehner single both out as near-term coordination
//! primitives). The referee names Alice a **row** and Bob a **column**
//! of a 3×3 grid; Alice answers three ±1 values with product **+1**,
//! Bob three values with product **−1**, and they win iff they agree on
//! the shared cell. No classical strategy can fill the grid consistently
//! (the parity constraints are contradictory), capping classical play at
//! **8/9**; measuring the two-observable-per-qubit square below on two
//! shared Bell pairs wins with probability **1**.
//!
//! The observable grid (cell `(i, j)` acts on pair 1 ⊗ pair 2):
//!
//! ```text
//!     I⊗Z    Z⊗I    Z⊗Z        row products  = +I
//!     X⊗I    I⊗X    X⊗X        col products  = −I
//!    −X⊗Z   −Z⊗X    Y⊗Y
//! ```
//!
//! Noise model: each shared pair is a Werner state with visibility `v`,
//! equivalent (by the Pauli twirl) to a perfect pair whose Bob half
//! suffers a uniform Pauli error with probability `3(1−v)/4`. A cell
//! correlation is `v` per non-identity tensor factor, giving the closed
//! form [`quantum_win`] `= 1/2 + (4v + 5v²)/18` and a classical
//! crossover at `v* = (√39 − 2)/5 ≈ 0.849` ([`crossover_visibility`]).
//! [`MagicSquare::play_round`] samples rounds directly from the twirl —
//! O(1) per round, same costing discipline as the GHZ kernel.

use qsim::SimError;
use rand::Rng;

use obs::LazyCounter;

/// Magic-square rounds played (batch or single).
static ROUNDS: LazyCounter = LazyCounter::new("games.magic.rounds");

/// Single-qubit Pauli label (`I`, `X`, `Y`, `Z`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// Whether two Paulis anticommute (both non-identity and distinct).
    pub fn anticommutes(self, other: Pauli) -> bool {
        self != Pauli::I && other != Pauli::I && self != other
    }
}

use Pauli::{I, X, Y, Z};

/// The observable square: `SQUARE[i][j]` is (sign, pair-1 Pauli, pair-2
/// Pauli) of cell `(i, j)`. Row products are `+I⊗I`, column products
/// `−I⊗I` (verified algebraically in the tests).
pub const SQUARE: [[(i8, Pauli, Pauli); 3]; 3] = [
    [(1, I, Z), (1, Z, I), (1, Z, Z)],
    [(1, X, I), (1, I, X), (1, X, X)],
    [(-1, X, Z), (-1, Z, X), (1, Y, Y)],
];

/// Win predicate: outputs are bit-vectors (`true` ↔ value −1). Alice's
/// row triple must have even parity (product +1), Bob's column triple odd
/// parity (product −1) — both guaranteed by honest players — and they
/// win iff they agree on the intersection cell.
pub fn magic_wins(row: usize, col: usize, alice: [bool; 3], bob: [bool; 3]) -> bool {
    debug_assert!(!(alice[0] ^ alice[1] ^ alice[2]), "row product must be +1");
    debug_assert!(bob[0] ^ bob[1] ^ bob[2], "column product must be −1");
    alice[col] == bob[row]
}

/// The classical optimum **8/9**, by exhaustive search: Alice picks one
/// of the 4 even-parity triples per row, Bob one of the 4 odd-parity
/// triples per column (64 × 64 deterministic strategies, 9 cells each).
pub fn classical_optimum() -> f64 {
    // Triple encodings: low 2 bits free, third bit closes the parity.
    let triple = |enc: u64, odd: bool| -> [bool; 3] {
        let (b0, b1) = (enc & 1 == 1, enc >> 1 & 1 == 1);
        [b0, b1, b0 ^ b1 ^ odd]
    };
    let mut best = 0usize;
    for sa in 0u64..64 {
        for sb in 0u64..64 {
            let wins = (0..9)
                .filter(|cell| {
                    let (row, col) = (cell / 3, cell % 3);
                    let a = triple(sa >> (2 * row) & 3, false);
                    let b = triple(sb >> (2 * col) & 3, true);
                    magic_wins(row, col, a, b)
                })
                .count();
            best = best.max(wins);
        }
    }
    best as f64 / 9.0
}

/// Closed-form quantum win probability of the optimal strategy on two
/// visibility-`v` Werner pairs: `1/2 + (4v + 5v²)/18` — the four
/// identity-containing cells correlate as `v`, the other five as `v²`.
pub fn quantum_win(visibility: f64) -> f64 {
    0.5 + (4.0 * visibility + 5.0 * visibility * visibility) / 18.0
}

/// The visibility where [`quantum_win`] meets the classical 8/9:
/// the positive root of `5v² + 4v − 7 = 0`, `v* = (√39 − 2)/5 ≈ 0.8490`.
pub fn crossover_visibility() -> f64 {
    (39f64.sqrt() - 2.0) / 5.0
}

/// Result of a [`MagicSquare::play_batch`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MagicBatch {
    /// Rounds won.
    pub wins: u64,
    /// Rounds played.
    pub rounds: u64,
}

impl MagicBatch {
    /// Empirical win rate (`NaN` for an empty batch).
    pub fn win_rate(&self) -> f64 {
        self.wins as f64 / self.rounds as f64
    }
}

/// The Magic Square game over two shared visibility-`v` Werner pairs,
/// sampled via the Pauli-twirl reduction (no statevector in the loop).
#[derive(Debug, Clone)]
pub struct MagicSquare {
    visibility: f64,
}

impl MagicSquare {
    /// Builds the game at the given Werner-pair visibility.
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if `visibility ∉ [0, 1]`.
    pub fn new(visibility: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&visibility) || visibility.is_nan() {
            return Err(SimError::BadProbability { value: visibility });
        }
        Ok(MagicSquare { visibility })
    }

    /// The noiseless game (`v = 1`): pseudo-telepathy, win rate 1.
    pub fn ideal() -> Self {
        MagicSquare { visibility: 1.0 }
    }

    /// The shared pairs' visibility.
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Draws one Pauli-twirl error for a Werner pair's Bob half:
    /// `I` with probability `(1 + 3v)/4`, else uniform over `{X, Y, Z}`.
    fn twirl_error<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        if rng.gen::<f64>() < 0.25 * (1.0 + 3.0 * self.visibility) {
            Pauli::I
        } else {
            [Pauli::X, Pauli::Y, Pauli::Z][rng.gen_range(0..3usize)]
        }
    }

    /// Plays one round on fresh pairs: Alice measures `row`, Bob `col`.
    /// Returns `(alice, bob)` outcome triples (`true` ↔ value −1).
    ///
    /// Sampling uses the exact measurement statistics: Alice's triple is
    /// uniform over the even-parity options; Bob's clean triple copies
    /// Alice at the intersection and closes the odd parity; a Pauli
    /// twirl error per pair then flips Bob's cell `i` iff the error
    /// anticommutes with cell `(i, col)`'s tensor factors an odd number
    /// of times (the flips multiply to +1 down a column, so the parity
    /// promise survives noise).
    pub fn play_round<R: Rng + ?Sized>(
        &self,
        row: usize,
        col: usize,
        rng: &mut R,
    ) -> ([bool; 3], [bool; 3]) {
        assert!(row < 3 && col < 3, "magic square is 3×3");
        ROUNDS.inc();
        let mut alice = [rng.gen::<bool>(), rng.gen::<bool>(), false];
        alice[2] = alice[0] ^ alice[1];
        let mut bob = [false; 3];
        bob[row] = alice[col];
        let (o1, o2) = ((row + 1) % 3, (row + 2) % 3);
        bob[o1] = rng.gen::<bool>();
        bob[o2] = !(bob[row] ^ bob[o1]);
        let (e1, e2) = (self.twirl_error(rng), self.twirl_error(rng));
        for (i, b) in bob.iter_mut().enumerate() {
            let (_, p1, p2) = SQUARE[i][col];
            *b ^= e1.anticommutes(p1) ^ e2.anticommutes(p2);
        }
        (alice, bob)
    }

    /// Plays `rounds` rounds with uniformly-drawn `(row, col)` referee
    /// questions, counting wins.
    pub fn play_batch<R: Rng + ?Sized>(&self, rounds: u64, rng: &mut R) -> MagicBatch {
        let mut wins = 0u64;
        for _ in 0..rounds {
            let (row, col) = (rng.gen_range(0..3), rng.gen_range(0..3));
            let (a, b) = self.play_round(row, col, rng);
            wins += u64::from(magic_wins(row, col, a, b));
        }
        MagicBatch { wins, rounds }
    }

    /// Exact win probability on question `(row, col)` by enumerating the
    /// 16 Pauli-twirl error pairs — the non-statistical oracle for
    /// [`play_round`], pinned to the closed form in the tests.
    pub fn exact_cell_win(&self, row: usize, col: usize) -> f64 {
        assert!(row < 3 && col < 3, "magic square is 3×3");
        let p_id = 0.25 * (1.0 + 3.0 * self.visibility);
        let p_err = 0.25 * (1.0 - self.visibility);
        let prob = |p: Pauli| if p == Pauli::I { p_id } else { p_err };
        let (_, c1, c2) = SQUARE[row][col];
        [I, X, Y, Z]
            .iter()
            .flat_map(|&e1| [I, X, Y, Z].iter().map(move |&e2| (e1, e2)))
            .filter(|&(e1, e2)| !(e1.anticommutes(c1) ^ e2.anticommutes(c2)))
            .map(|(e1, e2)| prob(e1) * prob(e2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Single-qubit Pauli product with phase: returns (i-power, result).
    fn pauli_mul(a: Pauli, b: Pauli) -> (u8, Pauli) {
        use Pauli::*;
        match (a, b) {
            (I, p) | (p, I) => (0, p),
            (p, q) if p == q => (0, I),
            // Cyclic: XY = iZ, YZ = iX, ZX = iY; reversed pick up −i (i³).
            (X, Y) => (1, Z),
            (Y, Z) => (1, X),
            (Z, X) => (1, Y),
            (Y, X) => (3, Z),
            (Z, Y) => (3, X),
            (X, Z) => (3, Y),
            _ => unreachable!(),
        }
    }

    /// Product of three cells: (overall sign, pair-1 Pauli, pair-2 Pauli).
    fn product(cells: [(i8, Pauli, Pauli); 3]) -> (i8, Pauli, Pauli) {
        let mut sign = 1i8;
        let mut phase = 0u8; // power of i, mod 4
        let (mut p1, mut p2) = (Pauli::I, Pauli::I);
        for (s, a, b) in cells {
            sign *= s;
            let (ph1, r1) = pauli_mul(p1, a);
            let (ph2, r2) = pauli_mul(p2, b);
            phase = (phase + ph1 + ph2) % 4;
            (p1, p2) = (r1, r2);
        }
        assert_eq!(phase % 2, 0, "observable products must be Hermitian");
        if phase == 2 {
            sign = -sign;
        }
        (sign, p1, p2)
    }

    #[test]
    fn square_is_magic() {
        // Row products +I⊗I, column products −I⊗I: the parity structure
        // that makes the grid classically unfillable.
        for (i, row) in SQUARE.iter().enumerate() {
            assert_eq!(product(*row), (1, Pauli::I, Pauli::I), "row {i}");
            let col = [SQUARE[0][i], SQUARE[1][i], SQUARE[2][i]];
            assert_eq!(product(col), (-1, Pauli::I, Pauli::I), "column {i}");
        }
    }

    #[test]
    fn classical_optimum_is_eight_ninths() {
        assert!((classical_optimum() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn exact_cells_match_the_closed_form() {
        // Cell correlation is v per non-identity factor: 4 cells at v,
        // 5 at v²; the uniform-question average is quantum_win(v).
        for v in [0.0, 0.3, 0.7, crossover_visibility(), 0.95, 1.0] {
            let game = MagicSquare::new(v).unwrap();
            let mut avg = 0.0;
            for (row, cells) in SQUARE.iter().enumerate() {
                for (col, &(_, p1, p2)) in cells.iter().enumerate() {
                    let k = i32::from(p1 != Pauli::I) + i32::from(p2 != Pauli::I);
                    let expect = 0.5 * (1.0 + v.powi(k));
                    let exact = game.exact_cell_win(row, col);
                    assert!(
                        (exact - expect).abs() < 1e-12,
                        "v = {v}, cell ({row},{col}): {exact} vs {expect}"
                    );
                    avg += exact / 9.0;
                }
            }
            assert!((avg - quantum_win(v)).abs() < 1e-12, "v = {v}");
        }
    }

    #[test]
    fn ideal_game_always_wins() {
        let mut rng = StdRng::seed_from_u64(21);
        let game = MagicSquare::ideal();
        for row in 0..3 {
            for col in 0..3 {
                for _ in 0..200 {
                    let (a, b) = game.play_round(row, col, &mut rng);
                    assert!(magic_wins(row, col, a, b), "lost cell ({row},{col})");
                }
            }
        }
        let batch = game.play_batch(2000, &mut rng);
        assert_eq!(batch.wins, batch.rounds);
    }

    #[test]
    fn noisy_rounds_keep_the_parity_promise() {
        // The twirl flips multiply to +1 down a column, so even heavy
        // noise never produces an invalid (dishonest) answer triple.
        let mut rng = StdRng::seed_from_u64(22);
        let game = MagicSquare::new(0.2).unwrap();
        for _ in 0..2000 {
            let (row, col) = (rng.gen_range(0..3), rng.gen_range(0..3));
            let (a, b) = game.play_round(row, col, &mut rng);
            assert!(!(a[0] ^ a[1] ^ a[2]), "Alice parity broken");
            assert!(b[0] ^ b[1] ^ b[2], "Bob parity broken");
        }
    }

    #[test]
    fn crossover_meets_the_classical_optimum() {
        let v = crossover_visibility();
        assert!((quantum_win(v) - 8.0 / 9.0).abs() < 1e-12);
        assert!((quantum_win(1.0) - 1.0).abs() < 1e-12);
        assert!((quantum_win(0.0) - 0.5).abs() < 1e-12);
        // The magic square needs much cleaner states than Mermin at
        // moderate n: its crossover sits at ≈0.849.
        assert!((v - 0.849).abs() < 1e-3);
    }

    #[test]
    fn rejects_bad_visibility() {
        assert!(MagicSquare::new(-0.1).is_err());
        assert!(MagicSquare::new(1.1).is_err());
        assert!(MagicSquare::new(f64::NAN).is_err());
    }
}
