//! # games — quantum non-local games
//!
//! The theory layer of the reproduction: two-player XOR games (the class
//! the paper maps load balancing onto, §4.1), the CHSH game as the
//! canonical instance, multiparty GHZ/Mermin games, and the quantum-value
//! solvers that replace the paper's use of the Toqito Python package.
//!
//! ## Structure
//!
//! - [`game`]: referee framework — input distributions, win predicates,
//!   and Monte-Carlo evaluation of arbitrary strategies.
//! - [`chsh`]: the CHSH game with the paper's exact optimal angles
//!   (θ_A ∈ {0, π/4}, θ_B ∈ {π/8, −π/8}), plus the *flipped* variant used
//!   for load balancing (win iff `a⊕b = ¬(x∧y)`).
//! - [`xor`]: general two-player XOR games; classical value by exact
//!   brute force, quantum value by Tsirelson's vector characterization
//!   (alternating optimization + an independent projected-gradient SDP
//!   cross-check).
//! - [`correlation`]: quantum correlation "boxes" — joint conditional
//!   distributions `p(a,b|x,y)` with uniform marginals realized by an
//!   entangled strategy; includes no-signaling verification and the
//!   CHSH/Tsirelson operator value.
//! - [`multiparty`]: the n-player GHZ/Mermin parity game (quantum win
//!   probability 1 vs classical `1/2 + 2^{−⌈n/2⌉}`), with both a full
//!   statevector path and a closed-form noisy-GHZ kernel path
//!   ([`multiparty::play_mermin_batch`]).
//! - [`magic`]: the Mermin–Peres Magic Square game — two-player
//!   pseudo-telepathy on two Werner pairs, sampled via the Pauli twirl.
//! - [`graph`]: random edge-labeled affinity graphs and their conversion
//!   to XOR games (the Figure 3 experiment).
//! - [`cache`]: canonicalizing sharded value cache — sweeps over random
//!   graph games skip solves that are identical up to vertex relabeling
//!   and global sign ([`cache::solve_batch`]).
//! - [`error`]: typed errors ([`GameError`]) for structurally infeasible
//!   requests (e.g. classical enumeration beyond 2^24 patterns).

pub mod cache;
pub mod chsh;
pub mod error;
pub mod family;
pub mod correlation;
pub mod game;
pub mod graph;
pub mod magic;
pub mod multiparty;
pub mod xor;

pub use cache::{GameValues, ValueCache};
pub use chsh::{ChshGame, ChshVariant};
pub use correlation::CorrelationBox;
pub use error::GameError;
pub use game::{PairStrategy, TwoPlayerGame};
pub use graph::AffinityGraph;
pub use xor::{QuantumSolution, SolverOpts, XorGame};

/// The classical optimum of the CHSH game.
pub const CHSH_CLASSICAL_VALUE: f64 = 0.75;

/// The quantum optimum of the CHSH game, `cos²(π/8) ≈ 0.8536`
/// (Tsirelson's bound).
pub fn chsh_quantum_value() -> f64 {
    (std::f64::consts::FRAC_PI_8).cos().powi(2)
}

#[cfg(test)]
mod tests {
    #[test]
    fn chsh_quantum_value_matches_half_plus_sqrt2_over_4() {
        // cos²(π/8) = 1/2 + √2/4
        let v = super::chsh_quantum_value();
        assert!((v - (0.5 + std::f64::consts::SQRT_2 / 4.0)).abs() < 1e-12);
    }
}
