//! The two-player non-local game framework.
//!
//! A game is defined by its input alphabets, an input distribution π(x,y),
//! and a win predicate V(a,b|x,y). A *strategy* produces (a, b) from
//! (x, y) without communication between the parties after inputs arrive —
//! the locality constraint is enforced by the strategy implementations
//! (quantum strategies only touch their own half of a
//! [`qsim::SharedPair`]; classical strategies fix all randomness before
//! seeing inputs).

use qmath::RMatrix;
use rand::Rng;

/// A two-player game with binary outputs.
pub trait TwoPlayerGame {
    /// Size of Alice's input alphabet.
    fn n_inputs_a(&self) -> usize;
    /// Size of Bob's input alphabet.
    fn n_inputs_b(&self) -> usize;
    /// Probability π(x, y) that the referee sends inputs `(x, y)`.
    fn input_probability(&self, x: usize, y: usize) -> f64;
    /// The win predicate `V(a, b | x, y)`.
    fn wins(&self, x: usize, y: usize, a: bool, b: bool) -> bool;

    /// Samples an input pair from π.
    fn sample_inputs<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, usize) {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for x in 0..self.n_inputs_a() {
            for y in 0..self.n_inputs_b() {
                acc += self.input_probability(x, y);
                if r < acc {
                    return (x, y);
                }
            }
        }
        (self.n_inputs_a() - 1, self.n_inputs_b() - 1)
    }

    /// The input distribution as a matrix (for solvers).
    fn input_matrix(&self) -> RMatrix {
        RMatrix::from_fn(self.n_inputs_a(), self.n_inputs_b(), |x, y| {
            self.input_probability(x, y)
        })
    }
}

/// A (possibly stateful) joint strategy for one round of a two-player
/// game.
///
/// Implementations must respect locality: the bit `a` may depend only on
/// `x` (plus pre-shared resources) and `b` only on `y`. The trait cannot
/// express that restriction in types — implementations in this crate
/// uphold it by construction and are tested for no-signaling.
pub trait PairStrategy {
    /// Plays one round: consumes one unit of pre-shared resource (Bell
    /// pair, shared random tape, ...) and returns the two output bits.
    fn play<R: Rng + ?Sized>(&mut self, x: usize, y: usize, rng: &mut R) -> (bool, bool);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// Runs `rounds` independent rounds of `game` under `strategy`, returning
/// the empirical win probability.
pub fn empirical_win_rate<G, S, R>(game: &G, strategy: &mut S, rounds: usize, rng: &mut R) -> f64
where
    G: TwoPlayerGame,
    S: PairStrategy + ?Sized,
    R: Rng + ?Sized,
{
    assert!(rounds > 0, "need at least one round");
    let mut wins = 0usize;
    for _ in 0..rounds {
        let (x, y) = game.sample_inputs(rng);
        let (a, b) = strategy.play(x, y, rng);
        if game.wins(x, y, a, b) {
            wins += 1;
        }
    }
    wins as f64 / rounds as f64
}

/// A deterministic classical strategy: fixed response tables.
///
/// The optimal classical strategy for any XOR game can be taken
/// deterministic (shared randomness cannot beat the best deterministic
/// point by convexity), so this type doubles as the classical baseline in
/// experiments.
#[derive(Debug, Clone)]
pub struct DeterministicStrategy {
    /// Alice's output for each input.
    pub a_out: Vec<bool>,
    /// Bob's output for each input.
    pub b_out: Vec<bool>,
}

impl PairStrategy for DeterministicStrategy {
    fn play<R: Rng + ?Sized>(&mut self, x: usize, y: usize, _rng: &mut R) -> (bool, bool) {
        (self.a_out[x], self.b_out[y])
    }

    fn name(&self) -> &'static str {
        "deterministic"
    }
}

/// An independent uniformly-random strategy (the "no coordination at all"
/// baseline: each party flips a private coin).
#[derive(Debug, Clone, Default)]
pub struct IndependentRandomStrategy;

impl PairStrategy for IndependentRandomStrategy {
    fn play<R: Rng + ?Sized>(&mut self, _x: usize, _y: usize, rng: &mut R) -> (bool, bool) {
        (rng.gen(), rng.gen())
    }

    fn name(&self) -> &'static str {
        "independent-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A trivial game: uniform inputs on {0,1}², win iff a == b.
    struct AgreeGame;
    impl TwoPlayerGame for AgreeGame {
        fn n_inputs_a(&self) -> usize {
            2
        }
        fn n_inputs_b(&self) -> usize {
            2
        }
        fn input_probability(&self, _x: usize, _y: usize) -> f64 {
            0.25
        }
        fn wins(&self, _x: usize, _y: usize, a: bool, b: bool) -> bool {
            a == b
        }
    }

    #[test]
    fn deterministic_strategy_wins_agree_game() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = DeterministicStrategy {
            a_out: vec![false, false],
            b_out: vec![false, false],
        };
        let rate = empirical_win_rate(&AgreeGame, &mut s, 1000, &mut rng);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn independent_random_wins_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = IndependentRandomStrategy;
        let rate = empirical_win_rate(&AgreeGame, &mut s, 50_000, &mut rng);
        assert!((rate - 0.5).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sample_inputs_respects_distribution() {
        struct Skewed;
        impl TwoPlayerGame for Skewed {
            fn n_inputs_a(&self) -> usize {
                2
            }
            fn n_inputs_b(&self) -> usize {
                2
            }
            fn input_probability(&self, x: usize, y: usize) -> f64 {
                if x == 0 && y == 0 {
                    0.7
                } else if x == 1 && y == 1 {
                    0.3
                } else {
                    0.0
                }
            }
            fn wins(&self, _: usize, _: usize, _: bool, _: bool) -> bool {
                true
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut count00 = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let (x, y) = Skewed.sample_inputs(&mut rng);
            assert!((x == 0 && y == 0) || (x == 1 && y == 1));
            if x == 0 {
                count00 += 1;
            }
        }
        let f = count00 as f64 / trials as f64;
        assert!((f - 0.7).abs() < 0.02, "f {f}");
    }

    #[test]
    fn input_matrix_shape() {
        let m = AgreeGame.input_matrix();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        let total: f64 = (0..2).flat_map(|x| (0..2).map(move |y| (x, y)))
            .map(|(x, y)| m[(x, y)])
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
