//! Error type for game-value computations.

use std::fmt;

/// Errors produced by game-value solvers.
///
/// The solvers are total over the game sizes the paper studies (≤ ~8
/// inputs per player); errors signal requests that are structurally
/// infeasible, never internal numerical surprises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GameError {
    /// The exact classical enumeration was asked for a game too large to
    /// brute-force (2^{n_a} sign patterns).
    TooLarge {
        /// Number of Alice inputs in the offending game.
        n_a: usize,
        /// The enumeration limit the solver enforces.
        limit: usize,
    },
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::TooLarge { n_a, limit } => write!(
                f,
                "classical enumeration infeasible: n_a = {n_a} exceeds the 2^n limit of {limit} inputs"
            ),
        }
    }
}

impl std::error::Error for GameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_size() {
        let e = GameError::TooLarge { n_a: 30, limit: 24 };
        let s = e.to_string();
        assert!(s.contains("30"));
        assert!(s.contains("24"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GameError::TooLarge { n_a: 30, limit: 24 },
            GameError::TooLarge { n_a: 30, limit: 24 }
        );
        assert_ne!(
            GameError::TooLarge { n_a: 30, limit: 24 },
            GameError::TooLarge { n_a: 31, limit: 24 }
        );
    }
}
