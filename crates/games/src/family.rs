//! Parametrized XOR-game families with known closed-form values.
//!
//! These serve three purposes: (1) ground-truth validation of the solvers
//! in [`crate::xor`] against published analytic values, (2) a library of
//! coordination patterns beyond CHSH for systems designers (the paper
//! §4.1: "future research should aim to identify additional classes of
//! games"), and (3) workloads for the `xor_value` ablation bench.
//!
//! Families:
//!
//! - [`odd_cycle`] — the CHTW odd-cycle game on `C_n` (n odd): parties
//!   receive adjacent-or-equal vertices of an n-cycle and must output
//!   equal bits iff the vertices are equal. Classical value
//!   `(2n−1)/(2n)`; quantum value `cos²(π/4n)` (Cleve-Høyer-Toner-Watrous
//!   2004, the paper's ref \[18\]).
//! - [`biased_chsh`] — CHSH with input distribution skewed toward
//!   `x∧y = 0`: π(1,1) = p, the rest uniform. The quantum advantage
//!   shrinks as the game gets easier classically and vanishes entirely
//!   once one deterministic strategy satisfies almost all weight
//!   (Lawson-Linden-Popescu, the paper's ref \[38\]).
//! - [`distributed_coloring`] — the affinity-graph game of Figure 3,
//!   re-exported here for completeness of the family menu.

use crate::graph::AffinityGraph;
use crate::xor::XorGame;
use qmath::RMatrix;

/// The odd-cycle XOR game on `C_n`.
///
/// Inputs: vertices `x, y` with `y ∈ {x, x+1 mod n}`, uniform over the
/// `2n` such pairs. Win iff `a ⊕ b = [x ≠ y]` (equal bits on equal
/// vertices, different bits across each edge). For odd `n` the cycle is
/// frustrated: one of the `2n` constraints must break classically.
///
/// # Panics
/// Panics if `n` is even or `< 3` (even cycles are unfrustrated and
/// trivially winnable).
pub fn odd_cycle(n: usize) -> XorGame {
    assert!(n >= 3 && n % 2 == 1, "odd_cycle needs odd n ≥ 3, got {n}");
    let mut prob = RMatrix::zeros(n, n);
    let mut target = vec![vec![false; n]; n];
    let w = 1.0 / (2 * n) as f64;
    for x in 0..n {
        prob[(x, x)] = w;
        let y = (x + 1) % n;
        prob[(x, y)] = w;
        target[x][y] = true;
    }
    XorGame::new(prob, target)
}

/// The exact classical value of [`odd_cycle`]: `(2n−1)/(2n)`.
pub fn odd_cycle_classical_value(n: usize) -> f64 {
    (2 * n - 1) as f64 / (2 * n) as f64
}

/// The exact quantum value of [`odd_cycle`]: `cos²(π/4n)`.
pub fn odd_cycle_quantum_value(n: usize) -> f64 {
    (std::f64::consts::PI / (4 * n) as f64).cos().powi(2)
}

/// CHSH with biased inputs: `π(1,1) = p11`, the other three input pairs
/// share `1 − p11` uniformly. Win iff `a ⊕ b = x ∧ y`.
///
/// # Panics
/// Panics if `p11 ∉ [0, 1]`.
pub fn biased_chsh(p11: f64) -> XorGame {
    assert!((0.0..=1.0).contains(&p11), "bad probability {p11}");
    let rest = (1.0 - p11) / 3.0;
    let prob = RMatrix::from_fn(2, 2, |x, y| if x == 1 && y == 1 { p11 } else { rest });
    let target = vec![vec![false, false], vec![false, true]];
    XorGame::new(prob, target)
}

/// The exact classical value of [`biased_chsh`]: the best deterministic
/// strategy either satisfies the three `x∧y = 0` clauses (value `1 − p11`)
/// or sacrifices one of them to also win `(1,1)` (value `p11 + 2(1−p11)/3`);
/// take the max.
pub fn biased_chsh_classical_value(p11: f64) -> f64 {
    let all_zero = 1.0 - p11;
    let sacrifice = p11 + 2.0 * (1.0 - p11) / 3.0;
    all_zero.max(sacrifice)
}

/// The affinity-graph (distributed 2-coloring) game of Figure 3.
pub fn distributed_coloring(graph: &AffinityGraph, include_diagonal: bool) -> XorGame {
    graph.to_xor_game(include_diagonal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn odd_cycle_classical_matches_closed_form() {
        for n in [3usize, 5, 7, 9] {
            let game = odd_cycle(n);
            let expect = odd_cycle_classical_value(n);
            assert!(
                (game.classical_value().unwrap() - expect).abs() < 1e-12,
                "n = {n}: {} vs {expect}",
                game.classical_value().unwrap()
            );
        }
    }

    #[test]
    fn odd_cycle_quantum_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 5, 7] {
            let game = odd_cycle(n);
            let got = game.quantum_solution(16, &mut rng).value;
            let expect = odd_cycle_quantum_value(n);
            assert!(
                (got - expect).abs() < 1e-4,
                "n = {n}: solver {got} vs closed form {expect}"
            );
        }
    }

    #[test]
    fn warm_start_hits_odd_cycle_closed_form_tightly() {
        // The spectral warm start plus convergence exit must reach the
        // closed-form quantum value cos²(π/4n) to 1e-6 — no random
        // restarts needed (restarts = 1 consumes no RNG draws).
        use crate::xor::SolverOpts;
        let mut rng = StdRng::seed_from_u64(7);
        let opts = SolverOpts {
            restarts: 1,
            ..SolverOpts::default()
        };
        for n in [3usize, 5, 7, 9, 11] {
            let game = odd_cycle(n);
            let got = game.quantum_solution_with(&opts, &mut rng).value;
            let expect = odd_cycle_quantum_value(n);
            assert!(
                (got - expect).abs() < 1e-6,
                "n = {n}: warm-started solver {got} vs closed form {expect}"
            );
        }
    }

    #[test]
    fn odd_cycle_advantage_shrinks_with_n() {
        // The per-game advantage cos²(π/4n) − (2n−1)/2n shrinks as n
        // grows — both approach 1.
        let gap3 = odd_cycle_quantum_value(3) - odd_cycle_classical_value(3);
        let gap7 = odd_cycle_quantum_value(7) - odd_cycle_classical_value(7);
        assert!(gap3 > gap7);
        assert!(gap7 > 0.0);
    }

    #[test]
    #[should_panic(expected = "odd_cycle needs odd n")]
    fn even_cycle_rejected() {
        odd_cycle(4);
    }

    #[test]
    fn biased_chsh_classical_matches_closed_form() {
        for p11 in [0.0, 0.1, 0.25, 0.4, 0.6, 0.9, 1.0] {
            let game = biased_chsh(p11);
            let expect = biased_chsh_classical_value(p11);
            assert!(
                (game.classical_value().unwrap() - expect).abs() < 1e-12,
                "p11 = {p11}: {} vs {expect}",
                game.classical_value().unwrap()
            );
        }
    }

    #[test]
    fn biased_chsh_uniform_recovers_standard() {
        let game = biased_chsh(0.25);
        assert!((game.classical_value().unwrap() - 0.75).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(2);
        assert!((game.quantum_value(&mut rng) - crate::chsh_quantum_value()).abs() < 1e-5);
    }

    #[test]
    fn biased_chsh_advantage_vanishes_at_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        // p11 = 0: the (1,1) clause has no weight; "always equal" wins
        // everything. p11 = 1: "always different" wins everything.
        for p11 in [0.0, 1.0] {
            let game = biased_chsh(p11);
            assert!((game.classical_value().unwrap() - 1.0).abs() < 1e-12);
            assert!(!game.has_quantum_advantage(1e-4, &mut rng).unwrap(), "p11 = {p11}");
        }
        // Mid-bias retains an advantage.
        let game = biased_chsh(0.25);
        assert!(game.has_quantum_advantage(1e-3, &mut rng).unwrap());
    }

    #[test]
    fn biased_chsh_advantage_is_maximal_at_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let gap = |p11: f64, rng: &mut StdRng| {
            let game = biased_chsh(p11);
            game.quantum_solution(12, rng).value - game.classical_value().unwrap()
        };
        let uniform = gap(0.25, &mut rng);
        let skew = gap(0.6, &mut rng);
        assert!(
            uniform > skew,
            "uniform gap {uniform} should exceed skewed {skew}"
        );
    }

    #[test]
    fn distributed_coloring_roundtrips() {
        let g = AffinityGraph::from_edges(3, &[(0, 1, true)]);
        let game = distributed_coloring(&g, true);
        assert_eq!(game.n_a(), 3);
        assert!(game.classical_value().unwrap() < 1.0);
    }
}
