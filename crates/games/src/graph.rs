//! Affinity graphs and their XOR games (the Figure 3 experiment).
//!
//! §4.1: "task types are represented as vertices, and their affinity or
//! disaffinity is captured by labeled edges that indicate whether tasks
//! should be colocated." An edge labeled *exclusive* means the two parties
//! should output **different** bits when they receive those vertices as
//! inputs; an *affinity* edge means the same bit.
//!
//! Figure 3 draws random labelings of the complete graph on 5 vertices
//! (each edge exclusive with probability `p`) and asks how often the
//! resulting XOR game has a quantum advantage.

use crate::xor::XorGame;
use qmath::RMatrix;
use rand::Rng;

/// A complete graph on `n` task-type vertices with boolean edge labels:
/// `true` = exclusive (outputs must differ), `false` = affinity (outputs
/// must match). Self-pairs `(v, v)` are always affinity — identical task
/// types want co-location.
#[derive(Debug, Clone)]
pub struct AffinityGraph {
    n: usize,
    /// Upper-triangular storage: label of edge (i, j), i < j.
    exclusive: Vec<bool>,
}

impl AffinityGraph {
    /// Builds a graph from explicit edge labels given as `(i, j, exclusive)`
    /// triples; unspecified edges default to affinity.
    ///
    /// # Panics
    /// Panics on out-of-range or self-loop edges.
    pub fn from_edges(n: usize, edges: &[(usize, usize, bool)]) -> Self {
        let mut g = AffinityGraph {
            n,
            exclusive: vec![false; n * (n - 1) / 2],
        };
        for &(i, j, label) in edges {
            assert!(i < n && j < n && i != j, "bad edge ({i},{j})");
            let idx = g.edge_index(i.min(j), i.max(j));
            g.exclusive[idx] = label;
        }
        g
    }

    /// Draws a random labeling: each of the `n(n−1)/2` edges is exclusive
    /// independently with probability `p_exclusive`.
    ///
    /// # Panics
    /// Panics if `n < 2` or `p_exclusive ∉ [0, 1]`.
    pub fn random<R: Rng + ?Sized>(n: usize, p_exclusive: f64, rng: &mut R) -> Self {
        assert!(n >= 2, "need at least two vertices");
        assert!((0.0..=1.0).contains(&p_exclusive), "bad probability");
        let exclusive = (0..n * (n - 1) / 2)
            .map(|_| rng.gen::<f64>() < p_exclusive)
            .collect();
        AffinityGraph { n, exclusive }
    }

    /// Number of vertices (task types).
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    fn edge_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        // Row-major upper triangle.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Whether the pair `(i, j)` is exclusive (outputs should differ).
    /// Self-pairs are affinity.
    pub fn is_exclusive(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        self.exclusive[self.edge_index(i.min(j), i.max(j))]
    }

    /// Number of exclusive edges.
    pub fn n_exclusive(&self) -> usize {
        self.exclusive.iter().filter(|&&e| e).count()
    }

    /// Converts the graph to an XOR game.
    ///
    /// Inputs to both players are vertices. The input distribution is
    /// uniform over ordered pairs — including the diagonal if
    /// `include_diagonal` (two load balancers can receive the same task
    /// type; those should co-locate). The target parity is the edge label.
    pub fn to_xor_game(&self, include_diagonal: bool) -> XorGame {
        let n = self.n;
        let n_pairs = if include_diagonal { n * n } else { n * n - n };
        let p = 1.0 / n_pairs as f64;
        let prob = RMatrix::from_fn(n, n, |x, y| {
            if !include_diagonal && x == y {
                0.0
            } else {
                p
            }
        });
        let target = (0..n)
            .map(|x| (0..n).map(|y| self.is_exclusive(x, y)).collect())
            .collect();
        XorGame::new(prob, target)
    }
}

/// Draws `samples` random graph labelings and returns their XOR games.
///
/// All graphs are drawn up front (consuming `rng` for the graph draws
/// only), so the solver — whose restart RNG is derived from each game's
/// canonical form by [`crate::cache`] — never perturbs the graph stream.
pub fn sample_games<R: Rng + ?Sized>(
    n_vertices: usize,
    p_exclusive: f64,
    samples: usize,
    rng: &mut R,
) -> Vec<XorGame> {
    (0..samples)
        .map(|_| AffinityGraph::random(n_vertices, p_exclusive, rng).to_xor_game(true))
        .collect()
}

/// Counts the quantum-advantaged games in a batch (quantum value
/// exceeding classical by > `tol`), solving through the canonicalizing
/// value cache.
///
/// # Panics
/// Panics if a game exceeds the classical enumeration limit — graph
/// games are capped at [`crate::xor::ENUM_LIMIT`] vertices by
/// construction, so this is unreachable for callers of [`sample_games`].
pub fn advantage_count_of(games: &[XorGame], tol: f64) -> usize {
    let opts = crate::xor::SolverOpts::default();
    games
        .iter()
        .map(|g| {
            crate::cache::solve_values(g, &opts)
                .expect("graph games stay below the enumeration limit")
        })
        .filter(|v| v.has_advantage(tol))
        .count()
}

/// One data point of the Figure 3 sweep: draws `samples` random graphs at
/// the given edge-exclusivity probability and counts those with a quantum
/// advantage (quantum value exceeding classical by > `tol`).
pub fn advantage_count<R: Rng + ?Sized>(
    n_vertices: usize,
    p_exclusive: f64,
    samples: usize,
    tol: f64,
    rng: &mut R,
) -> usize {
    advantage_count_of(&sample_games(n_vertices, p_exclusive, samples, rng), tol)
}

/// [`advantage_count`] as a fraction.
pub fn advantage_probability<R: Rng + ?Sized>(
    n_vertices: usize,
    p_exclusive: f64,
    samples: usize,
    tol: f64,
    rng: &mut R,
) -> f64 {
    advantage_count(n_vertices, p_exclusive, samples, tol, rng) as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_index_roundtrip() {
        let g = AffinityGraph::from_edges(5, &[(0, 1, true), (2, 4, true), (1, 3, false)]);
        assert!(g.is_exclusive(0, 1));
        assert!(g.is_exclusive(1, 0), "labels are symmetric");
        assert!(g.is_exclusive(2, 4));
        assert!(!g.is_exclusive(1, 3));
        assert!(!g.is_exclusive(3, 3), "diagonal is affinity");
        assert_eq!(g.n_exclusive(), 2);
    }

    #[test]
    fn all_affinity_graph_has_no_advantage() {
        // Everything co-locates: trivially winnable classically.
        let g = AffinityGraph::from_edges(4, &[]);
        let game = g.to_xor_game(true);
        assert!((game.classical_value().unwrap() - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!game.has_quantum_advantage(1e-4, &mut rng).unwrap());
    }

    #[test]
    fn all_exclusive_pair_graph_no_advantage() {
        // Two vertices, one exclusive edge: winnable classically
        // (a = x, b = ¬y ... actually a=0 for both x, b = y works: f(x,y)
        // = [x≠y] needs a⊕b = x⊕y, satisfiable by a = x, b = y).
        let g = AffinityGraph::from_edges(2, &[(0, 1, true)]);
        let game = g.to_xor_game(true);
        assert!((game.classical_value().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_graph_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 400;
        let mut total_excl = 0usize;
        for _ in 0..trials {
            let g = AffinityGraph::random(5, 0.3, &mut rng);
            total_excl += g.n_exclusive();
        }
        let f = total_excl as f64 / (trials * 10) as f64;
        assert!((f - 0.3).abs() < 0.05, "edge rate {f}");
    }

    #[test]
    fn frustrated_triangle_has_quantum_advantage() {
        // Odd frustration: a triangle with exactly one exclusive edge
        // cannot be 2-colored consistently with the diagonal constraint.
        // This is the canonical advantage-bearing instance.
        let g = AffinityGraph::from_edges(3, &[(0, 1, true)]);
        let game = g.to_xor_game(true);
        let c = game.classical_value().unwrap();
        assert!(c < 1.0 - 1e-9, "classical cannot satisfy all constraints");
        let mut rng = StdRng::seed_from_u64(3);
        let q = game.quantum_value(&mut rng);
        assert!(q > c + 1e-4, "quantum {q} vs classical {c}");
    }

    #[test]
    fn xor_game_distribution_sums_to_one() {
        for diag in [true, false] {
            let g = AffinityGraph::from_edges(4, &[(0, 1, true)]);
            let game = g.to_xor_game(diag);
            let m = game.bias_matrix();
            let total: f64 = (0..4)
                .flat_map(|x| (0..4).map(move |y| (x, y)))
                .map(|(x, y)| m[(x, y)].abs())
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "diag={diag}: {total}");
        }
    }

    #[test]
    fn advantage_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        // p = 0: all-affinity graphs, never an advantage.
        let p0 = advantage_probability(4, 0.0, 10, 1e-4, &mut rng);
        assert_eq!(p0, 0.0);
    }

    #[test]
    fn advantage_probability_midrange_positive() {
        // Paper Fig. 3: "most graphs with randomly labeled edges exhibit a
        // quantum advantage" at moderate p for 5 vertices.
        let mut rng = StdRng::seed_from_u64(5);
        let p = advantage_probability(5, 0.5, 20, 1e-4, &mut rng);
        assert!(p > 0.5, "advantage probability {p} too low at p_excl=0.5");
    }
}
