//! Multiparty non-local games: the 3-player GHZ (Mermin) game.
//!
//! The paper notes (§4.1) that XOR games "have also been extended to more
//! than two players, corresponding to scenarios with more than two
//! load balancers, where the advantage is larger than in the two-party
//! case". The GHZ game is the canonical example: the quantum strategy wins
//! with probability **1**, versus a classical optimum of 0.75.
//!
//! Rules: the referee draws inputs `(x, y, z)` uniformly from
//! `{000, 011, 101, 110}` (even parity); players answer bits `a, b, c`
//! and win iff `a ⊕ b ⊕ c = x ∨ y ∨ z`.
//!
//! Quantum strategy: share a GHZ state; on input 0 measure in the X basis,
//! on input 1 in the Y basis. The GHZ state is a +1 eigenstate of `X⊗X⊗X`
//! and a −1 eigenstate of `X⊗Y⊗Y` (and permutations), which makes the win
//! condition hold with certainty.

use qmath::C64;
use qsim::measure::Basis1;
use qsim::SharedState;
use rand::Rng;

/// The four valid GHZ-game input triples (even parity).
pub const GHZ_INPUTS: [(u8, u8, u8); 4] = [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)];

/// The GHZ-game win predicate: `a ⊕ b ⊕ c = x ∨ y ∨ z`.
pub fn ghz_wins(inputs: (u8, u8, u8), outputs: (bool, bool, bool)) -> bool {
    let (x, y, z) = inputs;
    let target = (x | y | z) == 1;
    (outputs.0 ^ outputs.1 ^ outputs.2) == target
}

/// The X measurement basis `{|+⟩, |−⟩}`.
pub fn x_basis() -> Basis1 {
    Basis1::angle(std::f64::consts::FRAC_PI_4)
}

/// The Y measurement basis `{(|0⟩+i|1⟩)/√2, (|0⟩−i|1⟩)/√2}`.
pub fn y_basis() -> Basis1 {
    let f = std::f64::consts::FRAC_1_SQRT_2;
    Basis1::new(
        [C64::real(f), C64::new(0.0, f)],
        [C64::real(f), C64::new(0.0, -f)],
    )
    .expect("orthonormal by construction")
}

/// Plays one round of the GHZ game with the optimal quantum strategy on a
/// fresh GHZ state. Each party measures only its own qubit, in a basis
/// determined only by its own input.
pub fn play_quantum_round<R: Rng + ?Sized>(
    inputs: (u8, u8, u8),
    rng: &mut R,
) -> (bool, bool, bool) {
    let mut state = SharedState::ghz(3);
    let ins = [inputs.0, inputs.1, inputs.2];
    let mut outs = [false; 3];
    for (party, (&input, out)) in ins.iter().zip(outs.iter_mut()).enumerate() {
        let basis = if input == 0 { x_basis() } else { y_basis() };
        *out = state
            .measure(party, &basis, rng)
            .expect("fresh state, party unmeasured")
            == 1;
    }
    (outs[0], outs[1], outs[2])
}

/// The best classical (deterministic or shared-randomness) win probability
/// for the GHZ game, computed by exhaustive search over all deterministic
/// strategies: each player picks one of 4 response functions `{0,1}→{0,1}`.
pub fn classical_optimum() -> f64 {
    let mut best = 0.0f64;
    // A response function maps input bit → output bit: 4 choices/player.
    for fa in 0..4u8 {
        for fb in 0..4u8 {
            for fc in 0..4u8 {
                let apply = |f: u8, input: u8| -> bool { (f >> input) & 1 == 1 };
                let wins = GHZ_INPUTS
                    .iter()
                    .filter(|&&(x, y, z)| {
                        ghz_wins((x, y, z), (apply(fa, x), apply(fb, y), apply(fc, z)))
                    })
                    .count();
                best = best.max(wins as f64 / 4.0);
            }
        }
    }
    best
}

/// Runs `rounds` rounds of the quantum strategy, returning the empirical
/// win rate (should be 1.0 up to simulator round-off).
pub fn quantum_win_rate<R: Rng + ?Sized>(rounds: usize, rng: &mut R) -> f64 {
    let mut wins = 0usize;
    for i in 0..rounds {
        let inputs = GHZ_INPUTS[i % 4];
        let outputs = play_quantum_round(inputs, rng);
        wins += usize::from(ghz_wins(inputs, outputs));
    }
    wins as f64 / rounds as f64
}

/// All even-parity input vectors for the n-player Mermin game.
pub fn mermin_inputs(n: usize) -> Vec<Vec<u8>> {
    assert!(n >= 2, "Mermin game needs at least two players");
    (0..1u32 << n)
        .filter(|m| m.count_ones() % 2 == 0)
        .map(|m| (0..n).map(|i| ((m >> i) & 1) as u8).collect())
        .collect()
}

/// The n-player Mermin parity game win predicate: for an even-weight
/// input vector `x`, the players win iff `⊕ᵢ aᵢ = (wt(x) mod 4) / 2` —
/// output parity 0 when the input weight is ≡ 0 (mod 4), parity 1 when
/// ≡ 2 (mod 4).
pub fn mermin_wins(inputs: &[u8], outputs: &[bool]) -> bool {
    let weight: u32 = inputs.iter().map(|&x| x as u32).sum();
    debug_assert!(weight.is_multiple_of(2), "Mermin inputs have even parity");
    let target = weight % 4 == 2;
    let parity = outputs.iter().fold(false, |acc, &b| acc ^ b);
    parity == target
}

/// Plays one round of the n-player Mermin game with the optimal quantum
/// strategy: share GHZ(n); measure X on input 0, Y on input 1. The GHZ
/// state is a `(−1)^{k/2}` eigenstate of any `X^{n−k}Y^{k}` string with
/// even `k`, so the win is deterministic.
pub fn play_mermin_quantum<R: Rng + ?Sized>(inputs: &[u8], rng: &mut R) -> Vec<bool> {
    let n = inputs.len();
    let mut state = SharedState::ghz(n);
    inputs
        .iter()
        .enumerate()
        .map(|(party, &x)| {
            let basis = if x == 0 { x_basis() } else { y_basis() };
            state
                .measure(party, &basis, rng)
                .expect("fresh state, party unmeasured")
                == 1
        })
        .collect()
}

/// The exact classical optimum of the n-player Mermin game by brute force
/// over all deterministic strategies (each player picks one of the four
/// functions {0,1} → {0,1}).
///
/// # Panics
/// Panics if `n > 10` (4ⁿ enumeration becomes unreasonable).
pub fn mermin_classical_optimum(n: usize) -> f64 {
    assert!(n <= 10, "brute force infeasible for n = {n}");
    let inputs = mermin_inputs(n);
    let mut best = 0usize;
    // Strategy encoding: 2 bits per player (output on input 0, on input 1).
    for strat in 0u64..(1 << (2 * n)) {
        let wins = inputs
            .iter()
            .filter(|x| {
                let outs: Vec<bool> = x
                    .iter()
                    .enumerate()
                    .map(|(i, &xi)| (strat >> (2 * i + xi as usize)) & 1 == 1)
                    .collect();
                mermin_wins(x, &outs)
            })
            .count();
        best = best.max(wins);
    }
    best as f64 / inputs.len() as f64
}

/// The closed-form classical bound of the Mermin game:
/// `1/2 + 2^{−⌈n/2⌉}` (Mermin 1990; the paper's refs [12, 31] discuss the
/// growing multiparty gap).
pub fn mermin_classical_bound(n: usize) -> f64 {
    0.5 + 2f64.powi(-(n.div_ceil(2) as i32))
}

/// Empirical quantum win rate over `rounds` uniformly-drawn inputs
/// (should be exactly 1).
pub fn mermin_quantum_win_rate<R: Rng + ?Sized>(n: usize, rounds: usize, rng: &mut R) -> f64 {
    let inputs = mermin_inputs(n);
    let mut wins = 0usize;
    for i in 0..rounds {
        let x = &inputs[i % inputs.len()];
        let outs = play_mermin_quantum(x, rng);
        wins += usize::from(mermin_wins(x, &outs));
    }
    wins as f64 / rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classical_optimum_is_three_quarters() {
        assert!((classical_optimum() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantum_strategy_wins_always() {
        let mut rng = StdRng::seed_from_u64(1);
        let rate = quantum_win_rate(2000, &mut rng);
        assert!(
            (rate - 1.0).abs() < 1e-12,
            "GHZ quantum strategy must be perfect, got {rate}"
        );
    }

    #[test]
    fn each_input_triple_wins_deterministically() {
        let mut rng = StdRng::seed_from_u64(2);
        for &inputs in &GHZ_INPUTS {
            for _ in 0..200 {
                let outputs = play_quantum_round(inputs, &mut rng);
                assert!(ghz_wins(inputs, outputs), "lost on {inputs:?} → {outputs:?}");
            }
        }
    }

    #[test]
    fn outputs_remain_random() {
        // Perfection without determinism: each player's output is still an
        // unbiased coin (the "free lunch" the paper's XOR framing gives).
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 4000;
        let mut ones = [0usize; 3];
        for i in 0..trials {
            let (a, b, c) = play_quantum_round(GHZ_INPUTS[i % 4], &mut rng);
            ones[0] += usize::from(a);
            ones[1] += usize::from(b);
            ones[2] += usize::from(c);
        }
        for (p, o) in ones.iter().enumerate() {
            let f = *o as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.03, "party {p} marginal {f}");
        }
    }

    #[test]
    fn y_basis_is_orthonormal() {
        // Already validated by Basis1::new, but assert the construction
        // doesn't silently change.
        let b = y_basis();
        let ip = b.phi0[0].conj() * b.phi1[0] + b.phi0[1].conj() * b.phi1[1];
        assert!(ip.abs() < 1e-12);
    }

    #[test]
    fn win_predicate_cases() {
        assert!(ghz_wins((0, 0, 0), (false, false, false)));
        assert!(!ghz_wins((0, 0, 0), (true, false, false)));
        assert!(ghz_wins((0, 1, 1), (true, false, false)));
        assert!(ghz_wins((1, 1, 0), (false, true, false)));
        assert!(!ghz_wins((1, 0, 1), (true, true, false)));
    }
}

#[cfg(test)]
mod mermin_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn input_sets_have_even_parity_and_full_count() {
        for n in 2..=6 {
            let inputs = mermin_inputs(n);
            assert_eq!(inputs.len(), 1 << (n - 1));
            for x in &inputs {
                assert_eq!(x.iter().map(|&b| b as u32).sum::<u32>() % 2, 0);
            }
        }
    }

    #[test]
    fn three_player_mermin_is_the_ghz_game() {
        // The n=3 Mermin game and the GHZ_INPUTS game agree: weight-0
        // inputs want parity 0, weight-2 inputs want parity 1.
        assert!(mermin_wins(&[0, 0, 0], &[false, false, false]));
        assert!(mermin_wins(&[0, 1, 1], &[true, false, false]));
        assert!(!mermin_wins(&[1, 1, 0], &[false, false, false]));
    }

    #[test]
    fn classical_optimum_matches_closed_form() {
        for n in [2usize, 3, 4, 5, 6] {
            let brute = mermin_classical_optimum(n);
            let bound = mermin_classical_bound(n);
            assert!(
                (brute - bound).abs() < 1e-12,
                "n = {n}: brute {brute} vs closed form {bound}"
            );
        }
    }

    #[test]
    fn quantum_wins_always_up_to_six_players() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [3usize, 4, 5, 6] {
            let rate = mermin_quantum_win_rate(n, 400, &mut rng);
            assert!(
                (rate - 1.0).abs() < 1e-12,
                "n = {n}: quantum rate {rate}"
            );
        }
    }

    #[test]
    fn multiparty_gap_grows_with_n() {
        // Quantum is always 1; classical drops toward 1/2 — the paper's
        // "the advantage is larger than in the two-party case".
        let gap3 = 1.0 - mermin_classical_bound(3);
        let gap5 = 1.0 - mermin_classical_bound(5);
        let gap7 = 1.0 - mermin_classical_bound(7);
        assert!(gap3 < gap5 && gap5 < gap7);
    }
}
