//! Multiparty non-local games: the 3-player GHZ (Mermin) game.
//!
//! The paper notes (§4.1) that XOR games "have also been extended to more
//! than two players, corresponding to scenarios with more than two
//! load balancers, where the advantage is larger than in the two-party
//! case". The GHZ game is the canonical example: the quantum strategy wins
//! with probability **1**, versus a classical optimum of 0.75.
//!
//! Rules: the referee draws inputs `(x, y, z)` uniformly from
//! `{000, 011, 101, 110}` (even parity); players answer bits `a, b, c`
//! and win iff `a ⊕ b ⊕ c = x ∨ y ∨ z`.
//!
//! Quantum strategy: share a GHZ state; on input 0 measure in the X basis,
//! on input 1 in the Y basis. The GHZ state is a +1 eigenstate of `X⊗X⊗X`
//! and a −1 eigenstate of `X⊗Y⊗Y` (and permutations), which makes the win
//! condition hold with certainty.
//!
//! Two execution paths coexist. [`play_mermin_quantum`] runs the full
//! statevector simulation (O(2ⁿ) amplitudes per round); the hot path
//! [`play_mermin_kernel`] / [`play_mermin_batch`] uses the closed-form
//! [`qsim::ghz::NoisyGhz`] kernel (O(n) per round, one f64 draw + one
//! word of bulk bits) and additionally models visibility/dephasing noise.
//! Setting `QNLG_EXACT_QSIM=1` reroutes the kernel paths through the
//! statevector oracle for end-to-end cross-validation.

use crate::error::GameError;
use obs::LazyCounter;
use qmath::C64;
use qsim::ghz::NoisyGhz;
use qsim::measure::Basis1;
use qsim::SharedState;
use rand::Rng;

/// Mermin rounds played through the closed-form kernel (batch or single).
static ROUNDS: LazyCounter = LazyCounter::new("games.ghz.rounds");

/// The four valid GHZ-game input triples (even parity).
pub const GHZ_INPUTS: [(u8, u8, u8); 4] = [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)];

/// The GHZ-game win predicate: `a ⊕ b ⊕ c = x ∨ y ∨ z`.
pub fn ghz_wins(inputs: (u8, u8, u8), outputs: (bool, bool, bool)) -> bool {
    let (x, y, z) = inputs;
    let target = (x | y | z) == 1;
    (outputs.0 ^ outputs.1 ^ outputs.2) == target
}

/// The X measurement basis `{|+⟩, |−⟩}`.
pub fn x_basis() -> Basis1 {
    Basis1::angle(std::f64::consts::FRAC_PI_4)
}

/// The Y measurement basis `{(|0⟩+i|1⟩)/√2, (|0⟩−i|1⟩)/√2}`.
pub fn y_basis() -> Basis1 {
    let f = std::f64::consts::FRAC_1_SQRT_2;
    Basis1::new(
        [C64::real(f), C64::new(0.0, f)],
        [C64::real(f), C64::new(0.0, -f)],
    )
    .expect("orthonormal by construction")
}

/// Plays one round of the GHZ game with the optimal quantum strategy on a
/// fresh GHZ state. Each party measures only its own qubit, in a basis
/// determined only by its own input.
pub fn play_quantum_round<R: Rng + ?Sized>(
    inputs: (u8, u8, u8),
    rng: &mut R,
) -> (bool, bool, bool) {
    let mut state = SharedState::ghz(3);
    let ins = [inputs.0, inputs.1, inputs.2];
    let mut outs = [false; 3];
    for (party, (&input, out)) in ins.iter().zip(outs.iter_mut()).enumerate() {
        let basis = if input == 0 { x_basis() } else { y_basis() };
        *out = state
            .measure(party, &basis, rng)
            .expect("fresh state, party unmeasured")
            == 1;
    }
    (outs[0], outs[1], outs[2])
}

/// The best classical (deterministic or shared-randomness) win probability
/// for the GHZ game, computed by exhaustive search over all deterministic
/// strategies: each player picks one of 4 response functions `{0,1}→{0,1}`.
pub fn classical_optimum() -> f64 {
    let mut best = 0.0f64;
    // A response function maps input bit → output bit: 4 choices/player.
    for fa in 0..4u8 {
        for fb in 0..4u8 {
            for fc in 0..4u8 {
                let apply = |f: u8, input: u8| -> bool { (f >> input) & 1 == 1 };
                let wins = GHZ_INPUTS
                    .iter()
                    .filter(|&&(x, y, z)| {
                        ghz_wins((x, y, z), (apply(fa, x), apply(fb, y), apply(fc, z)))
                    })
                    .count();
                best = best.max(wins as f64 / 4.0);
            }
        }
    }
    best
}

/// Runs `rounds` rounds of the quantum strategy, returning the empirical
/// win rate (should be 1.0 up to simulator round-off).
pub fn quantum_win_rate<R: Rng + ?Sized>(rounds: usize, rng: &mut R) -> f64 {
    let mut wins = 0usize;
    for i in 0..rounds {
        let inputs = GHZ_INPUTS[i % 4];
        let outputs = play_quantum_round(inputs, rng);
        wins += usize::from(ghz_wins(inputs, outputs));
    }
    wins as f64 / rounds as f64
}

/// All even-parity input vectors for the n-player Mermin game.
pub fn mermin_inputs(n: usize) -> Vec<Vec<u8>> {
    assert!(n >= 2, "Mermin game needs at least two players");
    (0..1u32 << n)
        .filter(|m| m.count_ones() % 2 == 0)
        .map(|m| (0..n).map(|i| ((m >> i) & 1) as u8).collect())
        .collect()
}

/// The n-player Mermin parity game win predicate: for an even-weight
/// input vector `x`, the players win iff `⊕ᵢ aᵢ = (wt(x) mod 4) / 2` —
/// output parity 0 when the input weight is ≡ 0 (mod 4), parity 1 when
/// ≡ 2 (mod 4).
pub fn mermin_wins(inputs: &[u8], outputs: &[bool]) -> bool {
    let weight: u32 = inputs.iter().map(|&x| x as u32).sum();
    debug_assert!(weight.is_multiple_of(2), "Mermin inputs have even parity");
    let target = weight % 4 == 2;
    let parity = outputs.iter().fold(false, |acc, &b| acc ^ b);
    parity == target
}

/// Plays one round of the n-player Mermin game with the optimal quantum
/// strategy: share GHZ(n); measure X on input 0, Y on input 1. The GHZ
/// state is a `(−1)^{k/2}` eigenstate of any `X^{n−k}Y^{k}` string with
/// even `k`, so the win is deterministic.
pub fn play_mermin_quantum<R: Rng + ?Sized>(inputs: &[u8], rng: &mut R) -> Vec<bool> {
    let n = inputs.len();
    let mut state = SharedState::ghz(n);
    inputs
        .iter()
        .enumerate()
        .map(|(party, &x)| {
            let basis = if x == 0 { x_basis() } else { y_basis() };
            state
                .measure(party, &basis, rng)
                .expect("fresh state, party unmeasured")
                == 1
        })
        .collect()
}

/// Largest player count accepted by [`mermin_classical_optimum`]: the
/// brute force enumerates 4ⁿ deterministic strategies × 2^{n−1} inputs.
pub const MERMIN_ENUM_LIMIT: usize = 10;

/// The exact classical optimum of the n-player Mermin game by brute force
/// over all deterministic strategies (each player picks one of the four
/// functions {0,1} → {0,1}).
///
/// # Errors
/// [`GameError::TooLarge`] if `n >` [`MERMIN_ENUM_LIMIT`] (the 4ⁿ · 2^{n−1}
/// enumeration becomes unreasonable).
pub fn mermin_classical_optimum(n: usize) -> Result<f64, GameError> {
    if n > MERMIN_ENUM_LIMIT {
        return Err(GameError::TooLarge {
            n_a: n,
            limit: MERMIN_ENUM_LIMIT,
        });
    }
    let inputs = mermin_inputs(n);
    let mut best = 0usize;
    // Strategy encoding: 2 bits per player (output on input 0, on input 1).
    for strat in 0u64..(1 << (2 * n)) {
        let wins = inputs
            .iter()
            .filter(|x| {
                let outs: Vec<bool> = x
                    .iter()
                    .enumerate()
                    .map(|(i, &xi)| (strat >> (2 * i + xi as usize)) & 1 == 1)
                    .collect();
                mermin_wins(x, &outs)
            })
            .count();
        best = best.max(wins);
    }
    Ok(best as f64 / inputs.len() as f64)
}

/// The closed-form classical bound of the Mermin game:
/// `1/2 + 2^{−⌈n/2⌉}` (Mermin 1990; the paper's refs [12, 31] discuss the
/// growing multiparty gap).
pub fn mermin_classical_bound(n: usize) -> f64 {
    0.5 + 2f64.powi(-(n.div_ceil(2) as i32))
}

/// Empirical quantum win rate over `rounds` uniformly-drawn inputs
/// (should be exactly 1).
pub fn mermin_quantum_win_rate<R: Rng + ?Sized>(n: usize, rounds: usize, rng: &mut R) -> f64 {
    let inputs = mermin_inputs(n);
    let mut wins = 0usize;
    for i in 0..rounds {
        let x = &inputs[i % inputs.len()];
        let outs = play_mermin_quantum(x, rng);
        wins += usize::from(mermin_wins(x, &outs));
    }
    wins as f64 / rounds as f64
}

/// All even-parity Mermin input vectors as bit masks (bit `j` = player
/// `j`'s input), the packed form the kernel path consumes. Same order as
/// [`mermin_inputs`].
pub fn mermin_input_masks(n: usize) -> Vec<u64> {
    assert!(n >= 2, "Mermin game needs at least two players");
    (0..1u64 << n).filter(|m| m.count_ones().is_multiple_of(2)).collect()
}

/// Mask form of [`mermin_wins`]: bit `j` of `outcome` is player `j`'s
/// answer; the win target for even-weight `y_mask` is `(wt mod 4)/2`.
pub fn mermin_wins_mask(y_mask: u64, outcome: u64) -> bool {
    debug_assert!(y_mask.count_ones().is_multiple_of(2), "Mermin inputs have even parity");
    let target = y_mask.count_ones() % 4 == 2;
    (outcome.count_ones() % 2 == 1) == target
}

/// Plays one Mermin round on `kernel` with the optimal X/Y strategy:
/// player `j` measures Y iff bit `j` of `y_mask` is set. Returns the
/// outcome mask (bit `j` = player `j`'s answer). Routes through the full
/// statevector oracle when `QNLG_EXACT_QSIM=1`.
pub fn play_mermin_kernel<R: Rng + ?Sized>(kernel: &NoisyGhz, y_mask: u64, rng: &mut R) -> u64 {
    ROUNDS.inc();
    if qsim::werner::exact_qsim() {
        kernel
            .oracle_sample_xy(y_mask, rng)
            .expect("y_mask within kernel arity")
    } else {
        kernel.sample_xy(y_mask, rng)
    }
}

/// Result of a [`play_mermin_batch`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MerminBatch {
    /// Rounds won.
    pub wins: u64,
    /// Rounds played.
    pub rounds: u64,
}

impl MerminBatch {
    /// Empirical win rate (`NaN` for an empty batch).
    pub fn win_rate(&self) -> f64 {
        self.wins as f64 / self.rounds as f64
    }
}

/// Plays `rounds` Mermin rounds on `kernel`, drawing the full input
/// schedule up front (games-first, like the fig3 sweep) and then playing
/// them with the per-input correlation hoisted out of the sampling loop.
pub fn play_mermin_batch<R: Rng + ?Sized>(
    kernel: &NoisyGhz,
    rounds: u64,
    rng: &mut R,
) -> MerminBatch {
    let masks = mermin_input_masks(kernel.n_parties());
    // Referee phase: the whole schedule of input masks, drawn first.
    let schedule: Vec<u32> = (0..rounds)
        .map(|_| rng.gen_range(0..masks.len() as u32))
        .collect();
    // Player phase: per-input correlations computed once, not per round.
    let correlations: Vec<f64> = masks.iter().map(|&m| kernel.correlation_xy(m)).collect();
    let exact = qsim::werner::exact_qsim();
    let mut wins = 0u64;
    for &i in &schedule {
        let y_mask = masks[i as usize];
        let outcome = if exact {
            kernel
                .oracle_sample_xy(y_mask, rng)
                .expect("mask within kernel arity")
        } else {
            kernel.sample_with_correlation(correlations[i as usize], rng)
        };
        wins += u64::from(mermin_wins_mask(y_mask, outcome));
    }
    ROUNDS.add(rounds);
    MerminBatch { wins, rounds }
}

/// Closed-form Mermin win probability of the X/Y strategy on a GHZ state
/// with effective coherence `w` (visibility × ∏ retentions): `(1 + w)/2`,
/// independent of the player count.
pub fn mermin_quantum_win(coherence: f64) -> f64 {
    0.5 * (1.0 + coherence)
}

/// The visibility at which the quantum X/Y strategy's win rate
/// `(1 + v)/2` meets the classical bound `1/2 + 2^{−⌈n/2⌉}`:
/// `v* = 2^{1−⌈n/2⌉}`. Below it, noise erases the multiparty advantage.
pub fn mermin_crossover_visibility(n: usize) -> f64 {
    2f64.powi(1 - n.div_ceil(2) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classical_optimum_is_three_quarters() {
        assert!((classical_optimum() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantum_strategy_wins_always() {
        let mut rng = StdRng::seed_from_u64(1);
        let rate = quantum_win_rate(2000, &mut rng);
        assert!(
            (rate - 1.0).abs() < 1e-12,
            "GHZ quantum strategy must be perfect, got {rate}"
        );
    }

    #[test]
    fn each_input_triple_wins_deterministically() {
        let mut rng = StdRng::seed_from_u64(2);
        for &inputs in &GHZ_INPUTS {
            for _ in 0..200 {
                let outputs = play_quantum_round(inputs, &mut rng);
                assert!(ghz_wins(inputs, outputs), "lost on {inputs:?} → {outputs:?}");
            }
        }
    }

    #[test]
    fn outputs_remain_random() {
        // Perfection without determinism: each player's output is still an
        // unbiased coin (the "free lunch" the paper's XOR framing gives).
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 4000;
        let mut ones = [0usize; 3];
        for i in 0..trials {
            let (a, b, c) = play_quantum_round(GHZ_INPUTS[i % 4], &mut rng);
            ones[0] += usize::from(a);
            ones[1] += usize::from(b);
            ones[2] += usize::from(c);
        }
        for (p, o) in ones.iter().enumerate() {
            let f = *o as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.03, "party {p} marginal {f}");
        }
    }

    #[test]
    fn y_basis_is_orthonormal() {
        // Already validated by Basis1::new, but assert the construction
        // doesn't silently change.
        let b = y_basis();
        let ip = b.phi0[0].conj() * b.phi1[0] + b.phi0[1].conj() * b.phi1[1];
        assert!(ip.abs() < 1e-12);
    }

    #[test]
    fn win_predicate_cases() {
        assert!(ghz_wins((0, 0, 0), (false, false, false)));
        assert!(!ghz_wins((0, 0, 0), (true, false, false)));
        assert!(ghz_wins((0, 1, 1), (true, false, false)));
        assert!(ghz_wins((1, 1, 0), (false, true, false)));
        assert!(!ghz_wins((1, 0, 1), (true, true, false)));
    }
}

#[cfg(test)]
mod mermin_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn input_sets_have_even_parity_and_full_count() {
        for n in 2..=6 {
            let inputs = mermin_inputs(n);
            assert_eq!(inputs.len(), 1 << (n - 1));
            for x in &inputs {
                assert_eq!(x.iter().map(|&b| b as u32).sum::<u32>() % 2, 0);
            }
        }
    }

    #[test]
    fn three_player_mermin_is_the_ghz_game() {
        // The n=3 Mermin game and the GHZ_INPUTS game agree: weight-0
        // inputs want parity 0, weight-2 inputs want parity 1.
        assert!(mermin_wins(&[0, 0, 0], &[false, false, false]));
        assert!(mermin_wins(&[0, 1, 1], &[true, false, false]));
        assert!(!mermin_wins(&[1, 1, 0], &[false, false, false]));
    }

    #[test]
    fn classical_optimum_matches_closed_form() {
        for n in [2usize, 3, 4, 5, 6] {
            let brute = mermin_classical_optimum(n).expect("within enum limit");
            let bound = mermin_classical_bound(n);
            assert!(
                (brute - bound).abs() < 1e-12,
                "n = {n}: brute {brute} vs closed form {bound}"
            );
        }
    }

    #[test]
    fn quantum_wins_always_up_to_six_players() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [3usize, 4, 5, 6] {
            let rate = mermin_quantum_win_rate(n, 400, &mut rng);
            assert!(
                (rate - 1.0).abs() < 1e-12,
                "n = {n}: quantum rate {rate}"
            );
        }
    }

    #[test]
    fn multiparty_gap_grows_with_n() {
        // Quantum is always 1; classical drops toward 1/2 — the paper's
        // "the advantage is larger than in the two-party case".
        let gap3 = 1.0 - mermin_classical_bound(3);
        let gap5 = 1.0 - mermin_classical_bound(5);
        let gap7 = 1.0 - mermin_classical_bound(7);
        assert!(gap3 < gap5 && gap5 < gap7);
    }

    #[test]
    fn classical_optimum_rejects_oversized_games() {
        assert_eq!(
            mermin_classical_optimum(MERMIN_ENUM_LIMIT + 1),
            Err(GameError::TooLarge {
                n_a: MERMIN_ENUM_LIMIT + 1,
                limit: MERMIN_ENUM_LIMIT,
            })
        );
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn input_masks_mirror_input_vectors() {
        for n in 2..=7 {
            let masks = mermin_input_masks(n);
            let vecs = mermin_inputs(n);
            assert_eq!(masks.len(), vecs.len());
            for (m, x) in masks.iter().zip(&vecs) {
                for (j, &xj) in x.iter().enumerate() {
                    assert_eq!(((m >> j) & 1) as u8, xj);
                }
            }
        }
    }

    #[test]
    fn mask_predicate_agrees_with_vector_predicate() {
        for n in 2..=5usize {
            for y_mask in mermin_input_masks(n) {
                let x: Vec<u8> = (0..n).map(|j| ((y_mask >> j) & 1) as u8).collect();
                for outcome in 0..(1u64 << n) {
                    let outs: Vec<bool> = (0..n).map(|j| (outcome >> j) & 1 == 1).collect();
                    assert_eq!(
                        mermin_wins_mask(y_mask, outcome),
                        mermin_wins(&x, &outs),
                        "n = {n}, y = {y_mask:#b}, a = {outcome:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_is_perfect_at_unit_visibility() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [3usize, 4, 5, 6] {
            let kernel = NoisyGhz::ideal(n).unwrap();
            for &y_mask in &mermin_input_masks(n) {
                for _ in 0..100 {
                    let a = play_mermin_kernel(&kernel, y_mask, &mut rng);
                    assert!(mermin_wins_mask(y_mask, a), "n = {n}, y = {y_mask:#b}");
                }
            }
            let batch = play_mermin_batch(&kernel, 2000, &mut rng);
            assert_eq!(batch.wins, batch.rounds, "n = {n} batch must be perfect");
            assert!((batch.win_rate() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_visibility_batch_is_a_coin_flip() {
        // v = 0 is the fully-mixed parity sector: win rate 1/2.
        let mut rng = StdRng::seed_from_u64(12);
        let kernel = NoisyGhz::new(4, 0.0).unwrap();
        let batch = play_mermin_batch(&kernel, 40_000, &mut rng);
        assert!((batch.win_rate() - 0.5).abs() < 0.01, "{}", batch.win_rate());
    }

    #[test]
    fn crossover_visibility_meets_the_classical_bound() {
        for n in 3..=10 {
            let v = mermin_crossover_visibility(n);
            assert!(
                (mermin_quantum_win(v) - mermin_classical_bound(n)).abs() < 1e-12,
                "n = {n}: crossover v* = {v}"
            );
        }
        // The advantage window widens with n: v* shrinks toward 0.
        assert!(mermin_crossover_visibility(9) < mermin_crossover_visibility(5));
    }

    #[test]
    fn kernel_agrees_with_statevector_on_ideal_states() {
        // The statevector path (play_mermin_quantum) wins every promise
        // round; the kernel at v = 1 must do the same on the same masks.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 4;
        let kernel = NoisyGhz::ideal(n).unwrap();
        for y_mask in mermin_input_masks(n) {
            let x: Vec<u8> = (0..n).map(|j| ((y_mask >> j) & 1) as u8).collect();
            let sv = play_mermin_quantum(&x, &mut rng);
            assert!(mermin_wins(&x, &sv));
            let a = kernel.sample_xy(y_mask, &mut rng);
            assert!(mermin_wins_mask(y_mask, a));
        }
    }
}
