//! Two-player XOR games: exact classical values and quantum values via
//! Tsirelson's vector characterization.
//!
//! An XOR game is given by an input distribution π(x, y) and a target
//! parity `f(x, y)`; the players win iff `a ⊕ b = f(x, y)`. Writing
//! outputs as signs (`a' = (−1)^a`), define the *bias matrix*
//! `A[x][y] = π(x, y) · (−1)^{f(x,y)}`. Then:
//!
//! - **classical bias** `β_c = max Σ A[x][y]·a'_x·b'_y` over sign vectors,
//!   computed exactly here by enumerating Alice's 2^{n_A} sign patterns
//!   (Bob's best response is then closed-form).
//! - **quantum bias** `β_q = max Σ A[x][y]·⟨u_x, v_y⟩` over real unit
//!   vectors (Tsirelson's theorem [Cleve-Høyer-Toner-Watrous 2004, ref 18
//!   in the paper]) — an SDP. We solve it by alternating exact half-steps
//!   (each half-step has a closed-form optimum) with random restarts, and
//!   cross-check with an independent projected-gradient ascent over the
//!   elliptope. This replaces the paper's use of the Toqito package.
//!
//! The game value is `(1 + β) / 2` in both cases. A game has a *quantum
//! advantage* iff `β_q > β_c`.

use crate::game::TwoPlayerGame;
use qmath::{project_elliptope, vecops, RMatrix};
use rand::Rng;

/// A two-player XOR game.
///
/// ```
/// use games::XorGame;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let chsh = XorGame::chsh();
/// assert_eq!(chsh.classical_value(), 0.75);
/// let mut rng = StdRng::seed_from_u64(1);
/// let q = chsh.quantum_value(&mut rng);
/// assert!((q - 0.8536).abs() < 1e-3); // cos²(π/8): Tsirelson's bound
/// ```
#[derive(Debug, Clone)]
pub struct XorGame {
    /// π(x, y); n_a × n_b, entries ≥ 0 summing to 1.
    prob: RMatrix,
    /// Target parity f(x, y): win iff `a ⊕ b = f(x, y)`.
    target: Vec<Vec<bool>>,
}

/// The result of solving for a quantum strategy.
#[derive(Debug, Clone)]
pub struct QuantumSolution {
    /// The quantum game value `(1 + β_q) / 2`.
    pub value: f64,
    /// The quantum bias `β_q`.
    pub bias: f64,
    /// Alice's unit strategy vectors, one per input.
    pub alice_vectors: Vec<Vec<f64>>,
    /// Bob's unit strategy vectors, one per input.
    pub bob_vectors: Vec<Vec<f64>>,
}

impl QuantumSolution {
    /// The correlation matrix `C[x][y] = ⟨u_x, v_y⟩` realized by the
    /// strategy (feeds [`crate::correlation::CorrelationBox`]).
    pub fn correlation_matrix(&self) -> RMatrix {
        RMatrix::from_fn(self.alice_vectors.len(), self.bob_vectors.len(), |x, y| {
            vecops::dot(&self.alice_vectors[x], &self.bob_vectors[y])
        })
    }
}

impl XorGame {
    /// Builds an XOR game, validating the input distribution.
    ///
    /// # Panics
    /// Panics if shapes are inconsistent, probabilities are negative, or
    /// they do not sum to 1 within `1e-9` — these are construction-time
    /// programming errors.
    pub fn new(prob: RMatrix, target: Vec<Vec<bool>>) -> Self {
        assert_eq!(prob.rows(), target.len(), "target rows");
        assert!(prob.rows() > 0 && prob.cols() > 0, "empty game");
        for row in &target {
            assert_eq!(row.len(), prob.cols(), "target cols");
        }
        let mut total = 0.0;
        for x in 0..prob.rows() {
            for y in 0..prob.cols() {
                assert!(prob[(x, y)] >= 0.0, "negative probability");
                total += prob[(x, y)];
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "probabilities sum to {total}");
        XorGame { prob, target }
    }

    /// The standard CHSH game as an XOR game (`f = x ∧ y`, uniform π).
    pub fn chsh() -> Self {
        let prob = RMatrix::from_fn(2, 2, |_, _| 0.25);
        let target = vec![vec![false, false], vec![false, true]];
        XorGame::new(prob, target)
    }

    /// Number of Alice inputs.
    pub fn n_a(&self) -> usize {
        self.prob.rows()
    }

    /// Number of Bob inputs.
    pub fn n_b(&self) -> usize {
        self.prob.cols()
    }

    /// The target parity `f(x, y)`.
    pub fn target(&self, x: usize, y: usize) -> bool {
        self.target[x][y]
    }

    /// The bias matrix `A[x][y] = π(x, y)·(−1)^{f(x,y)}`.
    pub fn bias_matrix(&self) -> RMatrix {
        RMatrix::from_fn(self.n_a(), self.n_b(), |x, y| {
            let sign = if self.target[x][y] { -1.0 } else { 1.0 };
            self.prob[(x, y)] * sign
        })
    }

    /// Exact classical bias by enumeration of Alice's sign patterns.
    ///
    /// For each of Alice's 2^{n_A} sign vectors `a`, Bob's optimal reply is
    /// `b_y = sign(Σ_x A[x][y]·a_x)`, contributing `Σ_y |Σ_x A[x][y]·a_x|`.
    ///
    /// # Panics
    /// Panics if `n_A > 24` (enumeration would be infeasible; the paper's
    /// games have ≤ ~8 inputs).
    pub fn classical_bias(&self) -> f64 {
        let (na, nb) = (self.n_a(), self.n_b());
        assert!(na <= 24, "classical enumeration infeasible for n_a = {na}");
        let a_mat = self.bias_matrix();
        let mut best = f64::NEG_INFINITY;
        for pattern in 0u64..(1u64 << na) {
            let mut total = 0.0;
            for y in 0..nb {
                let mut col = 0.0;
                for x in 0..na {
                    let sign = if pattern >> x & 1 == 1 { -1.0 } else { 1.0 };
                    col += a_mat[(x, y)] * sign;
                }
                total += col.abs();
            }
            best = best.max(total);
        }
        best
    }

    /// Exact classical value `(1 + β_c)/2`.
    pub fn classical_value(&self) -> f64 {
        (1.0 + self.classical_bias()) / 2.0
    }

    /// Quantum bias and strategy by alternating optimization with random
    /// restarts. Each half-step is the exact optimum given the other
    /// side's vectors, so the objective increases monotonically; restarts
    /// guard against the rare saddle start.
    pub fn quantum_solution<R: Rng + ?Sized>(
        &self,
        restarts: usize,
        rng: &mut R,
    ) -> QuantumSolution {
        let (na, nb) = (self.n_a(), self.n_b());
        let dim = na + nb; // sufficient by Tsirelson's theorem
        let a_mat = self.bias_matrix();

        let mut best_bias = f64::NEG_INFINITY;
        let mut best_u: Vec<Vec<f64>> = vec![];
        let mut best_v: Vec<Vec<f64>> = vec![];

        for _ in 0..restarts.max(1) {
            // Random unit starting vectors.
            let mut u: Vec<Vec<f64>> = (0..na).map(|_| random_unit(dim, rng)).collect();
            let mut v: Vec<Vec<f64>> = (0..nb).map(|_| random_unit(dim, rng)).collect();

            let mut prev = f64::NEG_INFINITY;
            for _iter in 0..500 {
                // v_y ← normalize(Σ_x A[x][y] u_x)
                for y in 0..nb {
                    let mut acc = vec![0.0; dim];
                    for x in 0..na {
                        vecops::axpy(a_mat[(x, y)], &u[x], &mut acc);
                    }
                    if vecops::normalize(&mut acc) {
                        v[y] = acc;
                    }
                }
                // u_x ← normalize(Σ_y A[x][y] v_y)
                for (x, ux) in u.iter_mut().enumerate() {
                    let mut acc = vec![0.0; dim];
                    for (y, vy) in v.iter().enumerate() {
                        vecops::axpy(a_mat[(x, y)], vy, &mut acc);
                    }
                    if vecops::normalize(&mut acc) {
                        *ux = acc;
                    }
                }
                let obj = bias_of(&a_mat, &u, &v);
                if obj - prev < 1e-13 {
                    break;
                }
                prev = obj;
            }
            let obj = bias_of(&a_mat, &u, &v);
            if obj > best_bias {
                best_bias = obj;
                best_u = u;
                best_v = v;
            }
        }

        QuantumSolution {
            value: (1.0 + best_bias) / 2.0,
            bias: best_bias,
            alice_vectors: best_u,
            bob_vectors: best_v,
        }
    }

    /// Quantum bias by projected-gradient ascent over the elliptope — an
    /// independent second method used to cross-check
    /// [`Self::quantum_solution`] (ablation benchmark `xor_value`).
    ///
    /// The SDP is `max ⟨W, G⟩` over unit-diagonal PSD `G`, with
    /// `W = [[0, A/2], [Aᵀ/2, 0]]`. The objective is linear, so projected
    /// gradient ascent with diminishing steps converges toward the optimum
    /// over the compact convex feasible set.
    pub fn quantum_bias_pgd(&self, iterations: usize) -> f64 {
        let (na, nb) = (self.n_a(), self.n_b());
        let n = na + nb;
        let a_mat = self.bias_matrix();
        let mut w = RMatrix::zeros(n, n);
        for x in 0..na {
            for y in 0..nb {
                w[(x, na + y)] = a_mat[(x, y)] / 2.0;
                w[(na + y, x)] = a_mat[(x, y)] / 2.0;
            }
        }
        let mut g = RMatrix::identity(n);
        let mut best = objective(&w, &g);
        for it in 0..iterations {
            let step = 4.0 / (1.0 + it as f64).sqrt();
            let stepped = &g + &w.scaled(step);
            g = project_elliptope(&stepped, 4).expect("symmetric by construction");
            best = best.max(objective(&w, &g));
        }
        best
    }

    /// Quantum value `(1 + β_q)/2` with default solver settings.
    pub fn quantum_value<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantum_solution(8, rng).value
    }

    /// True if the quantum value exceeds the classical value by more than
    /// `tol` (use ≥ 1e-4 to stay above solver noise).
    pub fn has_quantum_advantage<R: Rng + ?Sized>(&self, tol: f64, rng: &mut R) -> bool {
        self.quantum_value(rng) > self.classical_value() + tol
    }
}

impl TwoPlayerGame for XorGame {
    fn n_inputs_a(&self) -> usize {
        self.n_a()
    }
    fn n_inputs_b(&self) -> usize {
        self.n_b()
    }
    fn input_probability(&self, x: usize, y: usize) -> f64 {
        self.prob[(x, y)]
    }
    fn wins(&self, x: usize, y: usize, a: bool, b: bool) -> bool {
        (a ^ b) == self.target[x][y]
    }
}

fn random_unit<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vec<f64> {
    loop {
        // Box-Muller-free approximate Gaussian: sum of uniforms is fine
        // for generating a random direction.
        let mut v: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() - 0.5).collect();
        if vecops::normalize(&mut v) {
            return v;
        }
    }
}

fn bias_of(a_mat: &RMatrix, u: &[Vec<f64>], v: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    for (x, ux) in u.iter().enumerate() {
        for (y, vy) in v.iter().enumerate() {
            total += a_mat[(x, y)] * vecops::dot(ux, vy);
        }
    }
    total
}

fn objective(w: &RMatrix, g: &RMatrix) -> f64 {
    w.frobenius_inner(g).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SQRT1_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn chsh_classical_value() {
        let g = XorGame::chsh();
        assert!((g.classical_bias() - 0.5).abs() < 1e-12);
        assert!((g.classical_value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn chsh_quantum_value_reaches_tsirelson() {
        let mut rng = StdRng::seed_from_u64(1);
        let sol = XorGame::chsh().quantum_solution(8, &mut rng);
        // β_q = 1/√2, value = cos²(π/8)
        assert!((sol.bias - SQRT1_2).abs() < 1e-6, "bias {}", sol.bias);
        assert!(
            (sol.value - crate::chsh_quantum_value()).abs() < 1e-6,
            "value {}",
            sol.value
        );
    }

    #[test]
    fn chsh_pgd_cross_check() {
        let bias = XorGame::chsh().quantum_bias_pgd(300);
        assert!((bias - SQRT1_2).abs() < 1e-3, "pgd bias {bias}");
    }

    #[test]
    fn chsh_strategy_vectors_are_unit() {
        let mut rng = StdRng::seed_from_u64(2);
        let sol = XorGame::chsh().quantum_solution(4, &mut rng);
        for v in sol.alice_vectors.iter().chain(&sol.bob_vectors) {
            assert!((vecops::norm(v) - 1.0).abs() < 1e-9);
        }
        // Correlation entries within [-1, 1].
        let c = sol.correlation_matrix();
        for x in 0..2 {
            for y in 0..2 {
                assert!(c[(x, y)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn chsh_optimal_correlations() {
        // Optimal CHSH correlations: C[x][y] = 1/√2 · (−1)^{x∧y}.
        let mut rng = StdRng::seed_from_u64(3);
        let sol = XorGame::chsh().quantum_solution(8, &mut rng);
        let c = sol.correlation_matrix();
        for x in 0..2 {
            for y in 0..2 {
                let expect = if x == 1 && y == 1 { -SQRT1_2 } else { SQRT1_2 };
                assert!(
                    (c[(x, y)] - expect).abs() < 1e-5,
                    "C[{x}][{y}] = {} expect {expect}",
                    c[(x, y)]
                );
            }
        }
    }

    #[test]
    fn trivial_game_no_advantage() {
        // f ≡ 0 with any distribution: both values are 1 (always agree).
        let prob = RMatrix::from_fn(2, 2, |_, _| 0.25);
        let target = vec![vec![false, false], vec![false, false]];
        let g = XorGame::new(prob, target);
        assert!((g.classical_value() - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(4);
        assert!((g.quantum_value(&mut rng) - 1.0).abs() < 1e-9);
        assert!(!g.has_quantum_advantage(1e-4, &mut rng));
    }

    #[test]
    fn anti_agree_game_no_advantage() {
        // f ≡ 1: always disagree — classically winnable with value 1.
        let prob = RMatrix::from_fn(2, 2, |_, _| 0.25);
        let target = vec![vec![true, true], vec![true, true]];
        let g = XorGame::new(prob, target);
        assert!((g.classical_value() - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!g.has_quantum_advantage(1e-4, &mut rng));
    }

    #[test]
    fn quantum_never_below_classical() {
        // β_q ≥ β_c always (vectors can embed signs). Random games.
        let mut rng = StdRng::seed_from_u64(6);
        for trial in 0..10 {
            let n = 3;
            let mut target = vec![vec![false; n]; n];
            for row in target.iter_mut() {
                for cell in row.iter_mut() {
                    *cell = rng.gen();
                }
            }
            let prob = RMatrix::from_fn(n, n, |_, _| 1.0 / (n * n) as f64);
            let g = XorGame::new(prob, target);
            let qc = g.quantum_value(&mut rng);
            let cc = g.classical_value();
            assert!(qc >= cc - 1e-6, "trial {trial}: q={qc} < c={cc}");
        }
    }

    #[test]
    fn pgd_agrees_with_alternating_on_random_games() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let n = 3;
            let mut target = vec![vec![false; n]; n];
            for row in target.iter_mut() {
                for cell in row.iter_mut() {
                    *cell = rng.gen();
                }
            }
            let prob = RMatrix::from_fn(n, n, |_, _| 1.0 / (n * n) as f64);
            let g = XorGame::new(prob, target);
            let alt = g.quantum_solution(8, &mut rng).bias;
            let pgd = g.quantum_bias_pgd(500);
            // PGD is the *cross-check* method: first-order, with an
            // approximate elliptope projection — agreement to ~2% is the
            // designed contract (the alternating solver is the primary).
            assert!(
                (alt - pgd).abs() < 2e-2,
                "alternating {alt} vs pgd {pgd}"
            );
        }
    }

    #[test]
    fn chained_chsh_known_value() {
        // The "chained" 3-input XOR game: inputs x,y ∈ {0,1,2}, uniform on
        // the 5 pairs (0,0),(0,1),(1,1),(1,2),(2,2)... we use the standard
        // odd-cycle XOR game on 3 inputs: win iff a⊕b = [x=2 ∧ y=0],
        // distribution uniform over pairs with y ∈ {x, x+1 mod 3}.
        // Classical bias = 2/3 (best strategy violates one of 6 clauses...)
        // quantum bias = cos(π/6) ≈ 0.8660.
        let n = 3;
        let mut prob = RMatrix::zeros(n, n);
        let mut target = vec![vec![false; n]; n];
        for x in 0..n {
            prob[(x, x)] = 1.0 / 6.0;
            let y = (x + 1) % n;
            prob[(x, y)] = 1.0 / 6.0;
            // Anti-correlate on the wrap-around edge only.
            target[x][y] = y == 0;
        }
        let g = XorGame::new(prob, target);
        // Odd-cycle XOR game on C_3 ("anti-ferromagnetic frustration"):
        // classically at most 5 of 6 clauses satisfiable → bias 4/6 = 2/3.
        assert!((g.classical_bias() - 2.0 / 3.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(8);
        let q = g.quantum_solution(16, &mut rng).bias;
        // Quantum bias = cos(π/6) for the 3-cycle.
        let expect = (std::f64::consts::PI / 6.0).cos();
        assert!((q - expect).abs() < 1e-5, "bias {q} expect {expect}");
    }

    #[test]
    #[should_panic(expected = "probabilities sum")]
    fn bad_distribution_panics() {
        let prob = RMatrix::from_fn(2, 2, |_, _| 0.3);
        XorGame::new(prob, vec![vec![false; 2]; 2]);
    }

    #[test]
    fn game_trait_implementation() {
        let g = XorGame::chsh();
        assert_eq!(g.n_inputs_a(), 2);
        assert!((g.input_probability(1, 1) - 0.25).abs() < 1e-12);
        assert!(g.wins(1, 1, true, false));
        assert!(!g.wins(1, 1, true, true));
    }
}
