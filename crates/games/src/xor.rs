//! Two-player XOR games: exact classical values and quantum values via
//! Tsirelson's vector characterization.
//!
//! An XOR game is given by an input distribution π(x, y) and a target
//! parity `f(x, y)`; the players win iff `a ⊕ b = f(x, y)`. Writing
//! outputs as signs (`a' = (−1)^a`), define the *bias matrix*
//! `A[x][y] = π(x, y) · (−1)^{f(x,y)}`. Then:
//!
//! - **classical bias** `β_c = max Σ A[x][y]·a'_x·b'_y` over sign vectors,
//!   computed exactly here by walking Alice's 2^{n_A} sign patterns in
//!   *Gray-code order*: consecutive patterns differ in one bit, so the
//!   per-`y` column sums update in O(n_B) per pattern instead of a full
//!   O(n_A·n_B) rescan ([`XorGame::classical_bias`]; the naive rescan
//!   survives as the test oracle [`XorGame::classical_bias_naive`]).
//! - **quantum bias** `β_q = max Σ A[x][y]·⟨u_x, v_y⟩` over real unit
//!   vectors (Tsirelson's theorem [Cleve-Høyer-Toner-Watrous 2004, ref 18
//!   in the paper]) — an SDP. We solve it by alternating exact half-steps
//!   (each half-step has a closed-form optimum) over contiguous flat
//!   vector buffers, starting from a deterministic spectral warm start
//!   (power iteration on AᵀA) with random restarts as a safety net, and
//!   cross-check with an independent projected-gradient ascent over the
//!   elliptope. This replaces the paper's use of the Toqito package.
//!
//! Solver iteration budgets, the convergence tolerance, and the restart
//! count all live in one [`SolverOpts`] struct threaded through both the
//! alternating solver and the PGD cross-check.
//!
//! The game value is `(1 + β) / 2` in both cases. A game has a *quantum
//! advantage* iff `β_q > β_c`.

use crate::error::GameError;
use crate::game::TwoPlayerGame;
use qmath::{project_elliptope, vecops, RMatrix};
use rand::Rng;

/// Largest `n_A` the exact classical enumeration accepts (2^{n_A} sign
/// patterns; the paper's games have ≤ ~8 inputs).
pub const ENUM_LIMIT: usize = 24;

/// Options shared by the XOR-game solvers.
///
/// One struct configures both [`XorGame::quantum_solution_with`] (the
/// alternating solver) and [`XorGame::quantum_bias_pgd_with`] (the PGD
/// cross-check), replacing the old split where `quantum_bias_pgd` took an
/// `iterations` argument while `quantum_solution` hardcoded 500.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOpts {
    /// Iteration cap per restart (alternating) or total (PGD).
    /// Default 500 — the historical fixed budget, now an upper bound
    /// thanks to the convergence exit.
    pub max_iters: usize,
    /// Relative-improvement convergence threshold: the alternating solver
    /// stops a restart once `bias − prev ≤ tol · max(1, |bias|)`.
    /// Default `1e-12` (bias values are O(1), so this is effectively
    /// machine precision). Set to `0.0` to run every restart for the
    /// full `max_iters` (the pre-optimization behavior, kept for the
    /// `xor_value` ablation bench).
    pub tol: f64,
    /// Number of starts of the alternating solver. The first start is the
    /// deterministic spectral warm start when [`SolverOpts::warm_start`]
    /// is set; the rest draw random unit vectors from the caller's RNG.
    /// Default 8.
    pub restarts: usize,
    /// Use the deterministic spectral warm start (power iteration on
    /// AᵀA) for the first start. Default `true`; the ablation bench
    /// disables it to measure the cold-start cost.
    pub warm_start: bool,
}

impl Default for SolverOpts {
    fn default() -> Self {
        SolverOpts {
            max_iters: 500,
            tol: 1e-12,
            restarts: 8,
            warm_start: true,
        }
    }
}

impl SolverOpts {
    /// The pre-optimization solver configuration: fixed-iteration budget,
    /// no warm start, no convergence exit. Used by the ablation bench as
    /// the "seed solver" arm.
    pub fn seed_solver() -> Self {
        SolverOpts {
            max_iters: 500,
            tol: 0.0,
            restarts: 8,
            warm_start: false,
        }
    }
}

/// A two-player XOR game.
///
/// ```
/// use games::XorGame;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let chsh = XorGame::chsh();
/// assert_eq!(chsh.classical_value().unwrap(), 0.75);
/// let mut rng = StdRng::seed_from_u64(1);
/// let q = chsh.quantum_value(&mut rng);
/// assert!((q - 0.8536).abs() < 1e-3); // cos²(π/8): Tsirelson's bound
/// ```
#[derive(Debug, Clone)]
pub struct XorGame {
    /// π(x, y); n_a × n_b, entries ≥ 0 summing to 1.
    prob: RMatrix,
    /// Target parity f(x, y): win iff `a ⊕ b = f(x, y)`.
    target: Vec<Vec<bool>>,
}

/// The result of solving for a quantum strategy.
#[derive(Debug, Clone)]
pub struct QuantumSolution {
    /// The quantum game value `(1 + β_q) / 2`.
    pub value: f64,
    /// The quantum bias `β_q`.
    pub bias: f64,
    /// Alice's unit strategy vectors, one per input.
    pub alice_vectors: Vec<Vec<f64>>,
    /// Bob's unit strategy vectors, one per input.
    pub bob_vectors: Vec<Vec<f64>>,
}

impl QuantumSolution {
    /// The correlation matrix `C[x][y] = ⟨u_x, v_y⟩` realized by the
    /// strategy (feeds [`crate::correlation::CorrelationBox`]).
    pub fn correlation_matrix(&self) -> RMatrix {
        RMatrix::from_fn(self.alice_vectors.len(), self.bob_vectors.len(), |x, y| {
            vecops::dot(&self.alice_vectors[x], &self.bob_vectors[y])
        })
    }
}

impl XorGame {
    /// Builds an XOR game, validating the input distribution.
    ///
    /// # Panics
    /// Panics if shapes are inconsistent, probabilities are negative, or
    /// they do not sum to 1 within `1e-9` — these are construction-time
    /// programming errors.
    pub fn new(prob: RMatrix, target: Vec<Vec<bool>>) -> Self {
        assert_eq!(prob.rows(), target.len(), "target rows");
        assert!(prob.rows() > 0 && prob.cols() > 0, "empty game");
        for row in &target {
            assert_eq!(row.len(), prob.cols(), "target cols");
        }
        let mut total = 0.0;
        for x in 0..prob.rows() {
            for y in 0..prob.cols() {
                assert!(prob[(x, y)] >= 0.0, "negative probability");
                total += prob[(x, y)];
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "probabilities sum to {total}");
        XorGame { prob, target }
    }

    /// The standard CHSH game as an XOR game (`f = x ∧ y`, uniform π).
    pub fn chsh() -> Self {
        let prob = RMatrix::from_fn(2, 2, |_, _| 0.25);
        let target = vec![vec![false, false], vec![false, true]];
        XorGame::new(prob, target)
    }

    /// Number of Alice inputs.
    pub fn n_a(&self) -> usize {
        self.prob.rows()
    }

    /// Number of Bob inputs.
    pub fn n_b(&self) -> usize {
        self.prob.cols()
    }

    /// The target parity `f(x, y)`.
    pub fn target(&self, x: usize, y: usize) -> bool {
        self.target[x][y]
    }

    /// The bias matrix `A[x][y] = π(x, y)·(−1)^{f(x,y)}`.
    pub fn bias_matrix(&self) -> RMatrix {
        RMatrix::from_fn(self.n_a(), self.n_b(), |x, y| {
            let sign = if self.target[x][y] { -1.0 } else { 1.0 };
            self.prob[(x, y)] * sign
        })
    }

    /// Exact classical bias by Gray-code enumeration of Alice's sign
    /// patterns.
    ///
    /// For each of Alice's 2^{n_A} sign vectors `a`, Bob's optimal reply
    /// is `b_y = sign(Σ_x A[x][y]·a_x)`, contributing `Σ_y |Σ_x
    /// A[x][y]·a_x|`. Consecutive Gray-code patterns differ by one sign,
    /// so the per-`y` column sums update incrementally in O(n_B).
    ///
    /// # Errors
    /// [`GameError::TooLarge`] if `n_A >` [`ENUM_LIMIT`].
    pub fn classical_bias(&self) -> Result<f64, GameError> {
        let a = self.bias_matrix();
        classical_bias_flat(a.as_slice(), self.n_a(), self.n_b())
    }

    /// Exact classical bias by full per-pattern rescans — the original
    /// O(2^{n_A}·n_A·n_B) formulation, kept as the oracle the Gray-code
    /// walk is property-tested against (and as the ablation baseline).
    ///
    /// # Errors
    /// [`GameError::TooLarge`] if `n_A >` [`ENUM_LIMIT`].
    pub fn classical_bias_naive(&self) -> Result<f64, GameError> {
        let (na, nb) = (self.n_a(), self.n_b());
        if na > ENUM_LIMIT {
            return Err(GameError::TooLarge {
                n_a: na,
                limit: ENUM_LIMIT,
            });
        }
        let a_mat = self.bias_matrix();
        let mut best = f64::NEG_INFINITY;
        for pattern in 0u64..(1u64 << na) {
            let mut total = 0.0;
            for y in 0..nb {
                let mut col = 0.0;
                for x in 0..na {
                    let sign = if pattern >> x & 1 == 1 { -1.0 } else { 1.0 };
                    col += a_mat[(x, y)] * sign;
                }
                total += col.abs();
            }
            best = best.max(total);
        }
        Ok(best)
    }

    /// Exact classical value `(1 + β_c)/2`.
    ///
    /// # Errors
    /// [`GameError::TooLarge`] if `n_A >` [`ENUM_LIMIT`].
    pub fn classical_value(&self) -> Result<f64, GameError> {
        Ok((1.0 + self.classical_bias()?) / 2.0)
    }

    /// Quantum bias and strategy by alternating optimization with a
    /// spectral warm start and random restarts, using the default
    /// [`SolverOpts`] with the given restart count.
    pub fn quantum_solution<R: Rng + ?Sized>(
        &self,
        restarts: usize,
        rng: &mut R,
    ) -> QuantumSolution {
        self.quantum_solution_with(
            &SolverOpts {
                restarts,
                ..SolverOpts::default()
            },
            rng,
        )
    }

    /// Quantum bias and strategy by alternating optimization.
    ///
    /// Each half-step is the exact optimum given the other side's
    /// vectors, so the objective increases monotonically; a restart exits
    /// once the relative improvement drops below [`SolverOpts::tol`]. The
    /// first start is a deterministic spectral warm start (top singular
    /// direction of the bias matrix via power iteration on AᵀA, spread
    /// across dimensions so alternating steps can still rotate freely);
    /// the remaining restarts draw random unit vectors from `rng` and
    /// guard against the rare saddle start.
    ///
    /// All strategy vectors live in contiguous flat buffers during the
    /// solve; the returned [`QuantumSolution`] repacks them per input.
    pub fn quantum_solution_with<R: Rng + ?Sized>(
        &self,
        opts: &SolverOpts,
        rng: &mut R,
    ) -> QuantumSolution {
        let (na, nb) = (self.n_a(), self.n_b());
        let dim = na + nb; // sufficient by Tsirelson's theorem
        let a = self.bias_matrix();
        let mut u = vec![0.0; na * dim];
        let mut v = vec![0.0; nb * dim];
        let bias = solve_quantum_flat(a.as_slice(), na, nb, opts, rng, &mut u, &mut v);
        QuantumSolution {
            value: (1.0 + bias) / 2.0,
            bias,
            alice_vectors: u.chunks_exact(dim).map(<[f64]>::to_vec).collect(),
            bob_vectors: v.chunks_exact(dim).map(<[f64]>::to_vec).collect(),
        }
    }

    /// Quantum bias by projected-gradient ascent over the elliptope — an
    /// independent second method used to cross-check
    /// [`Self::quantum_solution`] (ablation benchmark `xor_value`), using
    /// [`SolverOpts::max_iters`] iterations.
    ///
    /// The SDP is `max ⟨W, G⟩` over unit-diagonal PSD `G`, with
    /// `W = [[0, A/2], [Aᵀ/2, 0]]`. The objective is linear, so projected
    /// gradient ascent with diminishing steps converges toward the optimum
    /// over the compact convex feasible set.
    pub fn quantum_bias_pgd_with(&self, opts: &SolverOpts) -> f64 {
        let (na, nb) = (self.n_a(), self.n_b());
        let n = na + nb;
        let a_mat = self.bias_matrix();
        let mut w = RMatrix::zeros(n, n);
        for x in 0..na {
            for y in 0..nb {
                w[(x, na + y)] = a_mat[(x, y)] / 2.0;
                w[(na + y, x)] = a_mat[(x, y)] / 2.0;
            }
        }
        let mut g = RMatrix::identity(n);
        let mut best = objective(&w, &g);
        for it in 0..opts.max_iters {
            let step = 4.0 / (1.0 + it as f64).sqrt();
            let stepped = &g + &w.scaled(step);
            g = project_elliptope(&stepped, 4).expect("symmetric by construction");
            best = best.max(objective(&w, &g));
        }
        best
    }

    /// [`Self::quantum_bias_pgd_with`] with an explicit iteration count
    /// (historical signature, kept for the cross-check call sites).
    pub fn quantum_bias_pgd(&self, iterations: usize) -> f64 {
        self.quantum_bias_pgd_with(&SolverOpts {
            max_iters: iterations,
            ..SolverOpts::default()
        })
    }

    /// Quantum value `(1 + β_q)/2` with default solver settings.
    pub fn quantum_value<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantum_solution_with(&SolverOpts::default(), rng).value
    }

    /// True if the quantum value exceeds the classical value by more than
    /// `tol` (use ≥ 1e-4 to stay above solver noise).
    ///
    /// # Errors
    /// [`GameError::TooLarge`] if the classical enumeration is infeasible
    /// (`n_A >` [`ENUM_LIMIT`]).
    pub fn has_quantum_advantage<R: Rng + ?Sized>(
        &self,
        tol: f64,
        rng: &mut R,
    ) -> Result<bool, GameError> {
        Ok(self.quantum_value(rng) > self.classical_value()? + tol)
    }
}

impl TwoPlayerGame for XorGame {
    fn n_inputs_a(&self) -> usize {
        self.n_a()
    }
    fn n_inputs_b(&self) -> usize {
        self.n_b()
    }
    fn input_probability(&self, x: usize, y: usize) -> f64 {
        self.prob[(x, y)]
    }
    fn wins(&self, x: usize, y: usize, a: bool, b: bool) -> bool {
        (a ^ b) == self.target[x][y]
    }
}

/// Gray-code classical bias over a row-major flat bias matrix. Shared by
/// [`XorGame::classical_bias`] and the canonical-form path of
/// [`crate::cache`], which evaluates the cached value on the canonical
/// matrix so it is a pure function of the canonical key.
pub(crate) fn classical_bias_flat(a: &[f64], na: usize, nb: usize) -> Result<f64, GameError> {
    debug_assert_eq!(a.len(), na * nb);
    if na > ENUM_LIMIT {
        return Err(GameError::TooLarge {
            n_a: na,
            limit: ENUM_LIMIT,
        });
    }
    // Column sums for the all-(+1) pattern.
    let mut s = vec![0.0f64; nb];
    for x in 0..na {
        vecops::axpy(1.0, &a[x * nb..(x + 1) * nb], &mut s);
    }
    let mut best: f64 = s.iter().map(|c| c.abs()).sum();
    // Walk patterns in Gray-code order: gray(k) = k ^ (k >> 1), and
    // gray(k−1) → gray(k) flips exactly bit trailing_zeros(k).
    let mut signs = 0u64; // bit x set ⇔ sign of input x is −1
    for k in 1u64..(1u64 << na) {
        let x = k.trailing_zeros() as usize;
        let old_sign = if signs >> x & 1 == 1 { -1.0 } else { 1.0 };
        signs ^= 1 << x;
        // Flipping input x: s_y ← s_y − 2·old_sign·A[x][y].
        vecops::axpy(-2.0 * old_sign, &a[x * nb..(x + 1) * nb], &mut s);
        let total: f64 = s.iter().map(|c| c.abs()).sum();
        if total > best {
            best = total;
        }
    }
    Ok(best)
}

/// Fixed power-iteration budget for the spectral warm start. AᵀA power
/// iteration converges geometrically in (σ₂/σ₁)²; 40 steps resolve the
/// top singular direction far beyond what the warm start needs (the
/// alternating solver refines from there anyway).
const POWER_ITERS: usize = 40;

/// Deterministic spectral warm start: power-iterate AᵀA for the top
/// right-singular direction `b`, then seed `v_y = b_y·e₀ +
/// √(1−b_y²)·e_{1+y}`. Every `v_y` is a unit vector with a shared
/// component along the dominant direction plus its own orthogonal axis,
/// so the start is spectral-informed *and* full-rank (a pure rank-1 start
/// would trap the alternating iteration in a one-dimensional subspace).
fn spectral_init(a: &[f64], na: usize, nb: usize, dim: usize, v: &mut [f64]) {
    // Deterministic tilted start so a symmetric all-ones vector cannot be
    // exactly orthogonal to the dominant direction.
    let mut b: Vec<f64> = (0..nb)
        .map(|y| 1.0 + (y as f64 + 1.0) / (nb as f64 + 1.0))
        .collect();
    let _ = vecops::normalize(&mut b);
    let mut tmp = vec![0.0; na];
    let mut next = vec![0.0; nb];
    for _ in 0..POWER_ITERS {
        vecops::gemv(a, na, nb, &b, &mut tmp); // tmp = A·b
        vecops::gemv_t(a, na, nb, &tmp, &mut next); // next = Aᵀ·A·b
        if !vecops::normalize(&mut next) {
            break; // b landed in the null space; keep the current direction
        }
        std::mem::swap(&mut b, &mut next);
    }
    v.fill(0.0);
    for (y, &by) in b.iter().enumerate() {
        let c = by.clamp(-1.0, 1.0);
        v[y * dim] = c;
        v[y * dim + 1 + y] = (1.0 - c * c).max(0.0).sqrt();
    }
}

/// Alternating-optimization core over flat SoA buffers.
///
/// `out_u`/`out_v` receive the best strategy found (`na × dim` and
/// `nb × dim`, row-major, `dim = na + nb`); returns its bias. The bias of
/// an iterate is accumulated for free during the `v` half-step: after
/// `acc_y = Σ_x A[x][y]·u_x`, the normalized `v_y` contributes exactly
/// `‖acc_y‖` to the objective.
pub(crate) fn solve_quantum_flat<R: Rng + ?Sized>(
    a: &[f64],
    na: usize,
    nb: usize,
    opts: &SolverOpts,
    rng: &mut R,
    out_u: &mut [f64],
    out_v: &mut [f64],
) -> f64 {
    let dim = na + nb;
    debug_assert_eq!(a.len(), na * nb);
    debug_assert_eq!(out_u.len(), na * dim);
    debug_assert_eq!(out_v.len(), nb * dim);

    // Transposed bias so the v half-step reads its coefficients
    // contiguously.
    let mut at = vec![0.0; na * nb];
    for x in 0..na {
        for y in 0..nb {
            at[y * na + x] = a[x * nb + y];
        }
    }

    let mut u = vec![0.0; na * dim];
    let mut v = vec![0.0; nb * dim];
    let mut acc = vec![0.0; dim];
    let mut best_bias = f64::NEG_INFINITY;

    for restart in 0..opts.restarts.max(1) {
        // Unit placeholder rows: inputs whose bias row/column is all zero
        // never get updated by a half-step and must still be unit vectors.
        u.fill(0.0);
        for x in 0..na {
            u[x * dim] = 1.0;
        }
        if restart == 0 && opts.warm_start {
            spectral_init(a, na, nb, dim, &mut v);
        } else {
            for y in 0..nb {
                random_unit_into(rng, &mut v[y * dim..(y + 1) * dim]);
            }
        }

        let mut prev = f64::NEG_INFINITY;
        let mut bias = 0.0;
        for iter in 0..opts.max_iters.max(1) {
            // u_x ← normalize(Σ_y A[x][y]·v_y)
            for x in 0..na {
                acc.fill(0.0);
                for (y, &w) in a[x * nb..(x + 1) * nb].iter().enumerate() {
                    vecops::axpy(w, &v[y * dim..(y + 1) * dim], &mut acc);
                }
                if vecops::normalize(&mut acc) {
                    u[x * dim..(x + 1) * dim].copy_from_slice(&acc);
                }
            }
            // v_y ← normalize(Σ_x A[x][y]·u_x); Σ_y ‖acc_y‖ is the bias
            // of (u, v_new).
            bias = 0.0;
            for y in 0..nb {
                acc.fill(0.0);
                for (x, &w) in at[y * na..(y + 1) * na].iter().enumerate() {
                    vecops::axpy(w, &u[x * dim..(x + 1) * dim], &mut acc);
                }
                bias += vecops::norm(&acc);
                if vecops::normalize(&mut acc) {
                    v[y * dim..(y + 1) * dim].copy_from_slice(&acc);
                }
            }
            if iter > 0 && bias - prev <= opts.tol * bias.abs().max(1.0) {
                break;
            }
            prev = bias;
        }
        if bias > best_bias {
            best_bias = bias;
            out_u.copy_from_slice(&u);
            out_v.copy_from_slice(&v);
        }
    }
    best_bias
}

fn random_unit_into<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    loop {
        // Box-Muller-free approximate Gaussian: sum of uniforms is fine
        // for generating a random direction.
        for o in out.iter_mut() {
            *o = rng.gen::<f64>() - 0.5;
        }
        if vecops::normalize(out) {
            return;
        }
    }
}

fn objective(w: &RMatrix, g: &RMatrix) -> f64 {
    w.frobenius_inner(g).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SQRT1_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn chsh_classical_value() {
        let g = XorGame::chsh();
        assert!((g.classical_bias().unwrap() - 0.5).abs() < 1e-12);
        assert!((g.classical_value().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gray_code_matches_naive_on_chsh() {
        let g = XorGame::chsh();
        assert_eq!(g.classical_bias().unwrap(), g.classical_bias_naive().unwrap());
    }

    #[test]
    fn too_large_game_is_a_typed_error() {
        let n = ENUM_LIMIT + 1;
        let prob = RMatrix::from_fn(n, 2, |_, _| 1.0 / (2 * n) as f64);
        let target = vec![vec![false; 2]; n];
        let g = XorGame::new(prob, target);
        assert_eq!(
            g.classical_bias(),
            Err(GameError::TooLarge {
                n_a: n,
                limit: ENUM_LIMIT
            })
        );
        assert!(g.classical_value().is_err());
    }

    #[test]
    fn chsh_quantum_value_reaches_tsirelson() {
        let mut rng = StdRng::seed_from_u64(1);
        let sol = XorGame::chsh().quantum_solution(8, &mut rng);
        // β_q = 1/√2, value = cos²(π/8)
        assert!((sol.bias - SQRT1_2).abs() < 1e-6, "bias {}", sol.bias);
        assert!(
            (sol.value - crate::chsh_quantum_value()).abs() < 1e-6,
            "value {}",
            sol.value
        );
    }

    #[test]
    fn warm_start_alone_reaches_tsirelson() {
        // The deterministic spectral start must solve CHSH without any
        // random restart (restarts = 1 ⇒ no RNG consumption at all).
        let mut rng = StdRng::seed_from_u64(1);
        let opts = SolverOpts {
            restarts: 1,
            ..SolverOpts::default()
        };
        let before: u64 = {
            let mut probe = StdRng::seed_from_u64(1);
            probe.gen()
        };
        let sol = XorGame::chsh().quantum_solution_with(&opts, &mut rng);
        assert!((sol.bias - SQRT1_2).abs() < 1e-6, "bias {}", sol.bias);
        assert_eq!(rng.gen::<u64>(), before, "warm start must not draw from the RNG");
    }

    #[test]
    fn chsh_pgd_cross_check() {
        let bias = XorGame::chsh().quantum_bias_pgd(300);
        assert!((bias - SQRT1_2).abs() < 1e-3, "pgd bias {bias}");
    }

    #[test]
    fn pgd_with_opts_matches_iteration_signature() {
        let game = XorGame::chsh();
        let a = game.quantum_bias_pgd(200);
        let b = game.quantum_bias_pgd_with(&SolverOpts {
            max_iters: 200,
            ..SolverOpts::default()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn chsh_strategy_vectors_are_unit() {
        let mut rng = StdRng::seed_from_u64(2);
        let sol = XorGame::chsh().quantum_solution(4, &mut rng);
        for v in sol.alice_vectors.iter().chain(&sol.bob_vectors) {
            assert!((vecops::norm(v) - 1.0).abs() < 1e-9);
        }
        // Correlation entries within [-1, 1].
        let c = sol.correlation_matrix();
        for x in 0..2 {
            for y in 0..2 {
                assert!(c[(x, y)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn chsh_optimal_correlations() {
        // Optimal CHSH correlations: C[x][y] = 1/√2 · (−1)^{x∧y}.
        let mut rng = StdRng::seed_from_u64(3);
        let sol = XorGame::chsh().quantum_solution(8, &mut rng);
        let c = sol.correlation_matrix();
        for x in 0..2 {
            for y in 0..2 {
                let expect = if x == 1 && y == 1 { -SQRT1_2 } else { SQRT1_2 };
                assert!(
                    (c[(x, y)] - expect).abs() < 1e-5,
                    "C[{x}][{y}] = {} expect {expect}",
                    c[(x, y)]
                );
            }
        }
    }

    #[test]
    fn trivial_game_no_advantage() {
        // f ≡ 0 with any distribution: both values are 1 (always agree).
        let prob = RMatrix::from_fn(2, 2, |_, _| 0.25);
        let target = vec![vec![false, false], vec![false, false]];
        let g = XorGame::new(prob, target);
        assert!((g.classical_value().unwrap() - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(4);
        assert!((g.quantum_value(&mut rng) - 1.0).abs() < 1e-9);
        assert!(!g.has_quantum_advantage(1e-4, &mut rng).unwrap());
    }

    #[test]
    fn anti_agree_game_no_advantage() {
        // f ≡ 1: always disagree — classically winnable with value 1.
        let prob = RMatrix::from_fn(2, 2, |_, _| 0.25);
        let target = vec![vec![true, true], vec![true, true]];
        let g = XorGame::new(prob, target);
        assert!((g.classical_value().unwrap() - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!g.has_quantum_advantage(1e-4, &mut rng).unwrap());
    }

    #[test]
    fn quantum_never_below_classical() {
        // β_q ≥ β_c always (vectors can embed signs). Random games.
        let mut rng = StdRng::seed_from_u64(6);
        for trial in 0..10 {
            let n = 3;
            let mut target = vec![vec![false; n]; n];
            for row in target.iter_mut() {
                for cell in row.iter_mut() {
                    *cell = rng.gen();
                }
            }
            let prob = RMatrix::from_fn(n, n, |_, _| 1.0 / (n * n) as f64);
            let g = XorGame::new(prob, target);
            let qc = g.quantum_value(&mut rng);
            let cc = g.classical_value().unwrap();
            assert!(qc >= cc - 1e-6, "trial {trial}: q={qc} < c={cc}");
        }
    }

    #[test]
    fn pgd_agrees_with_alternating_on_random_games() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let n = 3;
            let mut target = vec![vec![false; n]; n];
            for row in target.iter_mut() {
                for cell in row.iter_mut() {
                    *cell = rng.gen();
                }
            }
            let prob = RMatrix::from_fn(n, n, |_, _| 1.0 / (n * n) as f64);
            let g = XorGame::new(prob, target);
            let alt = g.quantum_solution(8, &mut rng).bias;
            let pgd = g.quantum_bias_pgd(500);
            // PGD is the *cross-check* method: first-order, with an
            // approximate elliptope projection — agreement to ~2% is the
            // designed contract (the alternating solver is the primary).
            assert!(
                (alt - pgd).abs() < 2e-2,
                "alternating {alt} vs pgd {pgd}"
            );
        }
    }

    #[test]
    fn chained_chsh_known_value() {
        // The "chained" 3-input XOR game: inputs x,y ∈ {0,1,2}, uniform on
        // the 5 pairs (0,0),(0,1),(1,1),(1,2),(2,2)... we use the standard
        // odd-cycle XOR game on 3 inputs: win iff a⊕b = [x=2 ∧ y=0],
        // distribution uniform over pairs with y ∈ {x, x+1 mod 3}.
        // Classical bias = 2/3 (best strategy violates one of 6 clauses...)
        // quantum bias = cos(π/6) ≈ 0.8660.
        let n = 3;
        let mut prob = RMatrix::zeros(n, n);
        let mut target = vec![vec![false; n]; n];
        for x in 0..n {
            prob[(x, x)] = 1.0 / 6.0;
            let y = (x + 1) % n;
            prob[(x, y)] = 1.0 / 6.0;
            // Anti-correlate on the wrap-around edge only.
            target[x][y] = y == 0;
        }
        let g = XorGame::new(prob, target);
        // Odd-cycle XOR game on C_3 ("anti-ferromagnetic frustration"):
        // classically at most 5 of 6 clauses satisfiable → bias 4/6 = 2/3.
        assert!((g.classical_bias().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(8);
        let q = g.quantum_solution(16, &mut rng).bias;
        // Quantum bias = cos(π/6) for the 3-cycle.
        let expect = (std::f64::consts::PI / 6.0).cos();
        assert!((q - expect).abs() < 1e-5, "bias {q} expect {expect}");
    }

    #[test]
    #[should_panic(expected = "probabilities sum")]
    fn bad_distribution_panics() {
        let prob = RMatrix::from_fn(2, 2, |_, _| 0.3);
        XorGame::new(prob, vec![vec![false; 2]; 2]);
    }

    #[test]
    fn game_trait_implementation() {
        let g = XorGame::chsh();
        assert_eq!(g.n_inputs_a(), 2);
        assert!((g.input_probability(1, 1) - 0.25).abs() < 1e-12);
        assert!(g.wins(1, 1, true, false));
        assert!(!g.wins(1, 1, true, true));
    }

    #[test]
    fn zero_bias_rows_keep_unit_placeholder_vectors() {
        // A game whose first Alice input has zero probability everywhere:
        // its strategy vector is never touched by a half-step and must
        // remain a unit placeholder.
        let prob = RMatrix::from_fn(2, 2, |x, _| if x == 0 { 0.0 } else { 0.5 });
        let target = vec![vec![false, false], vec![false, true]];
        let g = XorGame::new(prob, target);
        let mut rng = StdRng::seed_from_u64(9);
        let sol = g.quantum_solution(2, &mut rng);
        for v in sol.alice_vectors.iter().chain(&sol.bob_vectors) {
            assert!((vecops::norm(v) - 1.0).abs() < 1e-9, "vector {v:?}");
        }
    }
}
