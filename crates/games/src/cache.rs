//! Canonicalizing, sharded value cache for XOR games.
//!
//! The Figure 3 sweeps draw thousands of random affinity-graph games, and
//! many of those games are identical up to vertex relabeling (a
//! simultaneous row/column permutation of the bias matrix) and global
//! sign. This module computes a *canonical form* of the bias matrix —
//! lexicographically minimal over the permutation orbit and global sign —
//! and memoizes game values keyed on it, so repeat solves become hash
//! lookups.
//!
//! ## Determinism contract (load-bearing)
//!
//! Cached values must not depend on which orbit representative reached
//! the cache first, on thread count, or on whether the cache is enabled
//! at all — the `qnlg.bench.v1` artifacts are byte-identical across
//! `QNLG_THREADS` and across `QNLG_XOR_CACHE=0/1`. This works because
//! [`ValueCache::solve`] never solves the game it was handed: it solves
//! the **canonical matrix**, with the solver's restart RNG seeded from a
//! hash of the canonical key. Values are therefore a pure function of the
//! canonical form, and the cache is a transparent memo of that function.
//!
//! Soundness of the canonicalization itself is easy: any procedure that
//! only *applies* row/column permutations and a global sign flip maps a
//! game to one with identical classical and quantum values (relabel
//! inputs; negate every strategy sign / vector of one player). Equal
//! canonical forms ⟹ same orbit ⟹ same value. For the symmetric
//! matrices of graph games with ≤ [`EXACT_LIMIT`] vertices the canonical
//! form is the exact orbit minimum (branch-and-bound over simultaneous
//! permutations), so relabelings of the same graph always collide; larger
//! or non-symmetric games fall back to a sort-refinement heuristic that
//! is still sound, just not guaranteed to merge every orbit.
//!
//! Counters `games.xor.cache.hits` / `games.xor.cache.misses` land in the
//! obs snapshot of every artifact; the repro CI job asserts hits > 0 on
//! the fig3 quick run. `QNLG_XOR_CACHE=0` is the escape hatch.

use crate::error::GameError;
use crate::xor::{classical_bias_flat, solve_quantum_flat, SolverOpts, XorGame};
use obs::LazyCounter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};
use std::sync::{Mutex, OnceLock};

static HITS: LazyCounter = LazyCounter::new("games.xor.cache.hits");
static MISSES: LazyCounter = LazyCounter::new("games.xor.cache.misses");

/// Largest (square, symmetric) bias matrix canonicalized exactly; beyond
/// this the heuristic takes over. 8 covers every graph size the
/// experiments sweep with room to spare — branch-and-bound over 8! orders
/// with prefix pruning is microseconds.
pub const EXACT_LIMIT: usize = 8;

const SHARDS: usize = 8;

/// The pair of values the pipeline needs per game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameValues {
    /// Classical bias `β_c` (exact, Gray-code enumeration).
    pub classical_bias: f64,
    /// Quantum bias `β_q` (alternating solver on the canonical matrix).
    pub quantum_bias: f64,
}

impl GameValues {
    /// Classical game value `(1 + β_c)/2`.
    pub fn classical_value(&self) -> f64 {
        (1.0 + self.classical_bias) / 2.0
    }

    /// Quantum game value `(1 + β_q)/2`.
    pub fn quantum_value(&self) -> f64 {
        (1.0 + self.quantum_bias) / 2.0
    }

    /// Whether the quantum value beats the classical by more than `tol`.
    pub fn has_advantage(&self, tol: f64) -> bool {
        self.quantum_value() > self.classical_value() + tol
    }
}

// --- enable/disable state ------------------------------------------------

const STATE_UNSET: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Whether caching is enabled. First call reads `QNLG_XOR_CACHE` (any
/// value other than `0` — including unset — enables); later calls reuse
/// the decision. [`set_enabled`] overrides either way.
pub fn enabled() -> bool {
    match ENABLED.load(AtomicOrdering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = std::env::var("QNLG_XOR_CACHE").map_or(true, |v| v != "0");
            ENABLED.store(
                if on { STATE_ON } else { STATE_OFF },
                AtomicOrdering::Relaxed,
            );
            on
        }
    }
}

/// Force the cache on or off (tests and ablation benches). Results are
/// identical either way by the determinism contract; only speed and the
/// hit/miss counters change.
pub fn set_enabled(on: bool) {
    ENABLED.store(
        if on { STATE_ON } else { STATE_OFF },
        AtomicOrdering::Relaxed,
    );
}

// --- canonical form ------------------------------------------------------

/// Canonical representative of a bias matrix's orbit under row/column
/// permutations (simultaneous, for symmetric matrices) and global sign.
struct Canonical {
    /// Hash key: `[na, nb, entry bits of the canonical matrix...]`.
    key: Vec<u64>,
    /// The canonical matrix itself (row-major `na × nb`); values are
    /// computed on *this* matrix, never on the input representative.
    mat: Vec<f64>,
    na: usize,
    nb: usize,
}

fn cmp_slices(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// `seq ≤ best[..seq.len()]` lexicographically (total order on f64).
fn le_prefix(seq: &[f64], best: &[f64]) -> bool {
    cmp_slices(seq, &best[..seq.len()]) != Ordering::Greater
}

/// Exact lex-minimal simultaneous permutation of a symmetric `n × n`
/// matrix: branch-and-bound over vertex orders, comparing the
/// lower-triangular entry sequence `[m(p₀,p₀), m(p₁,p₀), m(p₁,p₁), ...]`
/// (which determines the symmetric matrix) and pruning any prefix already
/// greater than the best known.
fn lexmin_symmetric_perm(m: &[f64], n: usize) -> Vec<usize> {
    struct Search<'a> {
        m: &'a [f64],
        n: usize,
        perm: Vec<usize>,
        used: Vec<bool>,
        seq: Vec<f64>,
        best_seq: Vec<f64>,
        best_perm: Vec<usize>,
    }
    impl Search<'_> {
        fn rec(&mut self) {
            if self.perm.len() == self.n {
                if self.best_seq.is_empty()
                    || cmp_slices(&self.seq, &self.best_seq) == Ordering::Less
                {
                    self.best_seq.clone_from(&self.seq);
                    self.best_perm.clone_from(&self.perm);
                }
                return;
            }
            for v in 0..self.n {
                if self.used[v] {
                    continue;
                }
                let start = self.seq.len();
                for i in 0..self.perm.len() {
                    self.seq.push(self.m[v * self.n + self.perm[i]]);
                }
                self.seq.push(self.m[v * self.n + v]);
                if self.best_seq.is_empty() || le_prefix(&self.seq, &self.best_seq) {
                    self.used[v] = true;
                    self.perm.push(v);
                    self.rec();
                    self.perm.pop();
                    self.used[v] = false;
                }
                self.seq.truncate(start);
            }
        }
    }
    let mut s = Search {
        m,
        n,
        perm: Vec::with_capacity(n),
        used: vec![false; n],
        seq: Vec::with_capacity(n * (n + 1) / 2),
        best_seq: Vec::new(),
        best_perm: (0..n).collect(),
    };
    s.rec();
    s.best_perm
}

/// Sound sort-refinement heuristic for matrices outside the exact path:
/// alternately sort rows and columns by content until stable (≤ 4
/// passes). Only applies permutations, so it never merges distinct
/// orbits — it just may not merge all of one.
fn sort_refine(m: &mut [f64], na: usize, nb: usize) {
    let mut col = vec![0.0f64; na];
    for _ in 0..4 {
        let mut rows: Vec<usize> = (0..na).collect();
        rows.sort_by(|&a, &b| cmp_slices(&m[a * nb..(a + 1) * nb], &m[b * nb..(b + 1) * nb]));
        let rowed: Vec<f64> = rows
            .iter()
            .flat_map(|&r| m[r * nb..(r + 1) * nb].iter().copied())
            .collect();
        m.copy_from_slice(&rowed);

        let mut cols: Vec<usize> = (0..nb).collect();
        cols.sort_by(|&a, &b| {
            for x in 0..na {
                match m[x * nb + a].total_cmp(&m[x * nb + b]) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            Ordering::Equal
        });
        if rows.iter().enumerate().all(|(i, &r)| i == r)
            && cols.iter().enumerate().all(|(i, &c)| i == c)
        {
            break;
        }
        let snapshot: Vec<f64> = m.to_vec();
        for (j, &c) in cols.iter().enumerate() {
            for (x, cv) in col.iter_mut().enumerate() {
                *cv = snapshot[x * nb + c];
            }
            for x in 0..na {
                m[x * nb + j] = col[x];
            }
        }
    }
}

/// Canonicalize one sign choice of the matrix (already `−0.0`-normalized).
fn canonicalize_signed(m: &[f64], na: usize, nb: usize, symmetric: bool) -> Vec<f64> {
    if symmetric && na <= EXACT_LIMIT {
        let p = lexmin_symmetric_perm(m, na);
        let mut out = vec![0.0; na * nb];
        for i in 0..na {
            for j in 0..nb {
                out[i * nb + j] = m[p[i] * nb + p[j]];
            }
        }
        out
    } else {
        let mut out = m.to_vec();
        sort_refine(&mut out, na, nb);
        out
    }
}

fn canonical_form(game: &XorGame) -> Canonical {
    let (na, nb) = (game.n_a(), game.n_b());
    let bias = game.bias_matrix();
    // Normalize −0.0 → +0.0 so bitwise keys and total_cmp agree on zero.
    let m: Vec<f64> = bias
        .as_slice()
        .iter()
        .map(|&v| if v == 0.0 { 0.0 } else { v })
        .collect();
    let symmetric = na == nb
        && (0..na).all(|x| (0..x).all(|y| m[x * nb + y].to_bits() == m[y * nb + x].to_bits()));
    let neg: Vec<f64> = m.iter().map(|&v| if v == 0.0 { 0.0 } else { -v }).collect();
    let a = canonicalize_signed(&m, na, nb, symmetric);
    let b = canonicalize_signed(&neg, na, nb, symmetric);
    let mat = if cmp_slices(&b, &a) == Ordering::Less { b } else { a };
    let mut key = Vec::with_capacity(2 + mat.len());
    key.push(na as u64);
    key.push(nb as u64);
    key.extend(mat.iter().map(|v| v.to_bits()));
    Canonical { key, mat, na, nb }
}

/// The canonical cache key of a game's bias matrix. Exposed for the
/// relabeling-invariance property tests; equal keys imply equal game
/// values.
pub fn canonical_key(game: &XorGame) -> Vec<u64> {
    canonical_form(game).key
}

/// Deterministic solver seed from a canonical key: SplitMix64-fold of the
/// key words, so random restarts are a pure function of the orbit.
fn key_seed(key: &[u64]) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for &w in key {
        acc = runtime::mix64(acc ^ w);
    }
    acc
}

// --- the cache -----------------------------------------------------------

/// Sharded memo of canonical-form → [`GameValues`]. Use [`global`] in the
/// pipeline; tests and benches build private instances with
/// [`ValueCache::new`] for isolation.
pub struct ValueCache {
    shards: [Mutex<HashMap<Vec<u64>, GameValues>>; SHARDS],
}

impl Default for ValueCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ValueCache {
    /// An empty cache.
    pub fn new() -> Self {
        ValueCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, key: &[u64]) -> &Mutex<HashMap<Vec<u64>, GameValues>> {
        &self.shards[(key_seed(key) % SHARDS as u64) as usize]
    }

    /// Number of cached orbits.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached value.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard poisoned").clear();
        }
    }

    /// Solves `game` through the cache: canonicalize, look up, and on a
    /// miss compute both values **on the canonical matrix** with the
    /// solver RNG seeded from the canonical key (see the module docs for
    /// why results are then independent of caching, ordering, and thread
    /// count). When the cache is disabled ([`enabled`] is false) the same
    /// canonical computation runs every time — identical results, no
    /// memo.
    ///
    /// # Errors
    /// [`GameError::TooLarge`] if the exact classical enumeration is
    /// infeasible; nothing is cached in that case.
    pub fn solve(&self, game: &XorGame, opts: &SolverOpts) -> Result<GameValues, GameError> {
        let canon = canonical_form(game);
        let use_cache = enabled();
        if use_cache {
            if let Some(v) = self
                .shard(&canon.key)
                .lock()
                .expect("cache shard poisoned")
                .get(&canon.key)
            {
                HITS.inc();
                return Ok(*v);
            }
        }
        let values = solve_canonical(&canon, opts)?;
        if use_cache {
            MISSES.inc();
            self.shard(&canon.key)
                .lock()
                .expect("cache shard poisoned")
                .insert(canon.key, values);
        }
        Ok(values)
    }
}

/// Compute both values on the canonical matrix. Pure function of
/// `(canon, opts)` — the solver RNG is derived from the key.
fn solve_canonical(canon: &Canonical, opts: &SolverOpts) -> Result<GameValues, GameError> {
    let classical_bias = classical_bias_flat(&canon.mat, canon.na, canon.nb)?;
    let dim = canon.na + canon.nb;
    let mut u = vec![0.0; canon.na * dim];
    let mut v = vec![0.0; canon.nb * dim];
    let mut rng = StdRng::seed_from_u64(key_seed(&canon.key));
    let quantum_bias = solve_quantum_flat(
        &canon.mat,
        canon.na,
        canon.nb,
        opts,
        &mut rng,
        &mut u,
        &mut v,
    );
    Ok(GameValues {
        classical_bias,
        quantum_bias,
    })
}

/// The process-wide cache the experiment pipeline shares.
pub fn global() -> &'static ValueCache {
    static GLOBAL: OnceLock<ValueCache> = OnceLock::new();
    GLOBAL.get_or_init(ValueCache::new)
}

/// Solves one game through the [`global`] cache.
///
/// # Errors
/// [`GameError::TooLarge`] if the classical enumeration is infeasible.
pub fn solve_values(game: &XorGame, opts: &SolverOpts) -> Result<GameValues, GameError> {
    global().solve(game, opts)
}

/// Solves a batch of games through the [`global`] cache, fanned out over
/// the [`runtime`] work-stealing pool.
///
/// There is no RNG parameter: per-item determinism here is *stronger*
/// than the usual `par_sweep` stream-splitting — each value is a pure
/// function of its game's canonical form (the solver RNG is derived from
/// the canonical key), so results are independent of index, thread
/// count, and batch composition.
pub fn solve_batch(games: &[XorGame], opts: &SolverOpts) -> Vec<Result<GameValues, GameError>> {
    runtime::par_map(games, |_, game| solve_values(game, opts))
}

/// [`solve_batch`] with an explicit worker count (determinism tests).
pub fn solve_batch_threads(
    threads: usize,
    games: &[XorGame],
    opts: &SolverOpts,
) -> Vec<Result<GameValues, GameError>> {
    runtime::par_map_threads(threads, games, |_, game| solve_values(game, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AffinityGraph;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn relabel(g: &AffinityGraph, perm: &[usize]) -> AffinityGraph {
        let n = g.n_vertices();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((perm[i], perm[j], g.is_exclusive(i, j)));
            }
        }
        AffinityGraph::from_edges(n, &edges)
    }

    fn random_perm<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            p.swap(i, j);
        }
        p
    }

    #[test]
    fn canonical_key_invariant_under_relabeling() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [3usize, 4, 5, 6] {
            for _ in 0..8 {
                let g = AffinityGraph::random(n, 0.5, &mut rng);
                let base = canonical_key(&g.to_xor_game(true));
                for _ in 0..4 {
                    let p = random_perm(n, &mut rng);
                    let relabeled = relabel(&g, &p);
                    assert_eq!(
                        canonical_key(&relabeled.to_xor_game(true)),
                        base,
                        "n={n} perm={p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn canonical_key_invariant_under_global_sign() {
        // Complementing every edge label of the 2-vertex off-diagonal
        // game negates the whole bias matrix.
        let g = AffinityGraph::from_edges(2, &[(0, 1, true)]);
        let h = AffinityGraph::from_edges(2, &[(0, 1, false)]);
        assert_eq!(
            canonical_key(&g.to_xor_game(false)),
            canonical_key(&h.to_xor_game(false))
        );
    }

    #[test]
    fn distinct_games_get_distinct_keys() {
        let g = AffinityGraph::from_edges(3, &[(0, 1, true)]);
        let h = AffinityGraph::from_edges(3, &[(0, 1, true), (1, 2, true)]);
        assert_ne!(
            canonical_key(&g.to_xor_game(true)),
            canonical_key(&h.to_xor_game(true))
        );
    }

    #[test]
    fn cache_hit_returns_identical_values() {
        let cache = ValueCache::new();
        let opts = SolverOpts::default();
        let mut rng = StdRng::seed_from_u64(12);
        let g = AffinityGraph::random(4, 0.5, &mut rng);
        let game = g.to_xor_game(true);
        let first = cache.solve(&game, &opts).unwrap();
        let second = cache.solve(&game, &opts).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
        // A relabeled copy hits the same entry.
        let relabeled = relabel(&g, &[2, 0, 3, 1]).to_xor_game(true);
        let third = cache.solve(&relabeled, &opts).unwrap();
        assert_eq!(first, third);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_values_match_direct_solver() {
        let cache = ValueCache::new();
        let opts = SolverOpts::default();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..6 {
            let g = AffinityGraph::random(5, 0.4, &mut rng);
            let game = g.to_xor_game(true);
            let cached = cache.solve(&game, &opts).unwrap();
            let direct_c = game.classical_bias().unwrap();
            assert!(
                (cached.classical_bias - direct_c).abs() < 1e-9,
                "classical {} vs {direct_c}",
                cached.classical_bias
            );
            let direct_q = game.quantum_solution_with(&opts, &mut rng).bias;
            assert!(
                (cached.quantum_bias - direct_q).abs() < 1e-6,
                "quantum {} vs {direct_q}",
                cached.quantum_bias
            );
        }
    }

    #[test]
    fn batch_matches_sequential_and_is_thread_invariant() {
        let opts = SolverOpts::default();
        let mut rng = StdRng::seed_from_u64(14);
        let games: Vec<XorGame> = (0..12)
            .map(|_| AffinityGraph::random(4, 0.5, &mut rng).to_xor_game(true))
            .collect();
        let one = solve_batch_threads(1, &games, &opts);
        let four = solve_batch_threads(4, &games, &opts);
        assert_eq!(one, four);
        for (g, r) in games.iter().zip(&one) {
            assert_eq!(solve_values(g, &opts).unwrap(), r.clone().unwrap());
        }
    }

    #[test]
    fn too_large_games_error_and_are_not_cached() {
        use qmath::RMatrix;
        let n = crate::xor::ENUM_LIMIT + 1;
        let prob = RMatrix::from_fn(n, 2, |_, _| 1.0 / (2 * n) as f64);
        let game = XorGame::new(prob, vec![vec![false; 2]; n]);
        let cache = ValueCache::new();
        assert!(cache.solve(&game, &SolverOpts::default()).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn heuristic_path_is_sound_for_rectangular_games() {
        // Rectangular (non-symmetric) games take the sort-refinement
        // path; cached values must still match the direct solver.
        use qmath::RMatrix;
        let prob = RMatrix::from_fn(2, 3, |_, _| 1.0 / 6.0);
        let target = vec![vec![false, true, false], vec![true, false, false]];
        let game = XorGame::new(prob, target);
        let cache = ValueCache::new();
        let cached = cache.solve(&game, &SolverOpts::default()).unwrap();
        let direct = game.classical_bias().unwrap();
        assert!((cached.classical_bias - direct).abs() < 1e-12);
    }
}
