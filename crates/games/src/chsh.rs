//! The CHSH game and its optimal strategies.
//!
//! §2 of the paper: the referee sends uniformly random bits `x`, `y`;
//! the players answer with bits `a`, `b`, and win iff `a ⊕ b = x ∧ y`.
//! The best classical strategy (always answer 0) wins with probability
//! 0.75; sharing a Bell pair and measuring in the angles below wins with
//! `cos²(π/8) ≈ 0.8536` — the Tsirelson optimum.
//!
//! For the load-balancing application (§4.1) the paper flips one party's
//! output so the pair implements `a ⊕ b = ¬(x ∧ y)`: co-locate (equal
//! outputs) exactly when both tasks are type-C (`x = y = 1`). Both
//! variants are provided.

use crate::game::{PairStrategy, TwoPlayerGame};
use qsim::{Party, SharedPair};
use rand::Rng;

/// Which win condition the game uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChshVariant {
    /// Win iff `a ⊕ b = x ∧ y` (the standard CHSH game).
    Standard,
    /// Win iff `a ⊕ b = ¬(x ∧ y)` (the load-balancing mapping: outputs
    /// should *match* — same server — only when both inputs are 1/type-C).
    Flipped,
}

/// The CHSH game with uniform inputs.
#[derive(Debug, Clone, Copy)]
pub struct ChshGame {
    variant: ChshVariant,
}

impl ChshGame {
    /// The standard CHSH game.
    pub fn standard() -> Self {
        ChshGame {
            variant: ChshVariant::Standard,
        }
    }

    /// The flipped (load-balancing) variant.
    pub fn flipped() -> Self {
        ChshGame {
            variant: ChshVariant::Flipped,
        }
    }

    /// Which variant this game is.
    pub fn variant(&self) -> ChshVariant {
        self.variant
    }
}

impl TwoPlayerGame for ChshGame {
    fn n_inputs_a(&self) -> usize {
        2
    }
    fn n_inputs_b(&self) -> usize {
        2
    }
    fn input_probability(&self, _x: usize, _y: usize) -> f64 {
        0.25
    }
    fn wins(&self, x: usize, y: usize, a: bool, b: bool) -> bool {
        let target = (x == 1) && (y == 1);
        match self.variant {
            ChshVariant::Standard => (a ^ b) == target,
            ChshVariant::Flipped => (a ^ b) != target,
        }
    }
}

/// Alice's optimal measurement angles, indexed by her input bit:
/// `θ_A(0) = 0`, `θ_A(1) = π/4` (paper §2).
pub fn alice_angle(x: usize) -> f64 {
    match x {
        0 => 0.0,
        _ => std::f64::consts::FRAC_PI_4,
    }
}

/// Bob's optimal measurement angles, indexed by his input bit:
/// `θ_B(0) = π/8`, `θ_B(1) = −π/8` (paper §2).
pub fn bob_angle(y: usize) -> f64 {
    match y {
        0 => std::f64::consts::FRAC_PI_8,
        _ => -std::f64::consts::FRAC_PI_8,
    }
}

/// The optimal quantum CHSH strategy: one fresh Bell pair per round,
/// measured at the paper's angles. For the flipped variant Bob negates his
/// output bit — a purely local post-processing.
///
/// `pair_source` supplies the entangled resource, letting callers inject
/// noisy (Werner) pairs to model hardware error (experiment E6).
pub struct QuantumChshStrategy<F>
where
    F: FnMut() -> SharedPair,
{
    pair_source: F,
    flip_bob: bool,
}

impl QuantumChshStrategy<fn() -> SharedPair> {
    /// Ideal strategy for the standard game: perfect Bell pairs.
    pub fn ideal() -> Self {
        QuantumChshStrategy {
            pair_source: SharedPair::ideal,
            flip_bob: false,
        }
    }

    /// Ideal strategy for the flipped (load-balancing) game.
    pub fn ideal_flipped() -> Self {
        QuantumChshStrategy {
            pair_source: SharedPair::ideal,
            flip_bob: true,
        }
    }
}

impl<F> QuantumChshStrategy<F>
where
    F: FnMut() -> SharedPair,
{
    /// Strategy drawing pairs from an arbitrary source (e.g. Werner states
    /// with sub-unit visibility).
    pub fn with_source(pair_source: F, variant: ChshVariant) -> Self {
        QuantumChshStrategy {
            pair_source,
            flip_bob: variant == ChshVariant::Flipped,
        }
    }
}

impl<F> PairStrategy for QuantumChshStrategy<F>
where
    F: FnMut() -> SharedPair,
{
    fn play<R: Rng + ?Sized>(&mut self, x: usize, y: usize, rng: &mut R) -> (bool, bool) {
        let mut pair = (self.pair_source)();
        // Each party measures its own qubit at an angle depending only on
        // its own input. Order is irrelevant (see qsim::pair tests).
        let a = pair
            .measure_angle(Party::A, alice_angle(x), rng)
            .expect("fresh pair, party A unmeasured");
        let b = pair
            .measure_angle(Party::B, bob_angle(y), rng)
            .expect("fresh pair, party B unmeasured");
        (a == 1, (b == 1) ^ self.flip_bob)
    }

    fn name(&self) -> &'static str {
        "quantum-chsh"
    }
}

/// The optimal *classical* strategy for standard CHSH: both always output
/// 0 (wins the 3 of 4 input pairs where `x ∧ y = 0`). For the flipped
/// variant, outputting `a = 0, b = 1` wins exactly the same 3 cases.
#[derive(Debug, Clone, Copy)]
pub struct ClassicalChshStrategy {
    variant: ChshVariant,
}

impl ClassicalChshStrategy {
    /// Optimal classical strategy for the given variant.
    pub fn optimal(variant: ChshVariant) -> Self {
        ClassicalChshStrategy { variant }
    }
}

impl PairStrategy for ClassicalChshStrategy {
    fn play<R: Rng + ?Sized>(&mut self, _x: usize, _y: usize, _rng: &mut R) -> (bool, bool) {
        match self.variant {
            ChshVariant::Standard => (false, false),
            ChshVariant::Flipped => (false, true),
        }
    }

    fn name(&self) -> &'static str {
        "classical-optimal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::empirical_win_rate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classical_optimum_is_three_quarters() {
        let mut rng = StdRng::seed_from_u64(1);
        for variant in [ChshVariant::Standard, ChshVariant::Flipped] {
            let game = ChshGame { variant };
            let mut s = ClassicalChshStrategy::optimal(variant);
            let rate = empirical_win_rate(&game, &mut s, 40_000, &mut rng);
            assert!((rate - 0.75).abs() < 0.01, "{variant:?}: {rate}");
        }
    }

    #[test]
    fn quantum_strategy_beats_classical_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let game = ChshGame::standard();
        let mut s = QuantumChshStrategy::ideal();
        let rate = empirical_win_rate(&game, &mut s, 60_000, &mut rng);
        let expect = crate::chsh_quantum_value();
        assert!((rate - expect).abs() < 0.01, "rate {rate} expect {expect}");
        assert!(rate > 0.8, "must clearly exceed the classical 0.75");
    }

    #[test]
    fn flipped_quantum_strategy_same_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let game = ChshGame::flipped();
        let mut s = QuantumChshStrategy::ideal_flipped();
        let rate = empirical_win_rate(&game, &mut s, 60_000, &mut rng);
        assert!((rate - crate::chsh_quantum_value()).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn quantum_outputs_are_marginally_uniform() {
        // §2: "each party still outputs 0 or 1 with equal probability" —
        // knowing Alice's IO reveals nothing about Bob's.
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = QuantumChshStrategy::ideal();
        let trials = 40_000;
        let mut a_ones = 0u32;
        let mut b_ones = 0u32;
        for i in 0..trials {
            let (x, y) = ((i / 2) % 2, i % 2);
            let (a, b) = s.play(x, y, &mut rng);
            a_ones += u32::from(a);
            b_ones += u32::from(b);
        }
        let fa = a_ones as f64 / trials as f64;
        let fb = b_ones as f64 / trials as f64;
        assert!((fa - 0.5).abs() < 0.01, "Alice marginal {fa}");
        assert!((fb - 0.5).abs() < 0.01, "Bob marginal {fb}");
    }

    #[test]
    fn noisy_pairs_degrade_gracefully() {
        // Werner visibility 0.5 < 1/√2: quantum value drops below the
        // classical optimum (win prob = 1/2 + v·√2/4).
        let mut rng = StdRng::seed_from_u64(5);
        let game = ChshGame::standard();
        let v = 0.5;
        let mut s = QuantumChshStrategy::with_source(
            move || SharedPair::werner(v).expect("valid visibility"),
            ChshVariant::Standard,
        );
        let rate = empirical_win_rate(&game, &mut s, 60_000, &mut rng);
        let expect = 0.5 + v * std::f64::consts::SQRT_2 / 4.0;
        assert!((rate - expect).abs() < 0.01, "rate {rate} expect {expect}");
        assert!(rate < 0.75);
    }

    #[test]
    fn werner_threshold_is_the_crossover() {
        // Just above 1/√2 the quantum strategy still beats classical.
        let mut rng = StdRng::seed_from_u64(6);
        let game = ChshGame::standard();
        let v = 0.8; // > 1/√2 ≈ 0.707
        let mut s = QuantumChshStrategy::with_source(
            move || SharedPair::werner(v).expect("valid visibility"),
            ChshVariant::Standard,
        );
        let rate = empirical_win_rate(&game, &mut s, 60_000, &mut rng);
        assert!(rate > 0.75, "rate {rate} should beat classical at v=0.8");
    }

    #[test]
    fn win_predicate_truth_table() {
        let g = ChshGame::standard();
        // x∧y = 0 for (0,0),(0,1),(1,0): win iff a == b.
        assert!(g.wins(0, 0, true, true));
        assert!(!g.wins(0, 1, true, false));
        // x∧y = 1 for (1,1): win iff a != b.
        assert!(g.wins(1, 1, true, false));
        assert!(!g.wins(1, 1, false, false));

        let f = ChshGame::flipped();
        assert!(!f.wins(0, 0, true, true));
        assert!(f.wins(1, 1, false, false));
    }

    #[test]
    fn angles_match_paper() {
        assert_eq!(alice_angle(0), 0.0);
        assert!((alice_angle(1) - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert!((bob_angle(0) - std::f64::consts::FRAC_PI_8).abs() < 1e-15);
        assert!((bob_angle(1) + std::f64::consts::FRAC_PI_8).abs() < 1e-15);
    }
}
