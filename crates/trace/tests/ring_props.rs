//! Property-based invariants of the drop-oldest event ring: whatever the
//! capacity and push count, the retained suffix is exactly the newest
//! `min(pushes, capacity)` events in push order, and the dropped count is
//! exactly `pushes − retained`.

use proptest::prelude::*;
use trace::{Event, EventKind, PairStage, Ring, Track};

fn nth_event(n: u64) -> Event {
    Event {
        t_ns: n,
        wall: false,
        track: Track::Main,
        kind: EventKind::Pair {
            stage: PairStage::Emitted,
            id: n,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn drop_oldest_keeps_the_newest_suffix_in_order(
        capacity in 1usize..300,
        pushes in 0u64..2_000,
    ) {
        let ring = Ring::new(capacity);
        for n in 0..pushes {
            ring.push(nth_event(n));
        }
        let retained = ring.drain_events();
        let expect_len = (pushes as usize).min(capacity);
        prop_assert_eq!(retained.len(), expect_len);
        prop_assert_eq!(ring.written(), pushes);
        prop_assert_eq!(ring.dropped(), pushes - expect_len as u64);
        // The survivors are the newest `expect_len` pushes, oldest first.
        let first = pushes - expect_len as u64;
        for (i, ev) in retained.iter().enumerate() {
            prop_assert_eq!(ev.t_ns, first + i as u64);
            prop_assert!(matches!(ev.kind, EventKind::Pair { id, .. } if id == first + i as u64));
        }
    }

    #[test]
    fn interleaved_drains_partition_the_stream(
        capacity in 1usize..64,
        first_batch in 0u64..200,
        second_batch in 0u64..200,
    ) {
        // Drain between two quiesced batches: each drain sees only its
        // own batch's suffix, and drop counts are per-ring-lifetime.
        let ring = Ring::new(capacity);
        for n in 0..first_batch {
            ring.push(nth_event(n));
        }
        let got_first = ring.drain_events();
        prop_assert_eq!(got_first.len(), (first_batch as usize).min(capacity));
        // A fresh ring (the registry's generation bump in practice).
        let ring2 = Ring::new(capacity);
        for n in first_batch..first_batch + second_batch {
            ring2.push(nth_event(n));
        }
        let got_second = ring2.drain_events();
        prop_assert_eq!(got_second.len(), (second_batch as usize).min(capacity));
        prop_assert_eq!(ring2.dropped(), second_batch.saturating_sub(capacity as u64));
        if let (Some(last1), Some(first2)) = (got_first.last(), got_second.first()) {
            prop_assert!(last1.t_ns < first2.t_ns, "batches must not overlap");
        }
    }
}
