//! # qnlg-trace — low-overhead structured event tracing
//!
//! The timeline layer of the workspace: where `qnlg-obs` answers "how
//! much happened", this crate answers "*when* did each thing happen" —
//! per-worker chunk spans, per-pair entanglement lifecycles, governor
//! mode flips — as a stream of typed events drained into Chrome
//! `trace_event` JSON (Perfetto / `chrome://tracing`) or compact
//! JSON-lines. Design rules, inherited from `obs` (DESIGN.md §3):
//!
//! 1. **std-only.** Atomics, `UnsafeCell` rings, `Instant` — no deps
//!    beyond `obs` (whose JSON codec the exporters reuse).
//! 2. **Off by default, negligible when off.** Every recording call is
//!    gated on one relaxed atomic-bool load; the wall-clock is not read
//!    while disabled (`benches/trace.rs` holds this to the obs budget,
//!    < 2%).
//! 3. **Observe, never perturb.** Recording draws no randomness and
//!    never blocks the simulation: writes go to a per-thread lock-free
//!    [`ring::Ring`] (fixed capacity, drop-oldest, exact dropped count).
//!    The determinism suite proves canonical artifacts are byte-identical
//!    with tracing on or off at any ring capacity.
//!
//! Draining ([`drain`]) happens between runs, when recording threads have
//! quiesced — the same scoping contract as `obs::reset`. Each drain
//! bumps a generation counter so threads re-register fresh rings on
//! their next event, making `enable → run → drain` repeatable.
//!
//! ```
//! trace::set_enabled(true);
//! trace::instant_sim(trace::Track::Main, "demo", 1_000);
//! trace::set_enabled(false);
//! let log = trace::drain();
//! assert_eq!(log.events.len(), 1);
//! assert_eq!(log.dropped, 0);
//! ```

pub mod event;
pub mod export;
pub mod ring;
pub mod series;

pub use event::{Event, EventKind, PairStage, Side, Track};
pub use ring::Ring;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The one recording gate: a relaxed load per call site, like
/// `obs::enabled()`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Capacity for rings created after the last [`set_capacity`] call.
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Bumped by [`drain`]; threads holding a ring from an older generation
/// re-register before their next event.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Distributor-lane allocator: pair ids are sequential *per distributor*,
/// so every distributor claims a process-unique lane to make
/// `(lane, pair_id)` globally unambiguous in one trace.
static LANES: AtomicU32 = AtomicU32::new(0);

/// Wall-clock epoch, fixed at the first enable so `t_ns` fits a `u64`.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Every live ring, for the drainer. Rings are only ever *written* by
/// their owning thread; this registry just keeps them alive and findable.
static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

/// Default ring capacity (events per recording thread).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

thread_local! {
    /// This thread's ring and the generation it was registered under.
    static LOCAL: RefCell<Option<(u64, Arc<Ring>)>> = const { RefCell::new(None) };
}

/// True while event recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns event recording on or off. The first enable pins the wall-clock
/// epoch.
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Sets the capacity used for rings created from now on (existing rings
/// keep theirs; call [`drain`] first to retire them).
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn set_capacity(capacity: usize) {
    assert!(capacity > 0, "ring capacity must be positive");
    CAPACITY.store(capacity, Ordering::Relaxed);
}

/// Capacity rings are currently created with.
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Claims a process-unique distributor lane (trace metadata only — lanes
/// are allocated even while disabled so an enable mid-run still sees
/// distinct tracks).
pub fn next_lane() -> u32 {
    LANES.fetch_add(1, Ordering::Relaxed)
}

/// Nanoseconds since the trace epoch (pinned at first enable).
fn wall_now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Appends `ev` to this thread's ring, registering one on first use (or
/// after a drain retired the previous generation).
fn record(ev: Event) {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let gen = GENERATION.load(Ordering::Acquire);
        let stale = !matches!(&*slot, Some((g, _)) if *g == gen);
        if stale {
            let ring = Arc::new(Ring::new(capacity()));
            REGISTRY.lock().expect("trace registry").push(Arc::clone(&ring));
            *slot = Some((gen, ring));
        }
        let (_, ring) = slot.as_ref().expect("registered above");
        ring.push(ev);
    });
}

/// Records a wall-clock instant event. No-op (and no clock read) while
/// disabled.
#[inline]
pub fn instant_wall(track: Track, name: &'static str) {
    if !enabled() {
        return;
    }
    record(Event {
        t_ns: wall_now_ns(),
        wall: true,
        track,
        kind: EventKind::Instant(name),
    });
}

/// Records a sim-clock instant event at `t_ns` simulation nanoseconds.
#[inline]
pub fn instant_sim(track: Track, name: &'static str, t_ns: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        t_ns,
        wall: false,
        track,
        kind: EventKind::Instant(name),
    });
}

/// Opens a wall-clock span (pair with [`span_end`] on the same track).
#[inline]
pub fn span_begin(track: Track, name: &'static str) {
    if !enabled() {
        return;
    }
    record(Event {
        t_ns: wall_now_ns(),
        wall: true,
        track,
        kind: EventKind::Begin(name),
    });
}

/// Closes the innermost wall-clock span named `name` on `track`.
#[inline]
pub fn span_end(track: Track, name: &'static str) {
    if !enabled() {
        return;
    }
    record(Event {
        t_ns: wall_now_ns(),
        wall: true,
        track,
        kind: EventKind::End(name),
    });
}

/// Records a pair-lifecycle event at `t_ns` simulation nanoseconds.
#[inline]
pub fn pair(track: Track, stage: PairStage, id: u64, t_ns: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        t_ns,
        wall: false,
        track,
        kind: EventKind::Pair { stage, id },
    });
}

/// Everything one drain recovered: retained events (unordered across
/// threads; exporters sort) and the exact count of overwritten ones.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Retained events from every thread's ring.
    pub events: Vec<Event>,
    /// Events overwritten before the drain (sum over rings).
    pub dropped: u64,
}

/// Collects and retires every ring. Recording threads must have
/// quiesced (between runs — the `obs::reset` scoping contract); their
/// next event after this call registers a fresh ring.
pub fn drain() -> TraceLog {
    // Bump first with release ordering: a registered producer that
    // observes the old generation finished its pushes before we take the
    // registry lock below only if it has quiesced — which is the caller's
    // contract; the ordering just keeps re-registration prompt.
    GENERATION.fetch_add(1, Ordering::Release);
    let rings: Vec<Arc<Ring>> = std::mem::take(&mut *REGISTRY.lock().expect("trace registry"));
    let mut log = TraceLog::default();
    for ring in &rings {
        log.dropped += ring.dropped();
        log.events.extend(ring.drain_events());
    }
    log
}

/// Discards all buffered events (a drain whose result is dropped).
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave (same pattern as
    /// `obs::registry::test_lock`).
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = test_lock();
        reset();
        set_enabled(false);
        instant_sim(Track::Main, "nope", 5);
        pair(Track::Source(0), PairStage::Emitted, 1, 10);
        assert!(drain().events.is_empty());
    }

    #[test]
    fn enable_record_drain_roundtrip() {
        let _guard = test_lock();
        reset();
        set_enabled(true);
        instant_sim(Track::Main, "a", 1);
        pair(
            Track::Qnic {
                lane: 3,
                side: Side::B,
            },
            PairStage::Stored,
            42,
            7,
        );
        set_enabled(false);
        let log = drain();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped, 0);
        assert!(log.events.iter().any(|e| matches!(
            e.kind,
            EventKind::Pair {
                stage: PairStage::Stored,
                id: 42
            }
        )));
        // Retired generation: a fresh drain finds nothing.
        assert!(drain().events.is_empty());
    }

    #[test]
    fn capacity_applies_to_new_rings() {
        let _guard = test_lock();
        reset();
        set_capacity(8);
        set_enabled(true);
        for n in 0..20 {
            instant_sim(Track::Main, "spin", n);
        }
        set_enabled(false);
        let log = drain();
        set_capacity(DEFAULT_CAPACITY);
        assert_eq!(log.events.len(), 8);
        assert_eq!(log.dropped, 12);
        let times: Vec<u64> = log.events.iter().map(|e| e.t_ns).collect();
        assert_eq!(times, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn lanes_are_unique() {
        let a = next_lane();
        let b = next_lane();
        assert_ne!(a, b);
    }

    #[test]
    fn threads_get_their_own_rings() {
        let _guard = test_lock();
        reset();
        set_enabled(true);
        let handles: Vec<_> = (0..4u32)
            .map(|w| {
                std::thread::spawn(move || {
                    for n in 0..50 {
                        instant_sim(Track::Worker(w), "work", n);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        set_enabled(false);
        let log = drain();
        assert_eq!(log.events.len(), 200);
        for w in 0..4u32 {
            assert_eq!(
                log.events
                    .iter()
                    .filter(|e| e.track == Track::Worker(w))
                    .count(),
                50
            );
        }
    }
}
