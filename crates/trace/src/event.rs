//! Typed trace events.
//!
//! Events are `Copy` and fixed-size so a ring-buffer slot is one plain
//! store: names are `&'static str` interned by the call site, payloads
//! are at most a `u64`. Two clock domains coexist in one trace —
//! wall-clock events (runtime workers doing real work) and sim-clock
//! events (the entanglement plane's nanosecond timeline) — distinguished
//! by [`Event::wall`] and exported as separate Chrome-trace processes so
//! Perfetto never conflates the two time axes.

/// Which timeline lane an event belongs to. Lanes map to Chrome-trace
/// threads: one per runtime worker, one per QNIC side, one per source,
/// one per fallback governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The driving thread (experiment harness, exporters).
    Main,
    /// Runtime pool worker `w` (wall clock).
    Worker(u32),
    /// Entangled-pair source of distributor lane `l` (sim clock).
    Source(u32),
    /// QNIC of distributor lane `l`, endpoint A or B (sim clock).
    Qnic { lane: u32, side: Side },
    /// Fallback governor of degrading strategy `g` (sim clock).
    Governor(u32),
    /// Repeater chain serving routed server pair `c` in a metro
    /// topology run (sim clock).
    Chain(u32),
    /// Decision endpoint `e` of a long-lived `qnlg-serve` service
    /// (sim clock: refill batches and governor transitions on the
    /// endpoint's decision timeline).
    Endpoint(u32),
}

/// Which endpoint of a two-QNIC distributor lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// Endpoint A.
    A,
    /// Endpoint B.
    B,
}

impl Side {
    /// Stable lowercase name (`"a"` / `"b"`).
    pub fn name(self) -> &'static str {
        match self {
            Side::A => "a",
            Side::B => "b",
        }
    }
}

/// Lifecycle stage of one entangled pair, from emission to its fate.
/// `Consumed`, `Expired`, and `Dropped` are terminal; delivery latency is
/// the `Emitted → Consumed` span for a given pair id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairStage {
    /// The source emitted the pair (survivor-process paths emit only the
    /// surviving pairs individually; batch-counted fiber losses never
    /// reach the wheel and carry no events).
    Emitted,
    /// A half-pair finished traversing its fiber.
    FiberArrival,
    /// A half-pair was written into QNIC memory.
    Stored,
    /// The pair was consumed by a coordination decision.
    Consumed,
    /// A half-pair aged out of QNIC memory.
    Expired,
    /// A half-pair was evicted (memory-full overwrite or capacity clamp).
    Dropped,
}

impl PairStage {
    /// Stable kebab-case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            PairStage::Emitted => "emitted",
            PairStage::FiberArrival => "fiber-arrival",
            PairStage::Stored => "stored",
            PairStage::Consumed => "consumed",
            PairStage::Expired => "expired",
            PairStage::Dropped => "dropped",
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named span opened (matched by a later `End` on the same track).
    Begin(&'static str),
    /// A named span closed.
    End(&'static str),
    /// A point event.
    Instant(&'static str),
    /// A pair-lifecycle point event carrying the pair id.
    Pair {
        /// Lifecycle stage.
        stage: PairStage,
        /// Per-distributor-lane sequential pair id (the lane in
        /// [`Track`] disambiguates across distributors).
        id: u64,
    },
}

/// One trace event: a timestamp in its clock domain, the track it
/// belongs to, and the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds since the trace epoch (wall) or simulation start (sim).
    pub t_ns: u64,
    /// `true` for wall-clock events, `false` for sim-clock events.
    pub wall: bool,
    /// Timeline lane.
    pub track: Track,
    /// Payload.
    pub kind: EventKind,
}

impl Default for Event {
    fn default() -> Self {
        Event {
            t_ns: 0,
            wall: true,
            track: Track::Main,
            kind: EventKind::Instant(""),
        }
    }
}
