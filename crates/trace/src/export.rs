//! Trace exporters: Chrome `trace_event` JSON and compact JSON-lines.
//!
//! The Chrome form loads directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`: wall-clock events (runtime workers) and
//! sim-clock events (the entanglement plane) are emitted as two separate
//! *processes* so the two time axes never share a track, with one named
//! thread per runtime worker, per QNIC side, per source, and per
//! governor. Timestamps are microseconds as the format requires; the
//! sub-µs detail survives because `ts` is fractional.
//!
//! The JSON-lines form is for ad-hoc tooling (`jq`, spreadsheets): a
//! header object with the drop count, then one object per event.

use crate::event::{Event, EventKind, Side, Track};
use crate::TraceLog;
use obs::json::Json;

/// Wall-clock events: Chrome-trace process 1.
const PID_WALL: u64 = 1;
/// Sim-clock events: Chrome-trace process 2.
const PID_SIM: u64 = 2;

/// Stable (pid, tid) for a track. Thread-id spaces within the sim
/// process: governors low, distributor lanes (source + two QNICs) above
/// them.
fn track_ids(track: Track) -> (u64, u64) {
    match track {
        Track::Main => (PID_WALL, 0),
        Track::Worker(w) => (PID_WALL, 1 + u64::from(w)),
        Track::Governor(g) => (PID_SIM, 1 + u64::from(g)),
        Track::Source(l) => (PID_SIM, 1_000_000 + 4 * u64::from(l)),
        Track::Qnic { lane, side } => {
            let s = match side {
                Side::A => 1,
                Side::B => 2,
            };
            (PID_SIM, 1_000_000 + 4 * u64::from(lane) + s)
        }
        Track::Chain(c) => (PID_SIM, 2_000_000 + u64::from(c)),
        Track::Endpoint(e) => (PID_SIM, 3_000_000 + u64::from(e)),
    }
}

/// Human-readable track name for Perfetto's thread list.
fn track_name(track: Track) -> String {
    match track {
        Track::Main => "main".into(),
        Track::Worker(w) => format!("worker-{w}"),
        Track::Source(l) => format!("source-{l}"),
        Track::Qnic { lane, side } => format!("qnic-{lane}{}", side.name()),
        Track::Governor(g) => format!("governor-{g}"),
        Track::Chain(c) => format!("chain-{c}"),
        Track::Endpoint(e) => format!("endpoint-{e}"),
    }
}

/// The distributor lane a track belongs to, when it has one. Pair ids
/// are unique per lane, not globally, so cross-referencing lifecycle
/// events needs (lane, pair).
fn track_lane(track: Track) -> Option<u32> {
    match track {
        Track::Source(l) | Track::Qnic { lane: l, .. } => Some(l),
        // A chain's pair ids are scoped by its own track (one chain per
        // routed server pair), so it doubles as the lane.
        Track::Chain(c) => Some(c),
        Track::Main | Track::Worker(_) | Track::Governor(_) | Track::Endpoint(_) => None,
    }
}

/// Event name as shown on the timeline.
fn event_name(kind: &EventKind) -> String {
    match kind {
        EventKind::Begin(n) | EventKind::End(n) | EventKind::Instant(n) => (*n).into(),
        EventKind::Pair { stage, .. } => format!("pair.{}", stage.name()),
    }
}

/// Sorts events into a stable export order: clock domain, then track,
/// then time (ties keep the cross-ring merge deterministic via the
/// payload).
fn sorted(log: &TraceLog) -> Vec<Event> {
    let mut events = log.events.clone();
    events.sort_by_key(|e| {
        let (pid, tid) = track_ids(e.track);
        (pid, tid, e.t_ns, format!("{:?}", e.kind))
    });
    events
}

/// Renders the log as one Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`), loadable in Perfetto.
pub fn chrome_trace(log: &TraceLog) -> Json {
    let events = sorted(log);
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 16);

    // Metadata: name the two processes and every thread that appears.
    let mut seen: Vec<(u64, u64, Track)> = Vec::new();
    for e in &events {
        let (pid, tid) = track_ids(e.track);
        if !seen.iter().any(|&(p, t, _)| p == pid && t == tid) {
            seen.push((pid, tid, e.track));
        }
    }
    for (pid, name) in [(PID_WALL, "runtime (wall clock)"), (PID_SIM, "simulation (sim ns)")] {
        if seen.iter().any(|&(p, _, _)| p == pid) {
            out.push(Json::obj([
                ("name", Json::str("process_name")),
                ("ph", Json::str("M")),
                ("pid", Json::uint(pid)),
                ("tid", Json::uint(0)),
                ("args", Json::obj([("name", Json::str(name))])),
            ]));
        }
    }
    for &(pid, tid, track) in &seen {
        out.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::uint(pid)),
            ("tid", Json::uint(tid)),
            ("args", Json::obj([("name", Json::str(track_name(track)))])),
        ]));
    }

    for e in &events {
        let (pid, tid) = track_ids(e.track);
        let ts = Json::Num(e.t_ns as f64 / 1e3);
        let mut pairs: Vec<(String, Json)> = vec![
            ("name".into(), Json::str(event_name(&e.kind))),
            ("pid".into(), Json::uint(pid)),
            ("tid".into(), Json::uint(tid)),
            ("ts".into(), ts),
        ];
        match e.kind {
            EventKind::Begin(_) => pairs.push(("ph".into(), Json::str("B"))),
            EventKind::End(_) => pairs.push(("ph".into(), Json::str("E"))),
            EventKind::Instant(_) => {
                pairs.push(("ph".into(), Json::str("i")));
                pairs.push(("s".into(), Json::str("t")));
            }
            EventKind::Pair { id, .. } => {
                pairs.push(("ph".into(), Json::str("i")));
                pairs.push(("s".into(), Json::str("t")));
                let mut args = vec![("pair", Json::uint(id))];
                if let Some(lane) = track_lane(e.track) {
                    args.push(("lane", Json::uint(u64::from(lane))));
                }
                pairs.push(("args".into(), Json::obj(args)));
            }
        }
        out.push(Json::Obj(pairs));
    }

    Json::obj([
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::str("ns")),
        (
            "otherData",
            Json::obj([("dropped_events", Json::uint(log.dropped))]),
        ),
    ])
}

/// Renders the log as compact JSON-lines: a `qnlg.trace.v1` header
/// object (schema, event count, drop count), then one object per event.
pub fn json_lines(log: &TraceLog) -> String {
    let events = sorted(log);
    let mut out = String::new();
    out.push_str(
        &Json::obj([
            ("schema", Json::str("qnlg.trace.v1")),
            ("events", Json::uint(events.len() as u64)),
            ("dropped", Json::uint(log.dropped)),
        ])
        .render(),
    );
    out.push('\n');
    for e in &events {
        let clock = if e.wall { "wall" } else { "sim" };
        let mut pairs: Vec<(String, Json)> = vec![
            ("t_ns".into(), Json::uint(e.t_ns)),
            ("clock".into(), Json::str(clock)),
            ("track".into(), Json::str(track_name(e.track))),
        ];
        match e.kind {
            EventKind::Begin(n) => {
                pairs.push(("kind".into(), Json::str("begin")));
                pairs.push(("name".into(), Json::str(n)));
            }
            EventKind::End(n) => {
                pairs.push(("kind".into(), Json::str("end")));
                pairs.push(("name".into(), Json::str(n)));
            }
            EventKind::Instant(n) => {
                pairs.push(("kind".into(), Json::str("instant")));
                pairs.push(("name".into(), Json::str(n)));
            }
            EventKind::Pair { stage, id } => {
                pairs.push(("kind".into(), Json::str("pair")));
                pairs.push(("stage".into(), Json::str(stage.name())));
                pairs.push(("pair".into(), Json::uint(id)));
                if let Some(lane) = track_lane(e.track) {
                    pairs.push(("lane".into(), Json::uint(u64::from(lane))));
                }
            }
        }
        out.push_str(&Json::Obj(pairs).render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PairStage;

    fn sample_log() -> TraceLog {
        TraceLog {
            events: vec![
                Event {
                    t_ns: 2_500,
                    wall: false,
                    track: Track::Source(0),
                    kind: EventKind::Pair {
                        stage: PairStage::Emitted,
                        id: 9,
                    },
                },
                Event {
                    t_ns: 100,
                    wall: true,
                    track: Track::Worker(1),
                    kind: EventKind::Begin("chunk"),
                },
                Event {
                    t_ns: 900,
                    wall: true,
                    track: Track::Worker(1),
                    kind: EventKind::End("chunk"),
                },
                Event {
                    t_ns: 7_000,
                    wall: false,
                    track: Track::Qnic {
                        lane: 0,
                        side: Side::A,
                    },
                    kind: EventKind::Pair {
                        stage: PairStage::Consumed,
                        id: 9,
                    },
                },
            ],
            dropped: 3,
        }
    }

    #[test]
    fn chrome_trace_parses_and_separates_clock_domains() {
        let doc = chrome_trace(&sample_log());
        let text = doc.render();
        let parsed = Json::parse(&text).expect("exporter emits valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 process_name + 3 thread_name + 4 events.
        assert_eq!(events.len(), 9);
        for e in events {
            assert!(e.get("ph").is_some() && e.get("pid").is_some() && e.get("tid").is_some());
        }
        let pair_events: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("pair."))
            })
            .collect();
        assert_eq!(pair_events.len(), 2);
        for e in &pair_events {
            assert_eq!(e.get("pid").unwrap().as_i64(), Some(PID_SIM as i64));
            assert_eq!(e.get("args").unwrap().get("pair").unwrap().as_i64(), Some(9));
            assert_eq!(e.get("args").unwrap().get("lane").unwrap().as_i64(), Some(0));
        }
        // Delivery latency is derivable: consumed.ts − emitted.ts.
        let ts = |name: &str| {
            pair_events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap()
                .get("ts")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert!((ts("pair.consumed") - ts("pair.emitted") - 4.5).abs() < 1e-9);
        assert_eq!(
            parsed
                .get("otherData")
                .unwrap()
                .get("dropped_events")
                .unwrap()
                .as_i64(),
            Some(3)
        );
    }

    #[test]
    fn json_lines_has_header_and_one_object_per_event() {
        let text = json_lines(&sample_log());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(header.get("schema").unwrap().as_str(), Some("qnlg.trace.v1"));
        assert_eq!(header.get("dropped").unwrap().as_i64(), Some(3));
        for line in &lines[1..] {
            let e = Json::parse(line).expect("valid event line");
            assert!(e.get("t_ns").is_some() && e.get("clock").is_some());
        }
    }
}
