//! The per-thread event ring: fixed capacity, drop-oldest, lock-free on
//! the write path.
//!
//! Each recording thread owns exactly one [`Ring`] (enforced by the
//! thread-local registration in `lib.rs`), so the write path is
//! single-producer: one relaxed head load, one slot store, one release
//! head store — no CAS, no lock, no allocation. When the ring is full the
//! writer overwrites the oldest slot; nothing ever blocks or fails, and
//! the head counter keeps the exact number of events ever written, so the
//! dropped count is `written − capacity` with no extra bookkeeping.
//!
//! Draining is **not** concurrent with writing: [`Ring::drain_events`]
//! requires the producer thread to have quiesced (the same contract as
//! `obs::reset` — the harness drains between experiment runs, never
//! during one). The release store on `head` paired with the drainer's
//! acquire load makes every slot written before the producer's last push
//! visible to the drainer.

use crate::event::Event;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity drop-oldest event buffer with a single designated
/// producer thread.
pub struct Ring {
    slots: Box<[UnsafeCell<Event>]>,
    /// Events ever written (monotonic). Slot `h % capacity` holds write
    /// number `h`.
    head: AtomicU64,
}

// SAFETY: `slots` is only written through `push`, whose caller contract
// is "one designated producer thread", and only read through
// `drain_events`, whose contract is "producer quiesced"; the
// release/acquire pair on `head` orders the slot stores before the reads.
unsafe impl Sync for Ring {}

impl Ring {
    /// A ring with `capacity` slots.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring needs at least one slot");
        Ring {
            slots: (0..capacity).map(|_| UnsafeCell::new(Event::default())).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends `ev`, overwriting the oldest event when full.
    ///
    /// Must only be called from the ring's designated producer thread
    /// (the thread-local registry in `lib.rs` guarantees this for rings
    /// it hands out).
    #[inline]
    pub fn push(&self, ev: Event) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        // SAFETY: single producer (caller contract) ⇒ no concurrent
        // writer; drains require quiescence ⇒ no concurrent reader.
        unsafe { *slot.get() = ev };
        self.head.store(h + 1, Ordering::Release);
    }

    /// Events ever pushed (retained + dropped).
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events overwritten before they could be drained.
    pub fn dropped(&self) -> u64 {
        self.written().saturating_sub(self.slots.len() as u64)
    }

    /// Copies out the retained events, oldest first.
    ///
    /// The producer thread must have quiesced (no concurrent `push`);
    /// the harness drains only between runs.
    pub fn drain_events(&self) -> Vec<Event> {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let n = h.min(cap);
        (h - n..h)
            .map(|i| {
                // SAFETY: producer quiesced (caller contract); the
                // acquire load above synchronizes with its last release.
                unsafe { *self.slots[(i % cap) as usize].get() }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Track};

    fn ev(n: u64) -> Event {
        Event {
            t_ns: n,
            wall: false,
            track: Track::Main,
            kind: EventKind::Pair {
                stage: crate::event::PairStage::Emitted,
                id: n,
            },
        }
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let r = Ring::new(8);
        for n in 0..5 {
            r.push(ev(n));
        }
        assert_eq!(r.written(), 5);
        assert_eq!(r.dropped(), 0);
        let got: Vec<u64> = r.drain_events().iter().map(|e| e.t_ns).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts_exactly() {
        let r = Ring::new(4);
        for n in 0..11 {
            r.push(ev(n));
        }
        assert_eq!(r.written(), 11);
        assert_eq!(r.dropped(), 7);
        let got: Vec<u64> = r.drain_events().iter().map(|e| e.t_ns).collect();
        assert_eq!(got, vec![7, 8, 9, 10], "newest `capacity` events survive");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        Ring::new(0);
    }
}
