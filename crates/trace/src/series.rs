//! Windowed time series: obs-registry counter deltas captured every N
//! simulation nanoseconds.
//!
//! End-of-run `obs` snapshots say how much happened; this module says
//! *when* — pairs emitted, drops, fallback transitions per sim-time
//! window, cheap enough to leave on for every `repro` run. The recorder
//! is armed per experiment ([`start`] / [`finish`], the `obs::reset`
//! scoping), and simulation loops call [`tick`] with their current sim
//! time: one relaxed bool load when off, one thread-local window check
//! when no boundary was crossed, and one obs snapshot + delta merge per
//! crossing.
//!
//! Experiments sweep many points in parallel, each with its own sim
//! timeline, so deltas are attributed to the window of whichever
//! timeline crossed a boundary first — the totals are exact, the
//! per-window attribution is an operator diagnostic. The resulting
//! `series` artifact section is therefore stripped from the canonical
//! determinism digest, exactly like `perf`.

use obs::json::Json;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Recording gate (relaxed, like [`crate::enabled`]).
static SERIES_ON: AtomicBool = AtomicBool::new(false);
/// Active window width in sim ns (read on the tick fast path).
static WINDOW_NS: AtomicU64 = AtomicU64::new(u64::MAX);
/// Bumped by [`start`] so stale thread-local window caches miss.
static SERIES_GEN: AtomicU64 = AtomicU64::new(0);
/// Recorder state while armed.
static STATE: Mutex<Option<State>> = Mutex::new(None);

/// Hard cap on distinct windows kept per run; crossings beyond it fold
/// into the newest kept window and are counted in `dropped_windows`.
pub const MAX_WINDOWS: usize = 2048;

struct State {
    window_ns: u64,
    /// Counter values at the last capture (baseline for deltas).
    last: Vec<(String, u64)>,
    /// Window index → accumulated counter deltas.
    windows: BTreeMap<u64, BTreeMap<String, u64>>,
    dropped_windows: u64,
}

thread_local! {
    /// (generation, window index) this thread last captured for.
    static LAST_W: Cell<(u64, u64)> = const { Cell::new((u64::MAX, u64::MAX)) };
}

/// One captured window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesWindow {
    /// Window start, in sim ns (`index × window_ns`).
    pub t_ns: u64,
    /// Counter deltas accumulated while this window was current
    /// (zero-delta counters omitted), sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// The finished time series for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Window width in sim ns (0 when the recorder never ran).
    pub window_ns: u64,
    /// Window crossings folded into a neighbor because [`MAX_WINDOWS`]
    /// was reached.
    pub dropped_windows: u64,
    /// Captured windows in time order.
    pub windows: Vec<SeriesWindow>,
}

impl SeriesSnapshot {
    /// Serializes as the `series` section of a `qnlg.bench.v1` artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("window_ns", Json::uint(self.window_ns)),
            ("dropped_windows", Json::uint(self.dropped_windows)),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(|w| {
                            Json::obj([
                                ("t_ns", Json::uint(w.t_ns)),
                                (
                                    "counters",
                                    Json::Obj(
                                        w.counters
                                            .iter()
                                            .map(|(n, v)| (n.clone(), Json::uint(*v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Arms the recorder with `window_ns`-wide windows, baselining against
/// the current obs counters. Replaces any previous recording.
///
/// # Panics
/// Panics if `window_ns == 0`.
pub fn start(window_ns: u64) {
    assert!(window_ns > 0, "series window must be positive");
    let baseline = obs::snapshot().counters;
    SERIES_GEN.fetch_add(1, Ordering::Relaxed);
    WINDOW_NS.store(window_ns, Ordering::Relaxed);
    *STATE.lock().expect("series state") = Some(State {
        window_ns,
        last: baseline,
        windows: BTreeMap::new(),
        dropped_windows: 0,
    });
    SERIES_ON.store(true, Ordering::Relaxed);
}

/// Feeds the recorder the current sim time. Call from simulation
/// advance loops; no-op (one relaxed load) while disarmed, and cheap
/// (one thread-local compare) until a window boundary is crossed.
#[inline]
pub fn tick(now_ns: u64) {
    if !SERIES_ON.load(Ordering::Relaxed) {
        return;
    }
    tick_armed(now_ns);
}

fn tick_armed(now_ns: u64) {
    let gen = SERIES_GEN.load(Ordering::Relaxed);
    let w = now_ns / WINDOW_NS.load(Ordering::Relaxed);
    let repeat = LAST_W.with(|c| {
        if c.get() == (gen, w) {
            true
        } else {
            c.set((gen, w));
            false
        }
    });
    if !repeat {
        capture(w);
    }
}

/// Accumulates counter deltas since the last capture into window `w`.
fn capture(w: u64) {
    let mut guard = STATE.lock().expect("series state");
    let Some(state) = guard.as_mut() else {
        return;
    };
    let snap = obs::snapshot().counters;
    let deltas = delta(&state.last, &snap);
    state.last = snap;
    if deltas.is_empty() {
        return;
    }
    let key = if state.windows.contains_key(&w) || state.windows.len() < MAX_WINDOWS {
        w
    } else {
        // Full: fold into the newest kept window and count the loss —
        // totals stay exact, attribution degrades visibly.
        state.dropped_windows += 1;
        *state.windows.keys().next_back().expect("non-empty at cap")
    };
    let bucket = state.windows.entry(key).or_default();
    for (name, d) in deltas {
        *bucket.entry(name).or_insert(0) += d;
    }
}

/// Per-counter increase from `last` (sorted by name) to `now` (sorted by
/// name); zero deltas omitted. Counters never decrease, so a missing
/// baseline entry means the counter was born since.
fn delta(last: &[(String, u64)], now: &[(String, u64)]) -> Vec<(String, u64)> {
    now.iter()
        .filter_map(|(name, v)| {
            let base = match last.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => last[i].1,
                Err(_) => 0,
            };
            let d = v.saturating_sub(base);
            (d > 0).then(|| (name.clone(), d))
        })
        .collect()
}

/// Disarms the recorder and returns the finished series. The remainder
/// since the last boundary crossing is folded into the newest window
/// (or window 0 when no boundary was ever crossed).
pub fn finish() -> SeriesSnapshot {
    SERIES_ON.store(false, Ordering::Relaxed);
    let Some(mut state) = STATE.lock().expect("series state").take() else {
        return SeriesSnapshot::default();
    };
    let snap = obs::snapshot().counters;
    let tail = delta(&state.last, &snap);
    if !tail.is_empty() {
        let key = state.windows.keys().next_back().copied().unwrap_or(0);
        let bucket = state.windows.entry(key).or_default();
        for (name, d) in tail {
            *bucket.entry(name).or_insert(0) += d;
        }
    }
    SeriesSnapshot {
        window_ns: state.window_ns,
        dropped_windows: state.dropped_windows,
        windows: state
            .windows
            .into_iter()
            .map(|(w, counters)| SeriesWindow {
                t_ns: w * state.window_ns,
                counters: counters.into_iter().collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Series tests toggle the process-global obs registry and recorder.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn windows_carry_counter_deltas() {
        let _guard = test_lock();
        obs::reset();
        obs::set_enabled(true);
        start(1_000);
        let c = obs::counter("series.test.pairs");
        tick(10); // window 0 baseline capture
        c.add(5);
        tick(1_500); // crosses into window 1: delta 5 → window 1
        c.add(2);
        obs::set_enabled(false);
        let snap = finish(); // tail delta 2 → newest window
        assert_eq!(snap.window_ns, 1_000);
        assert_eq!(snap.dropped_windows, 0);
        let total: u64 = snap
            .windows
            .iter()
            .flat_map(|w| w.counters.iter())
            .filter(|(n, _)| n == "series.test.pairs")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, 7, "window deltas must sum to the counter total");
        assert!(snap.windows.iter().any(|w| w.t_ns == 1_000));
    }

    #[test]
    fn disarmed_tick_is_a_no_op() {
        let _guard = test_lock();
        let _ = finish();
        tick(123); // must not panic or capture
        assert_eq!(finish(), SeriesSnapshot::default());
    }

    #[test]
    fn serializes_with_schema_fields() {
        let snap = SeriesSnapshot {
            window_ns: 500,
            dropped_windows: 1,
            windows: vec![SeriesWindow {
                t_ns: 1_000,
                counters: vec![("a.b".into(), 3)],
            }],
        };
        let doc = obs::json::Json::parse(&snap.to_json().render()).unwrap();
        assert_eq!(doc.get("window_ns").unwrap().as_i64(), Some(500));
        let windows = doc.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(
            windows[0].get("counters").unwrap().get("a.b").unwrap().as_i64(),
            Some(3)
        );
    }
}
