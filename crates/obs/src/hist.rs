//! Log-bucketed histograms for latencies and sizes.
//!
//! Values are `u64`s binned by position of their highest set bit: bucket
//! 0 holds exactly `0`, bucket `b ≥ 1` holds `[2^(b−1), 2^b − 1]`. Two
//! properties follow:
//!
//! - fixed memory (65 buckets) over the full `u64` range, and
//! - any percentile estimated from the buckets brackets the exact
//!   nearest-rank percentile of the recorded samples to within one
//!   power of two ([`HistSnapshot::percentile_bounds`] — the contract
//!   the property tests in `qnlg-bench` pin against
//!   `loadbalance::metrics::percentile`).
//!
//! Live histograms are sharded across [`HIST_SHARDS`] independent bucket
//! arrays so concurrent recorders (pool workers) don't contend on one
//! cache line; a snapshot merges the shards. Merging is exact: summing
//! per-bucket counts loses nothing, so a merged multi-shard recording
//! equals a single-shard recording of the same samples.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of buckets: one for zero plus one per possible highest bit.
pub const HIST_BUCKETS: usize = 65;

/// Number of independent shards in a live histogram.
pub const HIST_SHARDS: usize = 4;

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `b`.
///
/// # Panics
/// Panics if `b >= HIST_BUCKETS`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    assert!(b < HIST_BUCKETS, "bucket {b} out of range");
    if b == 0 {
        (0, 0)
    } else if b == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (b - 1), (1 << b) - 1)
    }
}

/// One shard: a full bucket array plus summary atomics.
#[derive(Debug)]
struct Shard {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// The storage behind a registered histogram handle.
#[derive(Debug)]
pub(crate) struct HistInner {
    shards: [Shard; HIST_SHARDS],
    /// Round-robin shard assignment for recorders without a preference.
    next_shard: AtomicUsize,
}

impl HistInner {
    pub(crate) fn new() -> Self {
        HistInner {
            shards: std::array::from_fn(|_| Shard::new()),
            next_shard: AtomicUsize::new(0),
        }
    }

    /// Records into an explicit shard (callers with a stable worker
    /// index use it to avoid cross-worker contention).
    pub(crate) fn record_shard(&self, shard: usize, v: u64) {
        self.shards[shard % HIST_SHARDS].record(v);
    }

    /// Records into a round-robin-assigned shard.
    pub(crate) fn record(&self, v: u64) {
        let s = self.next_shard.fetch_add(1, Ordering::Relaxed);
        self.record_shard(s, v);
    }

    /// Zeroes all shards in place (handles stay live). Not linearizable
    /// against concurrent recorders.
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            for b in &shard.buckets {
                b.store(0, Ordering::Relaxed);
            }
            shard.count.store(0, Ordering::Relaxed);
            shard.sum.store(0, Ordering::Relaxed);
            shard.min.store(u64::MAX, Ordering::Relaxed);
            shard.max.store(0, Ordering::Relaxed);
        }
    }

    /// Merged view of all shards.
    pub(crate) fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::empty();
        for shard in &self.shards {
            let mut s = HistSnapshot::empty();
            for (b, v) in shard.buckets.iter().enumerate() {
                s.buckets[b] = v.load(Ordering::Relaxed);
            }
            s.count = shard.count.load(Ordering::Relaxed);
            s.sum = shard.sum.load(Ordering::Relaxed);
            s.min = shard.min.load(Ordering::Relaxed);
            s.max = shard.max.load(Ordering::Relaxed);
            snap.merge(&s);
        }
        snap
    }
}

/// A merged, immutable view of a histogram: per-bucket counts plus
/// summary statistics. Shard merges and cross-run merges both go
/// through [`HistSnapshot::merge`], which is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping add on overflow).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value (snapshots double as single-threaded builders
    /// in tests and reports).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another snapshot in. Exact: bucket counts add, extrema
    /// combine.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive `[lo, hi]` bounds bracketing the exact nearest-rank
    /// `q`-percentile of the recorded samples, tightened by the observed
    /// min/max. `None` when empty.
    ///
    /// Guarantee: for any sample multiset, the exact nearest-rank
    /// percentile (as computed by a sorted-sample nearest-rank routine)
    /// lies inside the returned bounds.
    pub fn percentile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        debug_assert!((0.0..=1.0).contains(&q));
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(b);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        unreachable!("cumulative bucket count {cum} < rank {rank}")
    }

    /// Upper-bound point estimate of the `q`-percentile (the bracketing
    /// bucket's high edge); `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.percentile_bounds(q).map(|(_, hi)| hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_index(lo), b);
            assert_eq!(bucket_index(hi), b);
        }
    }

    #[test]
    fn snapshot_records_and_summarizes() {
        let mut s = HistSnapshot::empty();
        for v in [0u64, 1, 5, 8, 1000] {
            s.record(v);
        }
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 1014);
        assert!((s.mean() - 202.8).abs() < 1e-12);
    }

    #[test]
    fn percentile_bounds_bracket_exact_values() {
        let mut s = HistSnapshot::empty();
        let samples: Vec<u64> = (0..100).map(|i| i * 7).collect();
        for &v in &samples {
            s.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (lo, hi) = s.percentile_bounds(q).unwrap();
            assert!(
                lo <= exact && exact <= hi,
                "q={q}: exact {exact} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn empty_percentile_is_none() {
        assert_eq!(HistSnapshot::empty().percentile_bounds(0.5), None);
        assert!(HistSnapshot::empty().mean().is_nan());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = HistSnapshot::empty();
        let mut b = HistSnapshot::empty();
        let mut both = HistSnapshot::empty();
        for v in 0..50u64 {
            a.record(v * 3);
            both.record(v * 3);
        }
        for v in 0..30u64 {
            b.record(v * 11 + 1);
            both.record(v * 11 + 1);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn sharded_inner_merges_exactly() {
        let inner = HistInner::new();
        let mut reference = HistSnapshot::empty();
        for v in 0..200u64 {
            inner.record_shard(v as usize, v);
            reference.record(v);
        }
        assert_eq!(inner.snapshot(), reference);
    }
}
