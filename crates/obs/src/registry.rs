//! The sharded metric registry.
//!
//! Metrics are named by dotted paths (`"qnet.des.events"`); names under
//! the reserved `time.` prefix are wall-clock measurements and are
//! treated as non-deterministic by downstream tooling. Registration
//! hashes the name into one of [`REGISTRY_SHARDS`] `Mutex<HashMap>`
//! shards, so unrelated call sites never contend; hot paths avoid even
//! that by caching the handle in a [`LazyCounter`]/[`LazyGauge`]/
//! [`LazyHist`] static.
//!
//! Recording is gated on a single relaxed [`enabled`] load. [`reset`]
//! clears all registered metrics (the `repro` harness isolates each
//! experiment's snapshot this way); handles survive a reset because they
//! share the underlying atomics with the registry.

use crate::hist::{HistInner, HistSnapshot};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of registry shards (hash of the metric name picks one).
pub const REGISTRY_SHARDS: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True while metric collection is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric collection on or off (process-global).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<GaugeInner>),
    Hist(Arc<HistInner>),
}

struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; REGISTRY_SHARDS],
}

fn lock_shard(m: &Mutex<HashMap<String, Metric>>) -> std::sync::MutexGuard<'_, HashMap<String, Metric>> {
    // A panic while holding a shard lock (e.g. a type-conflict panic in
    // a test) never leaves the map inconsistent, so poison is recoverable.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
    })
}

fn shard_of(name: &str) -> usize {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    (h.finish() as usize) % REGISTRY_SHARDS
}

/// A monotonically-increasing event count.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while collection is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

pub(crate) struct GaugeInner {
    value: AtomicI64,
    max: AtomicI64,
}

/// A last-value gauge that also tracks its high-water mark.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Sets the current value, updating the high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.value.store(v, Ordering::Relaxed);
            self.0.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Raises the high-water mark without touching the current value.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if enabled() {
            self.0.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current (last-set) value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// High-water mark.
    pub fn high_water(&self) -> i64 {
        self.0.max.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram handle (see [`crate::hist`]).
#[derive(Clone)]
pub struct Hist(Arc<HistInner>);

impl Hist {
    /// Records a sample (no-op while collection is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.0.record(v);
        }
    }

    /// Records a sample into an explicit shard — recorders with a stable
    /// worker index use this to stay off each other's cache lines.
    #[inline]
    pub fn record_shard(&self, shard: usize, v: u64) {
        if enabled() {
            self.0.record_shard(shard, v);
        }
    }

    /// Merged view of all shards.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.snapshot()
    }
}

/// Registers (or fetches) the counter `name`.
pub fn counter(name: &str) -> Counter {
    let mut shard = lock_shard(&registry().shards[shard_of(name)]);
    match shard
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
    {
        Metric::Counter(c) => Counter(c.clone()),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Registers (or fetches) the gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut shard = lock_shard(&registry().shards[shard_of(name)]);
    match shard.entry(name.to_string()).or_insert_with(|| {
        Metric::Gauge(Arc::new(GaugeInner {
            value: AtomicI64::new(0),
            max: AtomicI64::new(i64::MIN),
        }))
    }) {
        Metric::Gauge(g) => Gauge(g.clone()),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Registers (or fetches) the histogram `name`.
pub fn hist(name: &str) -> Hist {
    let mut shard = lock_shard(&registry().shards[shard_of(name)]);
    match shard
        .entry(name.to_string())
        .or_insert_with(|| Metric::Hist(Arc::new(HistInner::new())))
    {
        Metric::Hist(h) => Hist(h.clone()),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Zeroes every registered metric in place: counters to 0, gauges to
/// unset, histograms cleared. Cached handles (including `Lazy*` statics)
/// stay live across a reset because they share the underlying atomics —
/// the `repro` harness calls this between experiments so each snapshot
/// covers exactly one run. Not linearizable against concurrent
/// recorders; call it while no instrumented work is in flight.
pub fn reset() {
    for shard in &registry().shards {
        let shard = lock_shard(shard);
        for metric in shard.values() {
            match metric {
                Metric::Counter(c) => c.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => {
                    g.value.store(0, Ordering::Relaxed);
                    g.max.store(i64::MIN, Ordering::Relaxed);
                }
                Metric::Hist(h) => h.clear(),
            }
        }
    }
}

/// A gauge's exported state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Last value set.
    pub value: i64,
    /// High-water mark (`i64::MIN` if never set).
    pub high_water: i64,
}

/// A point-in-time export of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, GaugeSnapshot)>,
    /// Histogram summaries.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl Snapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Gauge state by name.
    pub fn gauge(&self, name: &str) -> Option<GaugeSnapshot> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// Exports every registered metric, sorted by name for stable output.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for shard in &registry().shards {
        let shard = lock_shard(shard);
        for (name, metric) in shard.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.push((name.clone(), c.load(Ordering::Relaxed)));
                }
                Metric::Gauge(g) => snap.gauges.push((
                    name.clone(),
                    GaugeSnapshot {
                        value: g.value.load(Ordering::Relaxed),
                        high_water: g.max.load(Ordering::Relaxed),
                    },
                )),
                Metric::Hist(h) => snap.hists.push((name.clone(), h.snapshot())),
            }
        }
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.hists.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

/// A counter registered lazily on first use — the pattern for hot call
/// sites: `static EVENTS: LazyCounter = LazyCounter::new("x.events");`.
/// While collection is disabled the cost is one relaxed bool load.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Declares a counter named `name` without registering it yet.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter { name, cell: OnceLock::new() }
    }

    fn get(&self) -> &Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Adds 1 (no-op while disabled).
    #[inline]
    pub fn inc(&self) {
        if enabled() {
            self.get().inc();
        }
    }

    /// Adds `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.get().add(n);
        }
    }
}

/// A gauge registered lazily on first use.
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Gauge>,
}

impl LazyGauge {
    /// Declares a gauge named `name` without registering it yet.
    pub const fn new(name: &'static str) -> Self {
        LazyGauge { name, cell: OnceLock::new() }
    }

    fn get(&self) -> &Gauge {
        self.cell.get_or_init(|| gauge(self.name))
    }

    /// Sets the value (no-op while disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.get().set(v);
        }
    }

    /// Raises the high-water mark (no-op while disabled).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if enabled() {
            self.get().set_max(v);
        }
    }
}

/// A histogram registered lazily on first use.
pub struct LazyHist {
    name: &'static str,
    cell: OnceLock<Hist>,
}

impl LazyHist {
    /// Declares a histogram named `name` without registering it yet.
    pub const fn new(name: &'static str) -> Self {
        LazyHist { name, cell: OnceLock::new() }
    }

    pub(crate) fn get(&self) -> &Hist {
        self.cell.get_or_init(|| hist(self.name))
    }

    /// Records a sample (no-op while disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.get().record(v);
        }
    }

    /// Records into an explicit shard (no-op while disabled).
    #[inline]
    pub fn record_shard(&self, shard: usize, v: u64) {
        if enabled() {
            self.get().record_shard(shard, v);
        }
    }
}

/// Serializes tests that toggle the process-global enabled flag.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share one process-global registry and enabled flag; each
    // test takes `test_lock` around its toggling section and uses unique
    // metric names.

    fn with_enabled<T>(f: impl FnOnce() -> T) -> T {
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = test_lock();
        let c = counter("test.disabled.counter");
        set_enabled(false);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let _guard = test_lock();
        let c = counter("test.rt.counter");
        let g = gauge("test.rt.gauge");
        with_enabled(|| {
            c.add(3);
            g.set(7);
            g.set(2);
            g.set_max(11);
        });
        assert_eq!(c.get(), 3);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 11);
        let snap = snapshot();
        assert_eq!(snap.counter("test.rt.counter"), Some(3));
        let gs = snap.gauge("test.rt.gauge").unwrap();
        assert_eq!((gs.value, gs.high_water), (2, 11));
    }

    #[test]
    fn same_name_shares_storage() {
        let _guard = test_lock();
        let a = counter("test.shared.counter");
        let b = counter("test.shared.counter");
        with_enabled(|| a.add(5));
        assert_eq!(b.get(), 5);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflict_panics() {
        counter("test.conflict.metric");
        gauge("test.conflict.metric");
    }

    #[test]
    fn lazy_handles_register_on_first_use() {
        let _guard = test_lock();
        static C: LazyCounter = LazyCounter::new("test.lazy.counter");
        static H: LazyHist = LazyHist::new("test.lazy.hist");
        with_enabled(|| {
            C.inc();
            C.add(2);
            H.record(9);
        });
        let snap = snapshot();
        assert_eq!(snap.counter("test.lazy.counter"), Some(3));
        assert_eq!(snap.hist("test.lazy.hist").unwrap().count, 1);
    }

    #[test]
    fn snapshot_is_sorted() {
        counter("test.sort.b");
        counter("test.sort.a");
        let snap = snapshot();
        let names: Vec<&str> = snap
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.starts_with("test.sort."))
            .collect();
        assert_eq!(names, vec!["test.sort.a", "test.sort.b"]);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let _guard = test_lock();
        let c = counter("test.reset.counter");
        let h = hist("test.reset.hist");
        with_enabled(|| {
            c.add(4);
            h.record(1);
        });
        reset();
        assert_eq!(snapshot().counter("test.reset.counter"), Some(0));
        assert_eq!(snapshot().hist("test.reset.hist").unwrap().count, 0);
        // Handles stay live across reset.
        with_enabled(|| {
            c.inc();
            h.record(2);
        });
        assert_eq!(snapshot().counter("test.reset.counter"), Some(1));
        assert_eq!(snapshot().hist("test.reset.hist").unwrap().count, 1);
    }
}
