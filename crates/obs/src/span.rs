//! Scope timers: measure labelled regions and aggregate per-label
//! wall-clock into `time.<label>.ns` histograms.
//!
//! Use through the [`crate::span!`] macro, which allocates the static
//! [`crate::LazyHist`] per call site. The guard reads the clock only
//! while collection is enabled — when disabled the construction cost is
//! one relaxed bool load and the drop is a `None` check.

use crate::registry::{enabled, LazyHist};
use std::time::Instant;

/// Times from construction to drop and records the elapsed nanoseconds.
pub struct SpanGuard {
    start: Option<Instant>,
    hist: &'static LazyHist,
}

impl SpanGuard {
    /// Starts timing (inert if collection is disabled).
    pub fn new(hist: &'static LazyHist) -> Self {
        SpanGuard {
            start: if enabled() { Some(Instant::now()) } else { None },
            hist,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos();
            self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{set_enabled, snapshot};

    #[test]
    fn span_records_only_when_enabled() {
        let _guard = crate::registry::test_lock();
        set_enabled(false);
        {
            let _g = crate::span!("test.span.off");
        }
        assert!(snapshot().hist("time.test.span.off.ns").is_none());

        set_enabled(true);
        {
            let _g = crate::span!("test.span.on");
            std::hint::black_box(0u64);
        }
        set_enabled(false);
        let snap = snapshot();
        let h = snap.hist("time.test.span.on.ns").expect("span recorded");
        assert_eq!(h.count, 1);
    }
}
