//! A minimal JSON codec (hand-rolled — the workspace dependency policy
//! forbids serde).
//!
//! Built for the machine-readable repro artifacts: object keys keep
//! insertion order, integers render without a decimal point (u64
//! counters round-trip exactly up to `i64::MAX`), and floats use Rust's
//! shortest-round-trip `Display`, so identical `f64` inputs always
//! produce identical bytes — the property the cross-thread-count
//! determinism tests rely on. Non-finite floats serialize as `null`
//! (JSON has no NaN).
//!
//! ```
//! use obs::json::Json;
//! let doc = Json::obj([
//!     ("name", Json::str("fig4")),
//!     ("points", Json::Arr(vec![Json::Int(1), Json::Num(0.5)])),
//! ]);
//! let text = doc.render();
//! assert_eq!(text, r#"{"name":"fig4","points":[1,0.5]}"#);
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part, rendered exactly.
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// String convenience constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object convenience constructor from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A number: integral finite values become [`Json::Int`], other
    /// finite values [`Json::Num`], non-finite [`Json::Null`].
    pub fn num(v: f64) -> Json {
        if !v.is_finite() {
            Json::Null
        } else if v.trunc() == v && v.abs() < 9e15 {
            Json::Int(v as i64)
        } else {
            Json::Num(v)
        }
    }

    /// An unsigned integer; saturates at `i64::MAX` (no workspace metric
    /// meaningfully exceeds 2⁶³).
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (ints widen); `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `i64`; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `&str`; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs; `None` for non-objects.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Rejects trailing garbage.
    ///
    /// # Errors
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("invalid integer '{text}' at byte {start}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always at a char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let doc = Json::obj([
            ("b", Json::Int(2)),
            ("a", Json::num(1.5)),
            ("s", Json::str("x\"y\n")),
            ("none", Json::Null),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"b":2,"a":1.5,"s":"x\"y\n","none":null,"ok":true}"#
        );
    }

    #[test]
    fn num_classifies() {
        assert_eq!(Json::num(3.0), Json::Int(3));
        assert_eq!(Json::num(-0.25), Json::Num(-0.25));
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::uint(u64::MAX), Json::Int(i64::MAX));
    }

    #[test]
    fn roundtrips() {
        let doc = Json::obj([
            ("arr", Json::Arr(vec![Json::Int(0), Json::Num(0.8536), Json::Null])),
            ("nested", Json::obj([("k", Json::str("v"))])),
            ("neg", Json::Int(-17)),
            ("tiny", Json::Num(1e-12)),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = Json::parse(" { \"a\" : [ 1 , 2.5 ] , \"b\" : \"\\u0041\\t\" } ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().as_str(), Some("A\t"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn float_rendering_is_shortest_roundtrip() {
        // Rust's Display for f64 is deterministic shortest-roundtrip:
        // the same bits always render the same bytes (the property the
        // repro determinism tests rely on).
        let v = 0.854_212_345_678_9_f64;
        let a = Json::Num(v).render();
        let b = Json::Num(v).render();
        assert_eq!(a, b);
        match Json::parse(&a).unwrap() {
            Json::Num(back) => assert_eq!(back.to_bits(), v.to_bits()),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("x", Json::Int(5))]);
        assert_eq!(doc.get("x").unwrap().as_i64(), Some(5));
        assert_eq!(doc.get("x").unwrap().as_f64(), Some(5.0));
        assert_eq!(doc.get("y"), None);
        assert_eq!(Json::Bool(false).as_bool(), Some(false));
        assert!(Json::Null.as_str().is_none());
    }
}
