//! # qnlg-obs — std-only metrics and tracing
//!
//! The observability layer of the workspace: every simulation and sweep
//! can record *how* it behaved (events processed, pairs dropped, steal
//! balance, wall-clock per labelled region) without changing *what* it
//! computes. Three design rules:
//!
//! 1. **std-only.** Atomics, `Mutex<HashMap>`, `Instant` — nothing else
//!    (the workspace dependency policy, DESIGN.md §3).
//! 2. **Off by default, negligible when off.** Recording is gated on one
//!    relaxed atomic-bool load; the `span!` timer does not even call
//!    `Instant::now()` while disabled. `repro` enables collection for
//!    its runs; unit tests and library users pay nothing.
//! 3. **Deterministic values, explicit time.** Counters/gauges/histograms
//!    record simulation quantities that are worker-count-invariant;
//!    anything wall-clock lives under the reserved `time.` name prefix so
//!    machine-readable output can exempt it from byte-identity checks.
//!
//! ```
//! let c = obs::counter("demo.events");
//! obs::set_enabled(true);
//! c.inc();
//! c.add(2);
//! assert_eq!(c.get(), 3);
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("demo.events"), Some(3));
//! obs::set_enabled(false);
//! ```

pub mod hist;
pub mod json;
pub mod registry;
pub mod span;

pub use hist::{bucket_bounds, bucket_index, HistSnapshot, HIST_BUCKETS};
pub use registry::{
    counter, enabled, gauge, hist, reset, set_enabled, snapshot, Counter, Gauge, GaugeSnapshot,
    LazyCounter, LazyGauge, LazyHist, Snapshot,
};
pub use span::SpanGuard;

/// Times a scope and aggregates the elapsed wall-clock (nanoseconds)
/// into a histogram named `time.<label>.ns`.
///
/// Bind the guard — `let _span = obs::span!("sweep.point");` — so it
/// lives to the end of the scope. While collection is disabled the guard
/// is inert: no clock read, no registry access.
///
/// ```
/// fn point() {
///     let _span = obs::span!("demo.point");
///     // ... work ...
/// }
/// obs::set_enabled(true);
/// point();
/// assert_eq!(obs::snapshot().hist("time.demo.point.ns").unwrap().count, 1);
/// obs::set_enabled(false);
/// ```
#[macro_export]
macro_rules! span {
    ($label:literal) => {{
        static SPAN_HIST: $crate::LazyHist =
            $crate::LazyHist::new(concat!("time.", $label, ".ns"));
        $crate::SpanGuard::new(&SPAN_HIST)
    }};
}
