//! Property-based invariants of the quantum simulator.

use proptest::prelude::*;
use qsim::measure::Basis1;
use qsim::{gates, DensityMatrix, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A strategy generating one random single-qubit gate.
fn arb_gate() -> impl Strategy<Value = gates::Gate1> {
    (0u8..7, 0.0f64..std::f64::consts::TAU).prop_map(|(which, theta)| match which {
        0 => gates::h(),
        1 => gates::x(),
        2 => gates::y(),
        3 => gates::z(),
        4 => gates::rx(theta),
        5 => gates::ry(theta),
        _ => gates::rz(theta),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of unitary gates preserves the state norm.
    #[test]
    fn random_circuits_preserve_norm(
        ops in proptest::collection::vec((0usize..3, arb_gate()), 1..24))
    {
        let mut s = StateVector::zero(3);
        for (q, g) in &ops {
            s.apply_gate1(*q, g).expect("in range");
        }
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Statevector and density-matrix evolution agree for pure states.
    #[test]
    fn density_tracks_statevector(
        ops in proptest::collection::vec((0usize..2, arb_gate()), 1..12))
    {
        let mut sv = StateVector::zero(2);
        let mut rho = DensityMatrix::from_pure(&sv);
        for (q, g) in &ops {
            sv.apply_gate1(*q, g).expect("in range");
            rho.apply_gate1(*q, g).expect("in range");
        }
        let expect = DensityMatrix::from_pure(&sv);
        prop_assert!(rho.matrix().max_abs_diff(expect.matrix()) < 1e-9);
        prop_assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    /// Measurement probabilities of each qubit sum to 1 and repeated
    /// measurement is consistent (projective).
    #[test]
    fn measurement_consistency(
        ops in proptest::collection::vec((0usize..2, arb_gate()), 1..10),
        theta in 0.0f64..std::f64::consts::TAU,
        seed in 0u64..1000)
    {
        let mut s = StateVector::zero(2);
        for (q, g) in &ops {
            s.apply_gate1(*q, g).expect("in range");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let basis = Basis1::angle(theta);
        let o1 = qsim::measure_in_basis(&mut s, 0, &basis, &mut rng).expect("in range");
        let o2 = qsim::measure_in_basis(&mut s, 0, &basis, &mut rng).expect("in range");
        prop_assert_eq!(o1, o2, "projective measurement must repeat");
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// The partial trace of a product state factorizes exactly.
    #[test]
    fn partial_trace_of_product_factorizes(
        ops_a in proptest::collection::vec(arb_gate(), 1..6),
        ops_b in proptest::collection::vec(arb_gate(), 1..6))
    {
        let mut a = StateVector::zero(1);
        for g in &ops_a {
            a.apply_gate1(0, g).expect("in range");
        }
        let mut b = StateVector::zero(1);
        for g in &ops_b {
            b.apply_gate1(0, g).expect("in range");
        }
        let joint = DensityMatrix::from_pure(&a.tensor(&b));
        let ra = joint.partial_trace(&[0]).expect("valid");
        let rb = joint.partial_trace(&[1]).expect("valid");
        prop_assert!(ra.matrix().max_abs_diff(DensityMatrix::from_pure(&a).matrix()) < 1e-9);
        prop_assert!(rb.matrix().max_abs_diff(DensityMatrix::from_pure(&b).matrix()) < 1e-9);
    }

    /// Tensor-then-trace roundtrips for mixed states too.
    #[test]
    fn tensor_trace_roundtrip(v1 in 0.0f64..1.0, v2 in 0.0f64..1.0) {
        let rho1 = qsim::noise::werner(v1).expect("valid");
        let rho2 = qsim::noise::werner(v2).expect("valid");
        let joint = rho1.tensor(&rho2);
        prop_assert_eq!(joint.n_qubits(), 4);
        let back1 = joint.partial_trace(&[0, 1]).expect("valid");
        let back2 = joint.partial_trace(&[2, 3]).expect("valid");
        prop_assert!(back1.matrix().max_abs_diff(rho1.matrix()) < 1e-9);
        prop_assert!(back2.matrix().max_abs_diff(rho2.matrix()) < 1e-9);
    }

    /// Kraus channels preserve trace and positivity for arbitrary
    /// parameters.
    #[test]
    fn channels_preserve_physicality(p in 0.0f64..1.0, v in 0.0f64..1.0) {
        let rho = qsim::noise::werner(v).expect("valid");
        for ch in [
            qsim::noise::KrausChannel::depolarizing(p).expect("valid"),
            qsim::noise::KrausChannel::dephasing(p).expect("valid"),
            qsim::noise::KrausChannel::amplitude_damping(p).expect("valid"),
        ] {
            let out = ch.apply(&rho, 0).expect("in range");
            prop_assert!((out.trace() - 1.0).abs() < 1e-9);
            prop_assert!(out.is_valid(1e-7));
        }
    }

    /// The Born rule: P(0) in the angle-θ basis for a Bloch-plane state
    /// |ψ⟩ = cos(φ)|0⟩ + sin(φ)|1⟩ equals cos²(θ − φ).
    #[test]
    fn born_rule_in_rotated_bases(
        phi in 0.0f64..std::f64::consts::TAU,
        theta in 0.0f64..std::f64::consts::TAU,
        seed in 0u64..64)
    {
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &gates::plane_rotation(phi)).expect("in range");
        // Rotate so the measurement basis becomes computational.
        let basis = Basis1::angle(theta);
        let mut probe = s.clone();
        probe.apply_gate1(0, &basis.to_computational()).expect("in range");
        let p0 = probe.probability(0);
        let expect = (theta - phi).cos().powi(2);
        prop_assert!((p0 - expect).abs() < 1e-9, "p0 {} vs {}", p0, expect);
        // And sampling agrees with probabilities in distribution (one
        // draw only — full statistics are covered by unit tests).
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = qsim::measure_in_basis(&mut s, 0, &basis, &mut rng).expect("in range");
    }
}
