//! Statistical and exact equivalence of the closed-form noisy-GHZ kernel
//! and the full quantum-simulation oracle, mirroring `werner_stat.rs`:
//! cell probabilities pinned to the density-matrix oracle at 1e-12, and
//! both samplers checked against the analytic distribution at the
//! ISSUE-mandated 99.9% confidence with 50k samples per configuration.
//! Run with `--nocapture` to see the sample-size/confidence accounting.

use proptest::prelude::*;
use qmath::assert_prob_in;
use qsim::ghz::{equatorial_basis, oracle_cell, NoisyGhz};
use qsim::measure::Basis1;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

const N: u64 = 50_000;
const CONF: f64 = 0.999;

/// Sample `N` rounds from the kernel and check every outcome-cell count
/// against the analytic joint distribution.
fn check_kernel(ghz: &NoisyGhz, phases: &[f64], rng: &mut StdRng) {
    let n = ghz.n_parties();
    let mut counts = vec![0u64; 1 << n];
    for _ in 0..N {
        counts[ghz.sample(phases, rng) as usize] += 1;
    }
    for (a, &count) in counts.iter().enumerate() {
        assert_prob_in!(count, N, ghz.joint_prob(phases, a as u64), conf = CONF);
    }
}

/// Sample `N` rounds from the statevector oracle (the `QNLG_EXACT_QSIM=1`
/// route: trajectory noise + n projective basis measurements) and check
/// the even-parity rate and one marginal against the same closed form.
fn check_oracle(ghz: &NoisyGhz, phases: &[f64], rng: &mut StdRng) {
    let bases: Vec<Basis1> = phases.iter().map(|&p| equatorial_basis(p)).collect();
    let e = ghz.correlation(phases);
    let mut even = 0u64;
    let mut first_zero = 0u64;
    for _ in 0..N {
        let a = ghz.oracle_sample(&bases, rng).unwrap();
        even += u64::from(a.count_ones().is_multiple_of(2));
        first_zero += u64::from(a & 1 == 0);
    }
    assert_prob_in!(even, N, 0.5 * (1.0 + e), conf = CONF);
    assert_prob_in!(first_zero, N, 0.5, conf = CONF);
}

#[test]
fn kernel_matches_closed_form_across_sizes_and_visibilities() {
    let mut rng = StdRng::seed_from_u64(0x6421_0001);
    for n in [3usize, 5, 8] {
        for v in [0.5, 0.95, 1.0] {
            let phases: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * PI).collect();
            check_kernel(&NoisyGhz::new(n, v).unwrap(), &phases, &mut rng);
        }
    }
}

#[test]
fn oracle_matches_the_same_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x6421_0002);
    for (n, v) in [(3usize, 0.6), (4, 0.95)] {
        let phases: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * PI).collect();
        check_oracle(&NoisyGhz::new(n, v).unwrap(), &phases, &mut rng);
    }
}

#[test]
fn dephased_kernel_and_oracle_agree() {
    // QNIC storage decay on three of four qubits: retentions well below 1.
    let mut rng = StdRng::seed_from_u64(0x6421_0003);
    let ghz = NoisyGhz::with_dephasing(0.95, vec![0.61, 0.78, 1.0, 0.9]).unwrap();
    let phases = [0.4, 1.2, -0.3, PI / 2.0];
    check_kernel(&ghz, &phases, &mut rng);
    check_oracle(&ghz, &phases, &mut rng);
}

#[test]
fn xy_settings_agree_between_kernel_and_oracle() {
    // The Mermin-game settings path: Y on a random subset of parties.
    let mut rng = StdRng::seed_from_u64(0x6421_0004);
    let ghz = NoisyGhz::new(3, 0.8).unwrap();
    for y_mask in [0b000u64, 0b011, 0b101, 0b111] {
        let e = ghz.correlation_xy(y_mask);
        let mut kernel_even = 0u64;
        let mut oracle_even = 0u64;
        for _ in 0..N {
            kernel_even += u64::from(ghz.sample_xy(y_mask, &mut rng).count_ones().is_multiple_of(2));
            oracle_even += u64::from(
                ghz.oracle_sample_xy(y_mask, &mut rng)
                    .unwrap()
                    .count_ones()
                    .is_multiple_of(2),
            );
        }
        assert_prob_in!(kernel_even, N, 0.5 * (1.0 + e), conf = CONF);
        assert_prob_in!(oracle_even, N, 0.5 * (1.0 + e), conf = CONF);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kernel and density-matrix oracle joint distributions agree
    /// cell-by-cell to 1e-12 for random (n, visibility, retentions,
    /// measurement phases) — the exact pinning the ISSUE mandates.
    #[test]
    fn kernel_and_oracle_cells_agree_for_random_configurations(
        n in 2usize..6,
        visibility in 0.0f64..1.0,
        retention_pool in proptest::collection::vec(0.0f64..1.0, 5..6),
        phase_pool in proptest::collection::vec(-3.2f64..3.2, 5..6))
    {
        let ghz = NoisyGhz::with_dephasing(visibility, retention_pool[..n].to_vec()).unwrap();
        let phases = &phase_pool[..n];
        let bases: Vec<Basis1> = phases.iter().map(|&p| equatorial_basis(p)).collect();
        let rho = ghz.oracle_density().unwrap();
        for a in 0..(1u64 << n) {
            let kernel = ghz.joint_prob(phases, a);
            let oracle = oracle_cell(&rho, &bases, a);
            prop_assert!(
                (kernel - oracle).abs() < 1e-12,
                "n = {}, v = {}, a = {:#b}: kernel {} vs oracle {}",
                n, visibility, a, kernel, oracle
            );
        }
    }
}
