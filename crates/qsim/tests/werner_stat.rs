//! Statistical equivalence of the closed-form Werner kernel and the
//! gate-evolution oracle, at the ISSUE-mandated 99.9% confidence with
//! 50k samples per configuration.
//!
//! Both samplers are driven over the same configurations (visibility ×
//! random angle pairs × dephasing retentions) and each is checked against
//! the *analytic* cell probabilities with `assert_prob_in!` — if either
//! drifted from the closed form, its Wilson interval would exclude the
//! expectation. Run with `--nocapture` to see the full sample-size and
//! confidence accounting.

use qmath::assert_prob_in;
use qsim::werner::WernerPair;
use qsim::{Party, SharedPair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

const N: u64 = 50_000;
const CONF: f64 = 0.999;

/// Sample `N` joint outcomes from the kernel and check every cell count
/// against the analytic joint distribution.
fn check_kernel(pair: WernerPair, theta_a: f64, theta_b: f64, rng: &mut StdRng) {
    let probs = pair.joint_probs(theta_a, theta_b);
    let mut counts = [0u64; 4];
    for _ in 0..N {
        let (a, b) = pair.sample(theta_a, theta_b, rng);
        counts[((a << 1) | b) as usize] += 1;
    }
    for (cell, &count) in counts.iter().enumerate() {
        assert_prob_in!(count, N, probs[cell], conf = CONF);
    }
}

/// Sample `N` joint outcomes from the `SharedPair` oracle (full density
/// evolution + basis-rotation measurement) and check the agreement rate
/// against the same analytic distribution the kernel uses.
fn check_oracle(pair: WernerPair, theta_a: f64, theta_b: f64, rng: &mut StdRng) {
    let probs = pair.joint_probs(theta_a, theta_b);
    let rho = pair.oracle_density().unwrap();
    let mut agree = 0u64;
    let mut a_zero = 0u64;
    for _ in 0..N {
        let mut shared = SharedPair::from_density(rho.clone()).unwrap();
        let a = shared.measure_angle(Party::A, theta_a, rng).unwrap();
        let b = shared.measure_angle(Party::B, theta_b, rng).unwrap();
        if a == b {
            agree += 1;
        }
        if a == 0 {
            a_zero += 1;
        }
    }
    // Agreement rate P(00) + P(11) and the uniform Alice marginal.
    assert_prob_in!(agree, N, probs[0] + probs[3], conf = CONF);
    assert_prob_in!(a_zero, N, 0.5, conf = CONF);
}

#[test]
fn kernel_matches_closed_form_across_visibilities() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for v in [0.5, 0.95, 1.0] {
        // Two random angle pairs per visibility.
        for _ in 0..2 {
            let (ta, tb) = (rng.gen::<f64>() * PI, rng.gen::<f64>() * PI);
            check_kernel(WernerPair::new(v).unwrap(), ta, tb, &mut rng);
        }
    }
}

#[test]
fn oracle_matches_the_same_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for v in [0.5, 0.95, 1.0] {
        let (ta, tb) = (rng.gen::<f64>() * PI, rng.gen::<f64>() * PI);
        check_oracle(WernerPair::new(v).unwrap(), ta, tb, &mut rng);
    }
}

#[test]
fn dephased_kernel_and_oracle_agree() {
    // Storage decay in the QNIC: both halves held long enough to lose
    // ~39% / ~22% of their coherence.
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    let pair = WernerPair::with_dephasing(0.95, 0.61, 0.78).unwrap();
    let (ta, tb) = (0.4, 1.2);
    check_kernel(pair, ta, tb, &mut rng);
    check_oracle(pair, ta, tb, &mut rng);
}
