//! The standard gate set.
//!
//! Single-qubit gates are `[[C64; 2]; 2]` row-major matrices; two-qubit
//! gates are `[[C64; 4]; 4]` in basis order `|00⟩, |01⟩, |10⟩, |11⟩`.
//! Gates are returned by functions (not consts) because `C64` arithmetic
//! is not const-evaluable; the compiler inlines them.

use qmath::C64;

/// A single-qubit gate (2×2 complex matrix, row-major).
pub type Gate1 = [[C64; 2]; 2];
/// A two-qubit gate (4×4 complex matrix, row-major, basis `|00⟩…|11⟩`).
pub type Gate2 = [[C64; 4]; 4];

const R: fn(f64) -> C64 = C64::real;

/// Hadamard gate.
pub fn h() -> Gate1 {
    let f = std::f64::consts::FRAC_1_SQRT_2;
    [[R(f), R(f)], [R(f), R(-f)]]
}

/// Pauli-X (NOT) gate.
pub fn x() -> Gate1 {
    [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]
}

/// Pauli-Y gate.
pub fn y() -> Gate1 {
    [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]
}

/// Pauli-Z gate.
pub fn z() -> Gate1 {
    [[C64::ONE, C64::ZERO], [C64::ZERO, R(-1.0)]]
}

/// The identity gate.
pub fn i() -> Gate1 {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]]
}

/// Phase gate S = diag(1, i).
pub fn s() -> Gate1 {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]]
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t() -> Gate1 {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)]]
}

/// Rotation about X: `Rx(θ) = exp(-iθX/2)`.
pub fn rx(theta: f64) -> Gate1 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [[R(c), C64::new(0.0, -s)], [C64::new(0.0, -s), R(c)]]
}

/// Rotation about Y: `Ry(θ) = exp(-iθY/2)` (real-valued).
pub fn ry(theta: f64) -> Gate1 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [[R(c), R(-s)], [R(s), R(c)]]
}

/// Rotation about Z: `Rz(θ) = exp(-iθZ/2)`.
pub fn rz(theta: f64) -> Gate1 {
    [
        [C64::cis(-theta / 2.0), C64::ZERO],
        [C64::ZERO, C64::cis(theta / 2.0)],
    ]
}

/// Phase shift gate `diag(1, e^{iφ})`.
pub fn phase(phi: f64) -> Gate1 {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(phi)]]
}

/// The real plane-rotation `[[cosθ, -sinθ], [sinθ, cosθ]]`, which maps
/// `|0⟩` to the CHSH measurement direction `cosθ|0⟩ + sinθ|1⟩`.
///
/// Measuring in the angle-θ basis means applying the *inverse* of this
/// rotation and then measuring in the computational basis; see
/// [`crate::measure::measure_in_angle_basis`].
pub fn plane_rotation(theta: f64) -> Gate1 {
    let (c, s) = (theta.cos(), theta.sin());
    [[R(c), R(-s)], [R(s), R(c)]]
}

/// CNOT with the first operand as control (`|10⟩ ↔ |11⟩`).
pub fn cnot() -> Gate2 {
    let o = C64::ONE;
    let n = C64::ZERO;
    [
        [o, n, n, n],
        [n, o, n, n],
        [n, n, n, o],
        [n, n, o, n],
    ]
}

/// Controlled-Z (symmetric in its operands).
pub fn cz() -> Gate2 {
    let o = C64::ONE;
    let n = C64::ZERO;
    [
        [o, n, n, n],
        [n, o, n, n],
        [n, n, o, n],
        [n, n, n, R(-1.0)],
    ]
}

/// SWAP gate.
pub fn swap() -> Gate2 {
    let o = C64::ONE;
    let n = C64::ZERO;
    [
        [o, n, n, n],
        [n, n, o, n],
        [n, o, n, n],
        [n, n, n, o],
    ]
}

/// 2×2 matrix product of gates (for building composite gates in tests).
pub fn compose(a: &Gate1, b: &Gate1) -> Gate1 {
    let mut out = [[C64::ZERO; 2]; 2];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// Conjugate transpose of a single-qubit gate.
pub fn dagger(g: &Gate1) -> Gate1 {
    [
        [g[0][0].conj(), g[1][0].conj()],
        [g[0][1].conj(), g[1][1].conj()],
    ]
}

/// True if `g` is unitary within `tol`.
pub fn is_unitary1(g: &Gate1, tol: f64) -> bool {
    let p = compose(&dagger(g), g);
    (p[0][0] - C64::ONE).abs() <= tol
        && (p[1][1] - C64::ONE).abs() <= tol
        && p[0][1].abs() <= tol
        && p[1][0].abs() <= tol
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index pairs read naturally in matrix checks
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn standard_gates_unitary() {
        for g in [h(), x(), y(), z(), i(), s(), t()] {
            assert!(is_unitary1(&g, 1e-12));
        }
    }

    #[test]
    fn rotations_unitary() {
        for k in 0..12 {
            let theta = k as f64 * 0.5;
            assert!(is_unitary1(&rx(theta), 1e-12));
            assert!(is_unitary1(&ry(theta), 1e-12));
            assert!(is_unitary1(&rz(theta), 1e-12));
            assert!(is_unitary1(&plane_rotation(theta), 1e-12));
            assert!(is_unitary1(&phase(theta), 1e-12));
        }
    }

    #[test]
    fn pauli_products() {
        // XYZ = iI
        let xyz = compose(&x(), &compose(&y(), &z()));
        assert!(xyz[0][0].approx_eq(C64::I, 1e-12));
        assert!(xyz[1][1].approx_eq(C64::I, 1e-12));
        assert!(xyz[0][1].abs() < 1e-12);
    }

    #[test]
    fn s_squared_is_z() {
        let ss = compose(&s(), &s());
        for r in 0..2 {
            for c in 0..2 {
                assert!(ss[r][c].approx_eq(z()[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn t_squared_is_s() {
        let tt = compose(&t(), &t());
        for r in 0..2 {
            for c in 0..2 {
                assert!(tt[r][c].approx_eq(s()[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn hadamard_diagonalizes_x() {
        // HXH = Z
        let hxh = compose(&h(), &compose(&x(), &h()));
        for r in 0..2 {
            for c in 0..2 {
                assert!(hxh[r][c].approx_eq(z()[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn ry_matches_plane_rotation() {
        // Ry(2θ) equals the real plane rotation by θ.
        let theta = 0.7;
        let a = ry(2.0 * theta);
        let b = plane_rotation(theta);
        for r in 0..2 {
            for c in 0..2 {
                assert!(a[r][c].approx_eq(b[r][c], 1e-12));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_rotation_composition(a in 0.0f64..std::f64::consts::TAU, b in 0.0f64..std::f64::consts::TAU) {
            // plane_rotation(a) · plane_rotation(b) = plane_rotation(a+b)
            let lhs = compose(&plane_rotation(a), &plane_rotation(b));
            let rhs = plane_rotation(a + b);
            for r in 0..2 {
                for c in 0..2 {
                    prop_assert!(lhs[r][c].approx_eq(rhs[r][c], 1e-9));
                }
            }
        }

        #[test]
        fn prop_rz_phases_commute(a in 0.0f64..std::f64::consts::TAU, b in 0.0f64..std::f64::consts::TAU) {
            let lhs = compose(&rz(a), &rz(b));
            let rhs = compose(&rz(b), &rz(a));
            for r in 0..2 {
                for c in 0..2 {
                    prop_assert!(lhs[r][c].approx_eq(rhs[r][c], 1e-9));
                }
            }
        }
    }
}
