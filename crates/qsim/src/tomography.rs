//! Two-qubit state tomography from measurement statistics.
//!
//! A deployment of the paper's architecture needs to *calibrate*: estimate
//! the visibility of the pairs actually coming out of the
//! source-fiber-QNIC pipeline, using only local measurements and classical
//! post-processing. That is standard Pauli tomography:
//!
//! 1. For each of the 9 local basis settings (X/Y/Z per side), consume
//!    `shots` fresh pairs and record the ±1 outcome products.
//! 2. Estimate all 15 Pauli expectations `⟨σᵢ ⊗ σⱼ⟩` (marginals give the
//!    single-sided ones).
//! 3. Reconstruct `ρ̂ = ¼ Σᵢⱼ Êᵢⱼ σᵢ⊗σⱼ`, then project onto the physical
//!    set (PSD, unit trace) to clean up sampling noise.
//!
//! The reconstruction feeds [`werner_visibility`], the calibration number
//! the load balancer needs to decide whether the quantum strategy is
//! worth using at all (it is not below `v = 1/√2`; see
//! [`crate::noise::WERNER_CHSH_THRESHOLD`]).

use crate::density::DensityMatrix;
use crate::error::SimError;
use crate::measure::Basis1;
use crate::pair::{Party, SharedPair};
use qmath::{eigh_hermitian, CMatrix, C64};
use rand::Rng;

/// The three Pauli measurement settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauliSetting {
    /// σx: measure in `{|+⟩, |−⟩}`.
    X,
    /// σy: measure in `{(|0⟩+i|1⟩)/√2, (|0⟩−i|1⟩)/√2}`.
    Y,
    /// σz: the computational basis.
    Z,
}

impl PauliSetting {
    /// The measurement basis realizing this setting (outcome 0 ↦ +1).
    pub fn basis(self) -> Basis1 {
        let f = std::f64::consts::FRAC_1_SQRT_2;
        match self {
            PauliSetting::X => Basis1::angle(std::f64::consts::FRAC_PI_4),
            PauliSetting::Y => Basis1::new(
                [C64::real(f), C64::new(0.0, f)],
                [C64::real(f), C64::new(0.0, -f)],
            )
            .expect("orthonormal by construction"),
            PauliSetting::Z => Basis1::computational(),
        }
    }

    /// The Pauli matrix.
    pub fn matrix(self) -> CMatrix {
        match self {
            PauliSetting::X => CMatrix::from_vec(
                2,
                2,
                vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO],
            ),
            PauliSetting::Y => CMatrix::from_vec(
                2,
                2,
                vec![C64::ZERO, -C64::I, C64::I, C64::ZERO],
            ),
            PauliSetting::Z => CMatrix::from_vec(
                2,
                2,
                vec![C64::ONE, C64::ZERO, C64::ZERO, C64::real(-1.0)],
            ),
        }
        .expect("2x2")
    }

    /// All three settings.
    pub const ALL: [PauliSetting; 3] = [PauliSetting::X, PauliSetting::Y, PauliSetting::Z];
}

/// Raw tomography data: outcome-product and marginal sums per setting
/// pair.
#[derive(Debug, Clone)]
pub struct TomographyData {
    shots_per_setting: usize,
    /// `corr[i][j]` = Σ (±1)·(±1) for settings (i, j).
    corr: [[f64; 3]; 3],
    /// `marg_a[i]` = Σ (±1) of A's outcomes across all settings with A = i.
    marg_a: [f64; 3],
    /// Same for B.
    marg_b: [f64; 3],
}

/// Collects tomography statistics by consuming `shots` fresh pairs per
/// basis-setting pair (9·shots pairs total) from `source`.
///
/// # Errors
/// Propagates measurement errors (impossible for well-formed pairs).
pub fn collect<F, R>(
    mut source: F,
    shots: usize,
    rng: &mut R,
) -> Result<TomographyData, SimError>
where
    F: FnMut() -> SharedPair,
    R: Rng + ?Sized,
{
    let mut data = TomographyData {
        shots_per_setting: shots,
        corr: [[0.0; 3]; 3],
        marg_a: [0.0; 3],
        marg_b: [0.0; 3],
    };
    for (i, sa) in PauliSetting::ALL.iter().enumerate() {
        for (j, sb) in PauliSetting::ALL.iter().enumerate() {
            for _ in 0..shots {
                let mut pair = source();
                let a = pair.measure(Party::A, &sa.basis(), rng)?;
                let b = pair.measure(Party::B, &sb.basis(), rng)?;
                let va = if a == 0 { 1.0 } else { -1.0 };
                let vb = if b == 0 { 1.0 } else { -1.0 };
                data.corr[i][j] += va * vb;
                data.marg_a[i] += va;
                data.marg_b[j] += vb;
            }
        }
    }
    Ok(data)
}

impl TomographyData {
    /// The estimated expectation `⟨σᵢ ⊗ σⱼ⟩`.
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        self.corr[i][j] / self.shots_per_setting as f64
    }

    /// The estimated single-sided expectation `⟨σᵢ ⊗ I⟩` (averaged over
    /// B's three settings).
    pub fn marginal_a(&self, i: usize) -> f64 {
        self.marg_a[i] / (3 * self.shots_per_setting) as f64
    }

    /// The estimated single-sided expectation `⟨I ⊗ σⱼ⟩`.
    pub fn marginal_b(&self, j: usize) -> f64 {
        self.marg_b[j] / (3 * self.shots_per_setting) as f64
    }

    /// Reconstructs the density matrix
    /// `ρ̂ = ¼ (I⊗I + Σᵢ âᵢ σᵢ⊗I + Σⱼ b̂ⱼ I⊗σⱼ + Σᵢⱼ Êᵢⱼ σᵢ⊗σⱼ)`,
    /// projected onto the physical set (eigenvalues clamped ≥ 0, trace
    /// renormalized).
    ///
    /// # Errors
    /// Propagates linear-algebra failures (non-finite statistics).
    pub fn reconstruct(&self) -> Result<DensityMatrix, SimError> {
        let i2 = CMatrix::identity(2);
        let mut rho = i2.kron(&i2);
        for (i, si) in PauliSetting::ALL.iter().enumerate() {
            rho = &rho + &si.matrix().kron(&i2).scaled(C64::real(self.marginal_a(i)));
            rho = &rho + &i2.kron(&si.matrix()).scaled(C64::real(self.marginal_b(i)));
            for (j, sj) in PauliSetting::ALL.iter().enumerate() {
                rho = &rho
                    + &si
                        .matrix()
                        .kron(&sj.matrix())
                        .scaled(C64::real(self.correlation(i, j)));
            }
        }
        rho = rho.scaled(C64::real(0.25));

        // Physical projection: clamp negative eigenvalues, renormalize.
        let dec = eigh_hermitian(&rho).map_err(|_| SimError::NotUnitary)?;
        let mut cleaned = CMatrix::zeros(4, 4);
        let mut total = 0.0;
        for (lam, vec) in dec.values.iter().zip(&dec.vectors) {
            let l = lam.max(0.0);
            if l == 0.0 {
                continue;
            }
            total += l;
            cleaned = &cleaned + &CMatrix::outer(vec, vec).scaled(C64::real(l));
        }
        debug_assert!(total > 0.0, "all-negative spectrum");
        DensityMatrix::from_matrix(cleaned.scaled(C64::real(1.0 / total)))
    }
}

/// Estimates the Werner visibility of a two-qubit state from its fidelity
/// with `|Φ⁺⟩`: for a Werner state `F = (1 + 3v)/4`, so `v = (4F − 1)/3`.
pub fn werner_visibility(rho: &DensityMatrix) -> Result<f64, SimError> {
    let f = rho.fidelity_with_pure(&crate::bell::phi_plus())?;
    Ok(((4.0 * f - 1.0) / 3.0).clamp(-1.0 / 3.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn settings_are_valid_bases_and_matrices() {
        for s in PauliSetting::ALL {
            assert!(s.matrix().is_hermitian(1e-12));
            assert!(s.matrix().is_unitary(1e-12));
            let _ = s.basis(); // constructor validates orthonormality
        }
    }

    #[test]
    fn tomography_of_ideal_bell_pair() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = collect(SharedPair::ideal, 3_000, &mut rng).unwrap();
        // Φ+ signature: ⟨XX⟩ = +1, ⟨YY⟩ = −1, ⟨ZZ⟩ = +1, cross terms 0.
        assert!((data.correlation(0, 0) - 1.0).abs() < 0.05, "XX");
        assert!((data.correlation(1, 1) + 1.0).abs() < 0.05, "YY");
        assert!((data.correlation(2, 2) - 1.0).abs() < 0.05, "ZZ");
        assert!(data.correlation(0, 2).abs() < 0.06, "XZ");

        let rho = data.reconstruct().unwrap();
        assert!(rho.is_valid(1e-8));
        let f = rho.fidelity_with_pure(&crate::bell::phi_plus()).unwrap();
        assert!(f > 0.97, "reconstructed fidelity {f}");
        let v = werner_visibility(&rho).unwrap();
        assert!(v > 0.95, "estimated visibility {v}");
    }

    #[test]
    fn tomography_recovers_werner_visibility() {
        let mut rng = StdRng::seed_from_u64(2);
        for v_true in [0.9, 0.7, 0.5] {
            let data = collect(
                || SharedPair::werner(v_true).expect("valid visibility"),
                3_000,
                &mut rng,
            )
            .unwrap();
            let rho = data.reconstruct().unwrap();
            let v_est = werner_visibility(&rho).unwrap();
            assert!(
                (v_est - v_true).abs() < 0.05,
                "true {v_true} vs estimated {v_est}"
            );
        }
    }

    #[test]
    fn calibration_detects_useless_hardware() {
        // The operational question: is v above the CHSH threshold?
        let mut rng = StdRng::seed_from_u64(3);
        let good = collect(
            || SharedPair::werner(0.95).expect("valid"),
            2_000,
            &mut rng,
        )
        .unwrap();
        let bad = collect(
            || SharedPair::werner(0.5).expect("valid"),
            2_000,
            &mut rng,
        )
        .unwrap();
        let v_good = werner_visibility(&good.reconstruct().unwrap()).unwrap();
        let v_bad = werner_visibility(&bad.reconstruct().unwrap()).unwrap();
        assert!(v_good > noise::WERNER_CHSH_THRESHOLD);
        assert!(v_bad < noise::WERNER_CHSH_THRESHOLD);
    }

    #[test]
    fn reconstruction_is_physical_even_at_low_shots() {
        // With few shots the linear inversion is noisy and typically
        // non-PSD; the projection must still return a valid state.
        let mut rng = StdRng::seed_from_u64(4);
        let data = collect(SharedPair::ideal, 40, &mut rng).unwrap();
        let rho = data.reconstruct().unwrap();
        assert!(rho.is_valid(1e-8));
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn visibility_formula_roundtrip() {
        for v in [0.0, 0.3, 0.8, 1.0] {
            let rho = noise::werner(v).unwrap();
            let est = werner_visibility(&rho).unwrap();
            assert!((est - v).abs() < 1e-9, "v {v} est {est}");
        }
    }
}
