//! A small quantum-circuit builder.
//!
//! Convenience layer over [`StateVector`]'s gate application: build a
//! reusable op list once, run it against fresh registers many times (the
//! pattern the entanglement source uses — the same preparation circuit per
//! emitted pair).

use crate::error::SimError;
use crate::gates::{self, Gate1, Gate2};
use crate::state::StateVector;

/// One circuit operation.
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// A single-qubit gate.
    Gate1 {
        /// Target qubit.
        qubit: usize,
        /// The 2×2 unitary.
        gate: Gate1,
    },
    /// A singly-controlled single-qubit gate.
    Controlled {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// The 2×2 unitary applied when the control is |1⟩.
        gate: Gate1,
    },
    /// An arbitrary two-qubit gate.
    Gate2 {
        /// First operand.
        a: usize,
        /// Second operand.
        b: usize,
        /// The 4×4 unitary.
        gate: Gate2,
    },
}

/// A fixed sequence of gates on `n` qubits.
#[derive(Debug, Clone)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// An empty circuit on `n` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn check(&self, qubit: usize) -> usize {
        assert!(
            qubit < self.n_qubits,
            "qubit {qubit} out of range for {}-qubit circuit",
            self.n_qubits
        );
        qubit
    }

    /// Appends an arbitrary single-qubit gate.
    pub fn gate1(&mut self, qubit: usize, gate: Gate1) -> &mut Self {
        self.check(qubit);
        self.ops.push(Op::Gate1 { qubit, gate });
        self
    }

    /// Appends a controlled single-qubit gate.
    pub fn controlled(&mut self, control: usize, target: usize, gate: Gate1) -> &mut Self {
        self.check(control);
        self.check(target);
        assert_ne!(control, target, "control and target must differ");
        self.ops.push(Op::Controlled {
            control,
            target,
            gate,
        });
        self
    }

    /// Appends an arbitrary two-qubit gate.
    pub fn gate2(&mut self, a: usize, b: usize, gate: Gate2) -> &mut Self {
        self.check(a);
        self.check(b);
        assert_ne!(a, b, "two-qubit gate operands must differ");
        self.ops.push(Op::Gate2 { a, b, gate });
        self
    }

    /// Hadamard.
    pub fn h(&mut self, qubit: usize) -> &mut Self {
        self.gate1(qubit, gates::h())
    }

    /// Pauli-X.
    pub fn x(&mut self, qubit: usize) -> &mut Self {
        self.gate1(qubit, gates::x())
    }

    /// Pauli-Y.
    pub fn y(&mut self, qubit: usize) -> &mut Self {
        self.gate1(qubit, gates::y())
    }

    /// Pauli-Z.
    pub fn z(&mut self, qubit: usize) -> &mut Self {
        self.gate1(qubit, gates::z())
    }

    /// Phase gate S.
    pub fn s(&mut self, qubit: usize) -> &mut Self {
        self.gate1(qubit, gates::s())
    }

    /// T gate.
    pub fn t(&mut self, qubit: usize) -> &mut Self {
        self.gate1(qubit, gates::t())
    }

    /// Y-rotation.
    pub fn ry(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.gate1(qubit, gates::ry(theta))
    }

    /// Z-rotation.
    pub fn rz(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.gate1(qubit, gates::rz(theta))
    }

    /// X-rotation.
    pub fn rx(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.gate1(qubit, gates::rx(theta))
    }

    /// CNOT.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.controlled(control, target, gates::x())
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.controlled(a, b, gates::z())
    }

    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate2(a, b, gates::swap())
    }

    /// Applies the circuit to an existing state.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] if the register size differs from the
    /// circuit's qubit count.
    pub fn apply_to(&self, state: &mut StateVector) -> Result<(), SimError> {
        if state.n_qubits() != self.n_qubits {
            return Err(SimError::SizeMismatch {
                op: "Circuit::apply_to",
                lhs: self.n_qubits,
                rhs: state.n_qubits(),
            });
        }
        for op in &self.ops {
            match *op {
                Op::Gate1 { qubit, gate } => state.apply_gate1(qubit, &gate)?,
                Op::Controlled {
                    control,
                    target,
                    gate,
                } => state.apply_controlled(control, target, &gate)?,
                Op::Gate2 { a, b, gate } => state.apply_gate2(a, b, &gate)?,
            }
        }
        Ok(())
    }

    /// Runs the circuit from `|0…0⟩`.
    pub fn run(&self) -> StateVector {
        let mut s = StateVector::zero(self.n_qubits);
        self.apply_to(&mut s).expect("matching register size");
        s
    }

    /// The inverse circuit: daggered gates in reverse order.
    pub fn inverse(&self) -> Circuit {
        let ops = self
            .ops
            .iter()
            .rev()
            .map(|op| match *op {
                Op::Gate1 { qubit, gate } => Op::Gate1 {
                    qubit,
                    gate: gates::dagger(&gate),
                },
                Op::Controlled {
                    control,
                    target,
                    gate,
                } => Op::Controlled {
                    control,
                    target,
                    gate: gates::dagger(&gate),
                },
                Op::Gate2 { a, b, gate } => Op::Gate2 {
                    a,
                    b,
                    gate: dagger2(&gate),
                },
            })
            .collect();
        Circuit {
            n_qubits: self.n_qubits,
            ops,
        }
    }

    /// The Bell-pair preparation circuit (H then CNOT).
    pub fn bell_pair() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        c
    }

    /// The GHZ(n) preparation circuit.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn ghz(n: usize) -> Circuit {
        assert!(n >= 1);
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cnot(0, q);
        }
        c
    }
}

/// Conjugate transpose of a two-qubit gate.
fn dagger2(g: &Gate2) -> Gate2 {
    let mut out = [[qmath::C64::ZERO; 4]; 4];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = g[c][r].conj();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell;

    #[test]
    fn bell_circuit_matches_constructor() {
        let s = Circuit::bell_pair().run();
        assert!((s.fidelity(&bell::phi_plus()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_circuit_matches_constructor() {
        for n in [1usize, 2, 3, 5] {
            let s = Circuit::ghz(n).run();
            assert!((s.fidelity(&bell::ghz(n)).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_undoes_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(1)
            .cnot(0, 2)
            .ry(1, 0.7)
            .cz(1, 2)
            .swap(0, 1)
            .rz(2, -1.3)
            .s(0);
        let mut s = c.run();
        c.inverse().apply_to(&mut s).unwrap();
        let zero = StateVector::zero(3);
        assert!((s.fidelity(&zero).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn apply_to_checks_register_size() {
        let c = Circuit::bell_pair();
        let mut s = StateVector::zero(3);
        assert!(matches!(
            c.apply_to(&mut s),
            Err(SimError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn builder_validates_qubits() {
        let result = std::panic::catch_unwind(|| {
            let mut c = Circuit::new(2);
            c.h(2);
        });
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| {
            let mut c = Circuit::new(2);
            c.cnot(1, 1);
        });
        assert!(result.is_err());
    }

    #[test]
    fn len_and_empty() {
        let mut c = Circuit::new(1);
        assert!(c.is_empty());
        c.h(0).x(0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn composite_gates_agree_with_primitive_path() {
        // x then z via circuit equals direct application.
        let mut c = Circuit::new(1);
        c.x(0).z(0).y(0).rx(0, 0.4);
        let s1 = c.run();
        let mut s2 = StateVector::zero(1);
        s2.apply_gate1(0, &gates::x()).unwrap();
        s2.apply_gate1(0, &gates::z()).unwrap();
        s2.apply_gate1(0, &gates::y()).unwrap();
        s2.apply_gate1(0, &gates::rx(0.4)).unwrap();
        assert!((s1.fidelity(&s2).unwrap() - 1.0).abs() < 1e-12);
    }
}
