//! Measurement in arbitrary single-qubit bases.
//!
//! The CHSH strategy of the paper measures each half of a Bell pair in a
//! *rotated real basis* `{cosθ|0⟩ + sinθ|1⟩, −sinθ|0⟩ + cosθ|1⟩}`; this
//! module provides that operation (and the general complex-basis variant)
//! on top of [`StateVector`].

use crate::error::SimError;
use crate::gates;
use crate::state::StateVector;
use qmath::C64;
use rand::Rng;

/// An orthonormal single-qubit measurement basis `{|φ₀⟩, |φ₁⟩}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Basis1 {
    /// First basis vector (outcome 0).
    pub phi0: [C64; 2],
    /// Second basis vector (outcome 1).
    pub phi1: [C64; 2],
}

impl Basis1 {
    /// The computational basis `{|0⟩, |1⟩}`.
    pub fn computational() -> Self {
        Basis1 {
            phi0: [C64::ONE, C64::ZERO],
            phi1: [C64::ZERO, C64::ONE],
        }
    }

    /// The real rotated basis at angle θ:
    /// `|φ₀⟩ = cosθ|0⟩ + sinθ|1⟩`, `|φ₁⟩ = −sinθ|0⟩ + cosθ|1⟩`.
    ///
    /// This is the basis family used by the optimal CHSH strategy (§2 of
    /// the paper: "player x in input i measures in the basis
    /// cos θ|0⟩ + sin θ|1⟩").
    pub fn angle(theta: f64) -> Self {
        let (c, s) = (theta.cos(), theta.sin());
        Basis1 {
            phi0: [C64::real(c), C64::real(s)],
            phi1: [C64::real(-s), C64::real(c)],
        }
    }

    /// Constructs a basis from two vectors, validating orthonormality.
    ///
    /// # Errors
    /// [`SimError::NotUnitary`] if the vectors are not orthonormal within
    /// [`crate::EPS`].
    pub fn new(phi0: [C64; 2], phi1: [C64; 2]) -> Result<Self, SimError> {
        let n0 = phi0[0].norm_sqr() + phi0[1].norm_sqr();
        let n1 = phi1[0].norm_sqr() + phi1[1].norm_sqr();
        let ortho = phi0[0].conj() * phi1[0] + phi0[1].conj() * phi1[1];
        if (n0 - 1.0).abs() > crate::EPS
            || (n1 - 1.0).abs() > crate::EPS
            || ortho.abs() > crate::EPS
        {
            return Err(SimError::NotUnitary);
        }
        Ok(Basis1 { phi0, phi1 })
    }

    /// The unitary whose *rows* are `⟨φ₀|` and `⟨φ₁|` — applying it maps
    /// the basis vectors onto `|0⟩`, `|1⟩`, reducing a measurement in this
    /// basis to a computational-basis measurement.
    pub fn to_computational(&self) -> gates::Gate1 {
        [
            [self.phi0[0].conj(), self.phi0[1].conj()],
            [self.phi1[0].conj(), self.phi1[1].conj()],
        ]
    }
}

/// Measures `qubit` of `state` in an arbitrary orthonormal basis,
/// collapsing the state. Returns 0 for `|φ₀⟩`, 1 for `|φ₁⟩`.
///
/// Implementation: rotate the basis onto the computational one, measure,
/// and rotate back, so the post-measurement state is the projected state in
/// the *original* frame.
///
/// # Errors
/// [`SimError::QubitOutOfRange`] for a bad qubit index.
pub fn measure_in_basis<R: Rng + ?Sized>(
    state: &mut StateVector,
    qubit: usize,
    basis: &Basis1,
    rng: &mut R,
) -> Result<u8, SimError> {
    let u = basis.to_computational();
    state.apply_gate1(qubit, &u)?;
    let outcome = state.measure_qubit(qubit, rng)?;
    state.apply_gate1(qubit, &gates::dagger(&u))?;
    Ok(outcome)
}

/// Measures `qubit` in the real rotated basis at angle θ (the CHSH
/// measurement), collapsing the state.
///
/// # Errors
/// [`SimError::QubitOutOfRange`] for a bad qubit index.
pub fn measure_in_angle_basis<R: Rng + ?Sized>(
    state: &mut StateVector,
    qubit: usize,
    theta: f64,
    rng: &mut R,
) -> Result<u8, SimError> {
    measure_in_basis(state, qubit, &Basis1::angle(theta), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn computational_basis_matches_direct_measurement() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let mut s = StateVector::zero(1);
            s.apply_gate1(0, &gates::h()).unwrap();
            let mut s2 = s.clone();
            // Drive both from the same RNG state independently: compare
            // statistics instead of outcomes.
            let _ = measure_in_basis(&mut s, 0, &Basis1::computational(), &mut rng).unwrap();
            let _ = s2.measure_qubit(0, &mut rng).unwrap();
        }
    }

    #[test]
    fn aligned_basis_gives_deterministic_outcome() {
        // |ψ⟩ = (|0⟩+|1⟩)/√2 measured in the θ=π/4 basis yields 0 always
        // (the state *is* the first basis vector) — the §2 worked example.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let mut s = StateVector::zero(1);
            s.apply_gate1(0, &gates::h()).unwrap();
            let o = measure_in_angle_basis(&mut s, 0, std::f64::consts::FRAC_PI_4, &mut rng)
                .unwrap();
            assert_eq!(o, 0);
        }
    }

    #[test]
    fn orthogonal_basis_gives_opposite_outcome() {
        // Same state measured at θ = π/4 + π/2 always yields 1.
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..50 {
            let mut s = StateVector::zero(1);
            s.apply_gate1(0, &gates::h()).unwrap();
            let theta = std::f64::consts::FRAC_PI_4 + std::f64::consts::FRAC_PI_2;
            let o = measure_in_angle_basis(&mut s, 0, theta, &mut rng).unwrap();
            assert_eq!(o, 1);
        }
    }

    #[test]
    fn tilted_basis_statistics() {
        // |0⟩ measured at angle θ yields 0 with probability cos²θ.
        let mut rng = StdRng::seed_from_u64(21);
        let theta = 0.6f64;
        let trials = 20_000;
        let mut zeros = 0;
        for _ in 0..trials {
            let mut s = StateVector::zero(1);
            if measure_in_angle_basis(&mut s, 0, theta, &mut rng).unwrap() == 0 {
                zeros += 1;
            }
        }
        let f = zeros as f64 / trials as f64;
        assert!((f - theta.cos().powi(2)).abs() < 0.02, "freq {f}");
    }

    #[test]
    fn one_third_two_thirds_example() {
        // The §2 worked example: Bell pair, first qubit measured in the
        // computational basis; second measured in the basis
        // {(1/√3)|0⟩ + (√2/√3)|1⟩, (√2/√3)|0⟩ − (1/√3)|1⟩}.
        // Given first = 0, P(second = 0) = 1/3.
        let mut rng = StdRng::seed_from_u64(33);
        let basis = Basis1::new(
            [
                C64::real(1.0 / 3.0f64.sqrt()),
                C64::real(2.0f64.sqrt() / 3.0f64.sqrt()),
            ],
            [
                C64::real(2.0f64.sqrt() / 3.0f64.sqrt()),
                C64::real(-1.0 / 3.0f64.sqrt()),
            ],
        )
        .unwrap();
        let trials = 30_000;
        let mut first0 = 0u32;
        let mut first0_second0 = 0u32;
        for _ in 0..trials {
            let mut s = crate::bell::phi_plus();
            let a = s.measure_qubit(0, &mut rng).unwrap();
            let b = measure_in_basis(&mut s, 1, &basis, &mut rng).unwrap();
            if a == 0 {
                first0 += 1;
                if b == 0 {
                    first0_second0 += 1;
                }
            }
        }
        let cond = first0_second0 as f64 / first0 as f64;
        assert!((cond - 1.0 / 3.0).abs() < 0.02, "P(b=0|a=0) = {cond}");
    }

    #[test]
    fn basis_validation_rejects_non_orthonormal() {
        let bad = Basis1::new([C64::ONE, C64::ZERO], [C64::ONE, C64::ZERO]);
        assert!(matches!(bad, Err(SimError::NotUnitary)));
        let unnorm = Basis1::new(
            [C64::real(2.0), C64::ZERO],
            [C64::ZERO, C64::ONE],
        );
        assert!(unnorm.is_err());
    }

    #[test]
    fn post_measurement_state_is_projected_in_original_frame() {
        let mut rng = StdRng::seed_from_u64(77);
        let theta = 0.9;
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &gates::h()).unwrap();
        let o = measure_in_angle_basis(&mut s, 0, theta, &mut rng).unwrap();
        // Measuring again in the same basis must repeat the outcome.
        let o2 = measure_in_angle_basis(&mut s, 0, theta, &mut rng).unwrap();
        assert_eq!(o, o2);
    }
}
