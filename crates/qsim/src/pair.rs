//! Locality-enforcing shared entangled states.
//!
//! In the real architecture (paper Fig. 1) each server holds *one photon*
//! of an entangled state and can only measure it in a basis of its own
//! choosing. This module reproduces that interface faithfully: a
//! [`SharedState`] owns the joint state (playing the role of physics), and
//! each party interacts with it exclusively through
//! [`SharedState::measure`] on *its own* qubit index. There is no API for a
//! party's input to influence another party's marginal — the no-signaling
//! property — and each qubit can be measured only once (measurement is
//! destructive, §2).
//!
//! Measurement order does not matter: quantum mechanics guarantees the
//! joint outcome distribution is order-independent, and the simulation
//! inherits this from projective measurement on the joint state (verified
//! by tests below).

use crate::bell;
use crate::density::DensityMatrix;
use crate::error::SimError;
use crate::measure::{measure_in_basis, Basis1};
use crate::state::StateVector;
use rand::Rng;

/// Which endpoint of a [`SharedPair`] is acting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// The first endpoint (qubit 0).
    A,
    /// The second endpoint (qubit 1).
    B,
}

impl Party {
    /// The qubit index this party holds.
    #[inline]
    pub fn qubit(self) -> usize {
        match self {
            Party::A => 0,
            Party::B => 1,
        }
    }

    /// The other party.
    #[inline]
    pub fn other(self) -> Party {
        match self {
            Party::A => Party::B,
            Party::B => Party::A,
        }
    }
}

#[derive(Debug, Clone)]
enum Inner {
    Pure(StateVector),
    Mixed(DensityMatrix),
}

/// An n-party shared entangled state: one qubit per party, each
/// measurable exactly once, in a basis chosen by its holder.
#[derive(Debug, Clone)]
pub struct SharedState {
    inner: Inner,
    measured: Vec<bool>,
}

impl SharedState {
    /// Shares a pure state among `n` parties (one qubit each).
    pub fn from_pure(state: StateVector) -> Self {
        let n = state.n_qubits();
        SharedState {
            inner: Inner::Pure(state),
            measured: vec![false; n],
        }
    }

    /// Shares a mixed state among `n` parties (one qubit each).
    pub fn from_density(rho: DensityMatrix) -> Self {
        let n = rho.n_qubits();
        SharedState {
            inner: Inner::Mixed(rho),
            measured: vec![false; n],
        }
    }

    /// An n-party GHZ state.
    pub fn ghz(n: usize) -> Self {
        SharedState::from_pure(bell::ghz(n))
    }

    /// Number of parties.
    pub fn n_parties(&self) -> usize {
        self.measured.len()
    }

    /// Whether `party`'s qubit has been consumed.
    pub fn is_measured(&self, party: usize) -> bool {
        self.measured.get(party).copied().unwrap_or(true)
    }

    /// Party `party` measures its own qubit in `basis`. Consumes the
    /// qubit; a second call for the same party fails.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] / [`SimError::AlreadyMeasured`].
    pub fn measure<R: Rng + ?Sized>(
        &mut self,
        party: usize,
        basis: &Basis1,
        rng: &mut R,
    ) -> Result<u8, SimError> {
        if party >= self.measured.len() {
            return Err(SimError::QubitOutOfRange {
                qubit: party,
                n_qubits: self.measured.len(),
            });
        }
        if self.measured[party] {
            return Err(SimError::AlreadyMeasured { party: "party" });
        }
        let outcome = match &mut self.inner {
            Inner::Pure(sv) => measure_in_basis(sv, party, basis, rng)?,
            Inner::Mixed(rho) => rho.measure_in_basis(party, basis, rng)?,
        };
        self.measured[party] = true;
        Ok(outcome)
    }

    /// Convenience: measure in the real rotated basis at `theta`.
    ///
    /// # Errors
    /// Same as [`Self::measure`].
    pub fn measure_angle<R: Rng + ?Sized>(
        &mut self,
        party: usize,
        theta: f64,
        rng: &mut R,
    ) -> Result<u8, SimError> {
        self.measure(party, &Basis1::angle(theta), rng)
    }
}

/// A two-party shared entangled state — the Bell pair delivered by the
/// Fig. 1 quantum computer — with the same locality-enforcing interface.
///
/// ```
/// use qsim::{Party, SharedPair};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut pair = SharedPair::ideal();
/// // Same measurement angle ⇒ perfectly correlated outcomes.
/// let a = pair.measure_angle(Party::A, 0.3, &mut rng).unwrap();
/// let b = pair.measure_angle(Party::B, 0.3, &mut rng).unwrap();
/// assert_eq!(a, b);
/// // Measurement is destructive: a second measurement fails.
/// assert!(pair.measure_angle(Party::A, 0.0, &mut rng).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SharedPair {
    state: SharedState,
}

impl SharedPair {
    /// A perfect `|Φ⁺⟩` Bell pair.
    pub fn ideal() -> Self {
        SharedPair {
            state: SharedState::from_pure(bell::phi_plus()),
        }
    }

    /// A noisy Bell pair: Werner state with the given visibility.
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if `visibility ∉ [0, 1]`.
    pub fn werner(visibility: f64) -> Result<Self, SimError> {
        Ok(SharedPair {
            state: SharedState::from_density(crate::noise::werner(visibility)?),
        })
    }

    /// Shares an arbitrary two-qubit pure state.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] if the state is not on exactly 2 qubits.
    pub fn from_pure(state: StateVector) -> Result<Self, SimError> {
        if state.n_qubits() != 2 {
            return Err(SimError::SizeMismatch {
                op: "SharedPair::from_pure",
                lhs: 2,
                rhs: state.n_qubits(),
            });
        }
        Ok(SharedPair {
            state: SharedState::from_pure(state),
        })
    }

    /// Shares an arbitrary two-qubit mixed state.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] if the state is not on exactly 2 qubits.
    pub fn from_density(rho: DensityMatrix) -> Result<Self, SimError> {
        if rho.n_qubits() != 2 {
            return Err(SimError::SizeMismatch {
                op: "SharedPair::from_density",
                lhs: 2,
                rhs: rho.n_qubits(),
            });
        }
        Ok(SharedPair {
            state: SharedState::from_density(rho),
        })
    }

    /// `party` measures its qubit in the angle-θ basis (destructive).
    ///
    /// # Errors
    /// [`SimError::AlreadyMeasured`] on double measurement.
    pub fn measure_angle<R: Rng + ?Sized>(
        &mut self,
        party: Party,
        theta: f64,
        rng: &mut R,
    ) -> Result<u8, SimError> {
        self.state.measure_angle(party.qubit(), theta, rng)
    }

    /// `party` measures its qubit in an arbitrary basis (destructive).
    ///
    /// # Errors
    /// [`SimError::AlreadyMeasured`] on double measurement.
    pub fn measure<R: Rng + ?Sized>(
        &mut self,
        party: Party,
        basis: &Basis1,
        rng: &mut R,
    ) -> Result<u8, SimError> {
        self.state.measure(party.qubit(), basis, rng)
    }

    /// Whether `party` has already consumed its qubit.
    pub fn is_measured(&self, party: Party) -> bool {
        self.state.is_measured(party.qubit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn double_measurement_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pair = SharedPair::ideal();
        pair.measure_angle(Party::A, 0.0, &mut rng).unwrap();
        assert!(pair.is_measured(Party::A));
        assert!(!pair.is_measured(Party::B));
        assert!(matches!(
            pair.measure_angle(Party::A, 0.5, &mut rng),
            Err(SimError::AlreadyMeasured { .. })
        ));
        pair.measure_angle(Party::B, 0.3, &mut rng).unwrap();
        assert!(pair.is_measured(Party::B));
    }

    #[test]
    fn same_basis_perfectly_correlated() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in 0..8 {
            let theta = k as f64 * 0.2;
            for _ in 0..50 {
                let mut pair = SharedPair::ideal();
                let a = pair.measure_angle(Party::A, theta, &mut rng).unwrap();
                let b = pair.measure_angle(Party::B, theta, &mut rng).unwrap();
                assert_eq!(a, b, "theta = {theta}");
            }
        }
    }

    #[test]
    fn measurement_order_does_not_change_statistics() {
        // Empirically verify order independence of the joint distribution
        // at angles (0, π/8): P(agree) = cos²(π/8) either way.
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 30_000;
        let theta_b = std::f64::consts::FRAC_PI_8;
        let mut agree_ab = 0u32;
        let mut agree_ba = 0u32;
        for _ in 0..trials {
            let mut p1 = SharedPair::ideal();
            let a = p1.measure_angle(Party::A, 0.0, &mut rng).unwrap();
            let b = p1.measure_angle(Party::B, theta_b, &mut rng).unwrap();
            agree_ab += u32::from(a == b);

            let mut p2 = SharedPair::ideal();
            let b2 = p2.measure_angle(Party::B, theta_b, &mut rng).unwrap();
            let a2 = p2.measure_angle(Party::A, 0.0, &mut rng).unwrap();
            agree_ba += u32::from(a2 == b2);
        }
        let f_ab = agree_ab as f64 / trials as f64;
        let f_ba = agree_ba as f64 / trials as f64;
        let expect = theta_b.cos().powi(2);
        assert!((f_ab - expect).abs() < 0.02, "A-first: {f_ab}");
        assert!((f_ba - expect).abs() < 0.02, "B-first: {f_ba}");
    }

    #[test]
    fn marginals_are_uniform_regardless_of_peer_basis() {
        // No-signaling smoke test: A's outcome distribution is 50/50 no
        // matter what angle B uses (or whether B measures at all).
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 20_000;
        for &b_theta in &[None, Some(0.0), Some(1.2)] {
            let mut ones = 0u32;
            for _ in 0..trials {
                let mut pair = SharedPair::ideal();
                if let Some(t) = b_theta {
                    pair.measure_angle(Party::B, t, &mut rng).unwrap();
                }
                ones += pair.measure_angle(Party::A, 0.7, &mut rng).unwrap() as u32;
            }
            let f = ones as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.02, "B basis {b_theta:?}: {f}");
        }
    }

    #[test]
    fn werner_pair_reduced_correlation() {
        // Same-basis agreement on a Werner pair is (1+v)/2.
        let mut rng = StdRng::seed_from_u64(5);
        let v = 0.6;
        let trials = 20_000;
        let mut agree = 0u32;
        for _ in 0..trials {
            let mut pair = SharedPair::werner(v).unwrap();
            let a = pair.measure_angle(Party::A, 0.0, &mut rng).unwrap();
            let b = pair.measure_angle(Party::B, 0.0, &mut rng).unwrap();
            agree += u32::from(a == b);
        }
        let f = agree as f64 / trials as f64;
        assert!((f - (1.0 + v) / 2.0).abs() < 0.02, "agree {f}");
    }

    #[test]
    fn shared_state_ghz_parity() {
        // All parties measuring GHZ(3) in the computational basis agree.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let mut st = SharedState::ghz(3);
            let o0 = st.measure(0, &Basis1::computational(), &mut rng).unwrap();
            let o1 = st.measure(1, &Basis1::computational(), &mut rng).unwrap();
            let o2 = st.measure(2, &Basis1::computational(), &mut rng).unwrap();
            assert_eq!(o0, o1);
            assert_eq!(o1, o2);
        }
    }

    #[test]
    fn shared_state_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut st = SharedState::ghz(2);
        assert_eq!(st.n_parties(), 2);
        assert!(st.measure(2, &Basis1::computational(), &mut rng).is_err());
        assert!(st.is_measured(5), "out of range counts as unusable");
    }

    #[test]
    fn from_pure_wrong_size_rejected() {
        assert!(SharedPair::from_pure(StateVector::zero(3)).is_err());
        assert!(SharedPair::from_density(DensityMatrix::maximally_mixed(1)).is_err());
    }

    #[test]
    fn party_helpers() {
        assert_eq!(Party::A.qubit(), 0);
        assert_eq!(Party::B.qubit(), 1);
        assert_eq!(Party::A.other(), Party::B);
        assert_eq!(Party::B.other(), Party::A);
    }
}
