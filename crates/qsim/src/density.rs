//! Mixed states as density matrices.
//!
//! Density matrices are needed in two places in the reproduction:
//!
//! 1. **Noise** (§3 "all quantum technologies operate with an error
//!    margin"): an imperfect Bell pair from an SPDC source is a Werner
//!    state, a mixture — not a pure state.
//! 2. **The ECMP reduction** (§4.2): the paper's impossibility argument is
//!    that a far-away party C measuring first reduces the global state to
//!    *a mixture of pairwise-entangled states between A and B* — a
//!    statement about reduced density matrices that
//!    [`crate::density::DensityMatrix::partial_trace`] lets us verify
//!    numerically.

use crate::error::SimError;
use crate::gates::Gate1;
use crate::measure::Basis1;
use crate::state::StateVector;
use qmath::{eigh_hermitian, CMatrix, C64};
use rand::Rng;

/// A mixed quantum state on `n` qubits: a Hermitian, PSD, unit-trace
/// 2ⁿ×2ⁿ matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    mat: CMatrix,
}

impl DensityMatrix {
    /// The pure-state density matrix `|ψ⟩⟨ψ|`.
    pub fn from_pure(psi: &StateVector) -> Self {
        DensityMatrix {
            n_qubits: psi.n_qubits(),
            mat: CMatrix::outer(psi.amplitudes(), psi.amplitudes()),
        }
    }

    /// The maximally mixed state `I / 2ⁿ`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        DensityMatrix {
            n_qubits,
            mat: CMatrix::identity(dim).scaled(C64::real(1.0 / dim as f64)),
        }
    }

    /// A probabilistic mixture `Σ pᵢ ρᵢ`.
    ///
    /// # Errors
    /// - [`SimError::SizeMismatch`] if components differ in qubit count or
    ///   the list is empty.
    /// - [`SimError::BadProbability`] if weights are negative or don't sum
    ///   to 1 within [`crate::EPS`].
    pub fn mixture(components: &[(f64, DensityMatrix)]) -> Result<Self, SimError> {
        let first = components.first().ok_or(SimError::SizeMismatch {
            op: "mixture",
            lhs: 0,
            rhs: 0,
        })?;
        let n = first.1.n_qubits;
        let mut total = 0.0;
        let dim = 1usize << n;
        let mut mat = CMatrix::zeros(dim, dim);
        for (p, rho) in components {
            if rho.n_qubits != n {
                return Err(SimError::SizeMismatch {
                    op: "mixture",
                    lhs: n,
                    rhs: rho.n_qubits,
                });
            }
            if *p < -crate::EPS {
                return Err(SimError::BadProbability { value: *p });
            }
            total += p;
            mat = &mat + &rho.mat.scaled(C64::real(*p));
        }
        if (total - 1.0).abs() > crate::EPS {
            return Err(SimError::BadProbability { value: total });
        }
        Ok(DensityMatrix { n_qubits: n, mat })
    }

    /// Builds a density matrix from a raw matrix, validating Hermiticity
    /// and unit trace (PSD-ness is checked by [`Self::is_valid`], which is
    /// more expensive).
    ///
    /// # Errors
    /// [`SimError::BadDimension`] / [`SimError::NotNormalized`].
    pub fn from_matrix(mat: CMatrix) -> Result<Self, SimError> {
        let dim = mat.rows();
        if !mat.is_square() || dim == 0 || !dim.is_power_of_two() {
            return Err(SimError::BadDimension { len: dim });
        }
        if !mat.is_hermitian(1e-8) {
            return Err(SimError::NotUnitary);
        }
        let tr = mat.trace();
        if (tr.re - 1.0).abs() > 1e-8 || tr.im.abs() > 1e-8 {
            return Err(SimError::NotNormalized { norm: tr.re });
        }
        Ok(DensityMatrix {
            n_qubits: dim.trailing_zeros() as usize,
            mat,
        })
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Borrow the underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &CMatrix {
        &self.mat
    }

    /// Trace (1 for a valid state).
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// Purity `tr(ρ²)`: 1 for pure states, `1/2ⁿ` for maximally mixed.
    pub fn purity(&self) -> f64 {
        self.mat.matmul(&self.mat).expect("square").trace().re
    }

    /// Full validity check: Hermitian, unit trace, and PSD (via
    /// eigendecomposition).
    pub fn is_valid(&self, tol: f64) -> bool {
        if !self.mat.is_hermitian(tol) || (self.trace() - 1.0).abs() > tol {
            return false;
        }
        match eigh_hermitian(&self.mat) {
            Ok(dec) => dec.values.iter().all(|&l| l >= -tol),
            Err(_) => false,
        }
    }

    /// Embeds a single-qubit gate on `qubit` into the full-register
    /// unitary `I ⊗ … ⊗ U ⊗ … ⊗ I`.
    fn embed_gate1(&self, qubit: usize, g: &Gate1) -> Result<CMatrix, SimError> {
        if qubit >= self.n_qubits {
            return Err(SimError::QubitOutOfRange {
                qubit,
                n_qubits: self.n_qubits,
            });
        }
        let u = CMatrix::from_vec(2, 2, vec![g[0][0], g[0][1], g[1][0], g[1][1]])
            .expect("2x2");
        let left = CMatrix::identity(1 << qubit);
        let right = CMatrix::identity(1 << (self.n_qubits - 1 - qubit));
        Ok(left.kron(&u).kron(&right))
    }

    /// Applies a single-qubit unitary to `qubit`: `ρ → UρU†`.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn apply_gate1(&mut self, qubit: usize, g: &Gate1) -> Result<(), SimError> {
        let u = self.embed_gate1(qubit, g)?;
        self.mat = u
            .matmul(&self.mat)
            .and_then(|m| m.matmul(&u.dagger()))
            .expect("square");
        Ok(())
    }

    /// Applies a full-register unitary: `ρ → UρU†`.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] if `u` is not 2ⁿ×2ⁿ;
    /// [`SimError::NotUnitary`] if `u` is not unitary.
    pub fn apply_unitary(&mut self, u: &CMatrix) -> Result<(), SimError> {
        if u.rows() != self.mat.rows() || !u.is_square() {
            return Err(SimError::SizeMismatch {
                op: "apply_unitary",
                lhs: self.mat.rows(),
                rhs: u.rows(),
            });
        }
        if !u.is_unitary(1e-8) {
            return Err(SimError::NotUnitary);
        }
        self.mat = u
            .matmul(&self.mat)
            .and_then(|m| m.matmul(&u.dagger()))
            .expect("square");
        Ok(())
    }

    /// Partial trace keeping the qubits in `keep` (strictly increasing
    /// order), tracing out the rest.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index or unsorted `keep`.
    pub fn partial_trace(&self, keep: &[usize]) -> Result<DensityMatrix, SimError> {
        for w in keep.windows(2) {
            if w[0] >= w[1] {
                return Err(SimError::QubitOutOfRange {
                    qubit: w[1],
                    n_qubits: self.n_qubits,
                });
            }
        }
        if let Some(&max) = keep.last() {
            if max >= self.n_qubits {
                return Err(SimError::QubitOutOfRange {
                    qubit: max,
                    n_qubits: self.n_qubits,
                });
            }
        }
        let n = self.n_qubits;
        let traced: Vec<usize> = (0..n).filter(|q| !keep.contains(q)).collect();
        let kd = 1usize << keep.len();
        let td = 1usize << traced.len();

        // Maps (keep-subindex, traced-subindex) to a full basis index,
        // honoring the "qubit 0 is the most significant bit" convention.
        let full_index = |ki: usize, ti: usize| -> usize {
            let mut idx = 0usize;
            for (pos, &q) in keep.iter().enumerate() {
                let bit = (ki >> (keep.len() - 1 - pos)) & 1;
                idx |= bit << (n - 1 - q);
            }
            for (pos, &q) in traced.iter().enumerate() {
                let bit = (ti >> (traced.len() - 1 - pos)) & 1;
                idx |= bit << (n - 1 - q);
            }
            idx
        };

        let mut out = CMatrix::zeros(kd, kd);
        for i in 0..kd {
            for j in 0..kd {
                let mut acc = C64::ZERO;
                for t in 0..td {
                    acc += self.mat[(full_index(i, t), full_index(j, t))];
                }
                out[(i, j)] = acc;
            }
        }
        Ok(DensityMatrix {
            n_qubits: keep.len(),
            mat: out,
        })
    }

    /// Probability that measuring `qubit` in `basis` yields outcome 1.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn prob_one_in_basis(&self, qubit: usize, basis: &Basis1) -> Result<f64, SimError> {
        // P(1) = tr(Π₁ ρ) with Π₁ = |φ₁⟩⟨φ₁| embedded on `qubit`.
        let phi1 = basis.phi1;
        let proj: Gate1 = [
            [phi1[0] * phi1[0].conj(), phi1[0] * phi1[1].conj()],
            [phi1[1] * phi1[0].conj(), phi1[1] * phi1[1].conj()],
        ];
        let p = self.embed_gate1(qubit, &proj)?;
        Ok(p.matmul(&self.mat).expect("square").trace().re)
    }

    /// Measures `qubit` in `basis`, collapsing the state (Lüders rule).
    /// Returns the observed bit.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn measure_in_basis<R: Rng + ?Sized>(
        &mut self,
        qubit: usize,
        basis: &Basis1,
        rng: &mut R,
    ) -> Result<u8, SimError> {
        let p1 = self.prob_one_in_basis(qubit, basis)?;
        let outcome = u8::from(rng.gen::<f64>() < p1);
        let phi = if outcome == 1 { basis.phi1 } else { basis.phi0 };
        let proj: Gate1 = [
            [phi[0] * phi[0].conj(), phi[0] * phi[1].conj()],
            [phi[1] * phi[0].conj(), phi[1] * phi[1].conj()],
        ];
        let p = self.embed_gate1(qubit, &proj)?;
        let projected = p
            .matmul(&self.mat)
            .and_then(|m| m.matmul(&p))
            .expect("square");
        let norm = projected.trace().re;
        debug_assert!(norm > 1e-150, "measured a zero-probability outcome");
        self.mat = projected.scaled(C64::real(1.0 / norm));
        Ok(outcome)
    }

    /// Tensor product `self ⊗ other` (self's qubits come first).
    pub fn tensor(&self, other: &DensityMatrix) -> DensityMatrix {
        DensityMatrix {
            n_qubits: self.n_qubits + other.n_qubits,
            mat: self.mat.kron(&other.mat),
        }
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` with a pure state.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] if qubit counts differ.
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> Result<f64, SimError> {
        if psi.n_qubits() != self.n_qubits {
            return Err(SimError::SizeMismatch {
                op: "fidelity_with_pure",
                lhs: self.n_qubits,
                rhs: psi.n_qubits(),
            });
        }
        let v = self.mat.matvec(psi.amplitudes()).expect("dim checked");
        let f: C64 = psi
            .amplitudes()
            .iter()
            .zip(&v)
            .map(|(a, b)| a.conj() * *b)
            .sum();
        Ok(f.re)
    }

    /// Expectation `tr(Oρ)` of a full-register Hermitian observable.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] on dimension mismatch.
    pub fn expectation(&self, o: &CMatrix) -> Result<f64, SimError> {
        if o.rows() != self.mat.rows() {
            return Err(SimError::SizeMismatch {
                op: "expectation",
                lhs: self.mat.rows(),
                rhs: o.rows(),
            });
        }
        Ok(o.matmul(&self.mat).expect("square").trace().re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bell, gates};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pure_state_properties() {
        let rho = DensityMatrix::from_pure(&bell::phi_plus());
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(rho.is_valid(1e-9));
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
        assert!(rho.is_valid(1e-9));
    }

    #[test]
    fn mixture_validation() {
        let a = DensityMatrix::from_pure(&StateVector::zero(1));
        let b = DensityMatrix::from_pure(&StateVector::basis(1, 1).unwrap());
        let m = DensityMatrix::mixture(&[(0.5, a.clone()), (0.5, b.clone())]).unwrap();
        assert!((m.purity() - 0.5).abs() < 1e-12);
        assert!(DensityMatrix::mixture(&[(0.7, a.clone()), (0.7, b.clone())]).is_err());
        assert!(DensityMatrix::mixture(&[]).is_err());
        let c2 = DensityMatrix::maximally_mixed(2);
        assert!(DensityMatrix::mixture(&[(0.5, a), (0.5, c2)]).is_err());
    }

    #[test]
    fn partial_trace_of_bell_is_maximally_mixed() {
        // The defining property of maximal entanglement.
        let rho = DensityMatrix::from_pure(&bell::phi_plus());
        for keep in [[0usize], [1usize]] {
            let r = rho.partial_trace(&keep).unwrap();
            assert_eq!(r.n_qubits(), 1);
            let mm = DensityMatrix::maximally_mixed(1);
            assert!(r.matrix().max_abs_diff(mm.matrix()) < 1e-12);
        }
    }

    #[test]
    fn partial_trace_of_product_state() {
        // |+⟩ ⊗ |1⟩: tracing out qubit 1 leaves |+⟩⟨+| exactly (pure).
        let mut plus = StateVector::zero(1);
        plus.apply_gate1(0, &gates::h()).unwrap();
        let one = StateVector::basis(1, 1).unwrap();
        let prod = plus.tensor(&one);
        let rho = DensityMatrix::from_pure(&prod);
        let r0 = rho.partial_trace(&[0]).unwrap();
        assert!((r0.purity() - 1.0).abs() < 1e-12);
        assert!((r0.fidelity_with_pure(&plus).unwrap() - 1.0).abs() < 1e-12);
        let r1 = rho.partial_trace(&[1]).unwrap();
        assert!((r1.fidelity_with_pure(&one).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_ghz_keep_two() {
        // Tracing one qubit of GHZ(3) leaves the *classically* correlated
        // mixture (|00⟩⟨00| + |11⟩⟨11|)/2 — exactly the paper's §4.2 point
        // that C's qubit reduces A,B to a mixture.
        let rho = DensityMatrix::from_pure(&bell::ghz(3));
        let r = rho.partial_trace(&[0, 1]).unwrap();
        assert_eq!(r.n_qubits(), 2);
        assert!((r.matrix()[(0, 0)].re - 0.5).abs() < 1e-12);
        assert!((r.matrix()[(3, 3)].re - 0.5).abs() < 1e-12);
        // No coherence between |00⟩ and |11⟩ — it is NOT a Bell state.
        assert!(r.matrix()[(0, 3)].abs() < 1e-12);
        assert!((r.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_validates_input() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!(rho.partial_trace(&[2]).is_err());
        assert!(rho.partial_trace(&[1, 0]).is_err());
        assert!(rho.partial_trace(&[0, 0]).is_err());
    }

    #[test]
    fn gate_application_matches_statevector() {
        let mut sv = StateVector::zero(2);
        let mut rho = DensityMatrix::from_pure(&sv);
        sv.apply_gate1(0, &gates::h()).unwrap();
        sv.apply_gate1(1, &gates::t()).unwrap();
        rho.apply_gate1(0, &gates::h()).unwrap();
        rho.apply_gate1(1, &gates::t()).unwrap();
        let expect = DensityMatrix::from_pure(&sv);
        assert!(rho.matrix().max_abs_diff(expect.matrix()) < 1e-12);
    }

    #[test]
    fn apply_unitary_rejects_bad_input() {
        let mut rho = DensityMatrix::maximally_mixed(1);
        assert!(rho.apply_unitary(&CMatrix::identity(4)).is_err());
        let not_unitary = CMatrix::from_vec(
            2,
            2,
            vec![C64::ONE, C64::ONE, C64::ZERO, C64::ONE],
        )
        .unwrap();
        assert!(matches!(
            rho.apply_unitary(&not_unitary),
            Err(SimError::NotUnitary)
        ));
    }

    #[test]
    fn measurement_statistics_on_mixed_state() {
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 20_000;
        let mut ones = 0u32;
        for _ in 0..trials {
            let mut rho = DensityMatrix::maximally_mixed(1);
            ones += rho
                .measure_in_basis(0, &Basis1::computational(), &mut rng)
                .unwrap() as u32;
        }
        let f = ones as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.02);
    }

    #[test]
    fn measurement_collapse_repeatable() {
        let mut rng = StdRng::seed_from_u64(8);
        let basis = Basis1::angle(0.4);
        for _ in 0..20 {
            let mut rho = DensityMatrix::from_pure(&bell::phi_plus());
            let o1 = rho.measure_in_basis(0, &basis, &mut rng).unwrap();
            let o2 = rho.measure_in_basis(0, &basis, &mut rng).unwrap();
            assert_eq!(o1, o2);
            assert!(rho.is_valid(1e-8));
        }
    }

    #[test]
    fn bell_correlations_via_density_matrix() {
        // Same-basis measurements on Φ+ agree.
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let mut rho = DensityMatrix::from_pure(&bell::phi_plus());
            let a = rho
                .measure_in_basis(0, &Basis1::computational(), &mut rng)
                .unwrap();
            let b = rho
                .measure_in_basis(1, &Basis1::computational(), &mut rng)
                .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fidelity_with_pure_detects_mismatch() {
        let rho = DensityMatrix::from_pure(&bell::phi_plus());
        assert!((rho.fidelity_with_pure(&bell::phi_plus()).unwrap() - 1.0).abs() < 1e-12);
        assert!(rho.fidelity_with_pure(&bell::phi_minus()).unwrap().abs() < 1e-12);
        assert!(rho.fidelity_with_pure(&StateVector::zero(1)).is_err());
    }

    #[test]
    fn from_matrix_validation() {
        assert!(DensityMatrix::from_matrix(CMatrix::identity(2)).is_err()); // trace 2
        let half = CMatrix::identity(2).scaled(C64::real(0.5));
        assert!(DensityMatrix::from_matrix(half).is_ok());
        let mut nonherm = CMatrix::identity(2).scaled(C64::real(0.5));
        nonherm[(0, 1)] = C64::I;
        assert!(DensityMatrix::from_matrix(nonherm).is_err());
        assert!(DensityMatrix::from_matrix(CMatrix::identity(3)).is_err()); // not 2^n
    }
}
