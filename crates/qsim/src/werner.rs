//! Closed-form measurement kernel for (dephased) Werner pairs.
//!
//! The entanglement data plane only ever handles one state family: a
//! visibility-`v` Werner pair whose halves may have sat in a QNIC memory
//! and picked up storage dephasing. Measuring both halves in the paper's
//! real rotated bases (`Basis1::angle`) therefore has an *exact* joint
//! distribution, and sampling it needs one RNG draw — no `DensityMatrix`
//! allocation, no basis-rotation matmuls (the same observation behind
//! PR 1's `CorrelationBox`, and standard practice in large-scale network
//! simulators that dispatch to reduced formalism backends).
//!
//! ## The closed form
//!
//! Storage dephasing with Kraus probability `p` scales the `|00⟩⟨11|`
//! coherence by `d = 1 − 2p` (the *retention*; `KrausChannel::storage_decay`
//! chooses `p` so that `d = exp(−held/lifetime)`). For a Werner-`v` pair
//! dephased to retentions `da`, `db` and measured at angles `(θa, θb)`,
//! the ±1-outcome correlation is
//!
//! ```text
//! E = v·(cos 2θa · cos 2θb  +  da·db · sin 2θa · sin 2θb)
//! ```
//!
//! (`Tr[ρ Z⊗Z] = v`, `Tr[ρ X⊗X] = v·da·db`, cross terms vanish), the
//! marginals are exactly uniform, and the joint cell probabilities are
//!
//! ```text
//! P(0,0) = P(1,1) = (1 + E)/4      P(0,1) = P(1,0) = (1 − E)/4
//! ```
//!
//! At `da = db = 1` this reduces to `E = v·cos 2(θa−θb)`, i.e.
//! `P(agree) = (1−v)/2 + v·cos²(θa−θb)` — the textbook Werner form.
//!
//! The gate-evolution path ([`crate::SharedPair`]) is kept as the oracle:
//! [`WernerPair::oracle_density`] builds the exact same state for the
//! equivalence tests, and setting `QNLG_EXACT_QSIM=1` (see [`exact_qsim`])
//! routes the distributor's consumers back through it at runtime.

use crate::error::SimError;
use crate::noise::{self, KrausChannel};
use crate::DensityMatrix;
use rand::Rng;
use std::sync::OnceLock;

/// A Werner pair reduced to the three numbers its measurement statistics
/// depend on: source visibility and the per-half dephasing retentions.
/// `Copy`, allocation-free, and exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WernerPair {
    visibility: f64,
    retain_a: f64,
    retain_b: f64,
}

impl WernerPair {
    /// A fresh (undecohered) Werner pair of the given visibility.
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if `visibility ∉ [0, 1]`.
    pub fn new(visibility: f64) -> Result<Self, SimError> {
        Self::with_dephasing(visibility, 1.0, 1.0)
    }

    /// A Werner pair whose halves have been dephased down to coherence
    /// retentions `retain_a`, `retain_b` (`exp(−held/lifetime)` for QNIC
    /// storage decay).
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if any argument is outside `[0, 1]`.
    pub fn with_dephasing(visibility: f64, retain_a: f64, retain_b: f64) -> Result<Self, SimError> {
        for value in [visibility, retain_a, retain_b] {
            if !(0.0..=1.0).contains(&value) {
                return Err(SimError::BadProbability { value });
            }
        }
        Ok(WernerPair {
            visibility,
            retain_a,
            retain_b,
        })
    }

    /// A perfect `|Φ⁺⟩` pair (`v = 1`, no dephasing).
    pub fn ideal() -> Self {
        WernerPair {
            visibility: 1.0,
            retain_a: 1.0,
            retain_b: 1.0,
        }
    }

    /// Source visibility `v`.
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Coherence retentions `(da, db)` of the two halves.
    pub fn retentions(&self) -> (f64, f64) {
        (self.retain_a, self.retain_b)
    }

    /// The ±1-outcome correlation `E(θa, θb)` (see module docs).
    pub fn correlation(&self, theta_a: f64, theta_b: f64) -> f64 {
        let (s2a, c2a) = (2.0 * theta_a).sin_cos();
        let (s2b, c2b) = (2.0 * theta_b).sin_cos();
        self.visibility * (c2a * c2b + self.retain_a * self.retain_b * s2a * s2b)
    }

    /// Exact joint cell probabilities in outcome order
    /// `(0,0), (0,1), (1,0), (1,1)`.
    pub fn joint_probs(&self, theta_a: f64, theta_b: f64) -> [f64; 4] {
        let e = self.correlation(theta_a, theta_b);
        let agree = 0.25 * (1.0 + e);
        let differ = 0.25 * (1.0 - e);
        [agree, differ, differ, agree]
    }

    /// Samples the joint outcome of measuring both halves at `(θa, θb)`
    /// with a single RNG draw, walking the exact 4-entry CDF
    /// `(1+E)/4, 1/2, (3−E)/4, 1` (the middle boundary is exactly 1/2
    /// because the marginals are uniform).
    pub fn sample<R: Rng + ?Sized>(&self, theta_a: f64, theta_b: f64, rng: &mut R) -> (u8, u8) {
        let e = self.correlation(theta_a, theta_b);
        let agree = 0.25 * (1.0 + e);
        let u: f64 = rng.gen();
        if u < agree {
            (0, 0)
        } else if u < 0.5 {
            (0, 1)
        } else if u < 0.5 + 0.25 * (1.0 - e) {
            (1, 0)
        } else {
            (1, 1)
        }
    }

    /// Builds the *oracle* state this kernel claims to sample: the
    /// Werner-`v` density matrix pushed through per-half dephasing
    /// channels with `p = (1 − d)/2`. Used by the equivalence tests and
    /// by the `QNLG_EXACT_QSIM=1` escape hatch.
    ///
    /// # Errors
    /// Propagates channel-construction errors (cannot occur for a
    /// validated `WernerPair`).
    pub fn oracle_density(&self) -> Result<DensityMatrix, SimError> {
        let mut rho = noise::werner(self.visibility)?;
        for (qubit, retain) in [(0, self.retain_a), (1, self.retain_b)] {
            if retain < 1.0 {
                let channel = KrausChannel::dephasing((1.0 - retain) / 2.0)?;
                rho = channel.apply(&rho, qubit)?;
            }
        }
        Ok(rho)
    }
}

/// Whether `QNLG_EXACT_QSIM=1` is set: routes Werner-pair consumers back
/// through the [`crate::SharedPair`] gate-evolution oracle instead of the
/// closed-form kernel. Read once and cached (same idiom as the XOR value
/// cache's `QNLG_XOR_CACHE` gate).
pub fn exact_qsim() -> bool {
    static EXACT: OnceLock<bool> = OnceLock::new();
    *EXACT.get_or_init(|| matches!(std::env::var("QNLG_EXACT_QSIM").as_deref(), Ok("1")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::C64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::{FRAC_PI_4, FRAC_PI_8, PI};

    /// ⟨φi φj| ρ |φi φj⟩ for real rotated bases — the oracle's cell
    /// probability, computed directly from the density matrix.
    fn oracle_cell(rho: &DensityMatrix, theta_a: f64, theta_b: f64, i: u8, j: u8) -> f64 {
        let basis = |theta: f64, out: u8| -> [f64; 2] {
            let (s, c) = theta.sin_cos();
            if out == 0 {
                [c, s]
            } else {
                [-s, c]
            }
        };
        let a = basis(theta_a, i);
        let b = basis(theta_b, j);
        // |φ⟩ = a ⊗ b, all-real.
        let v = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]];
        let m = rho.matrix();
        let mut p = C64::ZERO;
        for (r, &vr) in v.iter().enumerate() {
            for (c, &vc) in v.iter().enumerate() {
                p += m.row(r)[c] * (vr * vc);
            }
        }
        p.re
    }

    #[test]
    fn probabilities_are_normalized_with_uniform_marginals() {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for _ in 0..200 {
            let pair = WernerPair::with_dephasing(
                rng.gen::<f64>(),
                rng.gen::<f64>(),
                rng.gen::<f64>(),
            )
            .unwrap();
            let (ta, tb) = (rng.gen::<f64>() * PI, rng.gen::<f64>() * PI);
            let p = pair.joint_probs(ta, tb);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!((p[0] + p[1] - 0.5).abs() < 1e-12, "Alice marginal");
            assert!((p[0] + p[2] - 0.5).abs() < 1e-12, "Bob marginal");
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn chsh_angle_cells_match_cos2_pi_8_to_1e12() {
        // Ideal pair at the optimal CHSH angles: P(agree) = cos²(π/8),
        // split evenly over (0,0) and (1,1).
        let pair = WernerPair::ideal();
        let expected = FRAC_PI_8.cos().powi(2) / 2.0;
        // (a0, b0) = (0, π/8) and (a1, b0) = (π/4, π/8) both have
        // |θa − θb| = π/8.
        for (ta, tb) in [(0.0, FRAC_PI_8), (FRAC_PI_4, FRAC_PI_8)] {
            let p = pair.joint_probs(ta, tb);
            assert!((p[0] - expected).abs() < 1e-12, "P(0,0) = {}", p[0]);
            assert!((p[3] - expected).abs() < 1e-12, "P(1,1) = {}", p[3]);
        }
        // The anti-aligned CHSH cell: (a1, b1) = (π/4, −π/8), Δ = 3π/8,
        // P(agree) = cos²(3π/8) = sin²(π/8).
        let p = pair.joint_probs(FRAC_PI_4, -FRAC_PI_8);
        let expected_anti = FRAC_PI_8.sin().powi(2) / 2.0;
        assert!((p[0] - expected_anti).abs() < 1e-12);
        assert!((p[3] - expected_anti).abs() < 1e-12);
    }

    #[test]
    fn kernel_probabilities_match_oracle_density_exactly() {
        // The closed form and the Kraus-evolved density matrix must agree
        // cell-by-cell to numerical precision, across visibilities,
        // retentions, and angles.
        let mut rng = StdRng::seed_from_u64(0x04AC1E);
        for case in 0..40 {
            let pair = WernerPair::with_dephasing(
                rng.gen::<f64>(),
                rng.gen::<f64>(),
                rng.gen::<f64>(),
            )
            .unwrap();
            let (ta, tb) = (rng.gen::<f64>() * PI, rng.gen::<f64>() * PI);
            let kernel = pair.joint_probs(ta, tb);
            let rho = pair.oracle_density().unwrap();
            for (cell, &kp) in kernel.iter().enumerate() {
                let (i, j) = ((cell as u8) >> 1, (cell as u8) & 1);
                let op = oracle_cell(&rho, ta, tb, i, j);
                assert!(
                    (kp - op).abs() < 1e-12,
                    "case {case} cell ({i},{j}): kernel {kp} vs oracle {op}"
                );
            }
        }
    }

    #[test]
    fn sampling_matches_joint_probs() {
        let pair = WernerPair::with_dephasing(0.9, 0.8, 0.95).unwrap();
        let (ta, tb) = (0.3, 1.1);
        let probs = pair.joint_probs(ta, tb);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 4];
        let n = 50_000u64;
        for _ in 0..n {
            let (a, b) = pair.sample(ta, tb, &mut rng);
            counts[((a << 1) | b) as usize] += 1;
        }
        for cell in 0..4 {
            qmath::assert_prob_in!(counts[cell], n, probs[cell], conf = 0.999);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(WernerPair::new(1.5).is_err());
        assert!(WernerPair::new(-0.1).is_err());
        assert!(WernerPair::with_dephasing(0.5, 1.1, 1.0).is_err());
        assert!(WernerPair::with_dephasing(0.5, 1.0, -0.2).is_err());
    }
}
