//! Error type for simulator operations.

use std::fmt;

/// Errors produced by quantum-simulator operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A qubit index was out of range for the register.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// Number of qubits in the register.
        n_qubits: usize,
    },
    /// Two qubit operands must be distinct but were equal.
    DuplicateQubit {
        /// The repeated index.
        qubit: usize,
    },
    /// The state amplitudes are not normalized (or trace ≠ 1 for density
    /// matrices).
    NotNormalized {
        /// The measured norm (or trace).
        norm: f64,
    },
    /// The amplitude vector length is not a power of two.
    BadDimension {
        /// The offending length.
        len: usize,
    },
    /// The supplied matrix is not unitary within tolerance.
    NotUnitary,
    /// The supplied Kraus set is not trace preserving (Σ Kᵢ†Kᵢ ≠ I).
    NotTracePreserving {
        /// Deviation of Σ Kᵢ†Kᵢ from the identity.
        deviation: f64,
    },
    /// The qubit has already been consumed by a destructive measurement.
    AlreadyMeasured {
        /// Which party's qubit was measured twice.
        party: &'static str,
    },
    /// A probability parameter was outside `[0, 1]`.
    BadProbability {
        /// The offending value.
        value: f64,
    },
    /// Two registers had incompatible sizes for the requested operation.
    SizeMismatch {
        /// Description of the operation.
        op: &'static str,
        /// Left size.
        lhs: usize,
        /// Right size.
        rhs: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit register")
            }
            SimError::DuplicateQubit { qubit } => {
                write!(f, "operands must be distinct qubits, both were {qubit}")
            }
            SimError::NotNormalized { norm } => {
                write!(f, "state is not normalized: norm/trace = {norm}")
            }
            SimError::BadDimension { len } => {
                write!(f, "amplitude vector length {len} is not a power of two")
            }
            SimError::NotUnitary => write!(f, "matrix is not unitary"),
            SimError::NotTracePreserving { deviation } => {
                write!(f, "Kraus set is not trace preserving (deviation {deviation})")
            }
            SimError::AlreadyMeasured { party } => {
                write!(f, "{party}'s qubit was already measured (measurement is destructive)")
            }
            SimError::BadProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            SimError::SizeMismatch { op, lhs, rhs } => {
                write!(f, "size mismatch in {op}: {lhs} vs {rhs}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_fields() {
        let e = SimError::QubitOutOfRange { qubit: 5, n_qubits: 3 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        let e = SimError::AlreadyMeasured { party: "Alice" };
        assert!(e.to_string().contains("Alice"));
    }
}
