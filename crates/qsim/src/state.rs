//! Pure quantum states as dense statevectors.

use crate::error::SimError;
use crate::gates::{Gate1, Gate2};
use qmath::C64;
use rand::Rng;
use std::fmt;

/// A pure quantum state on `n` qubits, stored as 2ⁿ complex amplitudes.
///
/// Qubit 0 is the leftmost ket label (see crate docs). States are kept
/// normalized; measurement collapses the state in place.
///
/// ```
/// use qsim::{gates, StateVector};
///
/// // Build a Bell pair: H on qubit 0, then CNOT(0 → 1).
/// let mut s = StateVector::zero(2);
/// s.apply_gate1(0, &gates::h()).unwrap();
/// s.apply_controlled(0, 1, &gates::x()).unwrap();
/// assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros state `|00…0⟩` on `n` qubits.
    ///
    /// # Panics
    /// Panics if `n > 24` (the statevector would exceed memory budgets;
    /// this library targets few-qubit non-local games).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits <= 24, "statevector too large: {n_qubits} qubits");
        let mut amps = vec![C64::ZERO; 1usize << n_qubits];
        amps[0] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// The computational basis state `|index⟩` on `n` qubits.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] if `index >= 2ⁿ`.
    pub fn basis(n_qubits: usize, index: usize) -> Result<Self, SimError> {
        let dim = 1usize << n_qubits;
        if index >= dim {
            return Err(SimError::QubitOutOfRange {
                qubit: index,
                n_qubits,
            });
        }
        let mut s = StateVector::zero(n_qubits);
        s.amps[0] = C64::ZERO;
        s.amps[index] = C64::ONE;
        Ok(s)
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Errors
    /// - [`SimError::BadDimension`] if the length is not a power of two.
    /// - [`SimError::NotNormalized`] if `Σ|aᵢ|²` deviates from 1 by more
    ///   than [`crate::EPS`].
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<Self, SimError> {
        let len = amps.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(SimError::BadDimension { len });
        }
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if (norm - 1.0).abs() > crate::EPS {
            return Err(SimError::NotNormalized { norm });
        }
        Ok(StateVector {
            n_qubits: len.trailing_zeros() as usize,
            amps,
        })
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Dimension of the underlying Hilbert space (2ⁿ).
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Borrow the amplitude vector.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Amplitude of basis state `index`.
    #[inline]
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// Probability of observing basis state `index` under a full
    /// computational-basis measurement.
    #[inline]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Sum of `|aᵢ|²` (should be 1 for a valid state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes in place (used internally after collapse).
    fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        debug_assert!(n > 1e-150, "renormalizing a numerically-zero state");
        for a in self.amps.iter_mut() {
            *a = *a / n;
        }
    }

    /// Hermitian inner product `⟨self|other⟩`.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] if qubit counts differ.
    pub fn inner(&self, other: &StateVector) -> Result<C64, SimError> {
        if self.n_qubits != other.n_qubits {
            return Err(SimError::SizeMismatch {
                op: "inner",
                lhs: self.n_qubits,
                rhs: other.n_qubits,
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Fidelity `|⟨self|other⟩|²` with another pure state.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] if qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64, SimError> {
        Ok(self.inner(other)?.norm_sqr())
    }

    /// Tensor product `self ⊗ other` (self's qubits come first).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let mut amps = Vec::with_capacity(self.dim() * other.dim());
        for a in &self.amps {
            for b in &other.amps {
                amps.push(*a * *b);
            }
        }
        StateVector {
            n_qubits: self.n_qubits + other.n_qubits,
            amps,
        }
    }

    /// Bit mask stride for `qubit` under the crate's ordering convention.
    #[inline]
    fn stride(&self, qubit: usize) -> usize {
        1usize << (self.n_qubits - 1 - qubit)
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), SimError> {
        if qubit >= self.n_qubits {
            return Err(SimError::QubitOutOfRange {
                qubit,
                n_qubits: self.n_qubits,
            });
        }
        Ok(())
    }

    /// Applies a single-qubit gate to `qubit`.
    ///
    /// Structured gates take fast paths: diagonal gates (Z, S, T, Rz,
    /// phase) scale the two amplitude lanes in place, and anti-diagonal
    /// gates (X, Y) swap-and-scale them — both skip the dense 2×2
    /// multiply, halving the complex arithmetic in circuit-simulation
    /// inner loops (see the `statevector` bench). The standard gate
    /// constructors produce exact `C64::ZERO` off/on-diagonal entries, so
    /// the structure test is an exact compare, never an epsilon.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn apply_gate1(&mut self, qubit: usize, g: &Gate1) -> Result<(), SimError> {
        self.check_qubit(qubit)?;
        let stride = self.stride(qubit);
        let dim = self.dim();
        let is_zero = |z: C64| z.re == 0.0 && z.im == 0.0;
        if is_zero(g[0][1]) && is_zero(g[1][0]) {
            // Diagonal: |0⟩-lane scales by g00, |1⟩-lane by g11.
            let (g00, g11) = (g[0][0], g[1][1]);
            let mut base = 0;
            while base < dim {
                for off in 0..stride {
                    let i0 = base + off;
                    let i1 = i0 + stride;
                    self.amps[i0] = g00 * self.amps[i0];
                    self.amps[i1] = g11 * self.amps[i1];
                }
                base += stride * 2;
            }
            return Ok(());
        }
        if is_zero(g[0][0]) && is_zero(g[1][1]) {
            // Anti-diagonal: lanes swap, scaled by g01 / g10.
            let (g01, g10) = (g[0][1], g[1][0]);
            let mut base = 0;
            while base < dim {
                for off in 0..stride {
                    let i0 = base + off;
                    let i1 = i0 + stride;
                    let a0 = self.amps[i0];
                    self.amps[i0] = g01 * self.amps[i1];
                    self.amps[i1] = g10 * a0;
                }
                base += stride * 2;
            }
            return Ok(());
        }
        let mut base = 0;
        while base < dim {
            for off in 0..stride {
                let i0 = base + off;
                let i1 = i0 + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = g[0][0] * a0 + g[0][1] * a1;
                self.amps[i1] = g[1][0] * a0 + g[1][1] * a1;
            }
            base += stride * 2;
        }
        Ok(())
    }

    /// Applies a single-qubit gate to `target`, controlled on `control`
    /// being `|1⟩`.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubit`].
    pub fn apply_controlled(
        &mut self,
        control: usize,
        target: usize,
        g: &Gate1,
    ) -> Result<(), SimError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(SimError::DuplicateQubit { qubit: control });
        }
        let cs = self.stride(control);
        let ts = self.stride(target);
        let dim = self.dim();
        for i0 in 0..dim {
            // Visit each (control=1, target=0) index exactly once.
            if i0 & cs == 0 || i0 & ts != 0 {
                continue;
            }
            let i1 = i0 | ts;
            let a0 = self.amps[i0];
            let a1 = self.amps[i1];
            self.amps[i0] = g[0][0] * a0 + g[0][1] * a1;
            self.amps[i1] = g[1][0] * a0 + g[1][1] * a1;
        }
        Ok(())
    }

    /// Applies an arbitrary two-qubit gate (4×4, basis order `|q_a q_b⟩` ∈
    /// {00, 01, 10, 11}) to the ordered pair `(qubit_a, qubit_b)`.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubit`].
    pub fn apply_gate2(
        &mut self,
        qubit_a: usize,
        qubit_b: usize,
        g: &Gate2,
    ) -> Result<(), SimError> {
        self.check_qubit(qubit_a)?;
        self.check_qubit(qubit_b)?;
        if qubit_a == qubit_b {
            return Err(SimError::DuplicateQubit { qubit: qubit_a });
        }
        let sa = self.stride(qubit_a);
        let sb = self.stride(qubit_b);
        let dim = self.dim();
        for base in 0..dim {
            if base & sa != 0 || base & sb != 0 {
                continue;
            }
            let idx = [base, base | sb, base | sa, base | sa | sb];
            let old = [
                self.amps[idx[0]],
                self.amps[idx[1]],
                self.amps[idx[2]],
                self.amps[idx[3]],
            ];
            for (r, &i) in idx.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (c, &o) in old.iter().enumerate() {
                    acc += g[r][c] * o;
                }
                self.amps[i] = acc;
            }
        }
        Ok(())
    }

    /// Probability that measuring `qubit` in the computational basis
    /// yields 1.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn prob_one(&self, qubit: usize) -> Result<f64, SimError> {
        self.check_qubit(qubit)?;
        let stride = self.stride(qubit);
        Ok(self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & stride != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum())
    }

    /// Measures `qubit` in the computational basis, collapsing the state.
    /// Returns the observed bit.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn measure_qubit<R: Rng + ?Sized>(
        &mut self,
        qubit: usize,
        rng: &mut R,
    ) -> Result<u8, SimError> {
        let p1 = self.prob_one(qubit)?;
        let outcome = u8::from(rng.gen::<f64>() < p1);
        self.collapse(qubit, outcome)?;
        Ok(outcome)
    }

    /// Projects `qubit` onto `outcome` and renormalizes (post-measurement
    /// state). Public so callers can compute conditional states.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn collapse(&mut self, qubit: usize, outcome: u8) -> Result<(), SimError> {
        self.check_qubit(qubit)?;
        let stride = self.stride(qubit);
        for (i, a) in self.amps.iter_mut().enumerate() {
            let bit = u8::from(i & stride != 0);
            if bit != outcome {
                *a = C64::ZERO;
            }
        }
        self.renormalize();
        Ok(())
    }

    /// Measures all qubits in the computational basis; the state collapses
    /// to the observed basis state. Returns the basis index.
    pub fn measure_all<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = self.dim() - 1;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                chosen = i;
                break;
            }
        }
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if i == chosen { C64::ONE } else { C64::ZERO };
        }
        chosen
    }

    /// Expectation value `⟨ψ|O|ψ⟩` of a single-qubit Hermitian observable
    /// `O` acting on `qubit` (real by Hermiticity).
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn expectation_gate1(&self, qubit: usize, o: &Gate1) -> Result<f64, SimError> {
        self.check_qubit(qubit)?;
        let stride = self.stride(qubit);
        let mut acc = C64::ZERO;
        for (i, a) in self.amps.iter().enumerate() {
            if i & stride != 0 {
                continue;
            }
            let i1 = i | stride;
            let a0 = *a;
            let a1 = self.amps[i1];
            // ⟨(a0,a1)| O |(a0,a1)⟩ for this 2-dim slice
            acc += a0.conj() * (o[0][0] * a0 + o[0][1] * a1);
            acc += a1.conj() * (o[1][0] * a0 + o[1][1] * a1);
        }
        Ok(acc.re)
    }
}

impl fmt::Display for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, a) in self.amps.iter().enumerate() {
            if a.abs() < 1e-12 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "({a})|{:0width$b}⟩", i, width = self.n_qubits)?;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const F: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn zero_state() {
        let s = StateVector::zero(2);
        assert_eq!(s.n_qubits(), 2);
        assert_eq!(s.dim(), 4);
        assert_eq!(s.probability(0), 1.0);
    }

    #[test]
    fn basis_state_and_bounds() {
        let s = StateVector::basis(2, 3).unwrap();
        assert_eq!(s.probability(3), 1.0);
        assert!(StateVector::basis(2, 4).is_err());
    }

    #[test]
    fn from_amplitudes_validates() {
        assert!(StateVector::from_amplitudes(vec![C64::ONE, C64::ZERO]).is_ok());
        assert!(matches!(
            StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]),
            Err(SimError::NotNormalized { .. })
        ));
        assert!(matches!(
            StateVector::from_amplitudes(vec![C64::ONE, C64::ZERO, C64::ZERO]),
            Err(SimError::BadDimension { len: 3 })
        ));
    }

    #[test]
    fn hadamard_creates_superposition() {
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &gates::h()).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
        // H² = I
        s.apply_gate1(0, &gates::h()).unwrap();
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_correct_qubit() {
        let mut s = StateVector::zero(3);
        s.apply_gate1(0, &gates::x()).unwrap(); // |100⟩ = index 4
        assert!((s.probability(0b100) - 1.0).abs() < 1e-12);
        s.apply_gate1(2, &gates::x()).unwrap(); // |101⟩ = index 5
        assert!((s.probability(0b101) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cnot_entangles() {
        // H on qubit 0 then CNOT(0→1) gives the Bell state Φ+.
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &gates::h()).unwrap();
        s.apply_controlled(0, 1, &gates::x()).unwrap();
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01) < 1e-12);
        assert!(s.probability(0b10) < 1e-12);
    }

    #[test]
    fn apply_gate2_matches_controlled() {
        let mut s1 = StateVector::zero(2);
        s1.apply_gate1(0, &gates::h()).unwrap();
        let mut s2 = s1.clone();
        s1.apply_controlled(0, 1, &gates::x()).unwrap();
        s2.apply_gate2(0, 1, &gates::cnot()).unwrap();
        for i in 0..4 {
            assert!(s1.amplitude(i).approx_eq(s2.amplitude(i), 1e-12));
        }
    }

    #[test]
    fn gate2_on_swapped_operands() {
        // CNOT with control=1, target=0 on |01⟩ → |11⟩.
        let mut s = StateVector::basis(2, 0b01).unwrap();
        s.apply_gate2(1, 0, &gates::cnot()).unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn structured_gate_fast_paths_match_dense_multiply() {
        // Dense reference applier (the pre-fast-path kernel), compared
        // against apply_gate1's specialized diagonal/anti-diagonal paths.
        fn dense_apply(s: &mut StateVector, qubit: usize, g: &crate::gates::Gate1) {
            let stride = s.stride(qubit);
            let dim = s.dim();
            let mut base = 0;
            while base < dim {
                for off in 0..stride {
                    let i0 = base + off;
                    let i1 = i0 + stride;
                    let a0 = s.amps[i0];
                    let a1 = s.amps[i1];
                    s.amps[i0] = g[0][0] * a0 + g[0][1] * a1;
                    s.amps[i1] = g[1][0] * a0 + g[1][1] * a1;
                }
                base += stride * 2;
            }
        }

        // A generic 3-qubit state with no special structure.
        let mut base_state = StateVector::zero(3);
        for q in 0..3 {
            base_state.apply_gate1(q, &gates::ry(0.3 + q as f64)).unwrap();
            base_state.apply_gate1(q, &gates::rz(1.1 * (q + 1) as f64)).unwrap();
        }
        base_state.apply_controlled(0, 2, &gates::x()).unwrap();

        let structured: Vec<(&str, crate::gates::Gate1)> = vec![
            ("z", gates::z()),
            ("s", gates::s()),
            ("t", gates::t()),
            ("rz", gates::rz(0.77)),
            ("phase", gates::phase(2.13)),
            ("x", gates::x()),
            ("y", gates::y()),
        ];
        for (name, g) in &structured {
            for q in 0..3 {
                let mut fast = base_state.clone();
                let mut slow = base_state.clone();
                fast.apply_gate1(q, g).unwrap();
                dense_apply(&mut slow, q, g);
                for i in 0..fast.dim() {
                    assert!(
                        fast.amplitude(i).approx_eq(slow.amplitude(i), 1e-15),
                        "gate {name} qubit {q} amp {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn qubit_out_of_range_errors() {
        let mut s = StateVector::zero(2);
        assert!(s.apply_gate1(2, &gates::x()).is_err());
        assert!(s.apply_controlled(0, 2, &gates::x()).is_err());
        assert!(matches!(
            s.apply_controlled(1, 1, &gates::x()),
            Err(SimError::DuplicateQubit { qubit: 1 })
        ));
        assert!(s.prob_one(5).is_err());
    }

    #[test]
    fn measurement_collapses() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &gates::h()).unwrap();
        let bit = s.measure_qubit(0, &mut rng).unwrap();
        // Post-measurement state is deterministic.
        assert!((s.probability(bit as usize) - 1.0).abs() < 1e-12);
        let again = s.measure_qubit(0, &mut rng).unwrap();
        assert_eq!(bit, again);
    }

    #[test]
    fn measurement_statistics_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let mut s = StateVector::zero(1);
            s.apply_gate1(0, &gates::h()).unwrap();
            ones += s.measure_qubit(0, &mut rng).unwrap() as u32;
        }
        let f = ones as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.02, "frequency {f}");
    }

    #[test]
    fn bell_pair_perfectly_correlated() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let mut s = StateVector::zero(2);
            s.apply_gate1(0, &gates::h()).unwrap();
            s.apply_controlled(0, 1, &gates::x()).unwrap();
            let a = s.measure_qubit(0, &mut rng).unwrap();
            let b = s.measure_qubit(1, &mut rng).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tensor_product_composes() {
        let mut plus = StateVector::zero(1);
        plus.apply_gate1(0, &gates::h()).unwrap();
        let one = StateVector::basis(1, 1).unwrap();
        let t = plus.tensor(&one);
        assert_eq!(t.n_qubits(), 2);
        assert!((t.probability(0b01) - 0.5).abs() < 1e-12);
        assert!((t.probability(0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let z = StateVector::zero(1);
        let o = StateVector::basis(1, 1).unwrap();
        assert!(z.inner(&o).unwrap().approx_eq(C64::ZERO, 1e-12));
        assert!((z.fidelity(&z).unwrap() - 1.0).abs() < 1e-12);
        let mut plus = StateVector::zero(1);
        plus.apply_gate1(0, &gates::h()).unwrap();
        assert!((z.fidelity(&plus).unwrap() - 0.5).abs() < 1e-12);
        assert!(z.inner(&StateVector::zero(2)).is_err());
    }

    #[test]
    fn expectation_pauli_z() {
        let s = StateVector::zero(1);
        assert!((s.expectation_gate1(0, &gates::z()).unwrap() - 1.0).abs() < 1e-12);
        let o = StateVector::basis(1, 1).unwrap();
        assert!((o.expectation_gate1(0, &gates::z()).unwrap() + 1.0).abs() < 1e-12);
        let mut plus = StateVector::zero(1);
        plus.apply_gate1(0, &gates::h()).unwrap();
        assert!(plus.expectation_gate1(0, &gates::z()).unwrap().abs() < 1e-12);
        assert!((plus.expectation_gate1(0, &gates::x()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_all_collapses_to_basis() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &gates::h()).unwrap();
        s.apply_gate1(1, &gates::h()).unwrap();
        let idx = s.measure_all(&mut rng);
        assert!(idx < 4);
        assert!((s.probability(idx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_nonzero_terms() {
        let mut s = StateVector::zero(2);
        s.apply_gate1(0, &gates::h()).unwrap();
        s.apply_controlled(0, 1, &gates::x()).unwrap();
        let d = s.to_string();
        assert!(d.contains("|00⟩"));
        assert!(d.contains("|11⟩"));
        assert!(!d.contains("|01⟩"));
    }

    #[test]
    fn superposition_amplitude_value() {
        let mut s = StateVector::zero(1);
        s.apply_gate1(0, &gates::h()).unwrap();
        assert!(s.amplitude(0).approx_eq(C64::real(F), 1e-12));
        assert!(s.amplitude(1).approx_eq(C64::real(F), 1e-12));
    }
}
