//! Noise channels and imperfect entangled states.
//!
//! §3 of the paper: "all quantum technologies operate with an error margin,
//! which system designs must account for". The standard abstractions are:
//!
//! - **Kraus channels** — completely-positive trace-preserving maps
//!   `ρ → Σ Kᵢ ρ Kᵢ†`, covering depolarizing, dephasing and amplitude
//!   damping noise.
//! - **Werner states** — the result of sending one half of a Bell pair
//!   through a depolarizing channel; parametrized by *visibility* `v`:
//!   `ρ = v·|Φ⁺⟩⟨Φ⁺| + (1−v)·I/4`. The CHSH advantage survives exactly
//!   while `v > 1/√2 ≈ 0.707`, which experiment E6 reproduces.
//! - **Storage decay** — a QNIC holding a photon for time `t` with memory
//!   lifetime `τ` applies dephasing with strength `1 − e^{−t/τ}`
//!   (used by `qnet::qnic`).

use crate::density::DensityMatrix;
use crate::error::SimError;
use crate::state::StateVector;
use qmath::{CMatrix, C64};

/// A completely-positive trace-preserving map given by Kraus operators
/// `{Kᵢ}` on a single qubit, with `Σ Kᵢ†Kᵢ = I`.
#[derive(Debug, Clone)]
pub struct KrausChannel {
    ops: Vec<CMatrix>,
}

impl KrausChannel {
    /// Builds a channel from Kraus operators, validating trace
    /// preservation.
    ///
    /// # Errors
    /// [`SimError::NotTracePreserving`] if `Σ Kᵢ†Kᵢ` deviates from the
    /// identity by more than `1e-9`; [`SimError::BadDimension`] if the
    /// operators are not all 2×2.
    pub fn new(ops: Vec<CMatrix>) -> Result<Self, SimError> {
        if ops.is_empty() {
            return Err(SimError::BadDimension { len: 0 });
        }
        for k in &ops {
            if k.rows() != 2 || k.cols() != 2 {
                return Err(SimError::BadDimension { len: k.rows() });
            }
        }
        let mut sum = CMatrix::zeros(2, 2);
        for k in &ops {
            sum = &sum + &k.dagger().matmul(k).expect("2x2");
        }
        let dev = sum.max_abs_diff(&CMatrix::identity(2));
        if dev > 1e-9 {
            return Err(SimError::NotTracePreserving { deviation: dev });
        }
        Ok(KrausChannel { ops })
    }

    /// Borrow the Kraus operators.
    pub fn operators(&self) -> &[CMatrix] {
        &self.ops
    }

    /// The identity (noiseless) channel.
    pub fn identity() -> Self {
        KrausChannel {
            ops: vec![CMatrix::identity(2)],
        }
    }

    /// Depolarizing channel: with probability `p` the qubit is replaced by
    /// the maximally mixed state.
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, SimError> {
        check_prob(p)?;
        let k0 = CMatrix::identity(2).scaled(C64::real((1.0 - 3.0 * p / 4.0).sqrt()));
        let sx = pauli(&[[0., 1.], [1., 0.]]);
        let sz = pauli(&[[1., 0.], [0., -1.]]);
        let sy = CMatrix::from_vec(2, 2, vec![C64::ZERO, -C64::I, C64::I, C64::ZERO])
            .expect("2x2");
        let w = (p / 4.0).sqrt();
        KrausChannel::new(vec![
            k0,
            sx.scaled(C64::real(w)),
            sy.scaled(C64::real(w)),
            sz.scaled(C64::real(w)),
        ])
    }

    /// Phase-damping (dephasing) channel: Z error with probability `p`.
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if `p ∉ [0, 1]`.
    pub fn dephasing(p: f64) -> Result<Self, SimError> {
        check_prob(p)?;
        let k0 = CMatrix::identity(2).scaled(C64::real((1.0 - p).sqrt()));
        let kz = pauli(&[[1., 0.], [0., -1.]]).scaled(C64::real(p.sqrt()));
        KrausChannel::new(vec![k0, kz])
    }

    /// Bit-flip channel: X error with probability `p`.
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Result<Self, SimError> {
        check_prob(p)?;
        let k0 = CMatrix::identity(2).scaled(C64::real((1.0 - p).sqrt()));
        let kx = pauli(&[[0., 1.], [1., 0.]]).scaled(C64::real(p.sqrt()));
        KrausChannel::new(vec![k0, kx])
    }

    /// Amplitude damping with decay probability `γ` (photon loss /
    /// spontaneous emission).
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if `γ ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, SimError> {
        check_prob(gamma)?;
        let k0 = CMatrix::from_vec(
            2,
            2,
            vec![
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::real((1.0 - gamma).sqrt()),
            ],
        )
        .expect("2x2");
        let k1 = CMatrix::from_vec(
            2,
            2,
            vec![C64::ZERO, C64::real(gamma.sqrt()), C64::ZERO, C64::ZERO],
        )
        .expect("2x2");
        KrausChannel::new(vec![k0, k1])
    }

    /// The dephasing channel a quantum memory applies after storing a qubit
    /// for `held` seconds with coherence lifetime `lifetime` seconds:
    /// `p = (1 − e^{−t/τ}) / 2` (fully decohered as `t → ∞`).
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if either argument is negative or
    /// `lifetime` is zero.
    pub fn storage_decay(held: f64, lifetime: f64) -> Result<Self, SimError> {
        if held < 0.0 || lifetime <= 0.0 {
            return Err(SimError::BadProbability {
                value: if held < 0.0 { held } else { lifetime },
            });
        }
        let p = (1.0 - (-held / lifetime).exp()) / 2.0;
        KrausChannel::dephasing(p)
    }

    /// Applies the channel to `qubit` of a density matrix:
    /// `ρ → Σ (I⊗Kᵢ⊗I) ρ (I⊗Kᵢ⊗I)†`.
    ///
    /// # Errors
    /// [`SimError::QubitOutOfRange`] for a bad index.
    pub fn apply(&self, rho: &DensityMatrix, qubit: usize) -> Result<DensityMatrix, SimError> {
        let n = rho.n_qubits();
        if qubit >= n {
            return Err(SimError::QubitOutOfRange { qubit, n_qubits: n });
        }
        let left = CMatrix::identity(1 << qubit);
        let right = CMatrix::identity(1 << (n - 1 - qubit));
        let dim = 1usize << n;
        let mut out = CMatrix::zeros(dim, dim);
        for k in &self.ops {
            let full = left.kron(k).kron(&right);
            let term = full
                .matmul(rho.matrix())
                .and_then(|m| m.matmul(&full.dagger()))
                .expect("square");
            out = &out + &term;
        }
        DensityMatrix::from_matrix(out)
    }
}

fn check_prob(p: f64) -> Result<(), SimError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(SimError::BadProbability { value: p });
    }
    Ok(())
}

fn pauli(m: &[[f64; 2]; 2]) -> CMatrix {
    CMatrix::from_vec(
        2,
        2,
        vec![
            C64::real(m[0][0]),
            C64::real(m[0][1]),
            C64::real(m[1][0]),
            C64::real(m[1][1]),
        ],
    )
    .expect("2x2")
}

/// The two-qubit Werner state `v·|Φ⁺⟩⟨Φ⁺| + (1−v)·I/4`, the standard model
/// of an imperfect Bell pair with *visibility* `v`.
///
/// Its fidelity with `|Φ⁺⟩` is `(1+3v)/4`; the CHSH quantum advantage
/// survives iff `v > 1/√2`.
///
/// # Errors
/// [`SimError::BadProbability`] if `v ∉ [0, 1]`.
pub fn werner(visibility: f64) -> Result<DensityMatrix, SimError> {
    check_prob(visibility)?;
    let pure = DensityMatrix::from_pure(&crate::bell::phi_plus());
    DensityMatrix::mixture(&[
        (visibility, pure),
        (1.0 - visibility, DensityMatrix::maximally_mixed(2)),
    ])
}

/// Visibility threshold below which a Werner state loses the CHSH
/// advantage: `1/√2`.
pub const WERNER_CHSH_THRESHOLD: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Stochastically applies the channel to a *pure* state (quantum-trajectory
/// style): picks Kraus operator `i` with probability `⟨ψ|Kᵢ†Kᵢ|ψ⟩` and
/// renormalizes. Statistically equivalent to the density-matrix evolution,
/// but keeps the cheap statevector representation — used by the
/// high-throughput load-balancing simulations.
///
/// # Errors
/// [`SimError::QubitOutOfRange`] for a bad index.
pub fn apply_stochastic<R: rand::Rng + ?Sized>(
    channel: &KrausChannel,
    state: &mut StateVector,
    qubit: usize,
    rng: &mut R,
) -> Result<(), SimError> {
    // Compute branch probabilities.
    let mut probs = Vec::with_capacity(channel.ops.len());
    let mut branches = Vec::with_capacity(channel.ops.len());
    for k in &channel.ops {
        let g: crate::gates::Gate1 = [[k[(0, 0)], k[(0, 1)]], [k[(1, 0)], k[(1, 1)]]];
        let mut branch = state.clone();
        branch.apply_gate1(qubit, &g)?;
        let p = branch.norm_sqr();
        probs.push(p);
        branches.push(branch);
    }
    let total: f64 = probs.iter().sum();
    let mut r = rng.gen::<f64>() * total;
    for (p, mut branch) in probs.into_iter().zip(branches) {
        if r < p || p == total {
            // Renormalize the chosen branch.
            let scale = 1.0 / p.sqrt();
            let amps: Vec<C64> = branch
                .amplitudes()
                .iter()
                .map(|a| *a * scale)
                .collect();
            branch = StateVector::from_amplitudes(amps)?;
            *state = branch;
            return Ok(());
        }
        r -= p;
    }
    unreachable!("probabilities sum to total");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn channels_are_trace_preserving_by_construction() {
        for ch in [
            KrausChannel::depolarizing(0.3).unwrap(),
            KrausChannel::dephasing(0.2).unwrap(),
            KrausChannel::bit_flip(0.7).unwrap(),
            KrausChannel::amplitude_damping(0.5).unwrap(),
            KrausChannel::identity(),
        ] {
            let rho = DensityMatrix::from_pure(&bell::phi_plus());
            let out = ch.apply(&rho, 0).unwrap();
            assert!((out.trace() - 1.0).abs() < 1e-9);
            assert!(out.is_valid(1e-8));
        }
    }

    #[test]
    fn bad_probability_rejected() {
        assert!(KrausChannel::depolarizing(1.5).is_err());
        assert!(KrausChannel::dephasing(-0.1).is_err());
        assert!(werner(2.0).is_err());
        assert!(KrausChannel::storage_decay(-1.0, 1.0).is_err());
        assert!(KrausChannel::storage_decay(1.0, 0.0).is_err());
    }

    #[test]
    fn non_trace_preserving_rejected() {
        let half = CMatrix::identity(2).scaled(C64::real(0.5));
        assert!(matches!(
            KrausChannel::new(vec![half]),
            Err(SimError::NotTracePreserving { .. })
        ));
        assert!(KrausChannel::new(vec![]).is_err());
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let ch = KrausChannel::depolarizing(1.0).unwrap();
        let rho = DensityMatrix::from_pure(&StateVector::zero(1));
        let out = ch.apply(&rho, 0).unwrap();
        let mm = DensityMatrix::maximally_mixed(1);
        assert!(out.matrix().max_abs_diff(mm.matrix()) < 1e-9);
    }

    #[test]
    fn dephasing_kills_coherence_keeps_populations() {
        let mut plus = StateVector::zero(1);
        plus.apply_gate1(0, &crate::gates::h()).unwrap();
        let rho = DensityMatrix::from_pure(&plus);
        let out = KrausChannel::dephasing(0.5).unwrap().apply(&rho, 0).unwrap();
        // Fully dephased at p = 0.5: off-diagonals vanish.
        assert!(out.matrix()[(0, 1)].abs() < 1e-9);
        assert!((out.matrix()[(0, 0)].re - 0.5).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let one = StateVector::basis(1, 1).unwrap();
        let rho = DensityMatrix::from_pure(&one);
        let out = KrausChannel::amplitude_damping(0.3)
            .unwrap()
            .apply(&rho, 0)
            .unwrap();
        assert!((out.matrix()[(1, 1)].re - 0.7).abs() < 1e-9);
        assert!((out.matrix()[(0, 0)].re - 0.3).abs() < 1e-9);
    }

    #[test]
    fn werner_fidelity_formula() {
        for v in [0.0, 0.25, 0.5, 0.8, 1.0] {
            let rho = werner(v).unwrap();
            let f = rho.fidelity_with_pure(&bell::phi_plus()).unwrap();
            assert!((f - (1.0 + 3.0 * v) / 4.0).abs() < 1e-9, "v = {v}");
            assert!(rho.is_valid(1e-8));
        }
    }

    #[test]
    fn werner_extremes() {
        let pure = werner(1.0).unwrap();
        assert!((pure.purity() - 1.0).abs() < 1e-9);
        let mixed = werner(0.0).unwrap();
        assert!((mixed.purity() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn storage_decay_limits() {
        // t = 0: identity-like (p = 0). t → ∞: p → 1/2 (full dephasing).
        let fresh = KrausChannel::storage_decay(0.0, 100e-6).unwrap();
        let mut plus = StateVector::zero(1);
        plus.apply_gate1(0, &crate::gates::h()).unwrap();
        let rho = DensityMatrix::from_pure(&plus);
        let out = fresh.apply(&rho, 0).unwrap();
        assert!((out.purity() - 1.0).abs() < 1e-9);

        let stale = KrausChannel::storage_decay(1.0, 100e-6).unwrap();
        let out = stale.apply(&rho, 0).unwrap();
        assert!(out.matrix()[(0, 1)].abs() < 1e-6, "fully dephased");
    }

    #[test]
    fn depolarizing_half_reduces_werner_visibility() {
        // Applying depolarizing(p) to one half of Φ+ yields a Werner state
        // with visibility (1 − p).
        let p = 0.4;
        let rho = DensityMatrix::from_pure(&bell::phi_plus());
        let out = KrausChannel::depolarizing(p).unwrap().apply(&rho, 1).unwrap();
        let expect = werner(1.0 - p).unwrap();
        assert!(out.matrix().max_abs_diff(expect.matrix()) < 1e-9);
    }

    #[test]
    fn stochastic_matches_density_statistics() {
        // Trajectory sampling of bit_flip(0.3) on |0⟩ measured in Z must
        // show P(1) ≈ 0.3.
        let mut rng = StdRng::seed_from_u64(41);
        let ch = KrausChannel::bit_flip(0.3).unwrap();
        let trials = 20_000;
        let mut ones = 0u32;
        for _ in 0..trials {
            let mut s = StateVector::zero(1);
            apply_stochastic(&ch, &mut s, 0, &mut rng).unwrap();
            ones += s.measure_qubit(0, &mut rng).unwrap() as u32;
        }
        let f = ones as f64 / trials as f64;
        assert!((f - 0.3).abs() < 0.02, "freq {f}");
    }

    #[test]
    fn channel_on_out_of_range_qubit_errors() {
        let ch = KrausChannel::identity();
        let rho = DensityMatrix::maximally_mixed(1);
        assert!(ch.apply(&rho, 1).is_err());
    }
}
