//! Closed-form measurement kernel for noisy N-party GHZ states.
//!
//! The N-party analogue of [`crate::werner`]: multiparty coordination
//! (the Mermin parity game, GPU-SM placement across a rack) only ever
//! consumes one state family — a visibility-`v` GHZ state whose qubits
//! may each have picked up storage dephasing — measured in *equatorial*
//! bases `(|0⟩ ± e^{iφ}|1⟩)/√2` (X is `φ = 0`, Y is `φ = π/2`). That
//! joint distribution has an exact parity-sector closed form, so a full
//! n-party round needs ONE `f64` draw plus one word of bulk random bits
//! instead of an O(2ⁿ)-amplitude statevector simulation with O(n)
//! projective collapses.
//!
//! ## The closed form
//!
//! Write the noisy state as the GHZ⁺/GHZ⁻ mixture
//! `ρ = (1+v)/2·|G⁺⟩⟨G⁺| + (1−v)/2·|G⁻⟩⟨G⁻|` with
//! `|G^±⟩ = (|0…0⟩ ± |1…1⟩)/√2` — only the `|0…0⟩⟨1…1|` coherence
//! carries `v`, so per-qubit dephasing with retention `dⱼ` simply
//! rescales it: the *effective coherence* is `w = v·∏ⱼ dⱼ`. Measuring
//! qubit `j` in the equatorial basis at phase `φⱼ` gives outcome vector
//! `a` with probability
//!
//! ```text
//! P(a) = 2^{−n} · (1 + w·s·cos Θ),   s = (−1)^{wt(a)},  Θ = Σⱼ φⱼ
//! ```
//!
//! i.e. the even-parity sector has total weight `(1 + w·cos Θ)/2`, the
//! odd sector the complement, and outcomes *within* a sector are exactly
//! uniform. (A depolarized GHZ `v·|G⟩⟨G| + (1−v)·I/2ⁿ` has the same
//! equatorial statistics: its extra diagonal weight is uniform under
//! every equatorial basis, so the kernel covers both noise models.)
//!
//! Sampling is therefore: one `f64` draw picks the parity sector, one
//! `u64` supplies `n−1` free bits, and the last bit closes the parity —
//! O(n) per round, independent of the 2ⁿ state dimension.
//!
//! The full quantum-simulation path stays live as the pinned oracle:
//! [`NoisyGhz::oracle_density`] builds the exact density matrix for the
//! 1e-12 cell-equivalence tests, [`NoisyGhz::oracle_sample`] is the
//! trajectory-sampling statevector route that `QNLG_EXACT_QSIM=1`
//! (see [`crate::werner::exact_qsim`]) re-enables at runtime.

use crate::bell;
use crate::error::SimError;
use crate::gates;
use crate::measure::{measure_in_basis, Basis1};
use crate::noise::KrausChannel;
use crate::DensityMatrix;
use qmath::C64;
use rand::Rng;

/// Largest party count the kernel supports: `n − 1` free bits plus the
/// parity bit must fit one `u64` outcome word.
pub const MAX_PARTIES: usize = 63;

/// The equatorial measurement basis at phase `φ`:
/// `|φ₀⟩ = (|0⟩ + e^{iφ}|1⟩)/√2`, `|φ₁⟩ = (|0⟩ − e^{iφ}|1⟩)/√2`.
/// `φ = 0` is the X basis `{|+⟩, |−⟩}`, `φ = π/2` the Y basis.
pub fn equatorial_basis(phi: f64) -> Basis1 {
    let f = std::f64::consts::FRAC_1_SQRT_2;
    let (s, c) = phi.sin_cos();
    let e = C64::new(c * f, s * f);
    Basis1 {
        phi0: [C64::real(f), e],
        phi1: [C64::real(f), C64::new(-e.re, -e.im)],
    }
}

/// A noisy n-party GHZ state reduced to the numbers its equatorial
/// measurement statistics depend on: source visibility and the per-party
/// dephasing retentions. One allocation at construction, then every
/// round is allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyGhz {
    visibility: f64,
    retentions: Vec<f64>,
    /// Cached `v·∏ dⱼ` — the only number sampling needs.
    coherence: f64,
}

impl NoisyGhz {
    /// A fresh (undecohered) n-party GHZ state of the given visibility.
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if `visibility ∉ [0, 1]`;
    /// [`SimError::BadDimension`] if `n < 2` or `n >` [`MAX_PARTIES`].
    pub fn new(n: usize, visibility: f64) -> Result<Self, SimError> {
        Self::with_dephasing(visibility, vec![1.0; n])
    }

    /// A noisy GHZ state whose qubit `j` has been dephased down to
    /// coherence retention `retentions[j]` (`exp(−held/lifetime)` for
    /// QNIC storage decay).
    ///
    /// # Errors
    /// [`SimError::BadProbability`] if any argument is outside `[0, 1]`;
    /// [`SimError::BadDimension`] for party counts outside
    /// `2..=`[`MAX_PARTIES`].
    pub fn with_dephasing(visibility: f64, retentions: Vec<f64>) -> Result<Self, SimError> {
        let n = retentions.len();
        if !(2..=MAX_PARTIES).contains(&n) {
            return Err(SimError::BadDimension { len: n });
        }
        for &value in std::iter::once(&visibility).chain(&retentions) {
            if !(0.0..=1.0).contains(&value) {
                return Err(SimError::BadProbability { value });
            }
        }
        let coherence = visibility * retentions.iter().product::<f64>();
        Ok(NoisyGhz {
            visibility,
            retentions,
            coherence,
        })
    }

    /// A perfect n-party GHZ state (`v = 1`, no dephasing).
    ///
    /// # Errors
    /// [`SimError::BadDimension`] for party counts outside
    /// `2..=`[`MAX_PARTIES`].
    pub fn ideal(n: usize) -> Result<Self, SimError> {
        Self::new(n, 1.0)
    }

    /// Number of parties (qubits).
    pub fn n_parties(&self) -> usize {
        self.retentions.len()
    }

    /// Source visibility `v`.
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Per-party coherence retentions `dⱼ`.
    pub fn retentions(&self) -> &[f64] {
        &self.retentions
    }

    /// The effective coherence `w = v·∏ dⱼ` — the single number the
    /// joint distribution depends on besides the measurement phases.
    pub fn coherence(&self) -> f64 {
        self.coherence
    }

    /// The ±1 outcome-parity expectation `E = w·cos(Σ φⱼ)` for
    /// equatorial measurement phases `phases` (see module docs).
    pub fn correlation(&self, phases: &[f64]) -> f64 {
        debug_assert_eq!(phases.len(), self.n_parties());
        self.coherence * phases.iter().sum::<f64>().cos()
    }

    /// The parity expectation for X/Y settings: parties in `y_mask`
    /// measure Y (`φ = π/2`), the rest X (`φ = 0`), so
    /// `cos Θ ∈ {1, 0, −1, 0}` by the Y-count mod 4 — no trig.
    pub fn correlation_xy(&self, y_mask: u64) -> f64 {
        match y_mask.count_ones() % 4 {
            0 => self.coherence,
            2 => -self.coherence,
            _ => 0.0,
        }
    }

    /// Exact probability of the outcome word `outcome` (party `j` reads
    /// bit `j`) under equatorial phases `phases`:
    /// `2^{−n}·(1 + E·(−1)^{wt(outcome)})`.
    pub fn joint_prob(&self, phases: &[f64], outcome: u64) -> f64 {
        let e = self.correlation(phases);
        let sign = if outcome.count_ones().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        (1.0 + e * sign) / (1u64 << self.n_parties()) as f64
    }

    /// Samples a full n-party round at equatorial phases `phases`.
    /// Returns the outcome word (party `j` reads bit `j`).
    pub fn sample<R: Rng + ?Sized>(&self, phases: &[f64], rng: &mut R) -> u64 {
        self.sample_with_correlation(self.correlation(phases), rng)
    }

    /// Samples a round at X/Y settings given as a Y mask.
    pub fn sample_xy<R: Rng + ?Sized>(&self, y_mask: u64, rng: &mut R) -> u64 {
        self.sample_with_correlation(self.correlation_xy(y_mask), rng)
    }

    /// The hot inner kernel: given a precomputed parity expectation `e`
    /// (from [`Self::correlation`] / [`Self::correlation_xy`], hoistable
    /// out of a batch loop), draws one `f64` for the parity sector and
    /// one `u64` for the bulk bits. Parties `0..n−1` take the free bits;
    /// party `n−1`'s bit closes the parity.
    pub fn sample_with_correlation<R: Rng + ?Sized>(&self, e: f64, rng: &mut R) -> u64 {
        let n = self.n_parties();
        let even = rng.gen::<f64>() < 0.5 * (1.0 + e);
        let free = rng.next_u64() & ((1u64 << (n - 1)) - 1);
        let close = (free.count_ones() as u64 & 1) ^ u64::from(!even);
        free | (close << (n - 1))
    }

    /// Builds the *oracle* state this kernel claims to sample: the
    /// GHZ⁺/GHZ⁻ mixture at visibility `v` pushed through per-qubit
    /// dephasing channels with `p = (1 − dⱼ)/2`. Used by the 1e-12
    /// cell-equivalence tests. The matrix is `2ⁿ × 2ⁿ` — oracle use only.
    ///
    /// # Errors
    /// Propagates channel-construction errors (cannot occur for a
    /// validated `NoisyGhz`).
    pub fn oracle_density(&self) -> Result<DensityMatrix, SimError> {
        let n = self.n_parties();
        let plus = DensityMatrix::from_pure(&bell::ghz(n));
        let mut minus_sv = bell::ghz(n);
        minus_sv.apply_gate1(0, &gates::z())?;
        let minus = DensityMatrix::from_pure(&minus_sv);
        let mut rho = DensityMatrix::mixture(&[
            ((1.0 + self.visibility) / 2.0, plus),
            ((1.0 - self.visibility) / 2.0, minus),
        ])?;
        for (qubit, &retain) in self.retentions.iter().enumerate() {
            if retain < 1.0 {
                let channel = KrausChannel::dephasing((1.0 - retain) / 2.0)?;
                rho = channel.apply(&rho, qubit)?;
            }
        }
        Ok(rho)
    }

    /// The exact-simulation sampling route (`QNLG_EXACT_QSIM=1`):
    /// trajectory-unravel the noise — the GHZ⁺/GHZ⁻ mixture is a Z on
    /// any one qubit with probability `(1−v)/2`, and each dephasing
    /// channel a Z with probability `(1−dⱼ)/2` — then projectively
    /// measure every qubit of the statevector in its basis. Exactly the
    /// distribution of [`Self::sample`], at O(n·2ⁿ) cost per round.
    ///
    /// # Errors
    /// [`SimError::SizeMismatch`] if `bases.len()` ≠ the party count.
    pub fn oracle_sample<R: Rng + ?Sized>(
        &self,
        bases: &[Basis1],
        rng: &mut R,
    ) -> Result<u64, SimError> {
        let n = self.n_parties();
        if bases.len() != n {
            return Err(SimError::SizeMismatch {
                op: "NoisyGhz::oracle_sample",
                lhs: n,
                rhs: bases.len(),
            });
        }
        let mut sv = bell::ghz(n);
        if rng.gen::<f64>() < (1.0 - self.visibility) / 2.0 {
            sv.apply_gate1(0, &gates::z())?;
        }
        for (qubit, &retain) in self.retentions.iter().enumerate() {
            if retain < 1.0 && rng.gen::<f64>() < (1.0 - retain) / 2.0 {
                sv.apply_gate1(qubit, &gates::z())?;
            }
        }
        let mut out = 0u64;
        for (party, basis) in bases.iter().enumerate() {
            let bit = measure_in_basis(&mut sv, party, basis, rng)?;
            out |= u64::from(bit) << party;
        }
        Ok(out)
    }

    /// [`Self::oracle_sample`] at X/Y settings given as a Y mask.
    ///
    /// # Errors
    /// Same as [`Self::oracle_sample`] (cannot occur here).
    pub fn oracle_sample_xy<R: Rng + ?Sized>(
        &self,
        y_mask: u64,
        rng: &mut R,
    ) -> Result<u64, SimError> {
        let bases: Vec<Basis1> = (0..self.n_parties())
            .map(|j| {
                if (y_mask >> j) & 1 == 1 {
                    equatorial_basis(std::f64::consts::FRAC_PI_2)
                } else {
                    equatorial_basis(0.0)
                }
            })
            .collect();
        self.oracle_sample(&bases, rng)
    }
}

/// `⟨Φ_a|ρ|Φ_a⟩` for per-party bases — the oracle's cell probability,
/// computed directly from the density matrix. Shared by the in-crate
/// tests and the `ghz_stat` integration suite.
pub fn oracle_cell(rho: &DensityMatrix, bases: &[Basis1], outcome: u64) -> f64 {
    let n = bases.len();
    let dim = 1usize << n;
    debug_assert_eq!(rho.n_qubits(), n);
    // |Φ_a⟩ = ⊗ⱼ |φ_{aⱼ}⟩; amplitude index b encodes qubit k in bit
    // (b >> (n−1−k)) & 1 (the crate's ordering convention).
    let mut v = vec![C64::ZERO; dim];
    for (b, amp) in v.iter_mut().enumerate() {
        let mut product = C64::ONE;
        for (k, basis) in bases.iter().enumerate() {
            let vec = if (outcome >> k) & 1 == 0 {
                &basis.phi0
            } else {
                &basis.phi1
            };
            product *= vec[(b >> (n - 1 - k)) & 1];
        }
        *amp = product;
    }
    let m = rho.matrix();
    let mut p = C64::ZERO;
    for (r, vr) in v.iter().enumerate() {
        for (c, vc) in v.iter().enumerate() {
            p += vr.conj() * m.row(r)[c] * *vc;
        }
    }
    p.re
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::f64::consts::{FRAC_PI_2, PI};

    fn random_phases<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| rng.gen::<f64>() * 2.0 * PI).collect()
    }

    #[test]
    fn probabilities_normalized_with_uniform_marginals() {
        let mut rng = StdRng::seed_from_u64(0x6427);
        for n in 2..=6usize {
            for _ in 0..20 {
                let retentions = (0..n).map(|_| rng.gen::<f64>()).collect();
                let ghz = NoisyGhz::with_dephasing(rng.gen::<f64>(), retentions).unwrap();
                let phases = random_phases(n, &mut rng);
                let mut total = 0.0;
                let mut marginals = vec![0.0; n];
                for a in 0..(1u64 << n) {
                    let p = ghz.joint_prob(&phases, a);
                    assert!((0.0..=1.0).contains(&p));
                    total += p;
                    for (j, m) in marginals.iter_mut().enumerate() {
                        if (a >> j) & 1 == 1 {
                            *m += p;
                        }
                    }
                }
                assert!((total - 1.0).abs() < 1e-12);
                for (j, m) in marginals.iter().enumerate() {
                    assert!((m - 0.5).abs() < 1e-12, "party {j} marginal {m}");
                }
            }
        }
    }

    #[test]
    fn ideal_x_measurements_have_even_parity() {
        // |G⁺⟩ is a +1 eigenstate of X⊗…⊗X: all-X measurement always
        // lands in the even sector, and the kernel reproduces that
        // deterministically (E = 1).
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 5, 8] {
            let ghz = NoisyGhz::ideal(n).unwrap();
            assert!((ghz.correlation_xy(0) - 1.0).abs() < 1e-15);
            for _ in 0..200 {
                let a = ghz.sample_xy(0, &mut rng);
                assert_eq!(a.count_ones() % 2, 0, "n = {n}, outcome {a:#b}");
            }
        }
    }

    #[test]
    fn xy_fast_path_matches_trig_path() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in 2..=8usize {
            let ghz = NoisyGhz::new(n, 0.83).unwrap();
            for _ in 0..20 {
                let y_mask = rng.next_u64() & ((1 << n) - 1);
                let phases: Vec<f64> = (0..n)
                    .map(|j| if (y_mask >> j) & 1 == 1 { FRAC_PI_2 } else { 0.0 })
                    .collect();
                assert!(
                    (ghz.correlation_xy(y_mask) - ghz.correlation(&phases)).abs() < 1e-12,
                    "n = {n}, y_mask = {y_mask:#b}"
                );
            }
        }
    }

    #[test]
    fn kernel_cells_match_oracle_density_to_1e12() {
        let mut rng = StdRng::seed_from_u64(0x04AC1E);
        for n in 2..=4usize {
            for _ in 0..8 {
                let retentions = (0..n).map(|_| rng.gen::<f64>()).collect();
                let ghz = NoisyGhz::with_dephasing(rng.gen::<f64>(), retentions).unwrap();
                let phases = random_phases(n, &mut rng);
                let bases: Vec<Basis1> =
                    phases.iter().map(|&phi| equatorial_basis(phi)).collect();
                let rho = ghz.oracle_density().unwrap();
                for a in 0..(1u64 << n) {
                    let kernel = ghz.joint_prob(&phases, a);
                    let oracle = oracle_cell(&rho, &bases, a);
                    assert!(
                        (kernel - oracle).abs() < 1e-12,
                        "n = {n}, a = {a:#b}: kernel {kernel} vs oracle {oracle}"
                    );
                }
            }
        }
    }

    #[test]
    fn sampling_matches_joint_probs() {
        let ghz = NoisyGhz::with_dephasing(0.9, vec![0.95, 0.85, 1.0]).unwrap();
        let phases = [0.4, -0.7, FRAC_PI_2];
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 8];
        let rounds = 50_000u64;
        for _ in 0..rounds {
            counts[ghz.sample(&phases, &mut rng) as usize] += 1;
        }
        for (a, &c) in counts.iter().enumerate() {
            let expected = ghz.joint_prob(&phases, a as u64);
            qmath::assert_prob_in!(c, rounds, expected, conf = 0.999);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(NoisyGhz::new(1, 1.0).is_err(), "single party rejected");
        assert!(NoisyGhz::new(64, 1.0).is_err(), "beyond MAX_PARTIES");
        assert!(NoisyGhz::new(3, 1.5).is_err());
        assert!(NoisyGhz::new(3, -0.1).is_err());
        assert!(NoisyGhz::with_dephasing(0.5, vec![1.0, 1.1, 1.0]).is_err());
        assert!(NoisyGhz::with_dephasing(0.5, vec![1.0, -0.2]).is_err());
        assert!(NoisyGhz::ideal(4).is_ok());
    }

    #[test]
    fn oracle_sample_rejects_basis_count_mismatch() {
        let mut rng = StdRng::seed_from_u64(9);
        let ghz = NoisyGhz::ideal(3).unwrap();
        let bases = vec![equatorial_basis(0.0); 2];
        assert!(matches!(
            ghz.oracle_sample(&bases, &mut rng),
            Err(SimError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn equatorial_bases_are_orthonormal() {
        for phi in [0.0, 0.3, FRAC_PI_2, 2.5, PI] {
            let b = equatorial_basis(phi);
            // Re-validate through the checked constructor.
            assert!(Basis1::new(b.phi0, b.phi1).is_ok(), "phi = {phi}");
        }
    }

    #[test]
    fn coherence_multiplies_retentions() {
        let ghz = NoisyGhz::with_dephasing(0.8, vec![0.5, 0.25, 1.0]).unwrap();
        assert!((ghz.coherence() - 0.8 * 0.5 * 0.25).abs() < 1e-15);
        assert_eq!(ghz.n_parties(), 3);
        assert!((ghz.visibility() - 0.8).abs() < 1e-15);
    }
}
