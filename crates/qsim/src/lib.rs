//! # qsim — exact statevector and density-matrix quantum simulator
//!
//! This crate stands in for the quantum hardware of the paper's Figure 1
//! architecture (SPDC entangled-photon source + quantum NICs): it simulates
//! small quantum systems *exactly*, which the paper itself endorses for
//! testbed evaluation ("controlled studies can 'cheat' by classically
//! simulating quantum correlations", §5).
//!
//! ## Contents
//!
//! - [`StateVector`]: pure states on up to ~20 qubits, with gate
//!   application and projective measurement (computational and rotated
//!   bases).
//! - [`gates`]: the standard gate set (H, Pauli, S, T, rotations, CNOT, …).
//! - [`DensityMatrix`]: mixed states, partial trace, fidelity — needed for
//!   noise modeling and for the ECMP reduction argument (§4.2), which is a
//!   statement about reduced density matrices.
//! - [`noise`]: Kraus channels (depolarizing, dephasing, amplitude
//!   damping) and Werner states, the standard model for imperfect Bell
//!   pairs from a real SPDC source.
//! - [`bell`]: Bell-pair / GHZ / W state constructors.
//! - [`SharedPair`] / [`SharedState`]: the *locality-enforcing* façade used
//!   by the games layer: parties can only measure their own qubit in a
//!   basis of their choosing; there is no API through which one party's
//!   input can reach another.
//!
//! ## Qubit ordering convention
//!
//! Qubit 0 is the *leftmost* label in ket notation: `|q₀q₁…qₙ₋₁⟩`. The
//! amplitude index `b` encodes qubit `k` in bit `(b >> (n-1-k)) & 1`. All
//! public APIs use this convention consistently.

pub mod bell;
pub mod circuit;
pub mod density;
pub mod error;
pub mod gates;
pub mod ghz;
pub mod measure;
pub mod noise;
pub mod pair;
pub mod state;
pub mod tomography;
pub mod werner;

pub use circuit::Circuit;
pub use density::DensityMatrix;
pub use error::SimError;
pub use gates::{Gate1, Gate2};
pub use ghz::NoisyGhz;
pub use measure::{measure_in_angle_basis, measure_in_basis, Basis1};
pub use noise::KrausChannel;
pub use pair::{Party, SharedPair, SharedState};
pub use state::StateVector;
pub use werner::WernerPair;

/// Numerical tolerance for state validity checks (normalization, trace).
pub const EPS: f64 = 1e-9;
