//! Constructors for the entangled states the paper uses.
//!
//! The paper (§2) considers "generalizations of the Bell pair": the four
//! Bell states for two-party games and GHZ states for multi-party ones
//! (§2 Related Work mentions GHZ-based consensus; §4.2 uses three-way
//! entanglement in the ECMP reduction).

use crate::gates;
use crate::state::StateVector;
use qmath::C64;

/// `|Φ⁺⟩ = (|00⟩ + |11⟩)/√2` — the Bell pair distributed by the Figure 1
/// quantum computer; the resource state for the CHSH strategy.
pub fn phi_plus() -> StateVector {
    let mut s = StateVector::zero(2);
    s.apply_gate1(0, &gates::h()).expect("in range");
    s.apply_controlled(0, 1, &gates::x()).expect("in range");
    s
}

/// `|Φ⁻⟩ = (|00⟩ − |11⟩)/√2`.
pub fn phi_minus() -> StateVector {
    let mut s = phi_plus();
    s.apply_gate1(0, &gates::z()).expect("in range");
    s
}

/// `|Ψ⁺⟩ = (|01⟩ + |10⟩)/√2`.
pub fn psi_plus() -> StateVector {
    let mut s = phi_plus();
    s.apply_gate1(1, &gates::x()).expect("in range");
    s
}

/// `|Ψ⁻⟩ = (|01⟩ − |10⟩)/√2` — the singlet state.
pub fn psi_minus() -> StateVector {
    let mut s = phi_minus();
    s.apply_gate1(1, &gates::x()).expect("in range");
    s
}

/// The n-party GHZ state `(|0…0⟩ + |1…1⟩)/√2`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn ghz(n: usize) -> StateVector {
    assert!(n >= 1, "GHZ state needs at least one qubit");
    let mut s = StateVector::zero(n);
    s.apply_gate1(0, &gates::h()).expect("in range");
    for q in 1..n {
        s.apply_controlled(0, q, &gates::x()).expect("in range");
    }
    s
}

/// The n-party W state `(|10…0⟩ + |01…0⟩ + … + |0…01⟩)/√n`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn w_state(n: usize) -> StateVector {
    assert!(n >= 1, "W state needs at least one qubit");
    let amp = C64::real(1.0 / (n as f64).sqrt());
    let mut amps = vec![C64::ZERO; 1 << n];
    for q in 0..n {
        amps[1 << (n - 1 - q)] = amp;
    }
    StateVector::from_amplitudes(amps).expect("normalized by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bell_states_are_orthonormal() {
        let states = [phi_plus(), phi_minus(), psi_plus(), psi_minus()];
        for (i, a) in states.iter().enumerate() {
            for (j, b) in states.iter().enumerate() {
                let ip = a.inner(b).unwrap().abs();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((ip - expected).abs() < 1e-12, "({i},{j}): {ip}");
            }
        }
    }

    #[test]
    fn phi_plus_amplitudes() {
        let s = phi_plus();
        let f = std::f64::consts::FRAC_1_SQRT_2;
        assert!((s.amplitude(0b00).re - f).abs() < 1e-12);
        assert!((s.amplitude(0b11).re - f).abs() < 1e-12);
        assert!(s.amplitude(0b01).abs() < 1e-12);
    }

    #[test]
    fn ghz_reduces_to_bell_for_two() {
        assert!((ghz(2).fidelity(&phi_plus()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_measurements_all_agree() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let mut s = ghz(4);
            let first = s.measure_qubit(0, &mut rng).unwrap();
            for q in 1..4 {
                assert_eq!(s.measure_qubit(q, &mut rng).unwrap(), first);
            }
        }
    }

    #[test]
    fn w_state_single_excitation() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100 {
            let mut s = w_state(3);
            let idx = s.measure_all(&mut rng);
            assert_eq!((idx as u32).count_ones(), 1, "outcome {idx:#b}");
        }
    }

    #[test]
    fn w_state_marginal_uniform() {
        let s = w_state(5);
        for q in 0..5 {
            let p1 = s.prob_one(q).unwrap();
            assert!((p1 - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn singlet_anticorrelated_in_any_common_basis() {
        // |Ψ⁻⟩ yields opposite outcomes in *every* common measurement
        // basis — the hallmark of the singlet.
        let mut rng = StdRng::seed_from_u64(31);
        for k in 0..8 {
            let theta = k as f64 * 0.3;
            for _ in 0..50 {
                let mut s = psi_minus();
                let a = crate::measure::measure_in_angle_basis(&mut s, 0, theta, &mut rng)
                    .unwrap();
                let b = crate::measure::measure_in_angle_basis(&mut s, 1, theta, &mut rng)
                    .unwrap();
                assert_ne!(a, b, "theta = {theta}");
            }
        }
    }
}
