//! A minimal discrete-event scheduler.
//!
//! Events are `(SimTime, payload)` pairs drained in time order; ties break
//! by insertion order (FIFO), which keeps simulations deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events processed (popped) across all queues in the process.
static DES_EVENTS: obs::LazyCounter = obs::LazyCounter::new("qnet.des.events");

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — schedulers must not time-travel;
    /// doing so indicates a simulation bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(time >= self.now, "scheduling into the past: {time} < {}", self.now);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        DES_EVENTS.inc();
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// The time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.now(), SimTime::from_nanos(20));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }
}
