//! A minimal discrete-event scheduler.
//!
//! Events are `(SimTime, payload)` pairs drained in time order; ties break
//! by insertion order (FIFO), which keeps simulations deterministic.
//!
//! [`EventQueue`] is a bucketed *calendar queue*: power-of-two-sized
//! nanosecond buckets cover a sliding window ahead of the pop cursor, and
//! a [`BinaryHeap`] overflow rung holds far-future events until the window
//! reaches them. Near-term scheduling and popping — the distributor's
//! steady state, where every event lands within one propagation delay —
//! is then O(1) amortized with no per-event allocation once the bucket
//! vectors have grown to their working size ([`EventQueue::with_profile`]
//! pre-sizes the geometry from an expected event rate so buckets hold
//! O(1) events each). [`HeapQueue`] keeps the previous `BinaryHeap`
//! implementation as the property-test reference and the wheel-vs-heap
//! ablation arm.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Events processed (popped) across all queues in the process.
static DES_EVENTS: obs::LazyCounter = obs::LazyCounter::new("qnet.des.events");

/// Default bucket width: 2¹² ns = 4.096 µs.
const DEFAULT_SHIFT: u32 = 12;
/// Default bucket count (window = 256 × 4.096 µs ≈ 1 ms).
const DEFAULT_BUCKETS: usize = 256;
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 8192;
/// Bucket width never exceeds 2³⁰ ns ≈ 1.07 s.
const MAX_SHIFT: u32 = 30;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue (calendar wheel + overflow heap).
pub struct EventQueue<E> {
    /// The wheel: slot `abs & mask` holds events whose bucket index
    /// `abs = time >> shift` lies in the window `[cursor, cursor + N)` —
    /// plus stragglers with `abs < cursor` that are still `>= now`
    /// (stashed in the cursor bucket; the per-bucket min scan orders
    /// them correctly).
    buckets: Vec<Vec<Entry<E>>>,
    mask: u64,
    shift: u32,
    /// Absolute bucket index of the scan frontier. Only moves forward.
    cursor: u64,
    /// Total events currently in `buckets`.
    wheel_len: usize,
    /// Events beyond the window, migrated in as the cursor advances.
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    /// Trace timeline for wheel anomalies ([`Self::set_trace_track`]):
    /// an overflow push means the wheel window was undersized for the
    /// event, which is exactly what an operator tunes `with_profile` on.
    track: Option<trace::Track>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero with the default geometry.
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_SHIFT, DEFAULT_BUCKETS)
    }

    /// Creates a queue sized for `rate_hz` events/s spread over
    /// `horizon` of look-ahead: bucket width ≈ the mean inter-event gap
    /// (so buckets hold O(1) events) and enough buckets to cover the
    /// horizon without touching the overflow heap.
    pub fn with_profile(rate_hz: f64, horizon: Duration) -> Self {
        let gap_ns = (1e9 / rate_hz.max(1e-3)).clamp(1.0, 1e12) as u64;
        let shift = gap_ns
            .next_power_of_two()
            .trailing_zeros()
            .min(MAX_SHIFT);
        let window = ((horizon.as_nanos() as u64 >> shift) + 1)
            .next_power_of_two()
            .clamp(MIN_BUCKETS as u64, MAX_BUCKETS as u64);
        let mut q = Self::with_geometry(shift, window as usize);
        // Pre-grow each bucket slab past any plausible occupancy spike
        // (bucket width ≈ mean gap ⇒ O(1) events each), so steady-state
        // scheduling never reallocates.
        for b in &mut q.buckets {
            b.reserve(8);
        }
        q
    }

    fn with_geometry(shift: u32, n_buckets: usize) -> Self {
        debug_assert!(n_buckets.is_power_of_two());
        EventQueue {
            buckets: (0..n_buckets).map(|_| Vec::new()).collect(),
            mask: n_buckets as u64 - 1,
            shift,
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            track: None,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Assigns the trace timeline for this queue's overflow instants.
    pub fn set_trace_track(&mut self, track: trace::Track) {
        self.track = Some(track);
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — schedulers must not time-travel;
    /// doing so indicates a simulation bug. Scheduling at exactly `now`
    /// is accepted.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(time >= self.now, "scheduling into the past: {time} < {}", self.now);
        let entry = Entry {
            time,
            seq: self.next_seq,
            payload,
        };
        self.next_seq += 1;
        let abs = time.as_nanos() >> self.shift;
        let window = self.buckets.len() as u64;
        if abs < self.cursor.saturating_add(window) {
            // In (or before) the window. `abs < cursor` can happen for an
            // event at `now` inside a bucket the cursor already left —
            // stash it at the frontier; correctness holds because every
            // other bucket only has events at later bucket indices.
            let slot = (abs.max(self.cursor) & self.mask) as usize;
            self.buckets[slot].push(entry);
            self.wheel_len += 1;
        } else {
            if let (Some(track), true) = (self.track, trace::enabled()) {
                trace::instant_sim(track, "des.overflow", time.as_nanos());
            }
            self.overflow.push(entry);
        }
    }

    /// Advances the cursor to the first non-empty bucket (pulling
    /// overflow events into the window as it goes) and returns its slot,
    /// or `None` when the queue is empty.
    fn frontier_bucket(&mut self) -> Option<usize> {
        if self.wheel_len == 0 && self.overflow.is_empty() {
            return None;
        }
        loop {
            if self.wheel_len == 0 {
                // Wheel drained: jump the window straight to the earliest
                // overflow event instead of stepping empty buckets.
                let top = self.overflow.peek().expect("overflow non-empty");
                let abs = top.time.as_nanos() >> self.shift;
                self.cursor = self.cursor.max(abs);
                self.migrate_overflow();
                continue;
            }
            let slot = (self.cursor & self.mask) as usize;
            if self.buckets[slot].is_empty() {
                self.cursor += 1;
                if !self.overflow.is_empty() {
                    self.migrate_overflow();
                }
                continue;
            }
            return Some(slot);
        }
    }

    /// Moves overflow events that now fall inside the window onto the
    /// wheel.
    fn migrate_overflow(&mut self) {
        let window = self.buckets.len() as u64;
        while let Some(top) = self.overflow.peek() {
            let abs = top.time.as_nanos() >> self.shift;
            if abs >= self.cursor.saturating_add(window) {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry");
            let slot = (abs.max(self.cursor) & self.mask) as usize;
            self.buckets[slot].push(entry);
            self.wheel_len += 1;
        }
    }

    /// Index of the minimum (time, seq) entry within a bucket.
    fn min_in_bucket(bucket: &[Entry<E>]) -> usize {
        let mut min = 0;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            if (e.time, e.seq) < (bucket[min].time, bucket[min].seq) {
                min = i;
            }
        }
        min
    }

    /// Pops the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let slot = self.frontier_bucket()?;
        let bucket = &mut self.buckets[slot];
        let idx = Self::min_in_bucket(bucket);
        let entry = bucket.swap_remove(idx);
        self.wheel_len -= 1;
        DES_EVENTS.inc();
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// The time of the next event without popping it. Takes `&mut self`
    /// because locating the frontier may advance the wheel cursor (the
    /// observable state — `now`, pending events — is untouched).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let slot = self.frontier_bucket()?;
        let bucket = &self.buckets[slot];
        Some(bucket[Self::min_in_bucket(bucket)].time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The pre-wheel `BinaryHeap` event queue, kept as the reference
/// implementation for the calendar-queue property tests and the
/// wheel-vs-heap bench ablation arm. Same API and semantics as
/// [`EventQueue`] (minus the geometry constructors).
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(time >= self.now, "scheduling into the past: {time} < {}", self.now);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// The time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.now(), SimTime::from_nanos(20));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn scheduling_at_exactly_now_is_accepted() {
        // The past-scheduling panic is a strict inequality: an event at
        // exactly `now` (same-instant reaction) must be accepted by the
        // wheel path even though its bucket may sit behind the cursor.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "first");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "first")));
        q.schedule(SimTime::from_nanos(10), "again");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "again")));
        assert_eq!(q.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        // Default window ≈ 1 ms; an event 10 s out must sit in the
        // overflow rung and still pop in order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs_f64(10.0), "far");
        q.schedule(SimTime::from_nanos(100), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_keeps_global_order() {
        // Wheel vs heap on an interleaved workload spanning bucket
        // boundaries and the overflow rung.
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let times: Vec<u64> = (0..200)
            .map(|i: u64| (i * 7919) % 3_000_000 + 1)
            .collect();
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(SimTime::from_nanos(t), i);
            heap.schedule(SimTime::from_nanos(t), i);
            if i % 3 == 2 {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        while let Some(expected) = heap.pop() {
            assert_eq!(wheel.pop(), Some(expected));
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn with_profile_sizes_buckets_from_rate() {
        // 10⁵ events/s → 10 µs mean gap → 16 384 ns buckets; 1 ms horizon
        // → 64 buckets. The geometry is an internal detail, but the
        // queue must behave identically.
        let mut q = EventQueue::with_profile(1e5, Duration::from_millis(1));
        assert_eq!(q.shift, 14);
        assert_eq!(q.buckets.len(), 64);
        for i in (0..50u64).rev() {
            q.schedule(SimTime::from_nanos(i * 10_000), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }
}
