//! The SPDC entangled-pair source.
//!
//! §3: "Bell pairs can be generated at rates of 10⁴ to 10⁷ pairs per
//! second depending on the experimental setup". SPDC emission is a
//! Poisson process (each pump photon splits with tiny probability), so
//! inter-emission gaps are exponential with mean `1/rate`.

use crate::time::SimTime;
use qsim::{SharedPair, SimError};
use rand::Rng;
use std::time::Duration;

/// An entangled-photon-pair source.
#[derive(Debug, Clone, Copy)]
pub struct EprSource {
    rate_hz: f64,
    visibility: f64,
}

impl EprSource {
    /// A source emitting at `rate_hz` pairs/s with the given pair
    /// visibility (1.0 = perfect Bell pairs).
    ///
    /// # Panics
    /// Panics if `rate_hz <= 0` or `visibility ∉ [0, 1]`.
    pub fn new(rate_hz: f64, visibility: f64) -> Self {
        assert!(rate_hz > 0.0, "rate must be positive");
        assert!((0.0..=1.0).contains(&visibility), "bad visibility");
        EprSource {
            rate_hz,
            visibility,
        }
    }

    /// A representative room-temperature SPDC setup: 10⁵ pairs/s at
    /// visibility 0.95 (mid-range of the paper's §3 figures).
    pub fn typical_room_temperature() -> Self {
        EprSource::new(1e5, 0.95)
    }

    /// Emission rate in pairs/s.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Pair visibility.
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Mean gap between emissions.
    pub fn mean_interval(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.rate_hz)
    }

    /// Samples the (exponential) gap to the next emission, in integer
    /// nanoseconds. This is the primitive the batched emission plane
    /// accumulates: summing integer-ns gaps cannot drift the way the old
    /// f64 → `Duration` round-trip did (every `from_secs_f64` truncated
    /// sub-ns mass, biasing long runs slow relative to the analytic rate).
    /// Gaps round to nearest and clamp to ≥ 1 ns so event time always
    /// advances.
    pub fn sample_interval_ns<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Inverse-CDF sampling; guard the log against u = 0.
        let u: f64 = rng.gen::<f64>().max(1e-300);
        secs_to_ns(-u.ln() / self.rate_hz)
    }

    /// Samples the (exponential) gap to the next emission.
    pub fn sample_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        Duration::from_nanos(self.sample_interval_ns(rng))
    }

    /// Samples the gap to the next *surviving* emission when each photon
    /// pair independently survives with probability `keep`: thinning a
    /// Poisson(`rate`) process Bernoulli(`keep`)-wise yields exactly a
    /// Poisson(`keep · rate`) process, so the gap is one exponential draw
    /// at the reduced rate. Combined with [`geometric_skip`] for the loss
    /// tally, a whole inter-survivor block of emissions costs two draws
    /// instead of one-plus-two per photon.
    ///
    /// # Panics
    /// Debug-asserts `keep ∈ (0, 1]`.
    pub fn survivor_gap_ns<R: Rng + ?Sized>(&self, keep: f64, rng: &mut R) -> u64 {
        debug_assert!(keep > 0.0 && keep <= 1.0, "bad keep probability {keep}");
        let u: f64 = rng.gen::<f64>().max(1e-300);
        secs_to_ns(-u.ln() / (self.rate_hz * keep))
    }

    /// The next emission instant after `now`.
    pub fn next_emission<R: Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> SimTime {
        now + self.sample_interval(rng)
    }

    /// Whether an emission scheduled at the nominal rate survives a
    /// brownout at `rate_factor` × nominal. Thinning a Poisson process
    /// keeps each event independently with probability `rate_factor`,
    /// which yields exactly a Poisson process at the reduced rate — so a
    /// brownout needs no re-scheduling of pending emissions. Draws no
    /// randomness at `rate_factor ≥ 1`, so fault-free runs keep their
    /// exact RNG stream.
    pub fn brownout_keeps<R: Rng + ?Sized>(&self, rate_factor: f64, rng: &mut R) -> bool {
        debug_assert!(rate_factor >= 0.0, "negative rate factor");
        rate_factor >= 1.0 || rng.gen::<f64>() < rate_factor
    }

    /// Generates one entangled pair: a perfect Bell pair at visibility 1,
    /// otherwise a Werner state.
    ///
    /// # Errors
    /// Never fails for a validly-constructed source; the `Result` conveys
    /// the underlying simulator contract.
    pub fn generate_pair(&self) -> Result<SharedPair, SimError> {
        if self.visibility >= 1.0 {
            Ok(SharedPair::ideal())
        } else {
            SharedPair::werner(self.visibility)
        }
    }
}

/// Converts a gap in seconds to integer nanoseconds (round-to-nearest,
/// clamped to ≥ 1 ns so simulated time strictly advances).
fn secs_to_ns(secs: f64) -> u64 {
    ((secs * 1e9).round() as u64).max(1)
}

/// Number of *lost* photon pairs preceding the next survivor when each
/// pair survives independently with probability `survival`: the count is
/// geometric, sampled in one draw by inverting its CDF
/// (`failures = ⌊ln u / ln(1 − survival)⌋`). Draws nothing at
/// `survival ≥ 1` — lossless links consume no loss randomness.
pub fn geometric_skip<R: Rng + ?Sized>(survival: f64, rng: &mut R) -> u64 {
    debug_assert!(survival > 0.0, "survivor cannot exist at zero survival");
    if survival >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen::<f64>().max(1e-300);
    (u.ln() / (1.0 - survival).ln()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Party;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_interval_matches_rate() {
        let s = EprSource::new(1e6, 1.0);
        assert_eq!(s.mean_interval(), Duration::from_micros(1));
    }

    #[test]
    fn sampled_intervals_have_right_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = EprSource::new(1e5, 1.0);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| s.sample_interval(&mut rng).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 1e-5).abs() < 5e-7, "mean {mean}");
    }

    #[test]
    fn emissions_advance_time() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = EprSource::typical_room_temperature();
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let next = s.next_emission(t, &mut rng);
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn perfect_source_yields_ideal_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = EprSource::new(1e5, 1.0);
        // Perfect pairs are perfectly correlated in a common basis.
        for _ in 0..50 {
            let mut pair = s.generate_pair().unwrap();
            let a = pair.measure_angle(Party::A, 0.3, &mut rng).unwrap();
            let b = pair.measure_angle(Party::B, 0.3, &mut rng).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn noisy_source_yields_werner_statistics() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = 0.7;
        let s = EprSource::new(1e5, v);
        let trials = 10_000;
        let mut agree = 0usize;
        for _ in 0..trials {
            let mut pair = s.generate_pair().unwrap();
            let a = pair.measure_angle(Party::A, 0.0, &mut rng).unwrap();
            let b = pair.measure_angle(Party::B, 0.0, &mut rng).unwrap();
            agree += usize::from(a == b);
        }
        let f = agree as f64 / trials as f64;
        assert!((f - (1.0 + v) / 2.0).abs() < 0.02, "agreement {f}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        EprSource::new(0.0, 1.0);
    }

    #[test]
    fn integer_ns_accumulation_stays_on_rate() {
        // Regression for the f64 → Duration round-trip truncation: count
        // ~10⁶ emissions at 10⁵ pairs/s by accumulating integer-ns gaps
        // over a 10 s horizon, and require the count to sit inside the
        // Wilson interval of the per-ns emission probability. The old
        // truncating path biased every gap short by up to 1 ns, which at
        // ~10⁴ ns mean gaps drifts the count visibly over 10⁶ events.
        let s = EprSource::new(1e5, 1.0);
        let mut rng = StdRng::seed_from_u64(0xACC);
        let horizon_ns: u64 = 10_000_000_000; // 10 s ⇒ E[count] = 10⁶
        let mut t_ns = 0u64;
        let mut count = 0u64;
        loop {
            t_ns += s.sample_interval_ns(&mut rng);
            if t_ns > horizon_ns {
                break;
            }
            count += 1;
        }
        // Poisson(λT) ≈ Binomial(T_ns trials, rate·1e-9 per ns).
        qmath::assert_prob_in!(count, horizon_ns, 1e-4, conf = 0.999);
    }

    #[test]
    fn survivor_gaps_match_thinned_rate() {
        // Thinned process: survivors of p = 0.1 at 10⁶ pairs/s must arrive
        // at 10⁵/s on average.
        let s = EprSource::new(1e6, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let total_ns: u64 = (0..n).map(|_| s.survivor_gap_ns(0.1, &mut rng)).sum();
        let mean = total_ns as f64 / n as f64;
        assert!((mean - 1e4).abs() < 500.0, "mean survivor gap {mean} ns");
    }

    #[test]
    fn geometric_skip_counts_losses_exactly() {
        // E[failures] = (1-p)/p; at p = 0.25 that is 3 lost per survivor.
        let mut rng = StdRng::seed_from_u64(8);
        let n = 50_000u64;
        let total: u64 = (0..n).map(|_| geometric_skip(0.25, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean losses {mean}");
        // Lossless links draw nothing and skip nothing.
        assert_eq!(geometric_skip(1.0, &mut rng), 0);
    }
}
