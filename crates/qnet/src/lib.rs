//! # qnet — discrete-event simulation of the paper's architecture (Fig. 1)
//!
//! Models the hardware substrate the paper proposes, using published
//! parameters (§3):
//!
//! - [`epr::EprSource`]: an SPDC entangled-photon source emitting Bell
//!   pairs at 10⁴–10⁷ pairs/s with a configurable visibility (pair
//!   quality).
//! - [`link::FiberLink`]: optical fiber with standard 0.2 dB/km
//!   attenuation and ~2·10⁸ m/s propagation.
//! - [`qnic::Qnic`]: the quantum NIC — bounded qubit memory with a
//!   16–160 µs room-temperature storage lifetime; a qubit held for time
//!   `t` suffers dephasing `p = (1 − e^{−t/τ})/2` before measurement.
//! - [`distributor::EntanglementDistributor`]: the continuous
//!   entanglement-distribution protocol: a stream of pairs is pushed to two
//!   endpoints ahead of demand, so decisions can be made the instant an
//!   input arrives (Fig. 2).
//! - [`timing`]: the decision-latency comparison of Fig. 2 — pre-shared
//!   entanglement (decide immediately) vs classical coordination (pay at
//!   least one RTT).
//! - [`faults`]: deterministic fault injection — seeded [`FaultPlan`]s
//!   schedule link outages, source brownouts, QNIC capacity clamps, and
//!   decoherence spikes as discrete events the distributor replays.
//!
//! The simulator is event-driven and synchronous, in the style of smoltcp:
//! no async runtime (this is CPU-bound work), explicit time, deterministic
//! given an RNG seed.

pub mod des;
pub mod distributor;
pub mod epr;
pub mod faults;
pub mod link;
pub mod qnic;
pub mod routing;
pub mod swap;
pub mod time;
pub mod timing;
pub mod topology;

pub use des::{EventQueue, HeapQueue};
pub use distributor::{
    ConsumePolicy, DistributorConfig, DistributorStats, EmissionMode, EntanglementDistributor,
};
pub use epr::EprSource;
pub use faults::{FaultClock, FaultKind, FaultPlan, FaultState, FaultWindow, LinkSide};
pub use link::FiberLink;
pub use qnic::{Qnic, StoredQubit};
pub use routing::{allocate, best_path, route_epoch, PairDemand, PairOutcome, Policy, Route};
pub use swap::{entanglement_swap, max_swap_hops, SwapError, SwapOutcome};
pub use time::SimTime;
pub use timing::{DecisionLatencyModel, TimingReport};
pub use topology::{
    line_chain, metro_tree, star, ChainSpec, MetroGraph, MetroTree, MetroTreeParams,
    MultiplexedSource, NodeKind, SwapModel, TopologyError,
};
