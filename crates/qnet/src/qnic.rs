//! The quantum NIC: bounded qubit memory with finite coherence lifetime.
//!
//! §3: "A QNIC supports two main capabilities: it can measure an incoming
//! qubit in a specified basis, and it can optionally store the qubit for a
//! short duration (e.g., 100 µs to 1 ms) … High-fidelity storage at room
//! temperature has been achieved for 16–160 µs."
//!
//! Storage is not free: a qubit held for time `t` with coherence lifetime
//! `τ` suffers dephasing of strength `(1 − e^{−t/τ})/2`
//! ([`qsim::noise::KrausChannel::storage_decay`]). The NIC also evicts
//! qubits held past a configurable maximum age — after a few `τ` they are
//! classical noise and only waste memory slots.

use crate::time::SimTime;
use qsim::noise::KrausChannel;
use std::collections::VecDeque;
use std::time::Duration;

/// Arrivals that overwrote the oldest stored qubit (memory full).
static QNIC_OVERWRITE_DROPS: obs::LazyCounter =
    obs::LazyCounter::new("qnet.qnic.overwrite_drops");
/// Qubits evicted for exceeding the maximum storage age.
static QNIC_EXPIRED: obs::LazyCounter = obs::LazyCounter::new("qnet.qnic.expired");
/// Occupancy high-water mark across all NICs in the process.
static QNIC_OCCUPANCY: obs::LazyGauge = obs::LazyGauge::new("qnet.qnic.occupancy");
/// Qubits evicted when a fault clamped capacity below current occupancy.
static QNIC_CLAMP_EVICTED: obs::LazyCounter = obs::LazyCounter::new("qnet.qnic.clamp_evicted");

/// A qubit half-pair sitting in QNIC memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredQubit {
    /// Identifier linking the two halves of one logical pair.
    pub pair_id: u64,
    /// When this half arrived at the NIC.
    pub arrival: SimTime,
}

/// A quantum NIC's qubit memory.
#[derive(Debug, Clone)]
pub struct Qnic {
    slots: VecDeque<StoredQubit>,
    capacity: usize,
    lifetime: Duration,
    max_age: Duration,
    /// Fault-injected capacity clamp ([`Self::set_capacity_clamp`]).
    clamp: Option<usize>,
    /// Fault-injected τ multiplier ([`Self::set_lifetime_scale`]).
    lifetime_scale: f64,
    /// Trace timeline this NIC's pair-lifecycle events land on
    /// ([`Self::set_trace_track`]); `None` keeps the NIC silent.
    track: Option<trace::Track>,
    /// Qubits dropped because memory was full on arrival.
    pub dropped_full: u64,
    /// Qubits evicted because they exceeded `max_age`.
    pub expired: u64,
    /// Qubits evicted by a capacity clamp taking effect.
    pub clamp_evicted: u64,
}

impl Qnic {
    /// A NIC with `capacity` memory slots, coherence `lifetime` τ, and
    /// eviction age `max_age`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `lifetime` is zero.
    pub fn new(capacity: usize, lifetime: Duration, max_age: Duration) -> Self {
        assert!(capacity > 0, "need at least one memory slot");
        assert!(!lifetime.is_zero(), "lifetime must be positive");
        Qnic {
            slots: VecDeque::with_capacity(capacity),
            capacity,
            lifetime,
            max_age,
            clamp: None,
            lifetime_scale: 1.0,
            track: None,
            dropped_full: 0,
            expired: 0,
            clamp_evicted: 0,
        }
    }

    /// A representative room-temperature NIC: 16 slots, τ = 100 µs,
    /// eviction at 160 µs (the upper end of demonstrated storage, §3).
    pub fn typical_room_temperature() -> Self {
        Qnic::new(
            16,
            Duration::from_micros(100),
            Duration::from_micros(160),
        )
    }

    /// Coherence lifetime τ (nominal, before any fault scaling).
    pub fn lifetime(&self) -> Duration {
        self.lifetime
    }

    /// Assigns the trace timeline for this NIC's stored/expired/dropped
    /// pair-lifecycle events (the distributor wires one per endpoint).
    pub fn set_trace_track(&mut self, track: trace::Track) {
        self.track = Some(track);
    }

    /// Nominal memory capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Capacity currently in force: the nominal capacity, tightened by
    /// any active clamp (never below one slot).
    pub fn effective_capacity(&self) -> usize {
        match self.clamp {
            Some(c) => self.capacity.min(c.max(1)),
            None => self.capacity,
        }
    }

    /// Applies (or clears, with `None`) a fault-injected capacity clamp.
    /// Qubits over the new quota are evicted immediately, oldest first —
    /// they are returned so the caller can prune partner halves — and
    /// counted in `clamp_evicted`, *not* `dropped_full` (which counts
    /// exactly the arrival overwrites).
    pub fn set_capacity_clamp(&mut self, clamp: Option<usize>) -> Vec<StoredQubit> {
        self.clamp = clamp;
        let quota = self.effective_capacity();
        let mut evicted = Vec::new();
        while self.slots.len() > quota {
            evicted.push(self.slots.pop_front().expect("len > quota ≥ 0"));
        }
        self.clamp_evicted += evicted.len() as u64;
        QNIC_CLAMP_EVICTED.add(evicted.len() as u64);
        evicted
    }

    /// Scales the coherence lifetime used by [`Self::decay_channel`] —
    /// a [`crate::faults::FaultKind::DecoherenceSpike`] sets this below 1.
    ///
    /// # Panics
    /// Panics if `scale` is not positive.
    pub fn set_lifetime_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "lifetime scale must be positive");
        self.lifetime_scale = scale;
    }

    /// Number of stored qubits.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no qubits are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Stores an arriving qubit. When memory is full the *oldest* stored
    /// qubit is overwritten (and counted in `dropped_full`): a fresh
    /// photon is always worth more than the most-decohered one, and this
    /// matches how a cyclic memory register behaves. Returns the evicted
    /// qubit, if any.
    pub fn store(&mut self, pair_id: u64, arrival: SimTime) -> Option<StoredQubit> {
        let evicted = if self.slots.len() >= self.effective_capacity() {
            self.dropped_full += 1;
            QNIC_OVERWRITE_DROPS.inc();
            self.slots.pop_front()
        } else {
            None
        };
        self.slots.push_back(StoredQubit { pair_id, arrival });
        QNIC_OCCUPANCY.set_max(self.slots.len() as i64);
        if let (Some(track), true) = (self.track, trace::enabled()) {
            if let Some(ev) = evicted {
                trace::pair(track, trace::PairStage::Dropped, ev.pair_id, arrival.as_nanos());
            }
            trace::pair(track, trace::PairStage::Stored, pair_id, arrival.as_nanos());
        }
        evicted
    }

    /// Evicts qubits older than `max_age` as of `now`. Returns how many
    /// were evicted.
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let before = self.slots.len();
        let max_age = self.max_age;
        if let (Some(track), true) = (self.track, trace::enabled()) {
            // Tracing wants the evicted ids, so walk explicitly; the
            // untraced path below keeps the allocation-free `retain`.
            let mut kept = VecDeque::with_capacity(self.slots.len());
            for q in self.slots.drain(..) {
                if now.duration_since(q.arrival) <= max_age {
                    kept.push_back(q);
                } else {
                    trace::pair(track, trace::PairStage::Expired, q.pair_id, now.as_nanos());
                }
            }
            self.slots = kept;
        } else {
            self.slots.retain(|q| now.duration_since(q.arrival) <= max_age);
        }
        let evicted = before - self.slots.len();
        self.expired += evicted as u64;
        QNIC_EXPIRED.add(evicted as u64);
        evicted
    }

    /// Takes the oldest stored qubit (FIFO).
    pub fn take_oldest(&mut self) -> Option<StoredQubit> {
        self.slots.pop_front()
    }

    /// Takes the newest stored qubit (LIFO — freshest-first maximizes the
    /// consumed pair's fidelity, at the cost of letting older qubits age
    /// out; cf. §3's suggestion to arrange for qubits to arrive just
    /// before use).
    pub fn take_newest(&mut self) -> Option<StoredQubit> {
        self.slots.pop_back()
    }

    /// Removes and returns the stored qubit with `pair_id`, if present.
    pub fn take_pair_id(&mut self, pair_id: u64) -> Option<StoredQubit> {
        let pos = self.slots.iter().position(|q| q.pair_id == pair_id)?;
        self.slots.remove(pos)
    }

    /// The dephasing channel this NIC applies to a qubit consumed at
    /// `now` after arriving at `arrival`.
    pub fn decay_channel(&self, arrival: SimTime, now: SimTime) -> KrausChannel {
        let held = now.duration_since(arrival).as_secs_f64();
        KrausChannel::storage_decay(held, self.lifetime.as_secs_f64() * self.lifetime_scale)
            .expect("held ≥ 0 and lifetime > 0 by construction")
    }

    /// The coherence retention `d = exp(−held/τ)` of a qubit consumed at
    /// `now` — the closed-form equivalent of [`Self::decay_channel`]
    /// (`storage_decay` picks its Kraus probability so the off-diagonal
    /// scale factor `1 − 2p` equals exactly this `d`). Used by the
    /// [`qsim::werner::WernerPair`] measurement kernel.
    pub fn retention(&self, arrival: SimTime, now: SimTime) -> f64 {
        let held = now.duration_since(arrival).as_secs_f64();
        (-held / (self.lifetime.as_secs_f64() * self.lifetime_scale)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::{bell, DensityMatrix};

    fn nic() -> Qnic {
        Qnic::new(2, Duration::from_micros(100), Duration::from_micros(160))
    }

    #[test]
    fn store_and_take_fifo() {
        let mut n = nic();
        assert!(n.store(1, SimTime::from_micros(0)).is_none());
        assert!(n.store(2, SimTime::from_micros(1)).is_none());
        assert_eq!(n.len(), 2);
        assert_eq!(n.take_oldest().unwrap().pair_id, 1);
        assert_eq!(n.take_oldest().unwrap().pair_id, 2);
        assert!(n.take_oldest().is_none());
    }

    #[test]
    fn capacity_overwrites_oldest() {
        let mut n = nic();
        assert!(n.store(1, SimTime::ZERO).is_none());
        assert!(n.store(2, SimTime::ZERO).is_none());
        let evicted = n.store(3, SimTime::ZERO).expect("full memory evicts");
        assert_eq!(evicted.pair_id, 1, "oldest is overwritten");
        assert_eq!(n.dropped_full, 1);
        assert_eq!(n.len(), 2);
        assert_eq!(n.take_oldest().unwrap().pair_id, 2);
        assert_eq!(n.take_oldest().unwrap().pair_id, 3);
    }

    #[test]
    fn eviction_by_age() {
        let mut n = nic();
        n.store(1, SimTime::from_micros(0));
        n.store(2, SimTime::from_micros(100));
        let evicted = n.evict_expired(SimTime::from_micros(200));
        assert_eq!(evicted, 1, "only the 200µs-old qubit expires");
        assert_eq!(n.expired, 1);
        assert_eq!(n.take_oldest().unwrap().pair_id, 2);
    }

    #[test]
    fn take_by_pair_id() {
        let mut n = nic();
        n.store(7, SimTime::ZERO);
        n.store(9, SimTime::ZERO);
        assert_eq!(n.take_pair_id(9).unwrap().pair_id, 9);
        assert!(n.take_pair_id(9).is_none());
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn decay_channel_strength_grows_with_hold_time() {
        let n = nic();
        let rho = DensityMatrix::from_pure(&bell::phi_plus());

        // Fresh qubit: nearly no decay.
        let ch = n.decay_channel(SimTime::ZERO, SimTime::ZERO);
        let out = ch.apply(&rho, 0).unwrap();
        assert!((out.purity() - 1.0).abs() < 1e-9);

        // Held 100 µs = τ: substantial dephasing.
        let ch = n.decay_channel(SimTime::ZERO, SimTime::from_micros(100));
        let out = ch.apply(&rho, 0).unwrap();
        assert!(out.purity() < 0.9);
        assert!(out.is_valid(1e-8));
    }

    #[test]
    #[should_panic(expected = "at least one memory slot")]
    fn zero_capacity_panics() {
        Qnic::new(0, Duration::from_micros(1), Duration::from_micros(1));
    }

    #[test]
    fn capacity_clamp_evicts_oldest_and_counts_separately() {
        let mut n = Qnic::new(4, Duration::from_micros(100), Duration::from_micros(160));
        for id in 0..4 {
            n.store(id, SimTime::from_micros(id));
        }
        let evicted = n.set_capacity_clamp(Some(2));
        assert_eq!(evicted.iter().map(|q| q.pair_id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(n.len(), 2);
        assert_eq!(n.effective_capacity(), 2);
        assert_eq!(n.clamp_evicted, 2);
        assert_eq!(n.dropped_full, 0, "clamp evictions are not overwrite drops");

        // While clamped, stores overwrite at the clamped quota.
        n.store(10, SimTime::from_micros(10));
        assert_eq!(n.dropped_full, 1);
        assert_eq!(n.len(), 2);

        // Clearing the clamp restores the nominal quota without eviction.
        assert!(n.set_capacity_clamp(None).is_empty());
        assert_eq!(n.effective_capacity(), 4);
        n.store(11, SimTime::from_micros(11));
        assert_eq!(n.dropped_full, 1);
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn clamp_never_drops_below_one_slot() {
        let mut n = Qnic::new(4, Duration::from_micros(100), Duration::from_micros(160));
        n.store(1, SimTime::ZERO);
        n.store(2, SimTime::ZERO);
        let evicted = n.set_capacity_clamp(Some(0));
        assert_eq!(n.effective_capacity(), 1);
        assert_eq!(evicted.len(), 1);
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn retention_matches_decay_channel_coherence_scale() {
        // `retention` must be the exact off-diagonal scale factor of
        // `decay_channel`: apply the channel to |Φ⁺⟩ and compare the
        // surviving |00⟩⟨11| coherence against d/2.
        let mut n = nic();
        for (held_us, scale) in [(0u64, 1.0), (50, 1.0), (100, 0.25), (250, 0.5)] {
            n.set_lifetime_scale(scale);
            let now = SimTime::from_micros(held_us);
            let rho = DensityMatrix::from_pure(&bell::phi_plus());
            let out = n.decay_channel(SimTime::ZERO, now).apply(&rho, 0).unwrap();
            let coherence = out.matrix().row(0)[3].re;
            let d = n.retention(SimTime::ZERO, now);
            assert!(
                (coherence - d / 2.0).abs() < 1e-12,
                "held {held_us}µs scale {scale}: coherence {coherence} vs d/2 {}",
                d / 2.0
            );
        }
    }

    #[test]
    fn lifetime_scale_accelerates_decay() {
        let mut n = nic();
        let rho = DensityMatrix::from_pure(&bell::phi_plus());
        let held = SimTime::from_micros(50);
        let nominal = n.decay_channel(SimTime::ZERO, held).apply(&rho, 0).unwrap();
        n.set_lifetime_scale(0.25);
        let spiked = n.decay_channel(SimTime::ZERO, held).apply(&rho, 0).unwrap();
        assert!(
            spiked.purity() < nominal.purity(),
            "spiked τ must dephase faster: {} vs {}",
            spiked.purity(),
            nominal.purity()
        );
    }
}
