//! Metro-scale entanglement topology — repeater chains and multiplexed
//! sources over a fiber graph.
//!
//! The data plane so far is one SPDC source feeding two QNICs. A metro
//! deployment distributes entanglement over a *graph*: server nodes at
//! the edge, repeater stations in the middle, SPDC sources multiplexed
//! across the fiber edges they pump, and per-edge length/loss from the
//! standard attenuation law ([`crate::link::FiberLink`]).
//!
//! A route between two servers is a *repeater chain*: `h` elementary
//! pairs (one per fiber hop) fused by `h − 1` Bell-state measurements
//! ([`crate::swap`]). Each swap succeeds with probability
//! [`SwapModel::success`] (heralding) and, when it succeeds, mixes the
//! state toward white noise with weight `1 − ideality` (imperfect BSM
//! optics). The chain therefore has closed forms
//!
//! ```text
//! v_e2e = ∏ v_hop · ideality^(h−1)
//! p_e2e = ∏ survival_hop · success^(h−1)
//! ```
//!
//! pinned to 1e-12 against a hop-by-hop density-matrix oracle
//! ([`ChainSpec::oracle_visibility`]) that literally performs every swap
//! with [`crate::swap::entanglement_swap`] — the same kernel/oracle
//! pattern as `qsim::werner` and `qsim::ghz`.
//!
//! Grounding: da Silva & Wehner ("Entanglement improves coordination in
//! distributed systems") studies coordination over exactly these
//! distribution networks; Luo ("A nonlocal game for witnessing quantum
//! networks") supplies the acceptance criterion — a chain whose `v_e2e`
//! is at or below `1/√2` cannot witness CHSH advantage
//! ([`ChainSpec::witnesses_chsh`]).

use crate::link::FiberLink;
use crate::swap::{entanglement_swap, SwapError};
use qsim::{DensityMatrix, SimError};
use rand::Rng;

/// Chains composed (closed-form spec construction).
static CHAINS: obs::LazyCounter = obs::LazyCounter::new("qnet.topology.chains");

/// What a graph node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host: may originate/terminate chains, never relays them.
    Server,
    /// A repeater station: relays chains via entanglement swapping.
    Repeater,
}

/// An SPDC source pumping one or more fiber edges. Its per-epoch
/// emission budget is time-shared across every chain routed over an
/// edge it pumps — the contention the scheduler arbitrates.
#[derive(Debug, Clone, Copy)]
pub struct MultiplexedSource {
    /// Elementary-pair emissions available per scheduling epoch.
    pub budget_per_epoch: u64,
}

/// A fiber edge between two nodes, pumped by one source.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// One endpoint (node id).
    pub a: u32,
    /// The other endpoint (node id).
    pub b: u32,
    /// The fiber span (length → survival probability).
    pub fiber: FiberLink,
    /// Werner visibility of the elementary pair this edge delivers.
    pub visibility: f64,
    /// Index of the [`MultiplexedSource`] pumping this edge.
    pub source: u32,
}

impl Edge {
    /// The endpoint opposite `node`, if `node` is an endpoint at all.
    pub fn other(&self, node: u32) -> Option<u32> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Topology-layer input errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyError {
    /// A node id that was never added.
    UnknownNode {
        /// The offending id.
        node: u32,
    },
    /// A source id that was never added.
    UnknownSource {
        /// The offending id.
        source: u32,
    },
    /// An edge from a node to itself.
    SelfLoop {
        /// The node in question.
        node: u32,
    },
    /// A chain with no hops.
    EmptyChain,
    /// Hop lists of different lengths.
    HopMismatch {
        /// Visibility entries.
        visibilities: usize,
        /// Survival entries.
        survivals: usize,
    },
    /// An edge list that is not a connected path.
    BrokenPath {
        /// Index of the first edge that does not continue the path.
        at: usize,
    },
    /// No usable path between two nodes (every route cut or absent).
    NoRoute {
        /// Origin node.
        from: u32,
        /// Destination node.
        to: u32,
    },
    /// A bad visibility or probability (NaN included).
    Swap(SwapError),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode { node } => write!(f, "unknown node {node}"),
            TopologyError::UnknownSource { source } => write!(f, "unknown source {source}"),
            TopologyError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            TopologyError::EmptyChain => write!(f, "chain has no hops"),
            TopologyError::HopMismatch {
                visibilities,
                survivals,
            } => write!(
                f,
                "hop mismatch: {visibilities} visibilities vs {survivals} survivals"
            ),
            TopologyError::BrokenPath { at } => {
                write!(f, "edge list is not a path (breaks at edge index {at})")
            }
            TopologyError::NoRoute { from, to } => {
                write!(f, "no usable route from node {from} to node {to}")
            }
            TopologyError::Swap(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<SwapError> for TopologyError {
    fn from(e: SwapError) -> Self {
        TopologyError::Swap(e)
    }
}

/// The per-swap noise model shared by every repeater in a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapModel {
    /// Probability a Bell-state measurement heralds success (linear-optics
    /// BSMs cap this at 1/2; boosted schemes do better).
    pub success: f64,
    /// Visibility retained by a *successful* swap: the output is mixed
    /// with white noise at weight `1 − ideality`.
    pub ideality: f64,
}

impl SwapModel {
    /// A validated swap model.
    ///
    /// # Errors
    /// [`SwapError::BadProbability`] for `success ∉ [0, 1]`,
    /// [`SwapError::BadVisibility`] for `ideality ∉ [0, 1]` (NaN
    /// included in both).
    pub fn new(success: f64, ideality: f64) -> Result<Self, SwapError> {
        if !(0.0..=1.0).contains(&success) {
            return Err(SwapError::BadProbability { value: success });
        }
        if !(0.0..=1.0).contains(&ideality) {
            return Err(SwapError::BadVisibility { value: ideality });
        }
        Ok(SwapModel { success, ideality })
    }

    /// The ideal repeater: every BSM heralds and loses nothing.
    pub fn perfect() -> Self {
        SwapModel {
            success: 1.0,
            ideality: 1.0,
        }
    }
}

/// A multi-hop repeater chain, reduced to what the physics needs: per-hop
/// elementary-pair visibilities, per-hop photon survivals, and the swap
/// model fusing them. Built directly or from a routed path via
/// [`MetroGraph::chain_spec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSpec {
    hop_visibilities: Vec<f64>,
    hop_survivals: Vec<f64>,
    swap: SwapModel,
}

impl ChainSpec {
    /// A validated chain over the given hops.
    ///
    /// # Errors
    /// [`TopologyError::EmptyChain`] for zero hops,
    /// [`TopologyError::HopMismatch`] for unequal lists, and
    /// [`TopologyError::Swap`] for any out-of-range visibility or
    /// survival probability.
    pub fn new(
        hop_visibilities: Vec<f64>,
        hop_survivals: Vec<f64>,
        swap: SwapModel,
    ) -> Result<Self, TopologyError> {
        if hop_visibilities.is_empty() {
            return Err(TopologyError::EmptyChain);
        }
        if hop_visibilities.len() != hop_survivals.len() {
            return Err(TopologyError::HopMismatch {
                visibilities: hop_visibilities.len(),
                survivals: hop_survivals.len(),
            });
        }
        for &v in &hop_visibilities {
            if !(0.0..=1.0).contains(&v) {
                return Err(SwapError::BadVisibility { value: v }.into());
            }
        }
        for &s in &hop_survivals {
            if !(0.0..=1.0).contains(&s) {
                return Err(SwapError::BadProbability { value: s }.into());
            }
        }
        SwapModel::new(swap.success, swap.ideality)?;
        CHAINS.inc();
        Ok(ChainSpec {
            hop_visibilities,
            hop_survivals,
            swap,
        })
    }

    /// A uniform chain: `hops` identical links.
    ///
    /// # Errors
    /// As [`ChainSpec::new`].
    pub fn uniform(
        hops: usize,
        hop_visibility: f64,
        hop_survival: f64,
        swap: SwapModel,
    ) -> Result<Self, TopologyError> {
        ChainSpec::new(
            vec![hop_visibility; hops],
            vec![hop_survival; hops],
            swap,
        )
    }

    /// Number of fiber hops.
    pub fn hops(&self) -> usize {
        self.hop_visibilities.len()
    }

    /// Number of Bell-state measurements fusing the hops.
    pub fn swaps(&self) -> usize {
        self.hops() - 1
    }

    /// Per-hop elementary-pair visibilities.
    pub fn hop_visibilities(&self) -> &[f64] {
        &self.hop_visibilities
    }

    /// The swap model in force.
    pub fn swap_model(&self) -> SwapModel {
        self.swap
    }

    /// Closed-form end-to-end Werner visibility:
    /// `∏ v_hop · ideality^(h−1)`. Swapping Werner pairs multiplies
    /// visibilities, and each imperfect BSM mixes in white noise at
    /// weight `1 − ideality` — pinned to 1e-12 against
    /// [`Self::oracle_visibility`].
    pub fn end_to_end_visibility(&self) -> f64 {
        let product: f64 = self.hop_visibilities.iter().product();
        product * self.swap.ideality.powi(self.swaps() as i32)
    }

    /// Closed-form probability one attempt delivers the end-to-end pair:
    /// every hop's photons survive and every BSM heralds success.
    pub fn success_probability(&self) -> f64 {
        let survive: f64 = self.hop_survivals.iter().product();
        survive * self.swap.success.powi(self.swaps() as i32)
    }

    /// Whether the delivered pair can still witness CHSH advantage
    /// (Luo-style network certificate): `v_e2e` strictly above `1/√2`.
    pub fn witnesses_chsh(&self) -> bool {
        self.end_to_end_visibility() > qsim::noise::WERNER_CHSH_THRESHOLD
    }

    /// Samples one delivery attempt with a single uniform draw against
    /// the closed-form success probability. One draw per attempt keeps
    /// the RNG stream independent of hop count, so sweep points stay
    /// deterministic under grid changes.
    pub fn sample_attempt<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.success_probability()
    }

    /// Hop-by-hop density-matrix oracle for
    /// [`Self::end_to_end_visibility`]: builds each elementary Werner
    /// pair, fuses them left-to-right with real
    /// [`entanglement_swap`] BSMs, mixes each successful swap's output
    /// with white noise at weight `1 − ideality`, and reads the final
    /// visibility back out with state tomography. O(h) 4×4 — 16×16
    /// intermediate — matrix algebra versus the closed form's O(h)
    /// multiplies; tests pin the two to 1e-12.
    ///
    /// # Errors
    /// Propagates [`SimError`] from the underlying simulator (cannot
    /// occur for a validated spec).
    pub fn oracle_visibility<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<f64, SimError> {
        let mut pair = qsim::noise::werner(self.hop_visibilities[0])?;
        for &v in &self.hop_visibilities[1..] {
            let next = qsim::noise::werner(v)?;
            let fused = entanglement_swap(&pair, &next, rng)?.pair;
            pair = DensityMatrix::mixture(&[
                (self.swap.ideality, fused),
                (1.0 - self.swap.ideality, DensityMatrix::maximally_mixed(2)),
            ])?;
        }
        qsim::tomography::werner_visibility(&pair)
    }
}

/// A deterministic metro graph: nodes, fiber edges, and the multiplexed
/// sources pumping them. Construction is validating; node/edge/source
/// ids are dense indices in insertion order.
#[derive(Debug, Clone)]
pub struct MetroGraph {
    nodes: Vec<NodeKind>,
    edges: Vec<Edge>,
    sources: Vec<MultiplexedSource>,
    /// adj[node] = edge ids incident to the node, in insertion order.
    adj: Vec<Vec<u32>>,
    swap: SwapModel,
}

impl MetroGraph {
    /// An empty graph whose repeaters all share one swap model.
    pub fn new(swap: SwapModel) -> Self {
        MetroGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            sources: Vec::new(),
            adj: Vec::new(),
            swap,
        }
    }

    /// Adds a server node; returns its id.
    pub fn add_server(&mut self) -> u32 {
        self.add_node(NodeKind::Server)
    }

    /// Adds a repeater node; returns its id.
    pub fn add_repeater(&mut self) -> u32 {
        self.add_node(NodeKind::Repeater)
    }

    fn add_node(&mut self, kind: NodeKind) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(kind);
        self.adj.push(Vec::new());
        id
    }

    /// Adds a multiplexed source with the given per-epoch budget;
    /// returns its id.
    pub fn add_source(&mut self, budget_per_epoch: u64) -> u32 {
        let id = self.sources.len() as u32;
        self.sources.push(MultiplexedSource { budget_per_epoch });
        id
    }

    /// Connects two nodes with a fiber edge of the given length and
    /// elementary-pair visibility, pumped by `source`; returns the edge
    /// id.
    ///
    /// # Errors
    /// [`TopologyError`] for unknown endpoints or source, a self-loop,
    /// or an out-of-range visibility.
    pub fn connect(
        &mut self,
        a: u32,
        b: u32,
        length_km: f64,
        visibility: f64,
        source: u32,
    ) -> Result<u32, TopologyError> {
        for node in [a, b] {
            if node as usize >= self.nodes.len() {
                return Err(TopologyError::UnknownNode { node });
            }
        }
        if a == b {
            return Err(TopologyError::SelfLoop { node: a });
        }
        if source as usize >= self.sources.len() {
            return Err(TopologyError::UnknownSource { source });
        }
        if !(0.0..=1.0).contains(&visibility) {
            return Err(SwapError::BadVisibility { value: visibility }.into());
        }
        let id = self.edges.len() as u32;
        self.edges.push(Edge {
            a,
            b,
            fiber: FiberLink::new(length_km),
            visibility,
            source,
        });
        self.adj[a as usize].push(id);
        self.adj[b as usize].push(id);
        Ok(id)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The kind of a node.
    pub fn node_kind(&self, node: u32) -> NodeKind {
        self.nodes[node as usize]
    }

    /// All edges, indexed by edge id.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// All sources, indexed by source id.
    pub fn sources(&self) -> &[MultiplexedSource] {
        &self.sources
    }

    /// Edge ids incident to a node.
    pub fn adjacent(&self, node: u32) -> &[u32] {
        &self.adj[node as usize]
    }

    /// The graph-wide swap model.
    pub fn swap_model(&self) -> SwapModel {
        self.swap
    }

    /// Reduces a routed path (a connected list of edge ids) to its
    /// [`ChainSpec`].
    ///
    /// # Errors
    /// [`TopologyError::EmptyChain`] for no edges,
    /// [`TopologyError::UnknownNode`] for a bad edge id (reported as the
    /// index), or [`TopologyError::BrokenPath`] when consecutive edges
    /// do not share an endpoint.
    pub fn chain_spec(&self, edge_ids: &[u32]) -> Result<ChainSpec, TopologyError> {
        let edges = self.path_edges(edge_ids)?;
        ChainSpec::new(
            edges.iter().map(|e| e.visibility).collect(),
            edges.iter().map(|e| e.fiber.survival_probability()).collect(),
            self.swap,
        )
    }

    /// Per-source elementary-pair emissions one end-to-end attempt over
    /// the path consumes: one emission per edge, charged to that edge's
    /// source, aggregated by source id (ascending).
    ///
    /// # Errors
    /// As [`Self::chain_spec`].
    pub fn emissions_per_attempt(
        &self,
        edge_ids: &[u32],
    ) -> Result<Vec<(u32, u64)>, TopologyError> {
        let edges = self.path_edges(edge_ids)?;
        let mut by_source: Vec<(u32, u64)> = Vec::new();
        for e in &edges {
            match by_source.iter_mut().find(|(s, _)| *s == e.source) {
                Some((_, n)) => *n += 1,
                None => by_source.push((e.source, 1)),
            }
        }
        by_source.sort_unstable_by_key(|&(s, _)| s);
        Ok(by_source)
    }

    fn path_edges(&self, edge_ids: &[u32]) -> Result<Vec<Edge>, TopologyError> {
        if edge_ids.is_empty() {
            return Err(TopologyError::EmptyChain);
        }
        let mut edges = Vec::with_capacity(edge_ids.len());
        for (i, &id) in edge_ids.iter().enumerate() {
            let e = *self
                .edges
                .get(id as usize)
                .ok_or(TopologyError::UnknownNode { node: id })?;
            if i > 0 {
                let prev: Edge = edges[i - 1];
                let joined = [prev.a, prev.b]
                    .iter()
                    .any(|&n| e.other(n).is_some());
                if !joined {
                    return Err(TopologyError::BrokenPath { at: i });
                }
            }
            edges.push(e);
        }
        Ok(edges)
    }
}

/// Builds a line chain: `server — R₁ — … — R_{hops−1} — server`, every
/// hop `hop_km` long at `hop_visibility`, each pumped by its own
/// dedicated source of `budget_per_source`. Returns the graph and the
/// two server endpoints.
///
/// # Errors
/// [`TopologyError`] for zero hops or out-of-range parameters.
pub fn line_chain(
    hops: usize,
    hop_km: f64,
    hop_visibility: f64,
    swap: SwapModel,
    budget_per_source: u64,
) -> Result<(MetroGraph, u32, u32), TopologyError> {
    if hops == 0 {
        return Err(TopologyError::EmptyChain);
    }
    let mut g = MetroGraph::new(swap);
    let left = g.add_server();
    let mut prev = left;
    for h in 0..hops {
        let next = if h + 1 == hops {
            g.add_server()
        } else {
            g.add_repeater()
        };
        let src = g.add_source(budget_per_source);
        g.connect(prev, next, hop_km, hop_visibility, src)?;
        prev = next;
    }
    Ok((g, left, prev))
}

/// Builds a star: one hub repeater, `fanout` server pairs, every arm
/// `arm_km` long at `arm_visibility` — and ONE shared source pumping
/// every arm, so each 2-hop chain costs 2 emissions from the same
/// budget. This is the contention topology: per-pair delivered rate
/// falls as `1/fanout`. Returns the graph and the server pairs.
///
/// # Errors
/// [`TopologyError`] for zero fanout or out-of-range parameters.
pub fn star(
    fanout: usize,
    arm_km: f64,
    arm_visibility: f64,
    swap: SwapModel,
    shared_budget: u64,
) -> Result<(MetroGraph, Vec<(u32, u32)>), TopologyError> {
    if fanout == 0 {
        return Err(TopologyError::EmptyChain);
    }
    let mut g = MetroGraph::new(swap);
    let hub = g.add_repeater();
    let src = g.add_source(shared_budget);
    let mut pairs = Vec::with_capacity(fanout);
    for _ in 0..fanout {
        let a = g.add_server();
        let b = g.add_server();
        g.connect(a, hub, arm_km, arm_visibility, src)?;
        g.connect(b, hub, arm_km, arm_visibility, src)?;
        pairs.push((a, b));
    }
    Ok((g, pairs))
}

/// The named pieces of [`metro_tree`], so experiments can cut specific
/// trunks and watch the blast radius.
#[derive(Debug, Clone, Copy)]
pub struct MetroTree {
    /// Servers `[s0, s1]` in rack A, `[s2, s3]` in rack B.
    pub servers: [u32; 4],
    /// Aggregation repeaters `[rack A, rack B]`.
    pub agg: [u32; 2],
    /// Primary core repeater.
    pub core_primary: u32,
    /// Backup core repeater (longer, lossier trunks).
    pub core_backup: u32,
    /// Primary trunk edges `[A→core, core→B]`.
    pub primary_trunks: [u32; 2],
    /// Backup trunk edges `[A→backup, backup→B]`.
    pub backup_trunks: [u32; 2],
}

/// Parameters for [`metro_tree`].
#[derive(Debug, Clone, Copy)]
pub struct MetroTreeParams {
    /// Server → aggregation-repeater span, km.
    pub leaf_km: f64,
    /// Elementary visibility on leaf edges.
    pub leaf_visibility: f64,
    /// Aggregation → primary-core span, km.
    pub trunk_km: f64,
    /// Elementary visibility on primary trunks.
    pub trunk_visibility: f64,
    /// Aggregation → backup-core span, km (typically longer).
    pub backup_km: f64,
    /// Elementary visibility on backup trunks (typically worse).
    pub backup_visibility: f64,
    /// Per-epoch budget of each rack's leaf source.
    pub leaf_budget: u64,
    /// Per-epoch budget of each trunk source.
    pub trunk_budget: u64,
}

/// Builds the 2-tier metro tree: 2 racks × 2 servers behind per-rack
/// aggregation repeaters, joined through a primary core repeater, with a
/// backup core on longer/lossier trunks. Sources: one leaf source per
/// rack (shared by its 2 leaf edges), one source per trunk pair.
/// Cross-rack chains route `s — agg — core — agg' — s'` (4 hops);
/// intra-rack chains route `s — agg — s'` (2 hops).
///
/// # Errors
/// [`TopologyError`] for out-of-range parameters.
pub fn metro_tree(
    swap: SwapModel,
    p: MetroTreeParams,
) -> Result<(MetroGraph, MetroTree), TopologyError> {
    let mut g = MetroGraph::new(swap);
    let agg_a = g.add_repeater();
    let agg_b = g.add_repeater();
    let core = g.add_repeater();
    let backup = g.add_repeater();
    let leaf_src_a = g.add_source(p.leaf_budget);
    let leaf_src_b = g.add_source(p.leaf_budget);
    let trunk_src = g.add_source(p.trunk_budget);
    let backup_src = g.add_source(p.trunk_budget);

    let s0 = g.add_server();
    let s1 = g.add_server();
    let s2 = g.add_server();
    let s3 = g.add_server();
    for s in [s0, s1] {
        g.connect(s, agg_a, p.leaf_km, p.leaf_visibility, leaf_src_a)?;
    }
    for s in [s2, s3] {
        g.connect(s, agg_b, p.leaf_km, p.leaf_visibility, leaf_src_b)?;
    }
    let pt_a = g.connect(agg_a, core, p.trunk_km, p.trunk_visibility, trunk_src)?;
    let pt_b = g.connect(core, agg_b, p.trunk_km, p.trunk_visibility, trunk_src)?;
    let bt_a = g.connect(agg_a, backup, p.backup_km, p.backup_visibility, backup_src)?;
    let bt_b = g.connect(backup, agg_b, p.backup_km, p.backup_visibility, backup_src)?;

    let tree = MetroTree {
        servers: [s0, s1, s2, s3],
        agg: [agg_a, agg_b],
        core_primary: core,
        core_backup: backup,
        primary_trunks: [pt_a, pt_b],
        backup_trunks: [bt_a, bt_b],
    };
    Ok((g, tree))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn swap() -> SwapModel {
        SwapModel::new(0.9, 0.97).unwrap()
    }

    #[test]
    fn chain_closed_forms() {
        let c = ChainSpec::new(
            vec![0.98, 0.96, 0.99],
            vec![0.9, 0.8, 0.7],
            swap(),
        )
        .unwrap();
        assert_eq!(c.hops(), 3);
        assert_eq!(c.swaps(), 2);
        let v = 0.98 * 0.96 * 0.99 * 0.97f64.powi(2);
        let p = 0.9 * 0.8 * 0.7 * 0.9f64.powi(2);
        assert!((c.end_to_end_visibility() - v).abs() < 1e-15);
        assert!((c.success_probability() - p).abs() < 1e-15);
    }

    #[test]
    fn single_hop_has_no_swap_penalty() {
        let c = ChainSpec::uniform(1, 0.95, 0.5, swap()).unwrap();
        assert_eq!(c.swaps(), 0);
        assert!((c.end_to_end_visibility() - 0.95).abs() < 1e-15);
        assert!((c.success_probability() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn oracle_pins_closed_form() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = ChainSpec::new(
            vec![0.98, 0.92, 0.99, 0.95],
            vec![1.0; 4],
            swap(),
        )
        .unwrap();
        let oracle = c.oracle_visibility(&mut rng).unwrap();
        assert!(
            (oracle - c.end_to_end_visibility()).abs() < 1e-12,
            "oracle {oracle} vs closed form {}",
            c.end_to_end_visibility()
        );
    }

    #[test]
    fn chain_validation() {
        assert_eq!(
            ChainSpec::new(vec![], vec![], swap()).unwrap_err(),
            TopologyError::EmptyChain
        );
        assert!(matches!(
            ChainSpec::new(vec![0.9], vec![0.5, 0.5], swap()).unwrap_err(),
            TopologyError::HopMismatch { .. }
        ));
        assert!(matches!(
            ChainSpec::new(vec![1.1], vec![0.5], swap()).unwrap_err(),
            TopologyError::Swap(SwapError::BadVisibility { .. })
        ));
        assert!(matches!(
            ChainSpec::new(vec![0.9], vec![f64::NAN], swap()).unwrap_err(),
            TopologyError::Swap(SwapError::BadProbability { .. })
        ));
        assert!(matches!(
            SwapModel::new(1.5, 0.9).unwrap_err(),
            SwapError::BadProbability { .. }
        ));
        assert!(matches!(
            SwapModel::new(0.5, -0.1).unwrap_err(),
            SwapError::BadVisibility { .. }
        ));
    }

    #[test]
    fn graph_validation() {
        let mut g = MetroGraph::new(swap());
        let a = g.add_server();
        let b = g.add_server();
        let src = g.add_source(100);
        assert!(matches!(
            g.connect(a, 99, 1.0, 0.9, src).unwrap_err(),
            TopologyError::UnknownNode { node: 99 }
        ));
        assert!(matches!(
            g.connect(a, a, 1.0, 0.9, src).unwrap_err(),
            TopologyError::SelfLoop { .. }
        ));
        assert!(matches!(
            g.connect(a, b, 1.0, 0.9, 7).unwrap_err(),
            TopologyError::UnknownSource { source: 7 }
        ));
        assert!(matches!(
            g.connect(a, b, 1.0, 1.01, src).unwrap_err(),
            TopologyError::Swap(SwapError::BadVisibility { .. })
        ));
        let e = g.connect(a, b, 10.0, 0.98, src).unwrap();
        assert_eq!(g.adjacent(a), &[e]);
        assert_eq!(g.adjacent(b), &[e]);
    }

    #[test]
    fn line_chain_shape_and_spec() {
        let (g, left, right) = line_chain(4, 10.0, 0.98, swap(), 1000).unwrap();
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.edges().len(), 4);
        assert_eq!(g.sources().len(), 4);
        assert_eq!(g.node_kind(left), NodeKind::Server);
        assert_eq!(g.node_kind(right), NodeKind::Server);
        let path: Vec<u32> = (0..4).collect();
        let spec = g.chain_spec(&path).unwrap();
        assert_eq!(spec.hops(), 4);
        let s = FiberLink::new(10.0).survival_probability();
        let expect_v = 0.98f64.powi(4) * 0.97f64.powi(3);
        let expect_p = s.powi(4) * 0.9f64.powi(3);
        assert!((spec.end_to_end_visibility() - expect_v).abs() < 1e-15);
        assert!((spec.success_probability() - expect_p).abs() < 1e-15);
    }

    #[test]
    fn star_shares_one_source() {
        let (g, pairs) = star(4, 5.0, 0.98, swap(), 10_000).unwrap();
        assert_eq!(pairs.len(), 4);
        assert_eq!(g.sources().len(), 1);
        // Every 2-hop chain costs 2 emissions from source 0.
        for &(a, b) in &pairs {
            let ea = g.adjacent(a)[0];
            let eb = g.adjacent(b)[0];
            let em = g.emissions_per_attempt(&[ea, eb]).unwrap();
            assert_eq!(em, vec![(0, 2)]);
        }
    }

    #[test]
    fn broken_path_rejected() {
        // Edges 0 and 2 of a 3-hop line share no endpoint.
        let (g, _, _) = line_chain(3, 1.0, 0.99, swap(), 100).unwrap();
        assert!(matches!(
            g.chain_spec(&[0, 2]).unwrap_err(),
            TopologyError::BrokenPath { at: 1 }
        ));
    }

    #[test]
    fn metro_tree_shape() {
        let (g, tree) = metro_tree(
            swap(),
            MetroTreeParams {
                leaf_km: 2.0,
                leaf_visibility: 0.98,
                trunk_km: 15.0,
                trunk_visibility: 0.99,
                backup_km: 25.0,
                backup_visibility: 0.85,
                leaf_budget: 1000,
                trunk_budget: 1000,
            },
        )
        .unwrap();
        assert_eq!(g.n_nodes(), 8);
        assert_eq!(g.edges().len(), 8);
        assert_eq!(g.sources().len(), 4);
        for s in tree.servers {
            assert_eq!(g.node_kind(s), NodeKind::Server);
        }
        for e in tree.primary_trunks.iter().chain(&tree.backup_trunks) {
            let edge = g.edges()[*e as usize];
            assert_eq!(g.node_kind(edge.a), NodeKind::Repeater);
            assert_eq!(g.node_kind(edge.b), NodeKind::Repeater);
        }
    }

    #[test]
    fn sample_attempt_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let c = ChainSpec::uniform(2, 0.98, 0.9, swap()).unwrap();
        let p = c.success_probability();
        let trials = 20_000;
        let hits = (0..trials).filter(|_| c.sample_attempt(&mut rng)).count();
        let f = hits as f64 / trials as f64;
        assert!((f - p).abs() < 0.02, "rate {f} vs p {p}");
    }
}
