//! The continuous entanglement-distribution pipeline.
//!
//! Fig. 1 + Fig. 2 of the paper: a central source streams entangled pairs
//! down two fibers to a pair of endpoints *ahead of demand*; each endpoint
//! buffers its half in QNIC memory. When an input arrives, the endpoint
//! consumes the oldest buffered pair immediately — no network round trip.
//!
//! The distributor accounts for the three loss mechanisms of §3:
//!
//! 1. **Photon loss in fiber** — a pair is usable only if *both* halves
//!    survive their links.
//! 2. **Memory pressure** — QNIC capacity is finite; arrivals to a full
//!    memory are dropped (on either side, the partner half is discarded
//!    too — a half-pair is useless).
//! 3. **Decoherence in storage** — consumed pairs are degraded by the
//!    per-half dephasing accumulated while buffered.
//!
//! ## The batched data plane
//!
//! Under nominal conditions (no outage, no brownout) the stream of
//! *surviving* pairs is itself Poisson at rate `p·λ` (Bernoulli thinning),
//! so the plane samples one exponential gap per **survivor** and one
//! geometric loss count ([`crate::epr::geometric_skip`]) instead of one
//! gap plus per-photon loss Bernoullis per **emission** — at 10% fiber
//! survival that is ~15× fewer RNG draws. Event times accumulate in
//! integer nanoseconds, survivors ride a calendar-wheel
//! [`EventQueue`](crate::des::EventQueue) keyed on their *arrival* time
//! (a pair becomes consumable once both halves have traversed their
//! fibers), and randomness comes from two dedicated [`runtime::seed`]
//! sub-streams (emission gaps vs loss/thinning) so the replay is
//! independent of how consumers interleave their polling. While any
//! emission-affecting fault is active the plane drops to the exact
//! per-emission path; switching between the two mid-run is
//! distribution-exact because both the emission and the survivor
//! processes are memoryless (a pending exponential draw conditioned on
//! lying beyond the fault edge is itself a fresh exponential from the
//! edge). [`EmissionMode::PerEmission`] pins the legacy path for the
//! bench ablation.

use crate::des::EventQueue;
use crate::epr::{geometric_skip, EprSource};
use crate::faults::{FaultClock, FaultPlan};
use crate::link::FiberLink;
use crate::qnic::{Qnic, StoredQubit};
use crate::time::SimTime;
use qsim::werner::WernerPair;
use qsim::{DensityMatrix, SharedPair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Pairs emitted by any distribution source in the process.
static EPR_EMITTED: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.emitted");
/// Pairs lost to fiber attenuation (either half absorbed).
static EPR_LOST_FIBER: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.lost_fiber");
/// Pairs successfully consumed by a decision.
static EPR_CONSUMED: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.consumed");
/// Consumption attempts that found no buffered pair.
static EPR_MISSES: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.misses");
/// Pairs lost because a link was down (subset of fiber losses).
static EPR_LOST_OUTAGE: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.lost_outage");
/// Emissions suppressed by a source brownout (Poisson thinning).
static EPR_SUPPRESSED: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.brownout_suppressed");
/// Emission-to-consumption latency of delivered pairs, in sim ns.
static DELIVERY_LATENCY_NS: obs::LazyHist = obs::LazyHist::new("qnet.pair.delivery_latency_ns");
/// Storage dwell (fiber arrival to consumption) per consumed half, in
/// sim ns.
static PAIR_DWELL_NS: obs::LazyHist = obs::LazyHist::new("qnet.pair.dwell_ns");

/// Which buffered pair a consumption request takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumePolicy {
    /// Oldest pair first (FIFO): fair aging, but the consumed pair has
    /// accumulated the most storage dephasing.
    OldestFirst,
    /// Newest pair first (LIFO): the consumed pair is the freshest —
    /// maximum fidelity, matching §3's advice to arrange qubit arrival
    /// just before use. The default.
    #[default]
    FreshestFirst,
}

/// How the source side of the plane generates events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmissionMode {
    /// Survivor-process sampling: one exponential gap per surviving pair
    /// plus a geometric loss count, whenever no emission-affecting fault
    /// is active. The default.
    #[default]
    Batched,
    /// One exponential gap and explicit loss draws per emitted pair —
    /// the pre-batching behaviour, kept as the bench ablation arm.
    PerEmission,
}

/// Configuration of a two-endpoint distribution pipeline.
#[derive(Debug, Clone)]
pub struct DistributorConfig {
    /// The entangled-pair source.
    pub source: EprSource,
    /// Fiber from the source to endpoint A.
    pub link_a: FiberLink,
    /// Fiber from the source to endpoint B.
    pub link_b: FiberLink,
    /// QNIC memory capacity at each endpoint.
    pub qnic_capacity: usize,
    /// QNIC coherence lifetime τ.
    pub memory_lifetime: Duration,
    /// Eviction age (qubits older than this are discarded).
    pub max_age: Duration,
    /// Which buffered pair to consume.
    pub consume_policy: ConsumePolicy,
    /// Scheduled transient faults ([`FaultPlan::none`] for nominal runs).
    pub faults: FaultPlan,
    /// Batched vs per-emission source sampling (ablation knob).
    pub emission: EmissionMode,
}

impl DistributorConfig {
    /// A representative room-temperature datacenter setup: 10⁵ pairs/s at
    /// visibility 0.95, 1 km fibers, 16-slot NICs with τ = 100 µs.
    pub fn typical() -> Self {
        DistributorConfig {
            source: EprSource::typical_room_temperature(),
            link_a: FiberLink::new(1.0),
            link_b: FiberLink::new(1.0),
            qnic_capacity: 16,
            memory_lifetime: Duration::from_micros(100),
            max_age: Duration::from_micros(160),
            consume_policy: ConsumePolicy::FreshestFirst,
            faults: FaultPlan::none(),
            emission: EmissionMode::Batched,
        }
    }
}

/// Counters describing pipeline behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributorStats {
    /// Pairs emitted by the source.
    pub emitted: u64,
    /// Pairs lost to fiber attenuation (either half).
    pub lost_in_fiber: u64,
    /// Pairs dropped because a QNIC was full.
    pub dropped_full: u64,
    /// Pairs evicted after exceeding the age limit.
    pub expired: u64,
    /// Pairs successfully consumed by a decision.
    pub consumed: u64,
    /// Consumption attempts that found no buffered pair.
    pub misses: u64,
    /// Pairs lost because a link outage was active (subset of
    /// `lost_in_fiber`).
    pub lost_outage: u64,
    /// Emissions suppressed by a source brownout.
    pub suppressed: u64,
    /// Qubits evicted when a fault clamped QNIC capacity.
    pub clamp_evicted: u64,
}

impl DistributorStats {
    /// Fraction of consumption attempts that found a pair buffered.
    pub fn availability(&self) -> f64 {
        let attempts = self.consumed + self.misses;
        if attempts == 0 {
            return 1.0;
        }
        self.consumed as f64 / attempts as f64
    }
}

/// A surviving pair in flight: scheduled on the arrival wheel at the
/// instant both halves have reached their endpoints.
#[derive(Debug, Clone, Copy)]
struct PairRecord {
    id: u64,
    arrive_a: SimTime,
    arrive_b: SimTime,
}

/// The two-endpoint continuous distribution pipeline.
pub struct EntanglementDistributor {
    config: DistributorConfig,
    nic_a: Qnic,
    nic_b: Qnic,
    faults: FaultClock,
    next_pair_id: u64,
    clock: SimTime,
    stats: DistributorStats,
    /// Exponential-gap draws (emission / survivor process).
    emission_rng: StdRng,
    /// Loss, thinning, and skip-ahead draws.
    loss_rng: StdRng,
    /// Time of the last committed source event; gaps accumulate from here
    /// in integer nanoseconds.
    last_event: SimTime,
    /// The next source event, drawn ahead under the current regime.
    pending: Option<SimTime>,
    /// True while the survivor-process fast path is valid (batched mode,
    /// no emission-affecting fault active).
    batched: bool,
    /// Surviving pairs in flight, keyed by the instant both halves have
    /// arrived. FIFO per tick keeps replay deterministic.
    arrivals: EventQueue<PairRecord>,
    /// Cached products of the static link parameters.
    p_pair: f64,
    delay_a: Duration,
    delay_b: Duration,
    /// Process-unique trace lane: pair ids are sequential per
    /// distributor, so `(lane, pair_id)` identifies a pair globally in
    /// one trace. Allocated unconditionally (an atomic bump) so enabling
    /// tracing mid-run still sees distinct tracks.
    lane: u32,
}

impl EntanglementDistributor {
    /// Builds the pipeline. The caller's `rng` seeds two dedicated
    /// sub-streams (emission gaps vs loss draws) via [`runtime::seed`],
    /// so the replay is a pure function of this one draw no matter how
    /// the distributor is later polled.
    pub fn new<R: Rng + ?Sized>(config: DistributorConfig, rng: &mut R) -> Self {
        let master = rng.next_u64();
        let nic = |c: &DistributorConfig| Qnic::new(c.qnic_capacity, c.memory_lifetime, c.max_age);
        let delay_a = config.link_a.propagation_delay();
        let delay_b = config.link_b.propagation_delay();
        // Pre-size the arrival wheel: survivors arrive at most one
        // propagation delay after emission, at no more than the source
        // rate.
        let horizon = delay_a.max(delay_b) + Duration::from_micros(10);
        let batched = config.emission == EmissionMode::Batched;
        let lane = trace::next_lane();
        let mut nic_a = nic(&config);
        let mut nic_b = nic(&config);
        nic_a.set_trace_track(trace::Track::Qnic { lane, side: trace::Side::A });
        nic_b.set_trace_track(trace::Track::Qnic { lane, side: trace::Side::B });
        let mut arrivals = EventQueue::with_profile(config.source.rate_hz(), horizon);
        arrivals.set_trace_track(trace::Track::Source(lane));
        EntanglementDistributor {
            nic_a,
            nic_b,
            faults: FaultClock::new(&config.faults),
            p_pair: config.link_a.survival_probability() * config.link_b.survival_probability(),
            delay_a,
            delay_b,
            lane,
            arrivals,
            config,
            next_pair_id: 0,
            clock: SimTime::ZERO,
            stats: DistributorStats::default(),
            emission_rng: StdRng::seed_from_u64(runtime::seed::stream_seed(master, 0)),
            loss_rng: StdRng::seed_from_u64(runtime::seed::stream_seed(master, 1)),
            last_event: SimTime::ZERO,
            pending: None,
            batched,
        }
    }

    /// Current pipeline statistics.
    pub fn stats(&self) -> DistributorStats {
        let mut s = self.stats;
        s.dropped_full = self.nic_a.dropped_full + self.nic_b.dropped_full;
        s.expired = self.nic_a.expired + self.nic_b.expired;
        s.clamp_evicted = self.nic_a.clamp_evicted + self.nic_b.clamp_evicted;
        s
    }

    /// Fault on/off edges processed so far.
    pub fn fault_transitions(&self) -> u64 {
        self.faults.transitions()
    }

    /// Pushes the fault state in force at `at` into the NICs: capacity
    /// clamps (evicting over-quota qubits, whose partner halves are
    /// pruned) and lifetime scaling.
    fn apply_fault_state(&mut self, at: SimTime) {
        let state = self.faults.state();
        let tracing = trace::enabled();
        for ev in self.nic_a.set_capacity_clamp(state.capacity_clamp) {
            self.nic_b.take_pair_id(ev.pair_id);
            if tracing {
                let track = trace::Track::Qnic { lane: self.lane, side: trace::Side::A };
                trace::pair(track, trace::PairStage::Dropped, ev.pair_id, at.as_nanos());
            }
        }
        for ev in self.nic_b.set_capacity_clamp(state.capacity_clamp) {
            self.nic_a.take_pair_id(ev.pair_id);
            if tracing {
                let track = trace::Track::Qnic { lane: self.lane, side: trace::Side::B };
                trace::pair(track, trace::PairStage::Dropped, ev.pair_id, at.as_nanos());
            }
        }
        self.nic_a.set_lifetime_scale(state.lifetime_factor);
        self.nic_b.set_lifetime_scale(state.lifetime_factor);
    }

    /// Number of pairs currently buffered (present at both endpoints).
    pub fn buffered(&self) -> usize {
        self.nic_a.len().min(self.nic_b.len())
    }

    /// Re-derives the generation regime after a fault edge at `edge`.
    /// When the regime flips, the pending gap draw is discarded and the
    /// next gap starts from the edge — exact by memorylessness: knowing
    /// the pending event lies beyond `edge` makes its residual gap a
    /// fresh exponential from `edge` in either regime.
    fn refresh_regime(&mut self, edge: SimTime) {
        let state = self.faults.state();
        let batched = self.config.emission == EmissionMode::Batched
            && state.rate_factor >= 1.0
            && state.link_a_up
            && state.link_b_up;
        if batched != self.batched {
            self.batched = batched;
            self.pending = None;
            self.last_event = edge;
        }
    }

    /// True once `t` is past the generation bound (`strict` excludes the
    /// bound itself — used up to a fault edge, which wins its tie).
    fn beyond(t: SimTime, bound: SimTime, strict: bool) -> bool {
        if strict {
            t >= bound
        } else {
            t > bound
        }
    }

    /// Schedules a surviving pair on the arrival wheel.
    fn schedule_survivor(&mut self, id: u64, emitted_at: SimTime) {
        let arrive_a = emitted_at + self.delay_a;
        let arrive_b = emitted_at + self.delay_b;
        let record = PairRecord {
            id,
            arrive_a,
            arrive_b,
        };
        self.arrivals.schedule(arrive_a.max(arrive_b), record);
    }

    /// Commits every source event up to `bound` under the current regime.
    fn generate_until(&mut self, bound: SimTime, strict: bool) {
        if self.batched {
            self.generate_batched(bound, strict);
        } else {
            self.generate_per_emission(bound, strict);
        }
    }

    /// Survivor-process fast path: one gap draw per *surviving* pair
    /// (exponential at `p·λ`) plus one geometric draw tallying the
    /// emissions lost in between.
    fn generate_batched(&mut self, bound: SimTime, strict: bool) {
        loop {
            let t = match self.pending {
                Some(t) => t,
                None => {
                    let gap = self
                        .config
                        .source
                        .survivor_gap_ns(self.p_pair, &mut self.emission_rng);
                    let t = self.last_event + Duration::from_nanos(gap);
                    self.pending = Some(t);
                    t
                }
            };
            if Self::beyond(t, bound, strict) {
                return;
            }
            self.pending = None;
            self.last_event = t;
            let lost = geometric_skip(self.p_pair, &mut self.loss_rng);
            self.stats.emitted += lost + 1;
            EPR_EMITTED.add(lost + 1);
            if lost > 0 {
                self.stats.lost_in_fiber += lost;
                EPR_LOST_FIBER.add(lost);
            }
            let id = self.next_pair_id + lost;
            self.next_pair_id += lost + 1;
            // Only the survivor has an individual emission time — the
            // batch-counted fiber losses never reach the wheel and carry
            // no lifecycle events.
            trace::pair(trace::Track::Source(self.lane), trace::PairStage::Emitted, id, t.as_nanos());
            self.schedule_survivor(id, t);
        }
    }

    /// Exact per-emission path, used while a fault shapes the emission
    /// stream (and for the `PerEmission` ablation arm): one gap per
    /// emitted pair, then thinning/outage/survival decisions on each.
    fn generate_per_emission(&mut self, bound: SimTime, strict: bool) {
        loop {
            let t = match self.pending {
                Some(t) => t,
                None => {
                    let gap = self.config.source.sample_interval_ns(&mut self.emission_rng);
                    let t = self.last_event + Duration::from_nanos(gap);
                    self.pending = Some(t);
                    t
                }
            };
            if Self::beyond(t, bound, strict) {
                return;
            }
            self.pending = None;
            self.last_event = t;
            let state = self.faults.state();
            if !self.config.source.brownout_keeps(state.rate_factor, &mut self.loss_rng) {
                self.stats.suppressed += 1;
                EPR_SUPPRESSED.inc();
                continue;
            }
            self.stats.emitted += 1;
            EPR_EMITTED.inc();
            let id = self.next_pair_id;
            self.next_pair_id += 1;
            // Per-emission mode (faults active): every emitted pair gets
            // an event; pairs the outage or fiber absorbs simply have no
            // later lifecycle stages.
            trace::pair(trace::Track::Source(self.lane), trace::PairStage::Emitted, id, t.as_nanos());
            if !(state.link_a_up && state.link_b_up) {
                // A downed link absorbs the pair with certainty — no draw.
                self.stats.lost_in_fiber += 1;
                EPR_LOST_FIBER.inc();
                self.stats.lost_outage += 1;
                EPR_LOST_OUTAGE.inc();
                continue;
            }
            // Both links up: one combined survival draw for the pair.
            if self.p_pair < 1.0 && self.loss_rng.gen::<f64>() >= self.p_pair {
                self.stats.lost_in_fiber += 1;
                EPR_LOST_FIBER.inc();
                continue;
            }
            self.schedule_survivor(id, t);
        }
    }

    /// Stores every pair whose second half has arrived by `bound`.
    fn drain_arrivals(&mut self, bound: SimTime, strict: bool) {
        while let Some(t) = self.arrivals.peek_time() {
            if Self::beyond(t, bound, strict) {
                return;
            }
            let (_, rec) = self.arrivals.pop().expect("peeked an event");
            if trace::enabled() {
                let a = trace::Track::Qnic { lane: self.lane, side: trace::Side::A };
                let b = trace::Track::Qnic { lane: self.lane, side: trace::Side::B };
                trace::pair(a, trace::PairStage::FiberArrival, rec.id, rec.arrive_a.as_nanos());
                trace::pair(b, trace::PairStage::FiberArrival, rec.id, rec.arrive_b.as_nanos());
            }
            // A full memory overwrites its oldest qubit; the evicted
            // qubit's partner half becomes an orphan and is pruned here
            // (symmetric memories usually evict the same pair). The NICs
            // emit the stored/dropped lifecycle events themselves.
            if let Some(ev) = self.nic_a.store(rec.id, rec.arrive_a) {
                self.nic_b.take_pair_id(ev.pair_id);
            }
            if let Some(ev) = self.nic_b.store(rec.id, rec.arrive_b) {
                self.nic_a.take_pair_id(ev.pair_id);
            }
        }
    }

    /// Advances the pipeline to `now`: applies fault transitions, emits
    /// pairs, transits fibers, stores survivors, evicts stale qubits.
    /// Fault edges and emissions interleave in time order (edges first on
    /// a tie), so a clamp tripping between two emissions still evicts at
    /// its scheduled instant. Consumes no caller randomness — the plane
    /// runs entirely on its dedicated sub-streams.
    pub fn advance_to(&mut self, now: SimTime) {
        while let Some(edge) = self.faults.next_transition() {
            if edge > now {
                break;
            }
            self.generate_until(edge, true);
            self.drain_arrivals(edge, true);
            self.faults.advance_through(edge);
            self.apply_fault_state(edge);
            self.refresh_regime(edge);
        }
        self.generate_until(now, false);
        self.drain_arrivals(now, false);
        self.nic_a.evict_expired(now);
        self.nic_b.evict_expired(now);
        // Orphan halves (partner evicted or dropped on the other side) are
        // discarded lazily by the consume path and eventually age out —
        // they occupy memory until then, exactly as a real half-pair would.
        self.clock = now;
        // Windowed time series ride the sim clock of whoever advances.
        trace::series::tick(now.as_nanos());
    }

    /// Pops the next deliverable pair per the consume policy, pruning
    /// orphan halves; counts the miss or the consumption.
    fn pop_delivery(&mut self) -> Option<(StoredQubit, StoredQubit)> {
        loop {
            let taken = match self.config.consume_policy {
                ConsumePolicy::OldestFirst => self.nic_a.take_oldest(),
                ConsumePolicy::FreshestFirst => self.nic_a.take_newest(),
            };
            let Some(qa) = taken else {
                self.stats.misses += 1;
                EPR_MISSES.inc();
                return None;
            };
            let Some(qb) = self.nic_b.take_pair_id(qa.pair_id) else {
                // Orphan half; discard and retry.
                continue;
            };
            self.stats.consumed += 1;
            EPR_CONSUMED.inc();
            return Some((qa, qb));
        }
    }

    /// Accounts one delivery at `now`: the consumed lifecycle event plus
    /// the exact delivery-latency (emission → consumption, recovered from
    /// the A-half's arrival minus the known fiber delay) and per-half
    /// storage-dwell histograms.
    fn record_delivery(&self, qa: &StoredQubit, qb: &StoredQubit, now: SimTime) {
        if trace::enabled() {
            trace::pair(
                trace::Track::Source(self.lane),
                trace::PairStage::Consumed,
                qa.pair_id,
                now.as_nanos(),
            );
        }
        if obs::enabled() {
            let emitted_ns = qa.arrival.as_nanos().saturating_sub(self.delay_a.as_nanos() as u64);
            DELIVERY_LATENCY_NS.record(now.as_nanos().saturating_sub(emitted_ns));
            PAIR_DWELL_NS.record(now.as_nanos().saturating_sub(qa.arrival.as_nanos()));
            PAIR_DWELL_NS.record(now.as_nanos().saturating_sub(qb.arrival.as_nanos()));
        }
    }

    /// Consumes a buffered pair at `now` as a full density-matrix
    /// [`SharedPair`], applying storage decay to both halves — the exact
    /// gate-evolution oracle (`QNLG_EXACT_QSIM=1` routes consumers here).
    /// Returns `None` (and counts a miss) if no pair is available.
    pub fn take_pair(&mut self, now: SimTime) -> Option<SharedPair> {
        self.advance_to(now);
        let (qa, qb) = self.pop_delivery()?;
        self.record_delivery(&qa, &qb, now);
        // Joint state at delivery, then per-half storage decay.
        let rho = if self.config.source.visibility() >= 1.0 {
            DensityMatrix::from_pure(&qsim::bell::phi_plus())
        } else {
            qsim::noise::werner(self.config.source.visibility()).expect("valid visibility")
        };
        let ch_a = self.nic_a.decay_channel(qa.arrival, now);
        let ch_b = self.nic_b.decay_channel(qb.arrival, now);
        let rho = ch_a.apply(&rho, 0).expect("qubit 0 in range");
        let rho = ch_b.apply(&rho, 1).expect("qubit 1 in range");
        Some(SharedPair::from_density(rho).expect("two qubits"))
    }

    /// Consumes a buffered pair at `now` as a closed-form
    /// [`WernerPair`] — the allocation-free kernel path carrying the
    /// source visibility and both halves' storage retentions. Statistics
    /// are identical to [`Self::take_pair`] (proven by the
    /// `werner_stat` equivalence suite). Returns `None` (and counts a
    /// miss) if no pair is available.
    pub fn take_werner(&mut self, now: SimTime) -> Option<WernerPair> {
        self.advance_to(now);
        let (qa, qb) = self.pop_delivery()?;
        self.record_delivery(&qa, &qb, now);
        let retain_a = self.nic_a.retention(qa.arrival, now);
        let retain_b = self.nic_b.retention(qb.arrival, now);
        Some(
            WernerPair::with_dephasing(self.config.source.visibility(), retain_a, retain_b)
                .expect("visibility and retentions are probabilities"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Party;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_config() -> DistributorConfig {
        DistributorConfig {
            source: EprSource::new(1e6, 1.0),
            link_a: FiberLink::new(0.0),
            link_b: FiberLink::new(0.0),
            qnic_capacity: 64,
            memory_lifetime: Duration::from_micros(100),
            max_age: Duration::from_micros(160),
            consume_policy: ConsumePolicy::OldestFirst,
            faults: FaultPlan::none(),
            emission: EmissionMode::Batched,
        }
    }

    #[test]
    fn pairs_accumulate_ahead_of_demand() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = EntanglementDistributor::new(fast_config(), &mut rng);
        d.advance_to(SimTime::from_micros(30));
        assert!(d.buffered() > 0, "pairs should be buffered");
        let s = d.stats();
        assert!(s.emitted >= d.buffered() as u64);
    }

    #[test]
    fn take_pair_is_immediately_usable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = EntanglementDistributor::new(fast_config(), &mut rng);
        let mut pair = d
            .take_pair(SimTime::from_micros(50))
            .expect("fast source must have a pair by 50µs");
        // OldestFirst consumption means the pair has accumulated storage
        // dephasing, so only Z-basis agreement is deterministic (the
        // populations are untouched; coherences are not).
        let a = pair.measure_angle(Party::A, 0.0, &mut rng).unwrap();
        let b = pair.measure_angle(Party::B, 0.0, &mut rng).unwrap();
        assert_eq!(a, b);
        assert_eq!(d.stats().consumed, 1);
    }

    #[test]
    fn take_werner_agrees_with_take_pair_statistics() {
        // The kernel path and the oracle path must deliver the same
        // Z-basis statistics from identical distributor dynamics.
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = EntanglementDistributor::new(fast_config(), &mut rng);
        let kernel = d
            .take_werner(SimTime::from_micros(50))
            .expect("fast source must have a pair by 50µs");
        assert_eq!(d.stats().consumed, 1);
        let (a, b) = kernel.sample(0.0, 0.0, &mut rng);
        assert_eq!(a, b, "v = 1 pairs agree deterministically in Z");
        let (da, db) = kernel.retentions();
        assert!(da > 0.0 && da <= 1.0 && db > 0.0 && db <= 1.0);
    }

    #[test]
    fn miss_when_source_too_slow() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = fast_config();
        cfg.source = EprSource::new(10.0, 1.0); // 10 pairs/s: none by 1 µs
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        assert!(d.take_pair(SimTime::from_micros(1)).is_none());
        assert_eq!(d.stats().misses, 1);
        assert!(d.stats().availability() < 1.0);
    }

    #[test]
    fn fiber_loss_reduces_delivery() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = fast_config();
        cfg.link_a = FiberLink::new(50.0); // 10% survival
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(500));
        let s = d.stats();
        assert!(s.lost_in_fiber > 0);
        let delivered = s.emitted - s.lost_in_fiber;
        // ~10% should survive the lossy link.
        let rate = delivered as f64 / s.emitted as f64;
        assert!(rate < 0.25, "delivery rate {rate}");
    }

    #[test]
    fn batched_and_per_emission_sample_the_same_distribution() {
        // The survivor-process fast path and the per-emission path must
        // agree on delivery statistics (they share no RNG draws, so this
        // is a distribution check, not a byte check): ~10% survival at
        // 10⁶ pairs/s over 2 ms ⇒ ~200 survivors each.
        let run = |mode: EmissionMode, seed: u64| -> (u64, u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cfg = fast_config();
            cfg.link_a = FiberLink::new(50.0);
            cfg.qnic_capacity = 4096;
            cfg.max_age = Duration::from_secs(1);
            cfg.emission = mode;
            let mut d = EntanglementDistributor::new(cfg, &mut rng);
            d.advance_to(SimTime::from_micros(2000));
            let s = d.stats();
            (s.emitted, s.emitted - s.lost_in_fiber)
        };
        let (b_emitted, b_delivered) = run(EmissionMode::Batched, 40);
        let (p_emitted, p_delivered) = run(EmissionMode::PerEmission, 41);
        // Both emit ~2000 and deliver ~200; compare survival fractions
        // with a generous statistical margin.
        let bf = b_delivered as f64 / b_emitted as f64;
        let pf = p_delivered as f64 / p_emitted as f64;
        assert!((bf - 0.1).abs() < 0.03, "batched survival {bf}");
        assert!((pf - 0.1).abs() < 0.03, "per-emission survival {pf}");
    }

    #[test]
    fn capacity_pressure_counts_drops() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cfg = fast_config();
        cfg.qnic_capacity = 2;
        cfg.max_age = Duration::from_secs(1); // no eviction interference
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(100));
        assert!(d.stats().dropped_full > 0);
        assert!(d.buffered() <= 2);
    }

    #[test]
    fn total_link_outage_delivers_nothing_and_counts_losses() {
        use crate::faults::{FaultKind, FaultWindow, LinkSide};
        let mut rng = StdRng::seed_from_u64(21);
        let mut cfg = fast_config();
        cfg.faults.push(FaultWindow {
            start: SimTime::ZERO + Duration::from_nanos(1),
            end: SimTime::from_micros(500),
            kind: FaultKind::LinkOutage(LinkSide::Both),
        });
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(100));
        let s = d.stats();
        assert!(s.emitted > 0);
        assert_eq!(s.lost_outage, s.emitted, "every pair dies in the outage");
        assert_eq!(s.lost_in_fiber, s.emitted);
        assert_eq!(d.buffered(), 0);
        assert_eq!(d.fault_transitions(), 1, "only the on-edge so far");
    }

    #[test]
    fn brownout_thins_emissions() {
        use crate::faults::{FaultKind, FaultWindow};
        let mut rng = StdRng::seed_from_u64(22);
        let mut cfg = fast_config();
        cfg.faults.push(FaultWindow {
            start: SimTime::ZERO + Duration::from_nanos(1),
            end: SimTime::from_micros(500),
            kind: FaultKind::SourceBrownout { rate_factor: 0.1 },
        });
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(200));
        let s = d.stats();
        assert!(s.suppressed > 0);
        // ~90% of the ~200 scheduled emissions are suppressed.
        let kept = s.emitted as f64 / (s.emitted + s.suppressed) as f64;
        assert!(kept < 0.25, "kept fraction {kept}");
    }

    #[test]
    fn clamp_evicts_midstream_and_prunes_partners() {
        use crate::faults::{FaultKind, FaultWindow};
        let mut rng = StdRng::seed_from_u64(23);
        let mut cfg = fast_config();
        cfg.max_age = Duration::from_secs(1); // isolate the clamp effect
        cfg.faults.push(FaultWindow {
            start: SimTime::from_micros(50),
            end: SimTime::from_micros(80),
            kind: FaultKind::QnicClamp { capacity: 1 },
        });
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(40));
        assert!(d.buffered() > 1, "buffer filled before the clamp");
        d.advance_to(SimTime::from_micros(60));
        assert!(d.buffered() <= 1, "clamp took effect mid-run");
        assert!(d.stats().clamp_evicted > 0);
        d.advance_to(SimTime::from_micros(100));
        assert!(d.buffered() > 1, "clamp released, buffer refills");
    }

    #[test]
    fn empty_fault_plan_preserves_the_rng_stream() {
        // The fault hooks must not draw randomness when no fault is
        // active: a run with an empty plan is byte-identical to one with
        // no plan at all.
        let run = |cfg: DistributorConfig| -> (DistributorStats, u64) {
            let mut rng = StdRng::seed_from_u64(24);
            let mut d = EntanglementDistributor::new(cfg, &mut rng);
            let mut consumed_seq = 0u64;
            let mut now = SimTime::ZERO;
            for i in 0..40 {
                now += Duration::from_micros(7);
                if d.take_pair(now).is_some() {
                    consumed_seq |= 1 << i;
                }
            }
            (d.stats(), consumed_seq)
        };
        let nominal = run(fast_config());
        let mut with_plan = fast_config();
        with_plan.faults = FaultPlan::none();
        assert_eq!(run(with_plan), nominal);
    }

    #[test]
    fn replay_is_independent_of_polling_cadence() {
        // Dedicated sub-streams mean the emission/loss replay is fixed at
        // construction: polling every 7 µs or once at 280 µs must emit
        // and deliver the identical pair stream.
        let run = |steps: u64| -> DistributorStats {
            let mut rng = StdRng::seed_from_u64(77);
            let mut cfg = fast_config();
            cfg.max_age = Duration::from_secs(1);
            cfg.qnic_capacity = 4096;
            let mut d = EntanglementDistributor::new(cfg, &mut rng);
            let step = Duration::from_micros(280 / steps);
            let mut now = SimTime::ZERO;
            for _ in 0..steps {
                now += step;
                d.advance_to(now);
            }
            d.advance_to(SimTime::from_micros(280));
            d.stats()
        };
        let fine = run(40);
        let coarse = run(1);
        assert_eq!(fine, coarse, "replay must not depend on polling");
        assert!(fine.emitted > 0);
    }

    #[test]
    fn stale_pairs_expire() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = fast_config();
        cfg.source = EprSource::new(1e5, 1.0);
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(100));
        let buffered_early = d.buffered();
        assert!(buffered_early > 0);
        // Jump far ahead with no consumption: everything currently
        // buffered must expire (160 µs max age).
        d.advance_to(SimTime::from_secs_f64(0.01));
        assert!(d.stats().expired > 0);
    }

    #[test]
    fn stored_pairs_decohere() {
        // Consume a pair held ≈ τ: same-basis agreement drops below 1.
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 2_000;
        let mut agree = 0usize;
        for _ in 0..trials {
            let mut cfg = fast_config();
            cfg.source = EprSource::new(1e6, 1.0);
            cfg.max_age = Duration::from_secs(1);
            let mut d = EntanglementDistributor::new(cfg, &mut rng);
            // Fill buffer early, then consume late: held time ≈ 100µs = τ.
            d.advance_to(SimTime::from_micros(5));
            if d.buffered() == 0 {
                continue;
            }
            // Stop emission from interfering by consuming the *oldest*.
            let mut pair = match d.take_pair(SimTime::from_micros(105)) {
                Some(p) => p,
                None => continue,
            };
            let a = pair.measure_angle(Party::A, 0.0, &mut rng).unwrap();
            let b = pair.measure_angle(Party::B, 0.0, &mut rng).unwrap();
            agree += usize::from(a == b);
        }
        let f = agree as f64 / trials as f64;
        // Z-basis agreement survives dephasing (populations untouched) —
        // so agreement in the computational basis stays high...
        assert!(f > 0.9, "computational-basis agreement {f}");
    }

    #[test]
    fn decoherence_hurts_x_basis_agreement() {
        // ... but X-basis (θ = π/4) agreement is destroyed by dephasing.
        let mut rng = StdRng::seed_from_u64(8);
        let theta = std::f64::consts::FRAC_PI_4;
        let trials = 2_000;
        let mut agree_fresh = 0usize;
        let mut agree_stale = 0usize;
        let mut n_fresh = 0usize;
        let mut n_stale = 0usize;
        for _ in 0..trials {
            let mut cfg = fast_config();
            cfg.max_age = Duration::from_secs(1);
            let mut d = EntanglementDistributor::new(cfg, &mut rng);
            d.advance_to(SimTime::from_micros(5));
            if let Some(mut p) = d.take_pair(SimTime::from_micros(6)) {
                let a = p.measure_angle(Party::A, theta, &mut rng).unwrap();
                let b = p.measure_angle(Party::B, theta, &mut rng).unwrap();
                agree_fresh += usize::from(a == b);
                n_fresh += 1;
            }
            let mut d2 = EntanglementDistributor::new(fast_config(), &mut rng);
            d2.advance_to(SimTime::from_micros(5));
            if let Some(mut p) = d2.take_pair(SimTime::from_micros(155)) {
                let a = p.measure_angle(Party::A, theta, &mut rng).unwrap();
                let b = p.measure_angle(Party::B, theta, &mut rng).unwrap();
                agree_stale += usize::from(a == b);
                n_stale += 1;
            }
        }
        let f_fresh = agree_fresh as f64 / n_fresh.max(1) as f64;
        let f_stale = agree_stale as f64 / n_stale.max(1) as f64;
        assert!(
            f_fresh > f_stale + 0.1,
            "fresh {f_fresh} should beat stale {f_stale}"
        );
    }
}
