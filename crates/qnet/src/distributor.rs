//! The continuous entanglement-distribution pipeline.
//!
//! Fig. 1 + Fig. 2 of the paper: a central source streams entangled pairs
//! down two fibers to a pair of endpoints *ahead of demand*; each endpoint
//! buffers its half in QNIC memory. When an input arrives, the endpoint
//! consumes the oldest buffered pair immediately — no network round trip.
//!
//! The distributor accounts for the three loss mechanisms of §3:
//!
//! 1. **Photon loss in fiber** — a pair is usable only if *both* halves
//!    survive their links.
//! 2. **Memory pressure** — QNIC capacity is finite; arrivals to a full
//!    memory are dropped (on either side, the partner half is discarded
//!    too — a half-pair is useless).
//! 3. **Decoherence in storage** — consumed pairs are degraded by the
//!    per-half dephasing accumulated while buffered.

use crate::epr::EprSource;
use crate::faults::{FaultClock, FaultPlan};
use crate::link::FiberLink;
use crate::qnic::Qnic;
use crate::time::SimTime;
use qsim::{DensityMatrix, SharedPair};
use rand::Rng;
use std::time::Duration;

/// Pairs emitted by any distribution source in the process.
static EPR_EMITTED: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.emitted");
/// Pairs lost to fiber attenuation (either half absorbed).
static EPR_LOST_FIBER: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.lost_fiber");
/// Pairs successfully consumed by a decision.
static EPR_CONSUMED: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.consumed");
/// Consumption attempts that found no buffered pair.
static EPR_MISSES: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.misses");
/// Pairs lost because a link was down (subset of fiber losses).
static EPR_LOST_OUTAGE: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.lost_outage");
/// Emissions suppressed by a source brownout (Poisson thinning).
static EPR_SUPPRESSED: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.brownout_suppressed");

/// Which buffered pair a consumption request takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumePolicy {
    /// Oldest pair first (FIFO): fair aging, but the consumed pair has
    /// accumulated the most storage dephasing.
    OldestFirst,
    /// Newest pair first (LIFO): the consumed pair is the freshest —
    /// maximum fidelity, matching §3's advice to arrange qubit arrival
    /// just before use. The default.
    #[default]
    FreshestFirst,
}

/// Configuration of a two-endpoint distribution pipeline.
#[derive(Debug, Clone)]
pub struct DistributorConfig {
    /// The entangled-pair source.
    pub source: EprSource,
    /// Fiber from the source to endpoint A.
    pub link_a: FiberLink,
    /// Fiber from the source to endpoint B.
    pub link_b: FiberLink,
    /// QNIC memory capacity at each endpoint.
    pub qnic_capacity: usize,
    /// QNIC coherence lifetime τ.
    pub memory_lifetime: Duration,
    /// Eviction age (qubits older than this are discarded).
    pub max_age: Duration,
    /// Which buffered pair to consume.
    pub consume_policy: ConsumePolicy,
    /// Scheduled transient faults ([`FaultPlan::none`] for nominal runs).
    pub faults: FaultPlan,
}

impl DistributorConfig {
    /// A representative room-temperature datacenter setup: 10⁵ pairs/s at
    /// visibility 0.95, 1 km fibers, 16-slot NICs with τ = 100 µs.
    pub fn typical() -> Self {
        DistributorConfig {
            source: EprSource::typical_room_temperature(),
            link_a: FiberLink::new(1.0),
            link_b: FiberLink::new(1.0),
            qnic_capacity: 16,
            memory_lifetime: Duration::from_micros(100),
            max_age: Duration::from_micros(160),
            consume_policy: ConsumePolicy::FreshestFirst,
            faults: FaultPlan::none(),
        }
    }
}

/// Counters describing pipeline behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributorStats {
    /// Pairs emitted by the source.
    pub emitted: u64,
    /// Pairs lost to fiber attenuation (either half).
    pub lost_in_fiber: u64,
    /// Pairs dropped because a QNIC was full.
    pub dropped_full: u64,
    /// Pairs evicted after exceeding the age limit.
    pub expired: u64,
    /// Pairs successfully consumed by a decision.
    pub consumed: u64,
    /// Consumption attempts that found no buffered pair.
    pub misses: u64,
    /// Pairs lost because a link outage was active (subset of
    /// `lost_in_fiber`).
    pub lost_outage: u64,
    /// Emissions suppressed by a source brownout.
    pub suppressed: u64,
    /// Qubits evicted when a fault clamped QNIC capacity.
    pub clamp_evicted: u64,
}

impl DistributorStats {
    /// Fraction of consumption attempts that found a pair buffered.
    pub fn availability(&self) -> f64 {
        let attempts = self.consumed + self.misses;
        if attempts == 0 {
            return 1.0;
        }
        self.consumed as f64 / attempts as f64
    }
}

/// The two-endpoint continuous distribution pipeline.
pub struct EntanglementDistributor {
    config: DistributorConfig,
    nic_a: Qnic,
    nic_b: Qnic,
    faults: FaultClock,
    next_pair_id: u64,
    next_emission: SimTime,
    clock: SimTime,
    stats: DistributorStats,
}

impl EntanglementDistributor {
    /// Builds the pipeline; the first emission is scheduled from t = 0.
    pub fn new<R: Rng + ?Sized>(config: DistributorConfig, rng: &mut R) -> Self {
        let next_emission = config.source.next_emission(SimTime::ZERO, rng);
        let nic = |c: &DistributorConfig| Qnic::new(c.qnic_capacity, c.memory_lifetime, c.max_age);
        EntanglementDistributor {
            nic_a: nic(&config),
            nic_b: nic(&config),
            faults: FaultClock::new(&config.faults),
            config,
            next_pair_id: 0,
            next_emission,
            clock: SimTime::ZERO,
            stats: DistributorStats::default(),
        }
    }

    /// Current pipeline statistics.
    pub fn stats(&self) -> DistributorStats {
        let mut s = self.stats;
        s.dropped_full = self.nic_a.dropped_full + self.nic_b.dropped_full;
        s.expired = self.nic_a.expired + self.nic_b.expired;
        s.clamp_evicted = self.nic_a.clamp_evicted + self.nic_b.clamp_evicted;
        s
    }

    /// Fault on/off edges processed so far.
    pub fn fault_transitions(&self) -> u64 {
        self.faults.transitions()
    }

    /// Pushes the current fault state into the NICs: capacity clamps
    /// (evicting over-quota qubits, whose partner halves are pruned) and
    /// lifetime scaling.
    fn apply_fault_state(&mut self) {
        let state = self.faults.state();
        for ev in self.nic_a.set_capacity_clamp(state.capacity_clamp) {
            self.nic_b.take_pair_id(ev.pair_id);
        }
        for ev in self.nic_b.set_capacity_clamp(state.capacity_clamp) {
            self.nic_a.take_pair_id(ev.pair_id);
        }
        self.nic_a.set_lifetime_scale(state.lifetime_factor);
        self.nic_b.set_lifetime_scale(state.lifetime_factor);
    }

    /// Number of pairs currently buffered (present at both endpoints).
    pub fn buffered(&self) -> usize {
        self.nic_a.len().min(self.nic_b.len())
    }

    /// Advances the pipeline to `now`: applies fault transitions, emits
    /// pairs, transits fibers, stores survivors, evicts stale qubits.
    /// Fault edges and emissions interleave in time order (edges first on
    /// a tie), so a clamp tripping between two emissions still evicts at
    /// its scheduled instant.
    pub fn advance_to<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) {
        loop {
            let emission = self.next_emission;
            if let Some(edge) = self.faults.next_transition() {
                if edge <= now && edge <= emission {
                    self.faults.advance_through(edge);
                    self.apply_fault_state();
                    continue;
                }
            }
            if emission > now {
                break;
            }
            let t = emission;
            let state = self.faults.state();
            if self.config.source.brownout_keeps(state.rate_factor, rng) {
                self.stats.emitted += 1;
                EPR_EMITTED.inc();
                let id = self.next_pair_id;
                self.next_pair_id += 1;

                let a_survives = self.config.link_a.transmit_through(state.link_a_up, rng);
                let b_survives = self.config.link_b.transmit_through(state.link_b_up, rng);
                if a_survives && b_survives {
                    let arrive_a = t + self.config.link_a.propagation_delay();
                    let arrive_b = t + self.config.link_b.propagation_delay();
                    // A full memory overwrites its oldest qubit; the evicted
                    // qubit's partner half becomes an orphan and is pruned
                    // here (symmetric memories usually evict the same pair).
                    if let Some(ev) = self.nic_a.store(id, arrive_a) {
                        self.nic_b.take_pair_id(ev.pair_id);
                    }
                    if let Some(ev) = self.nic_b.store(id, arrive_b) {
                        self.nic_a.take_pair_id(ev.pair_id);
                    }
                } else {
                    self.stats.lost_in_fiber += 1;
                    EPR_LOST_FIBER.inc();
                    if !state.link_a_up || !state.link_b_up {
                        self.stats.lost_outage += 1;
                        EPR_LOST_OUTAGE.inc();
                    }
                }
            } else {
                self.stats.suppressed += 1;
                EPR_SUPPRESSED.inc();
            }
            self.next_emission = self.config.source.next_emission(t, rng);
        }
        self.nic_a.evict_expired(now);
        self.nic_b.evict_expired(now);
        // Orphan halves (partner evicted or dropped on the other side) are
        // discarded lazily by `take_pair` and eventually age out — they
        // occupy memory until then, exactly as a real half-pair would.
        self.clock = now;
    }

    /// Consumes the oldest buffered pair at `now`, applying storage decay
    /// to both halves. Returns `None` (and counts a miss) if no pair is
    /// available.
    pub fn take_pair<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> Option<SharedPair> {
        self.advance_to(now, rng);
        loop {
            let taken = match self.config.consume_policy {
                ConsumePolicy::OldestFirst => self.nic_a.take_oldest(),
                ConsumePolicy::FreshestFirst => self.nic_a.take_newest(),
            };
            let qa = match taken {
                Some(q) => q,
                None => {
                    self.stats.misses += 1;
                    EPR_MISSES.inc();
                    return None;
                }
            };
            let Some(qb) = self.nic_b.take_pair_id(qa.pair_id) else {
                // Orphan half; discard and retry.
                continue;
            };
            // Joint state at delivery, then per-half storage decay.
            let rho = if self.config.source.visibility() >= 1.0 {
                DensityMatrix::from_pure(&qsim::bell::phi_plus())
            } else {
                qsim::noise::werner(self.config.source.visibility())
                    .expect("valid visibility")
            };
            let ch_a = self.nic_a.decay_channel(qa.arrival, now);
            let ch_b = self.nic_b.decay_channel(qb.arrival, now);
            let rho = ch_a.apply(&rho, 0).expect("qubit 0 in range");
            let rho = ch_b.apply(&rho, 1).expect("qubit 1 in range");
            self.stats.consumed += 1;
            EPR_CONSUMED.inc();
            return Some(SharedPair::from_density(rho).expect("two qubits"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Party;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_config() -> DistributorConfig {
        DistributorConfig {
            source: EprSource::new(1e6, 1.0),
            link_a: FiberLink::new(0.0),
            link_b: FiberLink::new(0.0),
            qnic_capacity: 64,
            memory_lifetime: Duration::from_micros(100),
            max_age: Duration::from_micros(160),
            consume_policy: ConsumePolicy::OldestFirst,
            faults: FaultPlan::none(),
        }
    }

    #[test]
    fn pairs_accumulate_ahead_of_demand() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = EntanglementDistributor::new(fast_config(), &mut rng);
        d.advance_to(SimTime::from_micros(30), &mut rng);
        assert!(d.buffered() > 0, "pairs should be buffered");
        let s = d.stats();
        assert!(s.emitted >= d.buffered() as u64);
    }

    #[test]
    fn take_pair_is_immediately_usable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = EntanglementDistributor::new(fast_config(), &mut rng);
        let mut pair = d
            .take_pair(SimTime::from_micros(50), &mut rng)
            .expect("fast source must have a pair by 50µs");
        // OldestFirst consumption means the pair has accumulated storage
        // dephasing, so only Z-basis agreement is deterministic (the
        // populations are untouched; coherences are not).
        let a = pair.measure_angle(Party::A, 0.0, &mut rng).unwrap();
        let b = pair.measure_angle(Party::B, 0.0, &mut rng).unwrap();
        assert_eq!(a, b);
        assert_eq!(d.stats().consumed, 1);
    }

    #[test]
    fn miss_when_source_too_slow() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = fast_config();
        cfg.source = EprSource::new(10.0, 1.0); // 10 pairs/s: none by 1 µs
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        assert!(d.take_pair(SimTime::from_micros(1), &mut rng).is_none());
        assert_eq!(d.stats().misses, 1);
        assert!(d.stats().availability() < 1.0);
    }

    #[test]
    fn fiber_loss_reduces_delivery() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = fast_config();
        cfg.link_a = FiberLink::new(50.0); // 10% survival
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(500), &mut rng);
        let s = d.stats();
        assert!(s.lost_in_fiber > 0);
        let delivered = s.emitted - s.lost_in_fiber;
        // ~10% should survive the lossy link.
        let rate = delivered as f64 / s.emitted as f64;
        assert!(rate < 0.25, "delivery rate {rate}");
    }

    #[test]
    fn capacity_pressure_counts_drops() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cfg = fast_config();
        cfg.qnic_capacity = 2;
        cfg.max_age = Duration::from_secs(1); // no eviction interference
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(100), &mut rng);
        assert!(d.stats().dropped_full > 0);
        assert!(d.buffered() <= 2);
    }

    #[test]
    fn total_link_outage_delivers_nothing_and_counts_losses() {
        use crate::faults::{FaultKind, FaultWindow, LinkSide};
        let mut rng = StdRng::seed_from_u64(21);
        let mut cfg = fast_config();
        cfg.faults.push(FaultWindow {
            start: SimTime::ZERO + Duration::from_nanos(1),
            end: SimTime::from_micros(500),
            kind: FaultKind::LinkOutage(LinkSide::Both),
        });
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(100), &mut rng);
        let s = d.stats();
        assert!(s.emitted > 0);
        assert_eq!(s.lost_outage, s.emitted, "every pair dies in the outage");
        assert_eq!(s.lost_in_fiber, s.emitted);
        assert_eq!(d.buffered(), 0);
        assert_eq!(d.fault_transitions(), 1, "only the on-edge so far");
    }

    #[test]
    fn brownout_thins_emissions() {
        use crate::faults::{FaultKind, FaultWindow};
        let mut rng = StdRng::seed_from_u64(22);
        let mut cfg = fast_config();
        cfg.faults.push(FaultWindow {
            start: SimTime::ZERO + Duration::from_nanos(1),
            end: SimTime::from_micros(500),
            kind: FaultKind::SourceBrownout { rate_factor: 0.1 },
        });
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(200), &mut rng);
        let s = d.stats();
        assert!(s.suppressed > 0);
        // ~90% of the ~200 scheduled emissions are suppressed.
        let kept = s.emitted as f64 / (s.emitted + s.suppressed) as f64;
        assert!(kept < 0.25, "kept fraction {kept}");
    }

    #[test]
    fn clamp_evicts_midstream_and_prunes_partners() {
        use crate::faults::{FaultKind, FaultWindow};
        let mut rng = StdRng::seed_from_u64(23);
        let mut cfg = fast_config();
        cfg.max_age = Duration::from_secs(1); // isolate the clamp effect
        cfg.faults.push(FaultWindow {
            start: SimTime::from_micros(50),
            end: SimTime::from_micros(80),
            kind: FaultKind::QnicClamp { capacity: 1 },
        });
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(40), &mut rng);
        assert!(d.buffered() > 1, "buffer filled before the clamp");
        d.advance_to(SimTime::from_micros(60), &mut rng);
        assert!(d.buffered() <= 1, "clamp took effect mid-run");
        assert!(d.stats().clamp_evicted > 0);
        d.advance_to(SimTime::from_micros(100), &mut rng);
        assert!(d.buffered() > 1, "clamp released, buffer refills");
    }

    #[test]
    fn empty_fault_plan_preserves_the_rng_stream() {
        // The fault hooks must not draw randomness when no fault is
        // active: a run with an empty plan is byte-identical to the
        // pre-fault-injection behaviour.
        let run = |cfg: DistributorConfig| -> (DistributorStats, u64) {
            let mut rng = StdRng::seed_from_u64(24);
            let mut d = EntanglementDistributor::new(cfg, &mut rng);
            let mut consumed_seq = 0u64;
            let mut now = SimTime::ZERO;
            for i in 0..40 {
                now += Duration::from_micros(7);
                if d.take_pair(now, &mut rng).is_some() {
                    consumed_seq |= 1 << i;
                }
            }
            (d.stats(), consumed_seq)
        };
        let nominal = run(fast_config());
        let mut with_plan = fast_config();
        with_plan.faults = FaultPlan::none();
        assert_eq!(run(with_plan), nominal);
    }

    #[test]
    fn stale_pairs_expire() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = fast_config();
        cfg.source = EprSource::new(1e5, 1.0);
        let mut d = EntanglementDistributor::new(cfg, &mut rng);
        d.advance_to(SimTime::from_micros(100), &mut rng);
        let buffered_early = d.buffered();
        assert!(buffered_early > 0);
        // Jump far ahead with no consumption: everything currently
        // buffered must expire (160 µs max age).
        d.advance_to(SimTime::from_secs_f64(0.01), &mut rng);
        assert!(d.stats().expired > 0);
    }

    #[test]
    fn stored_pairs_decohere() {
        // Consume a pair held ≈ τ: same-basis agreement drops below 1.
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 2_000;
        let mut agree = 0usize;
        for _ in 0..trials {
            let mut cfg = fast_config();
            cfg.source = EprSource::new(1e6, 1.0);
            cfg.max_age = Duration::from_secs(1);
            let mut d = EntanglementDistributor::new(cfg, &mut rng);
            // Fill buffer early, then consume late: held time ≈ 100µs = τ.
            d.advance_to(SimTime::from_micros(5), &mut rng);
            if d.buffered() == 0 {
                continue;
            }
            // Stop emission from interfering by consuming the *oldest*.
            let mut pair = match d.take_pair(SimTime::from_micros(105), &mut rng) {
                Some(p) => p,
                None => continue,
            };
            let a = pair.measure_angle(Party::A, 0.0, &mut rng).unwrap();
            let b = pair.measure_angle(Party::B, 0.0, &mut rng).unwrap();
            agree += usize::from(a == b);
        }
        let f = agree as f64 / trials as f64;
        // Z-basis agreement survives dephasing (populations untouched) —
        // so agreement in the computational basis stays high...
        assert!(f > 0.9, "computational-basis agreement {f}");
    }

    #[test]
    fn decoherence_hurts_x_basis_agreement() {
        // ... but X-basis (θ = π/4) agreement is destroyed by dephasing.
        let mut rng = StdRng::seed_from_u64(8);
        let theta = std::f64::consts::FRAC_PI_4;
        let trials = 2_000;
        let mut agree_fresh = 0usize;
        let mut agree_stale = 0usize;
        let mut n_fresh = 0usize;
        let mut n_stale = 0usize;
        for _ in 0..trials {
            let mut cfg = fast_config();
            cfg.max_age = Duration::from_secs(1);
            let mut d = EntanglementDistributor::new(cfg, &mut rng);
            d.advance_to(SimTime::from_micros(5), &mut rng);
            if let Some(mut p) = d.take_pair(SimTime::from_micros(6), &mut rng) {
                let a = p.measure_angle(Party::A, theta, &mut rng).unwrap();
                let b = p.measure_angle(Party::B, theta, &mut rng).unwrap();
                agree_fresh += usize::from(a == b);
                n_fresh += 1;
            }
            let mut d2 = EntanglementDistributor::new(fast_config(), &mut rng);
            d2.advance_to(SimTime::from_micros(5), &mut rng);
            if let Some(mut p) = d2.take_pair(SimTime::from_micros(155), &mut rng) {
                let a = p.measure_angle(Party::A, theta, &mut rng).unwrap();
                let b = p.measure_angle(Party::B, theta, &mut rng).unwrap();
                agree_stale += usize::from(a == b);
                n_stale += 1;
            }
        }
        let f_fresh = agree_fresh as f64 / n_fresh.max(1) as f64;
        let f_stale = agree_stale as f64 / n_stale.max(1) as f64;
        assert!(
            f_fresh > f_stale + 0.1,
            "fresh {f_fresh} should beat stale {f_stale}"
        );
    }
}
