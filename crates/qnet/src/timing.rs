//! The Fig. 2 timing argument: decision latency with pre-shared
//! entanglement vs classical coordination.
//!
//! "Since qubits are pre-shared, decisions can be made as soon as an input
//! arrives at a server, without waiting for inter-server communication."
//! A classical protocol that wants the *same correlated decision quality*
//! must exchange messages, paying at least one propagation delay (and a
//! full RTT for request/response coordination).

use crate::time::SimTime;
use rand::Rng;
use std::time::Duration;

/// How a node reaches a coordinated decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionLatencyModel {
    /// Purely local randomness: decide instantly, zero coordination.
    LocalRandom,
    /// Pre-shared entanglement: decide instantly *with* coordination
    /// (the paper's proposal). Latency is zero when a pair is buffered;
    /// a miss falls back to local randomness (still zero latency) —
    /// tracked separately.
    QuantumPreShared {
        /// Probability a fresh pair is buffered at decision time (from
        /// [`crate::distributor::DistributorStats::availability`]).
        availability: f64,
    },
    /// Ask the peer and wait for the answer: one full round trip.
    ClassicalCoordinate {
        /// Network round-trip time.
        rtt: Duration,
    },
    /// Route the decision through a central scheduler: one RTT to the
    /// scheduler (half the peer RTT each way if co-located, but queuing at
    /// the scheduler adds `scheduler_delay`).
    CentralScheduler {
        /// RTT to the scheduler.
        rtt: Duration,
        /// Mean queueing/processing delay at the scheduler.
        scheduler_delay: Duration,
    },
}

impl DecisionLatencyModel {
    /// Samples the decision latency for one input, plus whether the
    /// decision was *coordinated* (correlated with the peer's) or a
    /// fallback to uncoordinated randomness.
    pub fn sample_decision<R: Rng + ?Sized>(&self, rng: &mut R) -> (Duration, bool) {
        match *self {
            DecisionLatencyModel::LocalRandom => (Duration::ZERO, false),
            DecisionLatencyModel::QuantumPreShared { availability } => {
                let hit = rng.gen::<f64>() < availability;
                (Duration::ZERO, hit)
            }
            DecisionLatencyModel::ClassicalCoordinate { rtt } => (rtt, true),
            DecisionLatencyModel::CentralScheduler {
                rtt,
                scheduler_delay,
            } => (rtt + scheduler_delay, true),
        }
    }

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            DecisionLatencyModel::LocalRandom => "local-random",
            DecisionLatencyModel::QuantumPreShared { .. } => "quantum-preshared",
            DecisionLatencyModel::ClassicalCoordinate { .. } => "classical-rtt",
            DecisionLatencyModel::CentralScheduler { .. } => "central-scheduler",
        }
    }
}

/// Aggregate decision-latency statistics over a stream of inputs.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Model label.
    pub model: &'static str,
    /// Number of inputs processed.
    pub inputs: usize,
    /// Mean decision latency.
    pub mean_latency: Duration,
    /// 99th-percentile decision latency.
    pub p99_latency: Duration,
    /// Fraction of decisions that were coordinated (vs local fallback).
    pub coordinated_fraction: f64,
}

/// Runs `inputs` Poisson-arriving decisions (mean gap `mean_interarrival`)
/// through the model and reports latency statistics.
///
/// # Panics
/// Panics if `inputs == 0`.
pub fn run_timing_experiment<R: Rng + ?Sized>(
    model: DecisionLatencyModel,
    inputs: usize,
    mean_interarrival: Duration,
    rng: &mut R,
) -> TimingReport {
    assert!(inputs > 0, "need at least one input");
    let mut t = SimTime::ZERO;
    let rate = 1.0 / mean_interarrival.as_secs_f64();
    let mut latencies: Vec<Duration> = Vec::with_capacity(inputs);
    let mut coordinated = 0usize;
    for _ in 0..inputs {
        let gap = -(rng.gen::<f64>().max(1e-300)).ln() / rate;
        t += Duration::from_secs_f64(gap);
        let (latency, coord) = model.sample_decision(rng);
        latencies.push(latency);
        coordinated += usize::from(coord);
    }
    latencies.sort_unstable();
    let total: Duration = latencies.iter().sum();
    let p99 = latencies[(latencies.len() as f64 * 0.99) as usize - (latencies.len() >= 100) as usize];
    TimingReport {
        model: model.label(),
        inputs,
        mean_latency: total / inputs as u32,
        p99_latency: p99,
        coordinated_fraction: coordinated as f64 / inputs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantum_decides_instantly() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = run_timing_experiment(
            DecisionLatencyModel::QuantumPreShared { availability: 0.98 },
            10_000,
            Duration::from_micros(10),
            &mut rng,
        );
        assert_eq!(r.mean_latency, Duration::ZERO);
        assert_eq!(r.p99_latency, Duration::ZERO);
        assert!((r.coordinated_fraction - 0.98).abs() < 0.01);
    }

    #[test]
    fn classical_pays_rtt() {
        let mut rng = StdRng::seed_from_u64(2);
        let rtt = Duration::from_micros(50);
        let r = run_timing_experiment(
            DecisionLatencyModel::ClassicalCoordinate { rtt },
            1_000,
            Duration::from_micros(10),
            &mut rng,
        );
        assert_eq!(r.mean_latency, rtt);
        assert_eq!(r.coordinated_fraction, 1.0);
    }

    #[test]
    fn central_scheduler_adds_queueing() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = run_timing_experiment(
            DecisionLatencyModel::CentralScheduler {
                rtt: Duration::from_micros(50),
                scheduler_delay: Duration::from_micros(20),
            },
            1_000,
            Duration::from_micros(10),
            &mut rng,
        );
        assert_eq!(r.mean_latency, Duration::from_micros(70));
    }

    #[test]
    fn local_random_is_never_coordinated() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = run_timing_experiment(
            DecisionLatencyModel::LocalRandom,
            100,
            Duration::from_micros(10),
            &mut rng,
        );
        assert_eq!(r.coordinated_fraction, 0.0);
        assert_eq!(r.mean_latency, Duration::ZERO);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            DecisionLatencyModel::LocalRandom.label(),
            DecisionLatencyModel::QuantumPreShared { availability: 1.0 }.label(),
            DecisionLatencyModel::ClassicalCoordinate {
                rtt: Duration::ZERO,
            }
            .label(),
            DecisionLatencyModel::CentralScheduler {
                rtt: Duration::ZERO,
                scheduler_delay: Duration::ZERO,
            }
            .label(),
        ];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(labels[i], labels[j]);
            }
        }
    }
}
