//! Simulation time.
//!
//! A monotone nanosecond counter. Durations are `std::time::Duration`, so
//! call sites read naturally (`Duration::from_micros(100)` for a QNIC
//! lifetime, `Duration::from_millis(1)` for a datacenter RTT).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation clock (nanoseconds since sim start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from nanoseconds since sim start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds since sim start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from seconds since sim start.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0);
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since sim start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since sim start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`; saturates to zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(5);
        let t2 = t + Duration::from_micros(3);
        assert_eq!(t2.as_nanos(), 8_000);
        assert_eq!(t2 - t, Duration::from_micros(3));
        assert_eq!(t - t2, Duration::ZERO, "saturating");
    }

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(SimTime::ZERO, SimTime::from_nanos(0));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimTime::from_micros(2).to_string(), "2.000µs");
        assert!(SimTime::from_secs_f64(2.0).to_string().ends_with('s'));
    }
}
