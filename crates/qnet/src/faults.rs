//! Deterministic fault injection for the entanglement plane.
//!
//! The passive loss models of this crate (fiber attenuation, QNIC
//! pressure, storage decoherence) describe the *steady state*. Real
//! deployments also see transient failures: a fiber cut, a pump laser
//! browning out, a NIC shedding memory under thermal load, a burst of
//! decoherence. A [`FaultPlan`] schedules such episodes as explicit
//! windows on the simulation clock; a [`FaultClock`] replays them as
//! discrete events (through [`crate::des::EventQueue`], so they count as
//! DES events like everything else) and exposes the instantaneous
//! [`FaultState`] the rest of the plane consumes:
//!
//! - [`FaultKind::LinkOutage`] — photons on the affected link(s) are lost
//!   for the duration ([`crate::link::FiberLink::transmit_through`]).
//! - [`FaultKind::SourceBrownout`] — the source's effective rate drops to
//!   `rate_factor` of nominal via Poisson thinning
//!   ([`crate::epr::EprSource::brownout_keeps`]).
//! - [`FaultKind::QnicClamp`] — both endpoint memories are clamped to a
//!   smaller capacity; over-quota qubits are evicted immediately
//!   ([`crate::qnic::Qnic::set_capacity_clamp`]).
//! - [`FaultKind::DecoherenceSpike`] — the coherence lifetime τ is scaled
//!   by `lifetime_factor` ([`crate::qnic::Qnic::set_lifetime_scale`]).
//!
//! Plans are pure data built from a seed before a run starts, so a
//! faulted simulation stays byte-identical across worker counts exactly
//! like a fault-free one. Crucially, a run with an *empty* plan consumes
//! the same RNG stream as a build without this module at all — fault
//! hooks only draw randomness while a fault is active.

use crate::des::EventQueue;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Fault on/off edges processed across all clocks in the process.
static FAULT_TRANSITIONS: obs::LazyCounter = obs::LazyCounter::new("qnet.faults.transitions");
/// Currently-active fault windows (last value / high-water).
static FAULT_ACTIVE: obs::LazyGauge = obs::LazyGauge::new("qnet.faults.active");

/// Which fiber(s) a link outage takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSide {
    /// The source → endpoint-A fiber.
    A,
    /// The source → endpoint-B fiber.
    B,
    /// Both fibers (e.g. a cut upstream of the splitter).
    Both,
}

/// One kind of transient fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Photons on the affected link(s) are lost while active.
    LinkOutage(LinkSide),
    /// The source emits at `rate_factor` × nominal (Poisson thinning).
    SourceBrownout {
        /// Effective-rate multiplier in `[0, 1]`.
        rate_factor: f64,
    },
    /// Endpoint QNIC memories are clamped to `capacity` slots.
    QnicClamp {
        /// Clamped capacity (≥ 1).
        capacity: usize,
    },
    /// Coherence lifetime τ is scaled by `lifetime_factor`.
    DecoherenceSpike {
        /// τ multiplier in `(0, 1]` — smaller means faster dephasing.
        lifetime_factor: f64,
    },
    /// A topology fiber edge is cut: every chain routed through
    /// [`crate::topology::MetroGraph`] edge `edge` starves until it
    /// clears — the fault whose blast radius depends on the routing
    /// ([`FaultClock::downed_edges`] feeds [`crate::routing::best_path`]).
    EdgeCut {
        /// The [`crate::topology::MetroGraph`] edge id.
        edge: u32,
    },
}

/// A fault active on the half-open interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// When the fault trips.
    pub start: SimTime,
    /// When it clears.
    pub end: SimTime,
    /// What fails.
    pub kind: FaultKind,
}

/// A schedule of fault windows — pure data, built before the run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The empty plan: nominal operation throughout.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The scheduled windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Adds one window.
    ///
    /// # Panics
    /// Panics if `end <= start` or the kind's parameter is out of range
    /// (`rate_factor ∉ [0, 1]`, `capacity == 0`, `lifetime_factor ≤ 0`).
    pub fn push(&mut self, window: FaultWindow) {
        assert!(window.end > window.start, "empty fault window");
        match window.kind {
            FaultKind::SourceBrownout { rate_factor } => {
                assert!(
                    (0.0..=1.0).contains(&rate_factor),
                    "brownout rate_factor {rate_factor} outside [0, 1]"
                );
            }
            FaultKind::QnicClamp { capacity } => {
                assert!(capacity >= 1, "clamp capacity must be ≥ 1");
            }
            FaultKind::DecoherenceSpike { lifetime_factor } => {
                assert!(lifetime_factor > 0.0, "lifetime_factor must be positive");
            }
            FaultKind::LinkOutage(_) | FaultKind::EdgeCut { .. } => {}
        }
        self.windows.push(window);
    }

    /// A periodic schedule: `kind` trips at `first`, `first + period`, …
    /// for `duration` each time, up to (excluding) `horizon`.
    ///
    /// # Panics
    /// Panics if `period` or `duration` is zero (see also [`Self::push`]).
    pub fn periodic(
        kind: FaultKind,
        first: SimTime,
        period: Duration,
        duration: Duration,
        horizon: SimTime,
    ) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        assert!(!duration.is_zero(), "duration must be positive");
        let mut plan = FaultPlan::none();
        let mut start = first;
        while start < horizon {
            plan.push(FaultWindow {
                start,
                end: start + duration,
                kind,
            });
            start += period;
        }
        plan
    }

    /// Concatenates another plan's windows onto this one (faults compose:
    /// overlapping windows all apply simultaneously).
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.windows.extend(other.windows);
        self
    }

    /// An aggressive randomized schedule exercising all four fault kinds,
    /// a pure function of `seed` (each kind gets its own SplitMix64-derived
    /// RNG stream, so the plan is independent of evaluation order).
    ///
    /// Gaps and durations are exponential with means `mean_gap` and
    /// `mean_duration`; brownout/clamp/spike severities are drawn per
    /// window. Intended for chaos testing, not for calibrated sweeps.
    pub fn chaos(seed: u64, horizon: SimTime, mean_gap: Duration, mean_duration: Duration) -> Self {
        assert!(!mean_gap.is_zero() && !mean_duration.is_zero(), "zero means");
        let mut plan = FaultPlan::none();
        for lane in 0u64..4 {
            let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(lane)));
            let mut t = SimTime::ZERO;
            loop {
                let gap = sample_exp(mean_gap, &mut rng);
                let dur = sample_exp(mean_duration, &mut rng).max(Duration::from_nanos(1));
                let start = t + gap;
                if start >= horizon {
                    break;
                }
                let kind = match lane {
                    0 => FaultKind::LinkOutage(match rng.gen_range(0..3) {
                        0 => LinkSide::A,
                        1 => LinkSide::B,
                        _ => LinkSide::Both,
                    }),
                    1 => FaultKind::SourceBrownout {
                        rate_factor: rng.gen_range(0.05..0.5),
                    },
                    2 => FaultKind::QnicClamp {
                        capacity: rng.gen_range(1..4),
                    },
                    _ => FaultKind::DecoherenceSpike {
                        lifetime_factor: rng.gen_range(0.1..0.5),
                    },
                };
                plan.push(FaultWindow {
                    start,
                    end: start + dur,
                    kind,
                });
                t = start + dur;
            }
        }
        plan
    }
}

/// SplitMix64 — the same mixer `runtime::seed` freezes, reproduced here
/// so `qnet` stays free of a `runtime` dependency.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sample_exp<R: Rng + ?Sized>(mean: Duration, rng: &mut R) -> Duration {
    let u: f64 = rng.gen::<f64>().max(1e-300);
    Duration::from_secs_f64(-u.ln() * mean.as_secs_f64())
}

/// The instantaneous fault state the entanglement plane consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultState {
    /// Is the source → A fiber passing photons?
    pub link_a_up: bool,
    /// Is the source → B fiber passing photons?
    pub link_b_up: bool,
    /// Effective-rate multiplier (product of active brownouts).
    pub rate_factor: f64,
    /// Tightest active QNIC capacity clamp, if any.
    pub capacity_clamp: Option<usize>,
    /// τ multiplier (product of active spikes).
    pub lifetime_factor: f64,
}

impl FaultState {
    /// Nominal operation: everything up, nothing scaled.
    pub const NOMINAL: FaultState = FaultState {
        link_a_up: true,
        link_b_up: true,
        rate_factor: 1.0,
        capacity_clamp: None,
        lifetime_factor: 1.0,
    };
}

/// An on/off edge of one fault window.
#[derive(Debug, Clone, Copy)]
struct FaultEdge {
    on: bool,
    kind: FaultKind,
}

/// Replays a [`FaultPlan`] as discrete events, maintaining the current
/// [`FaultState`]. Overlapping windows compose: outages OR together,
/// brownouts and spikes multiply, clamps take the minimum.
pub struct FaultClock {
    queue: EventQueue<FaultEdge>,
    /// Cached [`EventQueue::peek_time`] of `queue` — peeking the calendar
    /// wheel needs `&mut`, and the distributor polls the next edge on its
    /// hot path, so the clock keeps it as a plain field.
    next_edge: Option<SimTime>,
    active: Vec<FaultKind>,
    state: FaultState,
    transitions: u64,
}

impl FaultClock {
    /// Compiles a plan into an event schedule (both edges of every
    /// window are enqueued up front).
    pub fn new(plan: &FaultPlan) -> Self {
        let mut queue = EventQueue::new();
        for w in plan.windows() {
            queue.schedule(w.start, FaultEdge { on: true, kind: w.kind });
            queue.schedule(w.end, FaultEdge { on: false, kind: w.kind });
        }
        let next_edge = queue.peek_time();
        FaultClock {
            queue,
            next_edge,
            active: Vec::new(),
            state: FaultState::NOMINAL,
            transitions: 0,
        }
    }

    /// The time of the next pending on/off edge.
    pub fn next_transition(&self) -> Option<SimTime> {
        self.next_edge
    }

    /// Processes every edge scheduled at or before `now`. Returns true
    /// if the state may have changed.
    pub fn advance_through(&mut self, now: SimTime) -> bool {
        let mut changed = false;
        while self.next_edge.is_some_and(|t| t <= now) {
            let (_, edge) = self.queue.pop().expect("peeked an event");
            self.next_edge = self.queue.peek_time();
            if edge.on {
                self.active.push(edge.kind);
            } else if let Some(pos) = self.active.iter().position(|k| *k == edge.kind) {
                // The off edge carries the same payload as its on edge, so
                // bitwise equality always finds the matching activation.
                self.active.remove(pos);
            }
            self.transitions += 1;
            FAULT_TRANSITIONS.inc();
            changed = true;
        }
        if changed {
            self.recompute();
            FAULT_ACTIVE.set(self.active.len() as i64);
        }
        changed
    }

    fn recompute(&mut self) {
        let mut s = FaultState::NOMINAL;
        for kind in &self.active {
            match *kind {
                FaultKind::LinkOutage(LinkSide::A) => s.link_a_up = false,
                FaultKind::LinkOutage(LinkSide::B) => s.link_b_up = false,
                FaultKind::LinkOutage(LinkSide::Both) => {
                    s.link_a_up = false;
                    s.link_b_up = false;
                }
                FaultKind::SourceBrownout { rate_factor } => s.rate_factor *= rate_factor,
                FaultKind::QnicClamp { capacity } => {
                    s.capacity_clamp = Some(s.capacity_clamp.map_or(capacity, |c| c.min(capacity)));
                }
                FaultKind::DecoherenceSpike { lifetime_factor } => {
                    s.lifetime_factor *= lifetime_factor;
                }
                // Edge cuts live in the topology plane: [`FaultState`] is
                // the two-QNIC distributor's view and stays untouched; the
                // routing layer reads [`Self::downed_edges`] instead.
                FaultKind::EdgeCut { .. } => {}
            }
        }
        self.state = s;
    }

    /// The current fault state.
    pub fn state(&self) -> FaultState {
        self.state
    }

    /// True while an [`FaultKind::EdgeCut`] on `edge` is active.
    pub fn edge_down(&self, edge: u32) -> bool {
        self.active
            .iter()
            .any(|k| matches!(k, FaultKind::EdgeCut { edge: e } if *e == edge))
    }

    /// The currently-cut topology edges as a downed mask sized for
    /// `n_edges` (the shape [`crate::routing::best_path`] consumes).
    /// Active cuts on edge ids ≥ `n_edges` are ignored.
    pub fn downed_edges(&self, n_edges: usize) -> Vec<bool> {
        let mut downed = vec![false; n_edges];
        for k in &self.active {
            if let FaultKind::EdgeCut { edge } = k {
                if let Some(slot) = downed.get_mut(*edge as usize) {
                    *slot = true;
                }
            }
        }
        downed
    }

    /// Total on/off edges processed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn clock_trips_and_clears_in_order() {
        let mut plan = FaultPlan::none();
        plan.push(FaultWindow {
            start: us(10),
            end: us(20),
            kind: FaultKind::LinkOutage(LinkSide::A),
        });
        let mut clock = FaultClock::new(&plan);
        assert_eq!(clock.state(), FaultState::NOMINAL);
        assert_eq!(clock.next_transition(), Some(us(10)));

        assert!(!clock.advance_through(us(9)));
        assert!(clock.advance_through(us(10)));
        assert!(!clock.state().link_a_up);
        assert!(clock.state().link_b_up);

        assert!(clock.advance_through(us(25)));
        assert_eq!(clock.state(), FaultState::NOMINAL);
        assert_eq!(clock.transitions(), 2);
        assert_eq!(clock.next_transition(), None);
    }

    #[test]
    fn overlapping_faults_compose() {
        let mut plan = FaultPlan::none();
        plan.push(FaultWindow {
            start: us(0) + Duration::from_nanos(1),
            end: us(100),
            kind: FaultKind::SourceBrownout { rate_factor: 0.5 },
        });
        plan.push(FaultWindow {
            start: us(1),
            end: us(100),
            kind: FaultKind::SourceBrownout { rate_factor: 0.5 },
        });
        plan.push(FaultWindow {
            start: us(1),
            end: us(50),
            kind: FaultKind::QnicClamp { capacity: 8 },
        });
        plan.push(FaultWindow {
            start: us(2),
            end: us(40),
            kind: FaultKind::QnicClamp { capacity: 2 },
        });
        let mut clock = FaultClock::new(&plan);
        clock.advance_through(us(10));
        let s = clock.state();
        assert!((s.rate_factor - 0.25).abs() < 1e-12, "brownouts multiply");
        assert_eq!(s.capacity_clamp, Some(2), "clamps take the minimum");

        clock.advance_through(us(45));
        assert_eq!(clock.state().capacity_clamp, Some(8), "inner clamp cleared");
        clock.advance_through(us(200));
        assert_eq!(clock.state(), FaultState::NOMINAL);
    }

    #[test]
    fn periodic_plan_covers_horizon() {
        let plan = FaultPlan::periodic(
            FaultKind::LinkOutage(LinkSide::Both),
            us(5),
            Duration::from_micros(10),
            Duration::from_micros(2),
            us(50),
        );
        // Starts at 5, 15, 25, 35, 45 — five windows before the horizon.
        assert_eq!(plan.windows().len(), 5);
        assert_eq!(plan.windows()[4].start, us(45));
        assert_eq!(plan.windows()[4].end, us(47));
    }

    #[test]
    fn chaos_plan_is_a_pure_function_of_its_seed() {
        let mk = || {
            FaultPlan::chaos(
                0xfau64,
                SimTime::from_secs_f64(0.01),
                Duration::from_micros(300),
                Duration::from_micros(150),
            )
        };
        let (a, b) = (mk(), mk());
        assert!(!a.is_empty());
        assert_eq!(a.windows(), b.windows());
        let other = FaultPlan::chaos(
            0xfbu64,
            SimTime::from_secs_f64(0.01),
            Duration::from_micros(300),
            Duration::from_micros(150),
        );
        assert_ne!(a.windows(), other.windows(), "different seed, different plan");
    }

    #[test]
    fn edge_cuts_track_topology_edges_without_touching_state() {
        let mut plan = FaultPlan::none();
        plan.push(FaultWindow {
            start: us(10),
            end: us(20),
            kind: FaultKind::EdgeCut { edge: 3 },
        });
        plan.push(FaultWindow {
            start: us(15),
            end: us(30),
            kind: FaultKind::EdgeCut { edge: 1 },
        });
        let mut clock = FaultClock::new(&plan);
        clock.advance_through(us(16));
        // The distributor's view is untouched; the routing mask is not.
        assert_eq!(clock.state(), FaultState::NOMINAL);
        assert!(clock.edge_down(1) && clock.edge_down(3));
        assert_eq!(clock.downed_edges(5), vec![false, true, false, true, false]);
        // Out-of-range ids never panic the mask.
        assert_eq!(clock.downed_edges(2), vec![false, true]);
        clock.advance_through(us(25));
        assert_eq!(clock.downed_edges(5), vec![false, true, false, false, false]);
        clock.advance_through(us(40));
        assert!(!clock.edge_down(1));
    }

    #[test]
    #[should_panic(expected = "empty fault window")]
    fn empty_window_panics() {
        FaultPlan::none().push(FaultWindow {
            start: us(5),
            end: us(5),
            kind: FaultKind::LinkOutage(LinkSide::A),
        });
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_brownout_panics() {
        FaultPlan::none().push(FaultWindow {
            start: us(0) + Duration::from_nanos(0),
            end: us(1),
            kind: FaultKind::SourceBrownout { rate_factor: 1.5 },
        });
    }
}
