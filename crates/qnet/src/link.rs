//! Optical fiber links.
//!
//! Photon survival follows the standard attenuation law
//! `P = 10^(−αL/10)` with α ≈ 0.2 dB/km for telecom fiber; propagation is
//! at ~2/3 the vacuum speed of light. These are the figures behind the
//! paper's "single fiber-optic cable" distribution channel (§3).

use rand::Rng;
use std::time::Duration;

/// Speed of light in fiber, m/s (refractive index ≈ 1.468).
pub const FIBER_LIGHT_SPEED_M_PER_S: f64 = 2.04e8;

/// Standard telecom-fiber attenuation, dB/km at 1550 nm.
pub const STANDARD_ATTENUATION_DB_PER_KM: f64 = 0.2;

/// A point-to-point fiber link.
#[derive(Debug, Clone, Copy)]
pub struct FiberLink {
    length_km: f64,
    attenuation_db_per_km: f64,
}

impl FiberLink {
    /// A link of the given length with standard 0.2 dB/km attenuation.
    ///
    /// # Panics
    /// Panics on negative length.
    pub fn new(length_km: f64) -> Self {
        Self::with_attenuation(length_km, STANDARD_ATTENUATION_DB_PER_KM)
    }

    /// A link with explicit attenuation.
    ///
    /// # Panics
    /// Panics on negative length or attenuation.
    pub fn with_attenuation(length_km: f64, attenuation_db_per_km: f64) -> Self {
        assert!(length_km >= 0.0, "negative length");
        assert!(attenuation_db_per_km >= 0.0, "negative attenuation");
        FiberLink {
            length_km,
            attenuation_db_per_km,
        }
    }

    /// Link length in km.
    pub fn length_km(&self) -> f64 {
        self.length_km
    }

    /// Probability a photon survives the link.
    pub fn survival_probability(&self) -> f64 {
        10f64.powf(-self.attenuation_db_per_km * self.length_km / 10.0)
    }

    /// One-way propagation delay.
    pub fn propagation_delay(&self) -> Duration {
        Duration::from_secs_f64(self.length_km * 1000.0 / FIBER_LIGHT_SPEED_M_PER_S)
    }

    /// Samples whether a photon survives transit.
    pub fn transmit<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.transmit_through(true, rng)
    }

    /// [`Self::transmit`] through a link that may be down (`up == false`
    /// during a [`crate::faults::FaultKind::LinkOutage`]): a downed link
    /// passes nothing. The attenuation draw happens unconditionally so a
    /// run's RNG stream does not depend on the fault schedule — only the
    /// outcomes do.
    pub fn transmit_through<R: Rng + ?Sized>(&self, up: bool, rng: &mut R) -> bool {
        let survives = rng.gen::<f64>() < self.survival_probability();
        up && survives
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_length_is_lossless_and_instant() {
        let l = FiberLink::new(0.0);
        assert_eq!(l.survival_probability(), 1.0);
        assert_eq!(l.propagation_delay(), Duration::ZERO);
    }

    #[test]
    fn fifty_km_standard_loss() {
        // 50 km × 0.2 dB/km = 10 dB → 10% survival.
        let l = FiberLink::new(50.0);
        assert!((l.survival_probability() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn propagation_delay_datacenter_scale() {
        // 1 km of fiber ≈ 4.9 µs one-way.
        let l = FiberLink::new(1.0);
        let d = l.propagation_delay();
        assert!(d > Duration::from_micros(4) && d < Duration::from_micros(6), "{d:?}");
    }

    #[test]
    fn transmit_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = FiberLink::new(15.0); // 3 dB → ~50.1%
        let trials = 20_000;
        let survived = (0..trials).filter(|_| l.transmit(&mut rng)).count();
        let f = survived as f64 / trials as f64;
        assert!((f - l.survival_probability()).abs() < 0.02, "rate {f}");
    }

    #[test]
    #[should_panic(expected = "negative length")]
    fn negative_length_panics() {
        FiberLink::new(-1.0);
    }
}
