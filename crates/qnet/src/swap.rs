//! Entanglement swapping — extending entanglement beyond one fiber hop.
//!
//! §3 cites quantum repeaters \[62\] and metropolitan-scale heralded
//! entanglement \[63\]. The primitive underneath both is *swapping*: given a
//! pair shared between A and a midpoint M, and another between M and B, a
//! Bell-state measurement (BSM) at M — plus a 2-bit classical correction
//! sent to B — leaves A and B entangled even though their photons never
//! met. (The classical correction travels at light speed: swapping
//! extends *pre-shared* entanglement; it does not communicate faster than
//! light.)
//!
//! Noise composes multiplicatively: swapping two Werner pairs of
//! visibilities `v₁` and `v₂` yields a pair of visibility `v₁·v₂` —
//! verified by the tests below, and the reason long repeater chains need
//! purification.

use qsim::{gates, DensityMatrix, SimError};
use qmath::CMatrix;
use rand::Rng;
use std::fmt;

/// Swaps performed.
static SWAPS: obs::LazyCounter = obs::LazyCounter::new("qnet.swap.count");
/// End-to-end Werner visibility of swapped pairs, in basis points
/// (v × 10⁴, clamped to [0, 10⁴]).
static SWAP_VISIBILITY_BP: obs::LazyHist = obs::LazyHist::new("qnet.swap.visibility_bp");

/// The outcome of a swap: the end-to-end pair (A, B) plus the midpoint's
/// Bell-measurement outcome bits (already corrected for — reported for
/// bookkeeping/heralding).
#[derive(Debug, Clone)]
pub struct SwapOutcome {
    /// The resulting two-qubit state shared by the end parties.
    pub pair: DensityMatrix,
    /// The midpoint's first measurement bit (Z-type correction applied).
    pub m1: u8,
    /// The midpoint's second measurement bit (X-type correction applied).
    pub m2: u8,
}

/// Swaps entanglement: consumes a pair between A and midpoint (qubits
/// A, M₁) and a pair between midpoint and B (qubits M₂, B), performs a
/// BSM on (M₁, M₂), applies the heralded Pauli correction on B, and
/// returns the (A, B) pair.
///
/// # Errors
/// [`SimError::SizeMismatch`] unless both inputs are 2-qubit states.
pub fn entanglement_swap<R: Rng + ?Sized>(
    pair_am: &DensityMatrix,
    pair_mb: &DensityMatrix,
    rng: &mut R,
) -> Result<SwapOutcome, SimError> {
    if pair_am.n_qubits() != 2 || pair_mb.n_qubits() != 2 {
        return Err(SimError::SizeMismatch {
            op: "entanglement_swap",
            lhs: pair_am.n_qubits(),
            rhs: pair_mb.n_qubits(),
        });
    }
    // Joint register: qubit 0 = A, 1 = M₁, 2 = M₂, 3 = B.
    let mut joint = pair_am.tensor(pair_mb);

    // Bell-state measurement on (1, 2): CNOT(1→2), H(1), measure both.
    let cnot = embed_cnot_adjacent(4, 1);
    joint.apply_unitary(&cnot)?;
    joint.apply_gate1(1, &gates::h())?;
    let m1 = joint.measure_in_basis(1, &qsim::measure::Basis1::computational(), rng)?;
    let m2 = joint.measure_in_basis(2, &qsim::measure::Basis1::computational(), rng)?;

    // Heralded corrections on B (transmitted classically in a real
    // system; the end-to-end pair is unusable until they arrive).
    if m2 == 1 {
        joint.apply_gate1(3, &gates::x())?;
    }
    if m1 == 1 {
        joint.apply_gate1(3, &gates::z())?;
    }

    let pair = joint.partial_trace(&[0, 3])?;
    SWAPS.inc();
    if obs::enabled() {
        // The fidelity estimate is itself a small matrix contraction, so
        // it runs only while collection is on.
        if let Ok(f) = pair.fidelity_with_pure(&qsim::bell::phi_plus()) {
            let v = ((4.0 * f - 1.0) / 3.0).clamp(0.0, 1.0);
            SWAP_VISIBILITY_BP.record((v * 1e4).round() as u64);
        }
    }
    Ok(SwapOutcome { pair, m1, m2 })
}

/// Builds the full-register CNOT with control `q` and target `q+1`.
fn embed_cnot_adjacent(n_qubits: usize, q: usize) -> CMatrix {
    debug_assert!(q + 1 < n_qubits);
    let g = gates::cnot();
    let mut u = CMatrix::zeros(4, 4);
    for r in 0..4 {
        for c in 0..4 {
            u[(r, c)] = g[r][c];
        }
    }
    let left = CMatrix::identity(1 << q);
    let right = CMatrix::identity(1 << (n_qubits - q - 2));
    left.kron(&u).kron(&right)
}

/// Convenience: swap two Werner pairs of the given visibilities and
/// return the resulting end-to-end state.
///
/// # Errors
/// [`SimError::BadProbability`] for out-of-range visibilities.
pub fn swap_werner_pairs<R: Rng + ?Sized>(
    v1: f64,
    v2: f64,
    rng: &mut R,
) -> Result<DensityMatrix, SimError> {
    let p1 = qsim::noise::werner(v1)?;
    let p2 = qsim::noise::werner(v2)?;
    Ok(entanglement_swap(&p1, &p2, rng)?.pair)
}

/// Swap-layer input errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapError {
    /// A visibility outside `[0, 1]` (NaN included).
    BadVisibility {
        /// The offending value.
        value: f64,
    },
    /// A probability outside `[0, 1]` (NaN included).
    BadProbability {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::BadVisibility { value } => {
                write!(f, "visibility {value} outside [0, 1]")
            }
            SwapError::BadProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// The number of swap hops a chain can tolerate before the end-to-end
/// visibility `v₀^(hops+1)` drops below the CHSH threshold `1/√2`.
///
/// Closed form: the largest `h` with `v₀^(h+1) > 1/√2`, computed from
/// logarithms and then corrected with exact powers — the historical
/// repeated-multiplication loop needed `h` iterations, which for
/// visibilities within a few ULP of 1 (e.g. `1 − 1e−15`) meant ~10¹⁴
/// iterations: an effective hang.
///
/// # Errors
/// [`SwapError::BadVisibility`] when `per_link_visibility ∉ [0, 1]`
/// (NaN included) — the typed replacement for the old panicking assert.
pub fn max_swap_hops(per_link_visibility: f64) -> Result<usize, SwapError> {
    if !(0.0..=1.0).contains(&per_link_visibility) {
        return Err(SwapError::BadVisibility {
            value: per_link_visibility,
        });
    }
    if per_link_visibility >= 1.0 {
        return Ok(usize::MAX);
    }
    if per_link_visibility <= 0.0 {
        return Ok(0);
    }
    let threshold = qsim::noise::WERNER_CHSH_THRESHOLD;
    // v^(h+1) > t  ⟺  h + 1 < ln t / ln v  (both logs negative).
    let mut hops = (threshold.ln() / per_link_visibility.ln() - 1.0).floor().max(0.0) as usize;
    // The log estimate can be off by one either way; settle it with exact
    // powers where the exponent fits (beyond ~10⁹ hops a ±1 correction is
    // physically meaningless anyway).
    if hops < (i32::MAX - 2) as usize {
        while hops > 0 && per_link_visibility.powi(hops as i32 + 1) <= threshold {
            hops -= 1;
        }
        while per_link_visibility.powi(hops as i32 + 2) > threshold {
            hops += 1;
        }
    }
    Ok(hops)
}

/// Panicking convenience wrapper around [`max_swap_hops`], kept for call
/// sites that validate their visibility up front.
///
/// # Panics
/// Panics on a visibility outside `[0, 1]` (NaN included).
pub fn max_useful_hops(per_link_visibility: f64) -> usize {
    max_swap_hops(per_link_visibility).expect("bad visibility")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::{bell, tomography};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn swapping_perfect_pairs_yields_perfect_pair() {
        let mut rng = StdRng::seed_from_u64(1);
        let ideal = DensityMatrix::from_pure(&bell::phi_plus());
        for _ in 0..20 {
            let out = entanglement_swap(&ideal, &ideal, &mut rng).unwrap();
            let f = out.pair.fidelity_with_pure(&bell::phi_plus()).unwrap();
            assert!(
                (f - 1.0).abs() < 1e-9,
                "swap fidelity {f} (m1={}, m2={})",
                out.m1,
                out.m2
            );
        }
    }

    #[test]
    fn all_four_heralds_occur() {
        let mut rng = StdRng::seed_from_u64(2);
        let ideal = DensityMatrix::from_pure(&bell::phi_plus());
        let mut seen = [false; 4];
        for _ in 0..200 {
            let out = entanglement_swap(&ideal, &ideal, &mut rng).unwrap();
            seen[(out.m1 * 2 + out.m2) as usize] = true;
        }
        assert_eq!(seen, [true; 4], "all BSM outcomes should occur");
    }

    #[test]
    fn werner_visibilities_multiply() {
        let mut rng = StdRng::seed_from_u64(3);
        for (v1, v2) in [(1.0, 0.8), (0.9, 0.9), (0.7, 0.6)] {
            let pair = swap_werner_pairs(v1, v2, &mut rng).unwrap();
            let v_out = tomography::werner_visibility(&pair).unwrap();
            assert!(
                (v_out - v1 * v2).abs() < 1e-9,
                "v1={v1} v2={v2}: got {v_out}, expected {}",
                v1 * v2
            );
        }
    }

    #[test]
    fn swapped_pair_is_valid_state() {
        let mut rng = StdRng::seed_from_u64(4);
        let pair = swap_werner_pairs(0.85, 0.85, &mut rng).unwrap();
        assert!(pair.is_valid(1e-8));
        assert_eq!(pair.n_qubits(), 2);
    }

    #[test]
    fn hop_budget() {
        // v = 0.95 per link: v^(h+1) > 0.7071 → h+1 < ln(.7071)/ln(.95)
        // ≈ 6.76 → 5 swaps (6 links).
        assert_eq!(max_useful_hops(0.95), 5);
        assert_eq!(max_useful_hops(1.0), usize::MAX);
        assert_eq!(max_useful_hops(0.5), 0);
    }

    #[test]
    fn hop_budget_boundary_inputs() {
        // Exact domain edges return, never panic.
        assert_eq!(max_swap_hops(0.0), Ok(0));
        assert_eq!(max_swap_hops(1.0), Ok(usize::MAX));
        // At exactly the CHSH threshold even the first swap kills the
        // advantage: v² < v = 1/√2.
        assert_eq!(max_swap_hops(qsim::noise::WERNER_CHSH_THRESHOLD), Ok(0));
        // Just above the threshold: v² still below it → 0 swaps.
        assert_eq!(max_swap_hops(0.71), Ok(0));
        // A visibility a few ULP under 1 must return promptly (the old
        // repeated-multiplication loop needed ~10¹⁴ iterations here).
        let near_one = 1.0 - 1e-15;
        let hops = max_swap_hops(near_one).unwrap();
        assert!(hops > 100_000_000_000_000, "{hops}");
    }

    #[test]
    fn hop_budget_matches_multiplicative_oracle() {
        // The closed form must agree with the literal loop wherever the
        // loop is feasible.
        for v in [0.72, 0.75, 0.8, 0.85, 0.9, 0.95, 0.99, 0.999] {
            let threshold = qsim::noise::WERNER_CHSH_THRESHOLD;
            let mut acc = v;
            let mut oracle = 0usize;
            while acc * v > threshold {
                acc *= v;
                oracle += 1;
            }
            assert_eq!(max_swap_hops(v), Ok(oracle), "v = {v}");
        }
    }

    #[test]
    fn hop_budget_rejects_invalid_visibility() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = max_swap_hops(bad).unwrap_err();
            assert!(
                matches!(err, SwapError::BadVisibility { .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn wrong_sizes_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let one = DensityMatrix::maximally_mixed(1);
        let two = DensityMatrix::maximally_mixed(2);
        assert!(entanglement_swap(&one, &two, &mut rng).is_err());
    }
}
