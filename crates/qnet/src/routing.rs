//! Pair routing and contention scheduling over a [`MetroGraph`].
//!
//! Two decisions per epoch:
//!
//! 1. **Which path?** [`best_path`] — deterministic Dijkstra maximizing
//!    end-to-end visibility (additive weight `−ln v_edge − ln ideality`,
//!    which orders paths identically to `∏ v · ideality^(h−1)` since the
//!    per-path constant `+ln ideality` cancels). Downed edges are
//!    excluded outright; server nodes never relay.
//! 2. **Who gets emissions?** [`allocate`] — the multiplexed sources'
//!    per-epoch budgets are shared by every chain routed over an edge
//!    they pump. The scheduler grants whole attempts (one attempt =
//!    one emission per hop, charged to each hop's source) under a
//!    [`Policy`], is exactly budget-conserving, and is work-conserving:
//!    it stops only when no pair with remaining demand can afford its
//!    chain.
//!
//! [`route_epoch`] composes both with the chain physics
//! ([`crate::topology::ChainSpec::sample_attempt`]) and instruments the result: per-chain
//! lifecycle trace events on [`trace::Track::Chain`] and
//! `qnet.topology.*` counters.

use crate::topology::{MetroGraph, NodeKind, TopologyError};
use rand::Rng;

/// Routes computed (one per served pair per epoch).
static ROUTES: obs::LazyCounter = obs::LazyCounter::new("qnet.topology.routes");
/// End-to-end delivery attempts granted by the scheduler.
static ATTEMPTS: obs::LazyCounter = obs::LazyCounter::new("qnet.topology.attempts");
/// Attempts that delivered an end-to-end pair.
static DELIVERED: obs::LazyCounter = obs::LazyCounter::new("qnet.topology.delivered");
/// Pair-epochs left with zero grants (no route, or budget exhausted).
static STARVED: obs::LazyCounter = obs::LazyCounter::new("qnet.topology.starved");
/// Elementary-pair emissions spent across all sources.
static BUDGET_SPENT: obs::LazyCounter = obs::LazyCounter::new("qnet.topology.budget_spent");
/// The plane-wide emission counter (shared with the distributor by
/// name): every granted attempt emits one elementary pair per hop, so
/// topology runs report a real `pairs_per_sec` in the perf gate.
static EPR_EMITTED: obs::LazyCounter = obs::LazyCounter::new("qnet.epr.emitted");

/// A routed path between two servers.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Edge ids, in order from `from` to `to`.
    pub edges: Vec<u32>,
    /// Node ids visited, `from` first, `to` last (`edges.len() + 1`).
    pub nodes: Vec<u32>,
    /// Closed-form end-to-end visibility of the chain over this path.
    pub visibility: f64,
}

/// Finds the maximum-visibility path from `from` to `to`, never
/// transiting a downed edge (`downed[edge_id]`; shorter slices mean the
/// rest are up) or relaying through a [`NodeKind::Server`]. Ties are
/// broken deterministically toward lower node ids, but callers should
/// rely only on the route's visibility and hop count being optimal —
/// equal-weight alternatives are legitimate.
///
/// # Errors
/// [`TopologyError::UnknownNode`] for bad endpoints,
/// [`TopologyError::NoRoute`] when every path is cut.
pub fn best_path(
    g: &MetroGraph,
    from: u32,
    to: u32,
    downed: &[bool],
) -> Result<Route, TopologyError> {
    let n = g.n_nodes();
    for node in [from, to] {
        if node as usize >= n {
            return Err(TopologyError::UnknownNode { node });
        }
    }
    if from == to {
        return Err(TopologyError::SelfLoop { node: from });
    }
    let ideality = g.swap_model().ideality;
    // Additive edge weight; −ln clamps v = 0 to +∞ (unusable edge).
    let weight = |v: f64| -> f64 { -(v.max(f64::MIN_POSITIVE).ln()) - ideality.max(f64::MIN_POSITIVE).ln() };

    let mut dist = vec![f64::INFINITY; n];
    let mut prev_edge: Vec<Option<u32>> = vec![None; n];
    let mut done = vec![false; n];
    dist[from as usize] = 0.0;
    loop {
        // O(V) extract-min with ascending-id tie-break: deterministic.
        let mut u = None;
        for (i, &d) in dist.iter().enumerate() {
            if !done[i] && d.is_finite() && u.is_none_or(|(_, best)| d < best) {
                u = Some((i, d));
            }
        }
        let Some((u, du)) = u else { break };
        if u as u32 == to {
            break;
        }
        done[u] = true;
        // Servers terminate chains; only the origin may fan out of one.
        if g.node_kind(u as u32) == NodeKind::Server && u as u32 != from {
            continue;
        }
        for &eid in g.adjacent(u as u32) {
            if downed.get(eid as usize).copied().unwrap_or(false) {
                continue;
            }
            let e = g.edges()[eid as usize];
            let Some(v) = e.other(u as u32) else { continue };
            let nd = du + weight(e.visibility);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                prev_edge[v as usize] = Some(eid);
            }
        }
    }
    if !dist[to as usize].is_finite() {
        return Err(TopologyError::NoRoute { from, to });
    }
    let mut edges = Vec::new();
    let mut nodes = vec![to];
    let mut cur = to;
    while cur != from {
        let eid = prev_edge[cur as usize].expect("finite dist has a predecessor");
        edges.push(eid);
        cur = g.edges()[eid as usize]
            .other(cur)
            .expect("predecessor edge touches node");
        nodes.push(cur);
    }
    edges.reverse();
    nodes.reverse();
    let visibility = g.chain_spec(&edges)?.end_to_end_visibility();
    ROUTES.inc();
    Ok(Route {
        edges,
        nodes,
        visibility,
    })
}

/// How the scheduler orders competing pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Cycle through pairs granting one attempt each — fair share.
    RoundRobin,
    /// Always serve the pair with the most remaining demand (ties to the
    /// lowest index) — throughput for the heaviest flows.
    HighestDemandFirst,
}

impl Policy {
    /// Stable kebab-case name for artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::HighestDemandFirst => "highest-demand-first",
        }
    }
}

/// Grants whole end-to-end attempts to pairs until no pair with
/// remaining demand can afford its per-attempt emissions.
///
/// * `budgets[s]` — source `s`'s emissions available this epoch.
/// * `usage[p]` — pair `p`'s per-attempt cost, as `(source, emissions)`
///   entries (from [`MetroGraph::emissions_per_attempt`]); a pair with
///   no route gets an empty slice *and* zero demand from the caller.
///   Entries naming the same source are charged cumulatively.
/// * `demand[p]` — attempts pair `p` wants this epoch.
///
/// Returns grants per pair. Guarantees (property-tested):
/// budget conservation (`spent_s ≤ budgets[s]` exactly, per source),
/// no over-service (`grants[p] ≤ demand[p]`), and work conservation
/// (on return, every pair with remaining demand is unaffordable).
pub fn allocate(
    budgets: &[u64],
    usage: &[Vec<(u32, u64)>],
    demand: &[u64],
    policy: Policy,
) -> Vec<u64> {
    assert_eq!(usage.len(), demand.len(), "one usage vector per pair");
    let mut remaining = budgets.to_vec();
    let mut grants = vec![0u64; demand.len()];
    let affordable = |remaining: &[u64], p: usize| -> bool {
        // Entries may repeat a source; affordability is against the
        // *running total* per source, matching what charge() subtracts.
        usage[p].iter().enumerate().all(|(i, &(s, n))| {
            let earlier: u64 = usage[p][..i]
                .iter()
                .filter(|&&(s2, _)| s2 == s)
                .map(|&(_, n2)| n2)
                .sum();
            remaining
                .get(s as usize)
                .copied()
                .unwrap_or(0)
                .checked_sub(earlier)
                .is_some_and(|left| left >= n)
        })
    };
    let charge = |remaining: &mut [u64], p: usize| {
        for &(s, n) in &usage[p] {
            remaining[s as usize] -= n;
            BUDGET_SPENT.add(n);
        }
    };
    match policy {
        Policy::RoundRobin => {
            let mut cursor = 0usize;
            let mut idle_scan = 0usize;
            while idle_scan < demand.len() {
                let p = cursor % demand.len();
                cursor += 1;
                if grants[p] < demand[p] && affordable(&remaining, p) {
                    charge(&mut remaining, p);
                    grants[p] += 1;
                    idle_scan = 0;
                } else {
                    idle_scan += 1;
                }
            }
        }
        Policy::HighestDemandFirst => loop {
            let mut pick = None;
            for p in 0..demand.len() {
                if grants[p] < demand[p] && affordable(&remaining, p) {
                    let left = demand[p] - grants[p];
                    if pick.is_none_or(|(_, best)| left > best) {
                        pick = Some((p, left));
                    }
                }
            }
            let Some((p, _)) = pick else { break };
            charge(&mut remaining, p);
            grants[p] += 1;
        },
    }
    grants
}

/// One server pair's demand for an epoch.
#[derive(Debug, Clone, Copy)]
pub struct PairDemand {
    /// Origin server.
    pub from: u32,
    /// Destination server.
    pub to: u32,
    /// End-to-end attempts wanted this epoch.
    pub demand: u64,
}

/// What one epoch produced for one pair.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// The route served (None when every path was cut).
    pub route: Option<Route>,
    /// Attempts granted by the scheduler.
    pub granted: u64,
    /// Attempts that delivered an end-to-end pair.
    pub delivered: u64,
    /// Delivered end-to-end visibility (0 when unrouted).
    pub visibility: f64,
}

/// Routes, schedules, and samples one epoch for a set of competing
/// pairs. `epoch` stamps the sim-clock (1 ms per epoch) for the
/// per-chain lifecycle trace: `chain.routed` / `chain.starved` instants
/// and a [`trace::PairStage`] `Emitted`/`Consumed` event per delivered
/// pair on [`trace::Track::Chain`].
pub fn route_epoch<R: Rng + ?Sized>(
    g: &MetroGraph,
    pairs: &[PairDemand],
    downed: &[bool],
    policy: Policy,
    epoch: u64,
    rng: &mut R,
) -> Vec<PairOutcome> {
    let t_ns = epoch * 1_000_000;
    let budgets: Vec<u64> = g.sources().iter().map(|s| s.budget_per_epoch).collect();
    let mut usage: Vec<Vec<(u32, u64)>> = Vec::with_capacity(pairs.len());
    let mut demand: Vec<u64> = Vec::with_capacity(pairs.len());
    let mut routes: Vec<Option<Route>> = Vec::with_capacity(pairs.len());
    for (i, p) in pairs.iter().enumerate() {
        match best_path(g, p.from, p.to, downed) {
            Ok(r) => {
                trace::instant_sim(trace::Track::Chain(i as u32), "chain.routed", t_ns);
                usage.push(g.emissions_per_attempt(&r.edges).expect("route is a path"));
                demand.push(p.demand);
                routes.push(Some(r));
            }
            Err(_) => {
                usage.push(Vec::new());
                demand.push(0);
                routes.push(None);
            }
        }
    }
    let grants = allocate(&budgets, &usage, &demand, policy);
    let mut out = Vec::with_capacity(pairs.len());
    for (i, route) in routes.into_iter().enumerate() {
        let granted = grants[i];
        let (delivered, visibility) = match &route {
            Some(r) => {
                let spec = g.chain_spec(&r.edges).expect("route is a path");
                ATTEMPTS.add(granted);
                EPR_EMITTED.add(granted * r.edges.len() as u64);
                let mut delivered = 0u64;
                for a in 0..granted {
                    // Every granted attempt emits; the draw decides
                    // whether the chain survives end to end.
                    trace::pair(
                        trace::Track::Chain(i as u32),
                        trace::PairStage::Emitted,
                        a,
                        t_ns + a,
                    );
                    if spec.sample_attempt(rng) {
                        delivered += 1;
                        trace::pair(
                            trace::Track::Chain(i as u32),
                            trace::PairStage::Consumed,
                            a,
                            t_ns + a + 1,
                        );
                    }
                }
                DELIVERED.add(delivered);
                (delivered, r.visibility)
            }
            None => (0, 0.0),
        };
        if granted == 0 && pairs[i].demand > 0 {
            STARVED.inc();
            trace::instant_sim(trace::Track::Chain(i as u32), "chain.starved", t_ns);
        }
        out.push(PairOutcome {
            route,
            granted,
            delivered,
            visibility,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{line_chain, metro_tree, star, MetroTreeParams, SwapModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn swap() -> SwapModel {
        SwapModel::new(0.9, 0.97).unwrap()
    }

    #[test]
    fn line_routes_end_to_end() {
        let (g, a, b) = line_chain(4, 10.0, 0.98, swap(), 100).unwrap();
        let r = best_path(&g, a, b, &[]).unwrap();
        assert_eq!(r.edges, vec![0, 1, 2, 3]);
        assert_eq!(r.nodes.first(), Some(&a));
        assert_eq!(r.nodes.last(), Some(&b));
        let expect = 0.98f64.powi(4) * 0.97f64.powi(3);
        assert!((r.visibility - expect).abs() < 1e-12);
    }

    #[test]
    fn downed_edge_is_never_used() {
        let (g, tree) = metro_tree(
            swap(),
            MetroTreeParams {
                leaf_km: 2.0,
                leaf_visibility: 0.98,
                trunk_km: 15.0,
                trunk_visibility: 0.99,
                backup_km: 25.0,
                backup_visibility: 0.85,
                leaf_budget: 100,
                trunk_budget: 100,
            },
        )
        .unwrap();
        let [s0, _, s2, _] = tree.servers;
        let mut downed = vec![false; g.edges().len()];
        // Pristine: cross-rack routes over the primary core.
        let r = best_path(&g, s0, s2, &downed).unwrap();
        assert!(r.nodes.contains(&tree.core_primary), "{:?}", r.nodes);
        // Cut one primary trunk: must re-route over the backup core.
        downed[tree.primary_trunks[0] as usize] = true;
        let r = best_path(&g, s0, s2, &downed).unwrap();
        assert!(!r.edges.contains(&tree.primary_trunks[0]));
        assert!(r.nodes.contains(&tree.core_backup), "{:?}", r.nodes);
        assert!(
            r.visibility < std::f64::consts::FRAC_1_SQRT_2,
            "backup visibility {}",
            r.visibility
        );
        // Cut both trunk planes: no route at all.
        for e in tree.primary_trunks.iter().chain(&tree.backup_trunks) {
            downed[*e as usize] = true;
        }
        assert!(matches!(
            best_path(&g, s0, s2, &downed).unwrap_err(),
            TopologyError::NoRoute { .. }
        ));
        // Intra-rack pair is untouched by trunk cuts.
        let r = best_path(&g, tree.servers[0], tree.servers[1], &downed).unwrap();
        assert_eq!(r.edges.len(), 2);
    }

    #[test]
    fn servers_never_relay() {
        // a — hub — b and a — hub — c: route a→b must not pass through c
        // even if it were shorter (all arms equal here; just assert the
        // path shape).
        let (g, pairs) = star(2, 5.0, 0.98, swap(), 100).unwrap();
        let (a, b) = pairs[0];
        let r = best_path(&g, a, b, &[]).unwrap();
        assert_eq!(r.edges.len(), 2);
        for &n in &r.nodes[1..r.nodes.len() - 1] {
            assert_eq!(g.node_kind(n), crate::topology::NodeKind::Repeater);
        }
    }

    #[test]
    fn round_robin_shares_budget() {
        // 2 pairs, each costing 2 emissions of source 0, budget 10:
        // 5 attempts total, split 3/2 by the cycle when demand allows.
        let budgets = [10u64];
        let usage = vec![vec![(0u32, 2u64)], vec![(0u32, 2u64)]];
        let grants = allocate(&budgets, &usage, &[100, 100], Policy::RoundRobin);
        assert_eq!(grants.iter().sum::<u64>(), 5);
        assert!(grants[0].abs_diff(grants[1]) <= 1, "{grants:?}");
    }

    #[test]
    fn highest_demand_first_prioritizes() {
        let budgets = [6u64];
        let usage = vec![vec![(0u32, 2u64)], vec![(0u32, 2u64)]];
        // The heavy flow's remaining demand never drops below the light
        // flow's, so it takes the whole budget (3 attempts × 2 emissions).
        let grants = allocate(&budgets, &usage, &[1, 100], Policy::HighestDemandFirst);
        assert_eq!(grants, vec![0, 3]);
        // Round-robin on the same input shares: light flow gets its 1.
        let grants = allocate(&budgets, &usage, &[1, 100], Policy::RoundRobin);
        assert_eq!(grants, vec![1, 2]);
    }

    #[test]
    fn allocation_stops_at_demand() {
        let budgets = [1000u64];
        let usage = vec![vec![(0u32, 1u64)]];
        for policy in [Policy::RoundRobin, Policy::HighestDemandFirst] {
            assert_eq!(allocate(&budgets, &usage, &[7], policy), vec![7]);
        }
    }

    #[test]
    fn route_epoch_contends_on_shared_source() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, pairs) = star(4, 5.0, 0.98, swap(), 40).unwrap();
        let demands: Vec<PairDemand> = pairs
            .iter()
            .map(|&(from, to)| PairDemand {
                from,
                to,
                demand: 1_000,
            })
            .collect();
        let out = route_epoch(&g, &demands, &[], Policy::RoundRobin, 0, &mut rng);
        let granted: u64 = out.iter().map(|o| o.granted).sum();
        // 40 emissions / 2 per attempt = 20 attempts, split 5 each.
        assert_eq!(granted, 20);
        for o in &out {
            assert_eq!(o.granted, 5);
            assert!(o.delivered <= o.granted);
        }
    }

    #[test]
    fn route_epoch_starves_cut_pairs() {
        let mut rng = StdRng::seed_from_u64(4);
        let (g, a, b) = line_chain(2, 5.0, 0.98, swap(), 100).unwrap();
        let downed = vec![true, false];
        let out = route_epoch(
            &g,
            &[PairDemand {
                from: a,
                to: b,
                demand: 10,
            }],
            &downed,
            Policy::RoundRobin,
            0,
            &mut rng,
        );
        assert!(out[0].route.is_none());
        assert_eq!(out[0].granted, 0);
        assert_eq!(out[0].delivered, 0);
    }
}
