//! Property-based invariants of the networking substrate.

use proptest::prelude::*;
use qnet::{
    ConsumePolicy, DistributorConfig, EntanglementDistributor, EprSource, EventQueue, FiberLink,
    HeapQueue, SimTime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The event queue drains any schedule in nondecreasing time order.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// The calendar wheel agrees with the reference binary heap on any
    /// interleaving of schedules and pops: events come out in identical
    /// (time, seq) order, including ties (FIFO within a tick), events
    /// landing in the far-future overflow rung, and schedules issued at
    /// exactly the current frontier.
    #[test]
    fn calendar_wheel_matches_heap_reference(
        ops in proptest::collection::vec(
            // (gap from the running maximum already popped, pop_after)
            (0u64..3_000_000, any::<bool>()), 1..96)
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut popped_w = Vec::new();
        let mut popped_h = Vec::new();
        let mut frontier = 0u64;
        for (i, &(gap, pop_after)) in ops.iter().enumerate() {
            // Never schedule into the past of either queue: offsets are
            // relative to the latest popped timestamp.
            let t = SimTime::from_nanos(frontier + gap);
            wheel.schedule(t, i);
            heap.schedule(t, i);
            if pop_after {
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(w, h);
                if let Some((t, id)) = w {
                    frontier = frontier.max(t.as_nanos());
                    popped_w.push((t, id));
                    popped_h.push(h.unwrap());
                }
            }
        }
        while let Some(w) = wheel.pop() {
            popped_w.push(w);
            popped_h.push(heap.pop().expect("heap has the same events"));
        }
        prop_assert!(heap.pop().is_none());
        prop_assert_eq!(popped_w.len(), ops.len());
        prop_assert_eq!(popped_w, popped_h);
    }

    /// Fiber survival probability is monotone decreasing in length and
    /// always within (0, 1].
    #[test]
    fn fiber_loss_monotone(l1 in 0.0f64..100.0, l2 in 0.0f64..100.0) {
        let (short, long) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let ps = FiberLink::new(short).survival_probability();
        let pl = FiberLink::new(long).survival_probability();
        prop_assert!(ps >= pl);
        prop_assert!(pl > 0.0 && ps <= 1.0);
    }

    /// Distributor bookkeeping balances: every emitted pair is accounted
    /// for, and availability stays in [0, 1].
    #[test]
    fn distributor_accounting(
        rate_exp in 4.0f64..6.0,
        km in 0.0f64..20.0,
        capacity in 1usize..32,
        n_takes in 1usize..40,
        seed in 0u64..512)
    {
        let config = DistributorConfig {
            source: EprSource::new(10f64.powf(rate_exp), 0.95),
            link_a: FiberLink::new(km),
            link_b: FiberLink::new(km),
            qnic_capacity: capacity,
            memory_lifetime: Duration::from_micros(100),
            max_age: Duration::from_micros(120),
            consume_policy: ConsumePolicy::FreshestFirst,
            faults: qnet::FaultPlan::none(),
            emission: qnet::EmissionMode::Batched,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = EntanglementDistributor::new(config, &mut rng);
        let mut now = SimTime::ZERO;
        for _ in 0..n_takes {
            now += Duration::from_micros(15);
            let _ = d.take_pair(now);
        }
        let s = d.stats();
        prop_assert!(s.lost_in_fiber <= s.emitted);
        prop_assert_eq!(s.consumed + s.misses, n_takes as u64);
        let a = s.availability();
        prop_assert!((0.0..=1.0).contains(&a));
        // Delivered pairs can't exceed emissions.
        prop_assert!(s.consumed <= s.emitted);
    }

    /// Consumed pairs are always valid, usable quantum states.
    #[test]
    fn consumed_pairs_are_usable(seed in 0u64..128) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = EntanglementDistributor::new(DistributorConfig::typical(), &mut rng);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += Duration::from_micros(50);
            if let Some(mut pair) = d.take_pair(now) {
                // Both halves measurable exactly once.
                let a = pair.measure_angle(qsim::Party::A, 0.3, &mut rng);
                let b = pair.measure_angle(qsim::Party::B, 1.1, &mut rng);
                prop_assert!(a.is_ok() && b.is_ok());
                prop_assert!(pair.measure_angle(qsim::Party::A, 0.0, &mut rng).is_err());
            }
        }
    }
}
