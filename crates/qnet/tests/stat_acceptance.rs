//! Statistical acceptance tests for the fiber-loss model.
//!
//! [`qnet::FiberLink::transmit`] must sample survival at exactly
//! `survival_probability()` = 10^(−0.2·L/10). Each assertion states its
//! sample size and confidence through `qmath::assert_prob_in!` — run
//! `make test-stat` to see the accounting printed.

use qmath::assert_prob_in;
use qnet::FiberLink;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 99.9% Wilson intervals over 50 000 draws: half-width ≈ ±0.007 at
/// p = 0.5, shrinking toward the edges — tight enough to catch a dB/km
/// or sign slip (0 km: p = 1; 25 km: p ≈ 0.316; 50 km: p = 0.1).
const CONF: f64 = 0.999;
const TRIALS: u64 = 50_000;

fn survivors(link: &FiberLink, rng: &mut StdRng) -> u64 {
    (0..TRIALS).filter(|_| link.transmit(rng)).count() as u64
}

#[test]
fn transmit_matches_survival_probability_at_paper_lengths() {
    for (lane, km) in [0.0f64, 25.0, 50.0].into_iter().enumerate() {
        let link = FiberLink::new(km);
        let mut rng = StdRng::seed_from_u64(400 + lane as u64);
        let s = survivors(&link, &mut rng);
        assert_prob_in!(s, TRIALS, link.survival_probability(), conf = CONF);
    }
}

#[test]
fn downed_link_never_transmits_but_keeps_its_rng_draws() {
    // The outage path must preserve the attenuation draw (determinism
    // contract) while forcing loss.
    let link = FiberLink::new(25.0);
    let mut up_rng = StdRng::seed_from_u64(500);
    let mut down_rng = StdRng::seed_from_u64(500);
    for _ in 0..2_000 {
        assert!(!link.transmit_through(false, &mut down_rng));
        let _ = link.transmit_through(true, &mut up_rng);
    }
    // Identical consumption: both streams are at the same point.
    use rand::Rng;
    assert_eq!(up_rng.gen::<u64>(), down_rng.gen::<u64>());
}
