//! Property-based invariants of the metro topology and routing layers.
//!
//! The four guarantees the ISSUE battery demands, each over randomized
//! graphs/chains rather than hand-picked examples:
//!
//! 1. chain visibility is monotone non-increasing in hops and in any
//!    per-hop loss;
//! 2. routing never transits a downed edge;
//! 3. the contention scheduler conserves every source budget exactly and
//!    never over-serves demand;
//! 4. route selection is invariant under node relabeling (the delivered
//!    visibility and hop count depend on the graph, not on insertion
//!    order).

use proptest::prelude::*;
use qnet::{allocate, best_path, ChainSpec, MetroGraph, Policy, SwapModel, TopologyError};

/// A hop-visibility vector in the physically sensible band.
fn hop_vis(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.5f64..1.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Appending a hop (and its swap) never raises end-to-end visibility,
    /// hop by hop along the whole prefix chain.
    #[test]
    fn chain_visibility_monotone_in_hops(
        vis in hop_vis(10),
        ideality in 0.8f64..1.0,
    ) {
        let swap = SwapModel::new(0.9, ideality).unwrap();
        let mut last = f64::INFINITY;
        for h in 1..=vis.len() {
            let c = ChainSpec::new(vis[..h].to_vec(), vec![1.0; h], swap).unwrap();
            let v = c.end_to_end_visibility();
            prop_assert!(v <= last + 1e-15, "hop {h} raised visibility {last} -> {v}");
            prop_assert!((0.0..=1.0).contains(&v));
            last = v;
        }
    }

    /// Degrading any single hop never raises end-to-end visibility, and
    /// the closed form responds multiplicatively.
    #[test]
    fn chain_visibility_monotone_in_loss(
        vis in hop_vis(8),
        which in 0usize..32,
        factor in 0.5f64..1.0,
    ) {
        let swap = SwapModel::new(0.9, 0.97).unwrap();
        let baseline = ChainSpec::new(vis.clone(), vec![1.0; vis.len()], swap)
            .unwrap()
            .end_to_end_visibility();
        let mut worse = vis.clone();
        let i = which % vis.len();
        worse[i] *= factor;
        let degraded = ChainSpec::new(worse, vec![1.0; vis.len()], swap)
            .unwrap()
            .end_to_end_visibility();
        prop_assert!(degraded <= baseline);
        prop_assert!((degraded - baseline * factor).abs() < 1e-12);
    }

    /// On a random two-plane graph (every pair of adjacent rungs joined
    /// by two parallel repeater paths), no returned route ever uses a
    /// downed edge, and cutting edges never *improves* the route.
    #[test]
    fn routing_never_uses_downed_edge(
        rungs in 2usize..6,
        cut_mask in any::<u32>(),
        vis_a in 0.8f64..1.0,
        vis_b in 0.8f64..1.0,
    ) {
        let swap = SwapModel::new(0.9, 0.97).unwrap();
        let mut g = MetroGraph::new(swap);
        let src = g.add_source(1_000);
        let from = g.add_server();
        let to = g.add_server();
        // Chain of `rungs` stages; each stage offers two parallel
        // repeater hops (plane A at vis_a, plane B at vis_b).
        let mut left = from;
        let mut edges = Vec::new();
        for stage in 0..rungs {
            let right = if stage + 1 == rungs { to } else { g.add_repeater() };
            let mid_a = g.add_repeater();
            let mid_b = g.add_repeater();
            edges.push(g.connect(left, mid_a, 1.0, vis_a, src).unwrap());
            edges.push(g.connect(mid_a, right, 1.0, vis_a, src).unwrap());
            edges.push(g.connect(left, mid_b, 1.0, vis_b, src).unwrap());
            edges.push(g.connect(mid_b, right, 1.0, vis_b, src).unwrap());
            left = right;
        }
        let mut downed = vec![false; g.edges().len()];
        for (i, &e) in edges.iter().enumerate() {
            downed[e as usize] = (cut_mask >> (i % 32)) & 1 == 1;
        }
        let pristine = best_path(&g, from, to, &[]).unwrap();
        match best_path(&g, from, to, &downed) {
            Ok(r) => {
                for &e in &r.edges {
                    prop_assert!(!downed[e as usize], "route used downed edge {e}");
                }
                // Optimality can only degrade under cuts.
                prop_assert!(r.visibility <= pristine.visibility + 1e-12);
                prop_assert!(r.edges.len() >= pristine.edges.len());
            }
            Err(e) => prop_assert!(matches!(e, TopologyError::NoRoute { .. })),
        }
    }

    /// The scheduler conserves budgets exactly: per-source spend never
    /// exceeds the budget, grants never exceed demand, and (work
    /// conservation) when it stops, no pair with remaining demand can
    /// afford its chain. Holds for both policies on arbitrary inputs.
    #[test]
    fn scheduler_conserves_budget_exactly(
        budgets in proptest::collection::vec(0u64..200, 1..4),
        pairs in proptest::collection::vec(
            (proptest::collection::vec((0u32..4, 1u64..4), 0..3), 0u64..60),
            1..6),
    ) {
        let usage: Vec<Vec<(u32, u64)>> = pairs
            .iter()
            .map(|(u, _)| {
                u.iter()
                    .filter(|&&(s, _)| (s as usize) < budgets.len())
                    .copied()
                    .collect()
            })
            .collect();
        let demand: Vec<u64> = pairs.iter().map(|&(_, d)| d).collect();
        for policy in [Policy::RoundRobin, Policy::HighestDemandFirst] {
            let grants = allocate(&budgets, &usage, &demand, policy);
            let mut spent = vec![0u64; budgets.len()];
            for (p, &gr) in grants.iter().enumerate() {
                prop_assert!(gr <= demand[p], "over-served pair {p}");
                for &(s, n) in &usage[p] {
                    spent[s as usize] += gr * n;
                }
            }
            let mut remaining = budgets.clone();
            for (s, &sp) in spent.iter().enumerate() {
                prop_assert!(sp <= budgets[s], "source {s} overspent: {sp} > {}", budgets[s]);
                remaining[s] -= sp;
            }
            // Work conservation: every unsatisfied pair is unaffordable.
            // (A pair with an empty usage vector costs nothing, so it is
            // always affordable and must be fully served.)
            for (p, &gr) in grants.iter().enumerate() {
                if gr < demand[p] {
                    // Aggregate duplicated source entries: one more
                    // attempt costs their *sum* per source.
                    let mut need = vec![0u64; budgets.len()];
                    for &(s, n) in &usage[p] {
                        need[s as usize] += n;
                    }
                    prop_assert!(
                        need.iter()
                            .zip(&remaining)
                            .any(|(&n, &left)| left < n),
                        "pair {p} starved while affordable under {policy:?}"
                    );
                }
            }
        }
    }

    /// Relabeling the nodes (rebuilding the same two-plane graph with a
    /// permuted insertion order) changes neither the delivered visibility
    /// nor the hop count of the best route.
    #[test]
    fn route_invariant_under_relabeling(
        rungs in 1usize..5,
        vis_a in 0.8f64..1.0,
        vis_b in 0.8f64..1.0,
        reverse_stages in any::<bool>(),
        swap_planes in any::<bool>(),
    ) {
        let swap = SwapModel::new(0.9, 0.97).unwrap();
        // Plane A strictly better unless the draw made B better; either
        // way both builds share the same physical graph.
        let build = |stage_order_rev: bool, planes_swapped: bool| {
            let mut g = MetroGraph::new(swap);
            let src = g.add_source(1_000);
            let from = g.add_server();
            let to = g.add_server();
            // Pre-create interior rung nodes so stage order is free.
            let mut rung_nodes = vec![from];
            for _ in 1..rungs {
                rung_nodes.push(g.add_repeater());
            }
            rung_nodes.push(to);
            let stages: Vec<usize> = if stage_order_rev {
                (0..rungs).rev().collect()
            } else {
                (0..rungs).collect()
            };
            for &stage in &stages {
                let (left, right) = (rung_nodes[stage], rung_nodes[stage + 1]);
                let planes = if planes_swapped {
                    [(vis_b, 1.5), (vis_a, 1.0)]
                } else {
                    [(vis_a, 1.0), (vis_b, 1.5)]
                };
                for (v, km) in planes {
                    let mid = g.add_repeater();
                    g.connect(left, mid, km, v, src).unwrap();
                    g.connect(mid, right, km, v, src).unwrap();
                }
            }
            best_path(&g, from, to, &[]).unwrap()
        };
        let reference = build(false, false);
        let relabeled = build(reverse_stages, swap_planes);
        prop_assert!(
            (reference.visibility - relabeled.visibility).abs() < 1e-12,
            "relabeling changed visibility: {} vs {}",
            reference.visibility,
            relabeled.visibility
        );
        prop_assert_eq!(reference.edges.len(), relabeled.edges.len());
    }
}
