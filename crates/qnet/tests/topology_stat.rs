//! Statistical acceptance tests for the repeater-chain physics.
//!
//! CHSH played over an n-hop chain's delivered Werner pair must win at
//! exactly `1/2 + v_e2e·√2/4` with `v_e2e = v_hop^n · ideality^(n−1)`.
//! Each assertion states its sample size and confidence through
//! `qmath::assert_prob_in!` (99.9% Wilson intervals over 50 000 rounds,
//! half-width ≈ ±0.007) — run `make test-stat` to see the accounting.
//! The below-crossover certificate is one-sided: an 8-hop chain at these
//! parameters has `v_e2e ≈ 0.687 < 1/√2`, so its win rate must sit
//! statistically at its (sub-classical) theory value, below 0.75.

use games::chsh::{alice_angle, bob_angle};
use qmath::assert_prob_in;
use qmath::stattest::wilson_at;
use qnet::{ChainSpec, SwapModel};
use qsim::WernerPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CONF: f64 = 0.999;
const ROUNDS: u64 = 50_000;
const HOP_VISIBILITY: f64 = 0.98;

fn swap() -> SwapModel {
    SwapModel::new(0.9, 0.97).unwrap()
}

/// Plays `ROUNDS` standard CHSH rounds over the chain's end-to-end
/// Werner pair; returns the win count.
fn chsh_wins_over_chain(spec: &ChainSpec, rng: &mut StdRng) -> u64 {
    let pair = WernerPair::new(spec.end_to_end_visibility()).expect("valid chain visibility");
    let mut wins = 0u64;
    for _ in 0..ROUNDS {
        let x = usize::from(rng.gen::<bool>());
        let y = usize::from(rng.gen::<bool>());
        let (a, b) = pair.sample(alice_angle(x), bob_angle(y), rng);
        if ((a ^ b) == 1) == (x == 1 && y == 1) {
            wins += 1;
        }
    }
    wins
}

#[test]
fn chsh_over_chain_matches_closed_form() {
    for (lane, hops) in [1usize, 2, 4].into_iter().enumerate() {
        let spec = ChainSpec::uniform(hops, HOP_VISIBILITY, 1.0, swap()).unwrap();
        let v = spec.end_to_end_visibility();
        let expected = 0.5 + v * std::f64::consts::SQRT_2 / 4.0;
        let mut rng = StdRng::seed_from_u64(1_000 + lane as u64);
        let wins = chsh_wins_over_chain(&spec, &mut rng);
        assert_prob_in!(wins, ROUNDS, expected, conf = CONF);
    }
}

#[test]
fn below_crossover_chain_is_flagged_and_sub_classical() {
    // 8 hops at these parameters: v_e2e = 0.98⁸·0.97⁷ ≈ 0.687 ≤ 1/√2.
    let spec = ChainSpec::uniform(8, HOP_VISIBILITY, 1.0, swap()).unwrap();
    assert!(!spec.witnesses_chsh(), "8-hop chain must not witness CHSH");
    let v = spec.end_to_end_visibility();
    assert!(v < qsim::noise::WERNER_CHSH_THRESHOLD);
    let expected = 0.5 + v * std::f64::consts::SQRT_2 / 4.0;
    // The theory value 0.7430 sits only ~0.007 below the classical 0.75,
    // so the one-sided certificate needs a tighter interval than the
    // two-sided pins: 200k rounds put the 99.9% half-width at ±0.0032.
    let certificate_rounds = 4 * ROUNDS;
    let mut rng = StdRng::seed_from_u64(1_100);
    let pair = WernerPair::new(v).expect("valid chain visibility");
    let mut wins = 0u64;
    for _ in 0..certificate_rounds {
        let x = usize::from(rng.gen::<bool>());
        let y = usize::from(rng.gen::<bool>());
        let (a, b) = pair.sample(alice_angle(x), bob_angle(y), &mut rng);
        if ((a ^ b) == 1) == (x == 1 && y == 1) {
            wins += 1;
        }
    }
    // Two-sided: the rate still matches its (sub-classical) theory...
    assert_prob_in!(wins, certificate_rounds, expected, conf = CONF);
    // ...and one-sided: the whole confidence interval sits below the
    // classical value 0.75 — no quantum advantage survives this chain.
    let (_, hi) = wilson_at(wins, certificate_rounds, CONF);
    assert!(
        hi < games::CHSH_CLASSICAL_VALUE,
        "upper bound {hi} reaches the classical value"
    );
}

#[test]
fn chain_delivery_rate_matches_success_probability() {
    // End-to-end delivery over a lossy 3-hop chain: the single-draw
    // sampler must hit ∏ survival · success² exactly.
    let spec = ChainSpec::new(
        vec![HOP_VISIBILITY; 3],
        vec![0.9, 0.8, 0.85],
        swap(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(1_200);
    let hits = (0..ROUNDS).filter(|_| spec.sample_attempt(&mut rng)).count() as u64;
    assert_prob_in!(hits, ROUNDS, spec.success_probability(), conf = CONF);
}
