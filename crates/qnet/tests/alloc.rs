//! Steady-state allocation audit for the batched entanglement data
//! plane.
//!
//! The claim: once the distributor is warm (calendar-wheel buckets grown
//! to their working set, QNIC deques at capacity, obs counters
//! registered), driving it — emission sampling, geometric loss skipping,
//! arrival-wheel scheduling, QNIC store/evict, and kernel-path
//! consumption — performs **zero** heap allocation. Pair records are
//! `Copy` and live in the wheel's reusable bucket slabs; `WernerPair` is
//! a three-float value.
//!
//! A counting `#[global_allocator]` makes the claim checkable: this
//! integration test owns its process, and the harness runs the single
//! test on one thread, so the counter delta over the measured window is
//! exactly the plane's own allocation activity.

use qnet::{
    ConsumePolicy, DistributorConfig, EmissionMode, EntanglementDistributor, EprSource, FaultPlan,
    FiberLink, SimTime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_distributor_loop_allocates_nothing() {
    // Lossy enough to exercise the geometric skip on most survivors,
    // fast enough that the wheel and NICs see steady traffic.
    let config = DistributorConfig {
        source: EprSource::new(1e6, 0.95),
        link_a: FiberLink::new(10.0), // ~63% survival
        link_b: FiberLink::new(1.0),
        qnic_capacity: 32,
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(160),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults: FaultPlan::none(),
        emission: EmissionMode::Batched,
    };
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let mut d = EntanglementDistributor::new(config, &mut rng);

    // Warmup: grow every slab to its working set — wheel buckets, QNIC
    // deques, and the lazily-registered obs counters.
    let step = Duration::from_micros(10);
    let mut now = SimTime::ZERO;
    let mut consumed = 0u64;
    for _ in 0..500 {
        now += step;
        consumed += u64::from(d.take_werner(now).is_some());
    }
    assert!(consumed > 0, "warmup must deliver pairs");

    // Measured window: 500 more steps of the same traffic.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..500 {
        now += step;
        consumed += u64::from(d.take_werner(now).is_some());
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    let stats = d.stats();
    assert!(stats.emitted > 1_000, "plane must be under real load");
    assert!(consumed > 100, "kernel path must be consuming pairs");
    assert_eq!(
        delta, 0,
        "steady-state distributor loop performed {delta} heap allocations"
    );
}
