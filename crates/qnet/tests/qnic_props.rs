//! Property-based invariants of the QNIC memory under arbitrary
//! interleavings of stores, evictions, consumes, and fault clamps.

use proptest::prelude::*;
use qnet::Qnic;
use qnet::SimTime;
use std::time::Duration;

/// One scripted operation against the NIC, decoded from a (code, arg)
/// pair so the generator stays a plain integer strategy.
fn apply_op(
    nic: &mut Qnic,
    code: u8,
    arg: u64,
    now: &mut SimTime,
    next_id: &mut u64,
    overwrites: &mut u64,
) {
    match code {
        0 => {
            if nic.store(*next_id, *now).is_some() {
                *overwrites += 1;
            }
            *next_id += 1;
        }
        1 => {
            *now += Duration::from_micros(arg);
            nic.evict_expired(*now);
        }
        2 => {
            nic.take_oldest();
        }
        3 => {
            nic.take_newest();
        }
        4 => {
            if *next_id > 0 {
                nic.take_pair_id(arg % *next_id);
            }
        }
        _ => {
            let clamp = if arg.is_multiple_of(4) { None } else { Some((arg % 8) as usize) };
            nic.set_capacity_clamp(clamp);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Occupancy never exceeds the capacity in force, whatever the
    /// interleaving of stores, age evictions, takes, and fault clamps.
    #[test]
    fn occupancy_bounded_by_effective_capacity(
        capacity in 1usize..12,
        ops in collection::vec((0u8..6, 0u64..64), 1..128))
    {
        let mut nic = Qnic::new(capacity, Duration::from_micros(100), Duration::from_micros(160));
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut overwrites = 0u64;
        for &(code, arg) in &ops {
            apply_op(&mut nic, code, arg, &mut now, &mut next_id, &mut overwrites);
            prop_assert!(
                nic.len() <= nic.effective_capacity(),
                "len {} > effective capacity {} after op ({code}, {arg})",
                nic.len(),
                nic.effective_capacity()
            );
            prop_assert!(nic.effective_capacity() <= nic.capacity());
        }
    }

    /// `dropped_full` counts exactly the arrival overwrites — no more
    /// (clamp and age evictions are tallied elsewhere), no fewer.
    #[test]
    fn dropped_full_exactly_counts_overwrites(
        capacity in 1usize..12,
        ops in collection::vec((0u8..6, 0u64..64), 1..128))
    {
        let mut nic = Qnic::new(capacity, Duration::from_micros(100), Duration::from_micros(160));
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut overwrites = 0u64;
        for &(code, arg) in &ops {
            apply_op(&mut nic, code, arg, &mut now, &mut next_id, &mut overwrites);
            prop_assert_eq!(nic.dropped_full, overwrites);
        }
    }

    /// Age eviction is monotone in `now`: evicting at t₁ then t₂ ≥ t₁
    /// leaves exactly the state (and expired count) of evicting once at
    /// t₂, and later probes can only evict more.
    #[test]
    fn evict_expired_monotone_in_now(
        arrivals in collection::vec(0u64..400, 1..24),
        t1 in 0u64..600,
        dt in 0u64..600)
    {
        let mut staged = Qnic::new(32, Duration::from_micros(100), Duration::from_micros(160));
        for (id, &a) in arrivals.iter().enumerate() {
            staged.store(id as u64, SimTime::from_micros(a));
        }
        let mut direct = staged.clone();

        let (t1, t2) = (SimTime::from_micros(t1), SimTime::from_micros(t1 + dt));
        let first = staged.evict_expired(t1);
        let second = staged.evict_expired(t2);
        let all_at_once = direct.evict_expired(t2);

        prop_assert_eq!(first + second, all_at_once, "two-step eviction loses or double-counts");
        prop_assert_eq!(staged.expired, direct.expired);
        prop_assert_eq!(staged.len(), direct.len());
        while let (Some(a), Some(b)) = (staged.take_oldest(), direct.take_oldest()) {
            prop_assert_eq!(a, b, "survivor sets diverge");
        }
        prop_assert!(staged.is_empty() && direct.is_empty());
    }
}
