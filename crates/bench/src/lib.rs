//! # qnlg-bench — the reproduction harness
//!
//! One module per paper exhibit (see DESIGN.md's experiment index). Each
//! experiment exposes a `run(quick: bool) -> Report` that computes the
//! figure's data and returns a typed [`Report`] — rendered text table,
//! key scalars, Wilson intervals for Monte-Carlo estimates, per-point
//! JSON records, and pass/fail acceptance checks. `quick` trims
//! Monte-Carlo budgets for CI; the `repro` binary defaults to full
//! budgets and can serialize each report as a JSON-lines artifact
//! (`repro <exp> --json` / `--out <dir>`).
//!
//! Heavy sweeps run on the shared `runtime` work-stealing pool
//! (`runtime::par_map` / `runtime::par_sweep`; CPU-bound work, so an
//! async runtime is the wrong tool). Every point is seeded
//! deterministically from its coordinates so results are bit-identical
//! regardless of worker count or steal order. `QNLG_THREADS` overrides
//! the pool size.

pub mod experiments;
pub mod perfdiff;
pub mod report;
pub mod table;

pub use report::{Report, RunContext};
pub use table::Table;

/// Deterministic per-point seed derived from experiment coordinates
/// (SplitMix64 of the packed indices). Delegates to
/// [`runtime::point_seed`], which freezes the historical formula.
pub fn point_seed(experiment: u64, i: u64, j: u64) -> u64 {
    runtime::point_seed(experiment, i, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        assert_eq!(point_seed(1, 2, 3), point_seed(1, 2, 3));
        assert_ne!(point_seed(1, 2, 3), point_seed(1, 2, 4));
        assert_ne!(point_seed(1, 2, 3), point_seed(2, 2, 3));
    }
}
