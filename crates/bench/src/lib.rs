//! # qnlg-bench — the reproduction harness
//!
//! One module per paper exhibit (see DESIGN.md's experiment index). Each
//! experiment exposes a `run(quick: bool) -> String` that computes the
//! figure's data and renders it as an aligned text table — `quick` trims
//! Monte-Carlo budgets for CI; the `repro` binary defaults to full
//! budgets.
//!
//! Heavy sweeps parallelize across points with `std::thread::scope`
//! (CPU-bound work; per the Tokio guide, an async runtime is the wrong
//! tool). Every point is seeded deterministically from its coordinates so
//! runs are reproducible regardless of thread interleaving.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Deterministic per-point seed derived from experiment coordinates
/// (SplitMix64 of the packed indices).
pub fn point_seed(experiment: u64, i: u64, j: u64) -> u64 {
    let mut z = experiment
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(j);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        assert_eq!(point_seed(1, 2, 3), point_seed(1, 2, 3));
        assert_ne!(point_seed(1, 2, 3), point_seed(1, 2, 4));
        assert_ne!(point_seed(1, 2, 3), point_seed(2, 2, 3));
    }
}
