//! Perf-regression gate: compares the `perf` sections of two artifact
//! directories (`repro perf-diff <old-dir> <new-dir>`).
//!
//! Wall-clock numbers are noisy, so every comparison carries a
//! multiplicative tolerance: elapsed time regresses when
//! `new / old > tolerance`, throughput regresses when
//! `old / new > tolerance`. Elapsed time is only comparable between runs
//! of the same Monte-Carlo budget, so when the two artifacts disagree on
//! `quick` the diff falls back to throughput-only (pairs/sec and
//! tasks/sec are per-unit-work rates, which survive a budget change up
//! to cache effects — use a generous tolerance there, e.g. the CI gate's
//! 5×). Artifacts with a null `perf` section (determinism-pinned) are
//! skipped with a note, never failed.

use crate::report::validate_artifact_line;
use obs::json::Json;
use std::path::Path;

/// Default multiplicative tolerance for same-budget comparisons.
pub const DEFAULT_TOLERANCE: f64 = 1.5;

/// The perf facts of one artifact line.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Experiment name (`BENCH_<experiment>.json`).
    pub experiment: String,
    /// Whether the run used the quick budget.
    pub quick: bool,
    /// Wall-clock nanoseconds, when the artifact carries perf.
    pub elapsed_ns: Option<u64>,
    /// Pairs emitted per second (0 when no distributor ran).
    pub pairs_per_sec: f64,
    /// Tasks assigned per second (0 when no simulator ran).
    pub tasks_per_sec: f64,
    /// Game rounds played per second (0 when no game kernel ran; absent
    /// in pre-kernel artifacts, which reads as 0 and is skipped).
    pub rounds_per_sec: f64,
    /// Served decisions per second of hot-path busy time (0 when no
    /// service ran; absent in pre-serve artifacts, which reads as 0 and
    /// is skipped).
    pub decisions_per_sec: f64,
    /// 99th-percentile served decision latency in ns (0 when no service
    /// ran). A *latency*: regression direction is new/old, unlike the
    /// throughput rates above.
    pub p99_ns: f64,
}

/// One metric comparison between matching experiments.
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// Experiment name.
    pub experiment: String,
    /// Metric compared (`elapsed_ns`, `pairs_per_sec`, `tasks_per_sec`).
    pub metric: &'static str,
    /// Old (baseline) value.
    pub old: f64,
    /// New (candidate) value.
    pub new: f64,
    /// Slowdown factor: >1 means the new run is worse on this metric.
    pub slowdown: f64,
    /// True when `slowdown` exceeds the tolerance.
    pub regressed: bool,
}

/// The full diff between two artifact sets.
#[derive(Debug, Clone, Default)]
pub struct DiffResult {
    /// Metric comparisons, in (experiment, metric) order.
    pub lines: Vec<DiffLine>,
    /// Experiments that could not be compared, with the reason.
    pub skipped: Vec<String>,
}

impl DiffResult {
    /// True when any compared metric exceeded its tolerance.
    pub fn regressed(&self) -> bool {
        self.lines.iter().any(|l| l.regressed)
    }
}

/// Reads every `BENCH_*.json` in `dir` into perf entries, sorted by
/// experiment name.
///
/// # Errors
/// When the directory is unreadable, holds no artifacts, or an artifact
/// fails schema validation.
pub fn load_dir(dir: &Path) -> Result<Vec<PerfEntry>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no BENCH_*.json artifacts in {}", dir.display()));
    }
    let mut out = Vec::new();
    for path in &paths {
        let content = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for line in content.lines().filter(|l| !l.trim().is_empty()) {
            let doc = validate_artifact_line(line)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            out.push(entry_from_doc(&doc)?);
        }
    }
    out.sort_by(|a, b| a.experiment.cmp(&b.experiment));
    Ok(out)
}

fn entry_from_doc(doc: &Json) -> Result<PerfEntry, String> {
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("artifact missing experiment name")?
        .to_string();
    let quick = doc.get("quick").and_then(Json::as_bool).unwrap_or(false);
    let perf = doc.get("perf").filter(|p| !matches!(p, Json::Null));
    let num = |field: &str| -> f64 {
        perf.and_then(|p| p.get(field))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    Ok(PerfEntry {
        experiment,
        quick,
        elapsed_ns: perf
            .and_then(|p| p.get("elapsed_ns"))
            .and_then(Json::as_i64)
            .map(|v| v.max(0) as u64),
        pairs_per_sec: num("pairs_per_sec"),
        tasks_per_sec: num("tasks_per_sec"),
        rounds_per_sec: num("rounds_per_sec"),
        decisions_per_sec: num("decisions_per_sec"),
        p99_ns: num("p99_ns"),
    })
}

/// Compares `new` against the `old` baseline at the given tolerance.
/// Experiments present on only one side are skipped with a note.
pub fn diff(old: &[PerfEntry], new: &[PerfEntry], tolerance: f64) -> DiffResult {
    let mut result = DiffResult::default();
    for o in old {
        let Some(n) = new.iter().find(|n| n.experiment == o.experiment) else {
            result
                .skipped
                .push(format!("{}: missing from new artifacts", o.experiment));
            continue;
        };
        compare_pair(o, n, tolerance, &mut result);
    }
    for n in new {
        if !old.iter().any(|o| o.experiment == n.experiment) {
            result
                .skipped
                .push(format!("{}: missing from old artifacts", n.experiment));
        }
    }
    result
}

fn compare_pair(old: &PerfEntry, new: &PerfEntry, tolerance: f64, result: &mut DiffResult) {
    let same_budget = old.quick == new.quick;
    match (old.elapsed_ns, new.elapsed_ns) {
        _ if !same_budget => result.skipped.push(format!(
            "{}: budgets differ (old quick={}, new quick={}); elapsed not compared",
            old.experiment, old.quick, new.quick
        )),
        (Some(o), Some(n)) if o > 0 => {
            let slowdown = n as f64 / o as f64;
            result.lines.push(DiffLine {
                experiment: old.experiment.clone(),
                metric: "elapsed_ns",
                old: o as f64,
                new: n as f64,
                slowdown,
                regressed: slowdown > tolerance,
            });
        }
        _ => result
            .skipped
            .push(format!("{}: no elapsed_ns on both sides", old.experiment)),
    }
    for (metric, o, n) in [
        ("pairs_per_sec", old.pairs_per_sec, new.pairs_per_sec),
        ("tasks_per_sec", old.tasks_per_sec, new.tasks_per_sec),
        ("rounds_per_sec", old.rounds_per_sec, new.rounds_per_sec),
        ("decisions_per_sec", old.decisions_per_sec, new.decisions_per_sec),
    ] {
        // A rate of 0 means "this experiment exercises no such
        // subsystem" — nothing to regress.
        if o <= 0.0 {
            continue;
        }
        let slowdown = if n > 0.0 { o / n } else { f64::INFINITY };
        result.lines.push(DiffLine {
            experiment: old.experiment.clone(),
            metric,
            old: o,
            new: n,
            slowdown,
            regressed: slowdown > tolerance,
        });
    }
    // p99 latency: higher is worse, so the slowdown direction flips.
    // Histogram bucket bounds are powers of two, so a one-bucket drift
    // already reads as 2x — latency inherits the same generous tolerance
    // as throughput rather than getting a tighter one.
    if old.p99_ns > 0.0 {
        let slowdown = if new.p99_ns > 0.0 {
            new.p99_ns / old.p99_ns
        } else {
            f64::INFINITY
        };
        result.lines.push(DiffLine {
            experiment: old.experiment.clone(),
            metric: "p99_ns",
            old: old.p99_ns,
            new: new.p99_ns,
            slowdown,
            regressed: slowdown > tolerance,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, quick: bool, elapsed: u64, pairs: f64, tasks: f64) -> PerfEntry {
        PerfEntry {
            experiment: name.into(),
            quick,
            elapsed_ns: Some(elapsed),
            pairs_per_sec: pairs,
            tasks_per_sec: tasks,
            rounds_per_sec: 0.0,
            decisions_per_sec: 0.0,
            p99_ns: 0.0,
        }
    }

    #[test]
    fn self_comparison_never_regresses() {
        let set = vec![
            entry("fig4", true, 5_000_000, 2e6, 3e5),
            entry("timing", true, 1_000_000, 0.0, 0.0),
        ];
        let d = diff(&set, &set, DEFAULT_TOLERANCE);
        assert!(!d.regressed(), "self-diff must pass: {:?}", d.lines);
        assert!(d.lines.iter().all(|l| (l.slowdown - 1.0).abs() < 1e-12
            || l.metric != "elapsed_ns"));
        // timing has zero throughput on both sides: only elapsed compared.
        assert_eq!(
            d.lines.iter().filter(|l| l.experiment == "timing").count(),
            1
        );
    }

    #[test]
    fn doubled_elapsed_fails_at_default_tolerance() {
        let old = vec![entry("fig4", true, 5_000_000, 2e6, 3e5)];
        let new = vec![entry("fig4", true, 10_000_000, 2e6, 3e5)];
        let d = diff(&old, &new, DEFAULT_TOLERANCE);
        assert!(d.regressed(), "2x elapsed must trip the 1.5x gate");
        let bad: Vec<_> = d.lines.iter().filter(|l| l.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "elapsed_ns");
        assert!((bad[0].slowdown - 2.0).abs() < 1e-12);
        // The same diff passes with a looser gate.
        assert!(!diff(&old, &new, 2.5).regressed());
    }

    #[test]
    fn throughput_collapse_fails_even_across_budgets() {
        let old = vec![entry("fig4", false, 500_000_000, 2e6, 3e5)];
        let new = vec![entry("fig4", true, 5_000_000, 2e5, 3e5)];
        let d = diff(&old, &new, DEFAULT_TOLERANCE);
        // Budgets differ: elapsed must NOT be compared...
        assert!(d.lines.iter().all(|l| l.metric != "elapsed_ns"));
        assert!(d.skipped.iter().any(|s| s.contains("budgets differ")));
        // ...but the 10x pairs/sec collapse still trips the gate.
        assert!(d.regressed());
        assert!(d
            .lines
            .iter()
            .any(|l| l.metric == "pairs_per_sec" && l.regressed));
    }

    #[test]
    fn missing_experiments_are_skipped_not_failed() {
        let old = vec![entry("fig4", true, 1, 0.0, 0.0)];
        let new = vec![entry("fig3", true, 1, 0.0, 0.0)];
        let d = diff(&old, &new, DEFAULT_TOLERANCE);
        assert!(!d.regressed());
        assert_eq!(d.skipped.len(), 2, "one missing note per direction");
    }

    #[test]
    fn zero_new_throughput_is_a_regression() {
        let old = vec![entry("pipeline", true, 1_000, 1e6, 0.0)];
        let new = vec![entry("pipeline", true, 1_000, 0.0, 0.0)];
        let d = diff(&old, &new, DEFAULT_TOLERANCE);
        assert!(d.regressed());
        assert!(d
            .lines
            .iter()
            .any(|l| l.metric == "pairs_per_sec" && l.slowdown.is_infinite()));
    }

    #[test]
    fn latency_regression_direction_is_inverted() {
        let mut old = entry("serve", true, 1_000, 0.0, 0.0);
        old.decisions_per_sec = 8e6;
        old.p99_ns = 255.0;
        // Faster (lower) p99 and faster throughput: no regression.
        let mut better = old.clone();
        better.p99_ns = 127.0;
        better.decisions_per_sec = 9e6;
        assert!(!diff(&[old.clone()], &[better], DEFAULT_TOLERANCE).regressed());
        // p99 doubling trips the gate even with throughput unchanged.
        let mut worse = old.clone();
        worse.p99_ns = 1023.0;
        let d = diff(&[old.clone()], &[worse], DEFAULT_TOLERANCE);
        assert!(d.regressed());
        let bad: Vec<_> = d.lines.iter().filter(|l| l.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "p99_ns");
        // A vanished serve section regresses both serve metrics.
        let gone = entry("serve", true, 1_000, 0.0, 0.0);
        let d = diff(&[old], &[gone], DEFAULT_TOLERANCE);
        assert!(d
            .lines
            .iter()
            .filter(|l| l.metric == "decisions_per_sec" || l.metric == "p99_ns")
            .all(|l| l.regressed && l.slowdown.is_infinite()));
    }

    #[test]
    fn load_dir_round_trips_written_artifacts() {
        let dir = std::env::temp_dir().join(format!(
            "qnlg-perfdiff-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut report = crate::Report::new("sample", 7);
        report.point(Json::obj([("load", Json::num(1.0))]));
        let ctx = crate::RunContext {
            quick: true,
            threads: 1,
            git: "test".into(),
            obs: None,
            perf: Some(crate::report::PerfStats {
                elapsed_ns: 42_000,
                pairs_per_sec: 1e6,
                tasks_per_sec: 2e3,
                rounds_per_sec: 5e5,
                decisions_per_sec: 8e6,
                p50_ns: 127.0,
                p99_ns: 511.0,
                p999_ns: 1023.0,
            }),
            series: None,
        };
        let line = report.to_json(&ctx).render();
        crate::report::write_artifact(&dir, "BENCH_sample.json", &format!("{line}\n"))
            .expect("write artifact");
        let entries = load_dir(&dir).expect("load artifacts");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].experiment, "sample");
        assert_eq!(entries[0].elapsed_ns, Some(42_000));
        assert!((entries[0].pairs_per_sec - 1e6).abs() < 1e-9);
        assert!((entries[0].rounds_per_sec - 5e5).abs() < 1e-9);
        assert!((entries[0].decisions_per_sec - 8e6).abs() < 1e-9);
        assert!((entries[0].p99_ns - 511.0).abs() < 1e-9);
        let d = diff(&entries, &entries, DEFAULT_TOLERANCE);
        assert!(!d.regressed());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
