//! Minimal aligned-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple right-aligned text table with a left-aligned label column.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers; the first column is
    /// the row label.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Shorter rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders with 2-space column gaps; label column left-aligned, data
    /// columns right-aligned.
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        let all = std::iter::once(&self.header).chain(&self.rows);
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a float with 4 decimals (the tables' standard precision).
pub fn f4(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.4}")
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1.0"]);
        t.row(vec!["longer-name", "22.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Data column right-aligned: both rows end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f4(0.8536), "0.8536");
        assert_eq!(f4(f64::NAN), "-");
        assert_eq!(f2(113.206), "113.21");
    }
}
