//! `repro` — regenerate every figure and quantitative claim of the paper.
//!
//! ```text
//! repro <experiment> [--quick] [--json] [--out <dir>] [--trace]
//! repro serve --soak [--socket <path>] [--json] [--out <dir>] [--trace]
//! repro all [--quick] [--json] [--out <dir>] [--trace]
//! repro check-artifacts <dir>
//! repro perf-diff <old-dir> <new-dir> [--tolerance <ratio>]
//! repro list
//! ```
//!
//! `--json` prints each experiment as one `qnlg.bench.v1` JSON line on
//! stdout instead of the text tables; `--out <dir>` additionally writes
//! one `BENCH_<experiment>.json` artifact per experiment (text output
//! stays on stdout unless `--json` is also given). `check-artifacts`
//! re-validates previously written artifacts against the schema.
//!
//! `--soak` (serve only) replaces the serve experiment's bounded
//! wall-clock arms with an open-ended soak that runs until SIGINT; the
//! handler just sets a flag, the measurement loop drains gracefully, and
//! the full artifact — deterministic checks plus whatever wall-clock
//! windows completed — is still emitted. `--socket <path>` additionally
//! binds a Unix socket serving the length-prefixed decision protocol
//! (`serve::socket`) from a threaded `Service` for the soak's lifetime,
//! so out-of-process callers can query placements while the soak runs;
//! SIGINT drains connections and shuts the service down gracefully.
//!
//! `--trace` (requires `--out`) additionally records the event timeline
//! and writes `TRACE_<experiment>.json` (Chrome `trace_event` format —
//! load in Perfetto or `chrome://tracing`) plus `TRACE_<experiment>.jsonl`
//! (compact JSON-lines) per experiment. `perf-diff` compares the `perf`
//! sections of two artifact directories and exits non-zero when any
//! metric regressed beyond the tolerance (default 1.5×), so CI can gate
//! on it.
//!
//! The process exits non-zero when any experiment's acceptance checks
//! fail, so CI can gate on `repro all --quick`.
//!
//! Experiments (see DESIGN.md §4 for the full index):
//!
//! | name             | paper exhibit                                   |
//! |------------------|--------------------------------------------------|
//! | chsh             | §2 CHSH/GHZ values (E3)                          |
//! | fig3             | Figure 3: XOR-game advantage probability (E1)    |
//! | fig3-vertices    | Figure 3 caption: scaling with vertices (E1b)    |
//! | fig4             | Figure 4: queue length vs load (E2)              |
//! | fig4-scaling     | E2b: N-independence at fixed N/M                 |
//! | fig4-disciplines | E2c: footnote-2 robustness                       |
//! | fig4-faults      | E-faults: fault injection + graceful degradation |
//! | fig4-scale       | E2d: Figure 4 at production scale (10⁶ servers)  |
//! | ecmp             | §4.2 reduction + conjecture search (E4)          |
//! | timing           | Figure 2: decision latency (E5)                  |
//! | noise            | §3 error margins: visibility/storage (E6)        |
//! | hybrid           | §4.1 caveat: dedicated-server baseline (E7)      |
//! | pipeline         | E8: hardware-in-the-loop Figure 4                |
//! | ghz              | E9: multiparty Mermin/Magic-Square crossover     |
//! | topology         | E10: metro repeater chains + contention routing  |
//! | serve            | E11: qnlg-serve sub-µs decision service          |

use qnlg_bench::report::{validate_artifact_line, write_artifact, PerfStats, RunContext};
use qnlg_bench::{experiments, perfdiff, Report, Table};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Set by the SIGINT handler under `--soak`; the serve soak loop drains
/// gracefully when it flips.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_signum: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

// `signal(2)` straight from libc (already linked by std): installing a
// flag-only handler needs none of the sigaction machinery.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// POSIX SIGINT.
const SIGINT: i32 = 2;

/// Sim-time width of one `series` window (1 ms of simulated time; the
/// recorder caps itself at `trace::series::MAX_WINDOWS`).
const SERIES_WINDOW_NS: u64 = 1_000_000;

struct Options {
    quick: bool,
    json: bool,
    out: Option<PathBuf>,
    trace: bool,
    soak: bool,
    socket: Option<PathBuf>,
    tolerance: Option<f64>,
}

/// Everything one instrumented experiment run produces.
struct RunOutput {
    report: Report,
    snap: obs::Snapshot,
    perf: PerfStats,
    series: trace::series::SeriesSnapshot,
    trace_log: Option<trace::TraceLog>,
}

/// Runs one experiment with the metrics registry scoped to it, so the
/// artifact's `obs` section covers exactly this run; times the run for
/// the artifact's `perf` section, records the windowed `series`, and —
/// under `--trace` — captures the event timeline.
fn run_instrumented(
    name: &str,
    quick: bool,
    tracing: bool,
    soak: bool,
    socket: Option<&Path>,
) -> Option<RunOutput> {
    obs::reset();
    obs::set_enabled(true);
    if tracing {
        trace::reset();
        trace::set_enabled(true);
    }
    trace::series::start(SERIES_WINDOW_NS);
    let started = Instant::now();
    let report = if soak {
        // Only serve has an open-ended soak mode; `main` rejects --soak
        // for anything else. Under --socket, a threaded Service answers
        // the wire protocol for the soak's lifetime; its counters land
        // in the artifact's obs section alongside the soak's own.
        let served = socket.map(|path| {
            let config = serve::ServeConfig::typical(qnlg_bench::point_seed(46, 4, 0));
            let service = std::sync::Arc::new(serve::Service::start(&config));
            let server = serve::socket::SocketServer::start(path, std::sync::Arc::clone(&service))
                .unwrap_or_else(|e| {
                    eprintln!("error: cannot bind {}: {e}", path.display());
                    std::process::exit(2);
                });
            eprintln!("serving decisions on {}", path.display());
            (server, service)
        });
        let report = experiments::serve_exp::run_soak(&INTERRUPTED);
        if let Some((mut server, service)) = served {
            // Drain connections first, then drop the last Service ref so
            // its graceful shutdown flushes counters into this snapshot.
            server.stop();
            drop(service);
        }
        Some(report)
    } else {
        experiments::run(name, quick)
    };
    let elapsed = started.elapsed();
    let series = trace::series::finish();
    let trace_log = tracing.then(|| {
        trace::set_enabled(false);
        trace::drain()
    });
    let snap = obs::snapshot();
    obs::set_enabled(false);
    let perf = PerfStats::from_elapsed(elapsed, Some(&snap));
    report.map(|report| RunOutput {
        report,
        snap,
        perf,
        series,
        trace_log,
    })
}

/// Emits one finished report: text and/or JSON to stdout, plus the
/// `BENCH_<name>.json` (and under `--trace` the `TRACE_<name>.*`)
/// artifacts when `--out` is set. Returns false on an artifact I/O
/// failure.
fn emit(out: &RunOutput, opts: &Options) -> bool {
    let mut ctx = RunContext::current(opts.quick, Some(out.snap.clone()));
    ctx.perf = Some(out.perf);
    ctx.series = Some(out.series.clone());
    let line = out.report.to_json(&ctx).render();
    if opts.json {
        println!("{line}");
    } else {
        println!("{}", out.report);
        // Timing is machine-dependent, so it goes to stderr: stdout
        // stays byte-identical across runs and thread counts.
        eprintln!(
            "perf: {:.1} ms ({:.2e} pairs/s, {:.2e} tasks/s, {:.2e} rounds/s)",
            out.perf.elapsed_ns as f64 / 1e6,
            out.perf.pairs_per_sec,
            out.perf.tasks_per_sec,
            out.perf.rounds_per_sec
        );
    }
    let Some(dir) = &opts.out else {
        return true;
    };
    let mut files = vec![(format!("BENCH_{}.json", out.report.name), format!("{line}\n"))];
    if let Some(log) = &out.trace_log {
        files.push((
            format!("TRACE_{}.json", out.report.name),
            format!("{}\n", trace::export::chrome_trace(log).render()),
        ));
        files.push((
            format!("TRACE_{}.jsonl", out.report.name),
            trace::export::json_lines(log),
        ));
        eprintln!(
            "trace: {} events ({} dropped) -> {}",
            log.events.len(),
            log.dropped,
            dir.join(format!("TRACE_{}.json", out.report.name)).display()
        );
    }
    for (name, contents) in &files {
        if let Err(e) = write_artifact(dir, name, contents) {
            eprintln!("error: {e}");
            return false;
        }
    }
    true
}

/// Renders the `repro all` per-experiment summary (stderr: the timing
/// columns are machine-dependent).
fn summary_table(rows: &[(&'static str, PerfStats, bool)]) -> String {
    let mut t = Table::new(vec![
        "experiment",
        "elapsed (ms)",
        "pairs/s",
        "tasks/s",
        "checks",
    ]);
    for (name, perf, passed) in rows {
        t.row(vec![
            name.to_string(),
            format!("{:.1}", perf.elapsed_ns as f64 / 1e6),
            format!("{:.2e}", perf.pairs_per_sec),
            format!("{:.2e}", perf.tasks_per_sec),
            if *passed { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    t.render()
}

/// `repro perf-diff <old> <new>`: compares the `perf` sections and gates
/// on the tolerance.
fn perf_diff(old_dir: &Path, new_dir: &Path, tolerance: f64) -> ExitCode {
    let load = |dir: &Path| match perfdiff::load_dir(dir) {
        Ok(entries) => Some(entries),
        Err(e) => {
            eprintln!("error: {e}");
            None
        }
    };
    let (Some(old), Some(new)) = (load(old_dir), load(new_dir)) else {
        return ExitCode::FAILURE;
    };
    let d = perfdiff::diff(&old, &new, tolerance);
    let mut t = Table::new(vec!["experiment", "metric", "old", "new", "ratio", "status"]);
    for l in &d.lines {
        let fmt = |v: f64| {
            if l.metric == "elapsed_ns" {
                format!("{:.1}ms", v / 1e6)
            } else {
                format!("{v:.2e}")
            }
        };
        t.row(vec![
            l.experiment.clone(),
            l.metric.to_string(),
            fmt(l.old),
            fmt(l.new),
            format!("{:.2}x", l.slowdown),
            if l.regressed { "REGRESSED".into() } else { "ok".into() },
        ]);
    }
    println!("perf-diff (tolerance {tolerance:.2}x)");
    print!("{}", t.render());
    for s in &d.skipped {
        eprintln!("skipped: {s}");
    }
    if d.regressed() {
        eprintln!("FAIL: perf regression beyond {tolerance:.2}x tolerance");
        ExitCode::FAILURE
    } else {
        println!("no perf regressions beyond {tolerance:.2}x");
        ExitCode::SUCCESS
    }
}

fn check_artifacts(dir: &Path) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("error: no BENCH_*.json artifacts in {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                ok = false;
                continue;
            }
        };
        for (i, line) in content.lines().filter(|l| !l.trim().is_empty()).enumerate() {
            match validate_artifact_line(line) {
                Ok(doc) => {
                    let passed = doc.get("passed").and_then(|p| p.as_bool()) == Some(true);
                    let exp = doc
                        .get("experiment")
                        .and_then(|e| e.as_str())
                        .unwrap_or("?")
                        .to_string();
                    if passed {
                        println!("OK   {} ({exp})", path.display());
                    } else {
                        eprintln!("FAIL {} ({exp}): acceptance checks failed", path.display());
                        ok = false;
                    }
                }
                Err(e) => {
                    eprintln!("FAIL {} line {}: {e}", path.display(), i + 1);
                    ok = false;
                }
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        quick: false,
        json: false,
        out: None,
        trace: false,
        soak: false,
        socket: None,
        tolerance: None,
    };
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--trace" => opts.trace = true,
            "--soak" => opts.soak = true,
            "--socket" => match it.next() {
                Some(path) => opts.socket = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --socket requires a socket path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(dir) => opts.out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r >= 1.0 => opts.tolerance = Some(r),
                _ => {
                    eprintln!("error: --tolerance requires a ratio >= 1.0");
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
            other => names.push(other.to_string()),
        }
    }

    let Some(first) = names.first().cloned() else {
        eprintln!(
            "usage: repro <experiment|all|list|check-artifacts|perf-diff> \
             [--quick] [--json] [--out <dir>] [--trace] [--soak] [--socket <path>] \
             [--tolerance <ratio>]"
        );
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        return ExitCode::FAILURE;
    };

    if opts.trace && opts.out.is_none() {
        eprintln!("error: --trace requires --out <dir> (traces are written, not printed)");
        return ExitCode::FAILURE;
    }

    if opts.soak {
        if names != ["serve"] {
            eprintln!("error: --soak only applies to the serve experiment (repro serve --soak)");
            return ExitCode::FAILURE;
        }
        // SAFETY: installs a signal handler that only stores to an
        // AtomicBool, which is async-signal-safe.
        unsafe { signal(SIGINT, on_sigint) };
        eprintln!("soak: running until SIGINT (ctrl-c drains and emits the artifact)");
    }

    if opts.socket.is_some() && !opts.soak {
        eprintln!("error: --socket requires --soak (the socket serves for the soak's lifetime)");
        return ExitCode::FAILURE;
    }

    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    match first.as_str() {
        "list" => {
            for name in experiments::ALL {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "check-artifacts" => {
            let Some(dir) = names.get(1) else {
                eprintln!("usage: repro check-artifacts <dir>");
                return ExitCode::FAILURE;
            };
            check_artifacts(Path::new(dir))
        }
        "perf-diff" => {
            let (Some(old_dir), Some(new_dir)) = (names.get(1), names.get(2)) else {
                eprintln!("usage: repro perf-diff <old-dir> <new-dir> [--tolerance <ratio>]");
                return ExitCode::FAILURE;
            };
            perf_diff(
                Path::new(old_dir),
                Path::new(new_dir),
                opts.tolerance.unwrap_or(perfdiff::DEFAULT_TOLERANCE),
            )
        }
        "all" => {
            let mut all_passed = true;
            let mut rows: Vec<(&'static str, PerfStats, bool)> = Vec::new();
            for name in experiments::ALL {
                if !opts.json {
                    println!("================================================================");
                }
                let out = run_instrumented(name, opts.quick, opts.trace, false, None)
                    .expect("ALL only lists known experiments");
                all_passed &= emit(&out, &opts);
                if !out.report.passed() {
                    eprintln!("FAIL: experiment '{name}' acceptance checks failed");
                    all_passed = false;
                }
                rows.push((*name, out.perf, out.report.passed()));
            }
            eprint!("{}", summary_table(&rows));
            if all_passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            let mut ok = true;
            for name in &names {
                match run_instrumented(
                    name,
                    opts.quick,
                    opts.trace,
                    opts.soak,
                    opts.socket.as_deref(),
                ) {
                    Some(out) => {
                        ok &= emit(&out, &opts);
                        if !out.report.passed() {
                            eprintln!("FAIL: experiment '{name}' acceptance checks failed");
                            ok = false;
                        }
                    }
                    None => {
                        eprintln!(
                            "unknown experiment '{name}'; valid: {}",
                            experiments::ALL.join(", ")
                        );
                        ok = false;
                    }
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
