//! `repro` — regenerate every figure and quantitative claim of the paper.
//!
//! ```text
//! repro <experiment> [--quick]
//! repro all [--quick]
//! repro list
//! ```
//!
//! Experiments (see DESIGN.md §4 for the full index):
//!
//! | name             | paper exhibit                                   |
//! |------------------|--------------------------------------------------|
//! | chsh             | §2 CHSH/GHZ values (E3)                          |
//! | fig3             | Figure 3: XOR-game advantage probability (E1)    |
//! | fig3-vertices    | Figure 3 caption: scaling with vertices (E1b)    |
//! | fig4             | Figure 4: queue length vs load (E2)              |
//! | fig4-scaling     | E2b: N-independence at fixed N/M                 |
//! | fig4-disciplines | E2c: footnote-2 robustness                       |
//! | ecmp             | §4.2 reduction + conjecture search (E4)          |
//! | timing           | Figure 2: decision latency (E5)                  |
//! | noise            | §3 error margins: visibility/storage (E6)        |
//! | hybrid           | §4.1 caveat: dedicated-server baseline (E7)      |

use qnlg_bench::experiments;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let Some(&first) = names.first() else {
        eprintln!("usage: repro <experiment|all|list> [--quick]");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        return ExitCode::FAILURE;
    };

    match first {
        "list" => {
            for name in experiments::ALL {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            for name in experiments::ALL {
                println!("================================================================");
                match experiments::run(name, quick) {
                    Some(report) => println!("{report}"),
                    None => unreachable!("ALL only lists known experiments"),
                }
            }
            ExitCode::SUCCESS
        }
        _ => {
            let mut ok = true;
            for name in names {
                match experiments::run(name, quick) {
                    Some(report) => println!("{report}"),
                    None => {
                        eprintln!(
                            "unknown experiment '{name}'; valid: {}",
                            experiments::ALL.join(", ")
                        );
                        ok = false;
                    }
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
