//! `repro` — regenerate every figure and quantitative claim of the paper.
//!
//! ```text
//! repro <experiment> [--quick] [--json] [--out <dir>]
//! repro all [--quick] [--json] [--out <dir>]
//! repro check-artifacts <dir>
//! repro list
//! ```
//!
//! `--json` prints each experiment as one `qnlg.bench.v1` JSON line on
//! stdout instead of the text tables; `--out <dir>` additionally writes
//! one `BENCH_<experiment>.json` artifact per experiment (text output
//! stays on stdout unless `--json` is also given). `check-artifacts`
//! re-validates previously written artifacts against the schema.
//!
//! The process exits non-zero when any experiment's acceptance checks
//! fail, so CI can gate on `repro all --quick`.
//!
//! Experiments (see DESIGN.md §4 for the full index):
//!
//! | name             | paper exhibit                                   |
//! |------------------|--------------------------------------------------|
//! | chsh             | §2 CHSH/GHZ values (E3)                          |
//! | fig3             | Figure 3: XOR-game advantage probability (E1)    |
//! | fig3-vertices    | Figure 3 caption: scaling with vertices (E1b)    |
//! | fig4             | Figure 4: queue length vs load (E2)              |
//! | fig4-scaling     | E2b: N-independence at fixed N/M                 |
//! | fig4-disciplines | E2c: footnote-2 robustness                       |
//! | fig4-faults      | E-faults: fault injection + graceful degradation |
//! | fig4-scale       | E2d: Figure 4 at production scale (10⁶ servers)  |
//! | ecmp             | §4.2 reduction + conjecture search (E4)          |
//! | timing           | Figure 2: decision latency (E5)                  |
//! | noise            | §3 error margins: visibility/storage (E6)        |
//! | hybrid           | §4.1 caveat: dedicated-server baseline (E7)      |
//! | pipeline         | E8: hardware-in-the-loop Figure 4                |

use qnlg_bench::report::{validate_artifact_line, PerfStats, RunContext};
use qnlg_bench::{experiments, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    quick: bool,
    json: bool,
    out: Option<PathBuf>,
}

/// Runs one experiment with the metrics registry scoped to it, so the
/// artifact's `obs` section covers exactly this run; times the run for
/// the artifact's `perf` section.
fn run_instrumented(name: &str, quick: bool) -> Option<(Report, obs::Snapshot, PerfStats)> {
    obs::reset();
    obs::set_enabled(true);
    let started = Instant::now();
    let report = experiments::run(name, quick);
    let elapsed = started.elapsed();
    let snap = obs::snapshot();
    obs::set_enabled(false);
    let perf = PerfStats::from_elapsed(elapsed, Some(&snap));
    report.map(|r| (r, snap, perf))
}

/// Emits one finished report: text and/or JSON to stdout, plus the
/// `BENCH_<name>.json` artifact when `--out` is set. Returns false on an
/// artifact I/O failure.
fn emit(report: &Report, snap: obs::Snapshot, perf: PerfStats, opts: &Options) -> bool {
    let mut ctx = RunContext::current(opts.quick, Some(snap));
    ctx.perf = Some(perf);
    let line = report.to_json(&ctx).render();
    if opts.json {
        println!("{line}");
    } else {
        println!("{report}");
        // Timing is machine-dependent, so it goes to stderr: stdout
        // stays byte-identical across runs and thread counts.
        eprintln!(
            "perf: {:.1} ms ({:.2e} pairs/s, {:.2e} tasks/s)",
            perf.elapsed_ns as f64 / 1e6,
            perf.pairs_per_sec,
            perf.tasks_per_sec
        );
    }
    if let Some(dir) = &opts.out {
        let path = dir.join(format!("BENCH_{}.json", report.name));
        if let Err(e) = std::fs::write(&path, format!("{line}\n")) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return false;
        }
    }
    true
}

fn check_artifacts(dir: &Path) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("error: no BENCH_*.json artifacts in {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                ok = false;
                continue;
            }
        };
        for (i, line) in content.lines().filter(|l| !l.trim().is_empty()).enumerate() {
            match validate_artifact_line(line) {
                Ok(doc) => {
                    let passed = doc.get("passed").and_then(|p| p.as_bool()) == Some(true);
                    let exp = doc
                        .get("experiment")
                        .and_then(|e| e.as_str())
                        .unwrap_or("?")
                        .to_string();
                    if passed {
                        println!("OK   {} ({exp})", path.display());
                    } else {
                        eprintln!("FAIL {} ({exp}): acceptance checks failed", path.display());
                        ok = false;
                    }
                }
                Err(e) => {
                    eprintln!("FAIL {} line {}: {e}", path.display(), i + 1);
                    ok = false;
                }
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        quick: false,
        json: false,
        out: None,
    };
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--out" => match it.next() {
                Some(dir) => opts.out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
            other => names.push(other.to_string()),
        }
    }

    let Some(first) = names.first().cloned() else {
        eprintln!("usage: repro <experiment|all|list|check-artifacts> [--quick] [--json] [--out <dir>]");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        return ExitCode::FAILURE;
    };

    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    match first.as_str() {
        "list" => {
            for name in experiments::ALL {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "check-artifacts" => {
            let Some(dir) = names.get(1) else {
                eprintln!("usage: repro check-artifacts <dir>");
                return ExitCode::FAILURE;
            };
            check_artifacts(Path::new(dir))
        }
        "all" => {
            let mut all_passed = true;
            for name in experiments::ALL {
                if !opts.json {
                    println!("================================================================");
                }
                let (report, snap, perf) =
                    run_instrumented(name, opts.quick).expect("ALL only lists known experiments");
                all_passed &= emit(&report, snap, perf, &opts);
                if !report.passed() {
                    eprintln!("FAIL: experiment '{name}' acceptance checks failed");
                    all_passed = false;
                }
            }
            if all_passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            let mut ok = true;
            for name in &names {
                match run_instrumented(name, opts.quick) {
                    Some((report, snap, perf)) => {
                        ok &= emit(&report, snap, perf, &opts);
                        if !report.passed() {
                            eprintln!("FAIL: experiment '{name}' acceptance checks failed");
                            ok = false;
                        }
                    }
                    None => {
                        eprintln!(
                            "unknown experiment '{name}'; valid: {}",
                            experiments::ALL.join(", ")
                        );
                        ok = false;
                    }
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
