//! Typed experiment reports.
//!
//! Every experiment returns a [`Report`]: the rendered text table the
//! `repro` binary has always printed, plus machine-readable content —
//! key scalars, binomial estimates with their 95% Wilson intervals, one
//! JSON object per swept point, and named acceptance checks. The
//! [`Report::to_json`] method serializes the whole thing as one JSON
//! line with a stable schema (`qnlg.bench.v1`) for the `BENCH_*.json`
//! artifacts.
//!
//! Determinism contract: everything inside the report is a pure function
//! of the experiment's seeds, so the JSON line is byte-identical across
//! worker counts once the two run-environment fields (`threads` and the
//! `obs` snapshot, which contains `time.*` wall-clock metrics and
//! scheduling counters) are stripped. The determinism tests do exactly
//! that.

use obs::json::Json;
use qmath::stats::Proportion;

/// One named acceptance check with its outcome.
#[derive(Debug, Clone)]
pub struct Check {
    /// Short identifier, e.g. `"knee-order"`.
    pub name: String,
    /// Whether the run satisfied the check.
    pub passed: bool,
    /// Human-readable evidence (the numbers that were compared).
    pub detail: String,
}

/// The structured result of one experiment run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment name as dispatched by `repro` (e.g. `"fig4"`).
    pub name: &'static str,
    /// Seed domain of [`crate::point_seed`] the experiment draws from.
    pub seed: u64,
    /// The rendered text report (tables + commentary).
    pub text: String,
    /// Key scalar results, in insertion order.
    pub scalars: Vec<(String, f64)>,
    /// Monte-Carlo proportions with 95% Wilson intervals.
    pub intervals: Vec<(String, Proportion)>,
    /// One JSON object per swept point.
    pub points: Vec<Json>,
    /// Acceptance checks evaluated against the run's own numbers.
    pub checks: Vec<Check>,
}

impl Report {
    /// Starts an empty report for `name`, drawing seeds from the
    /// `point_seed` domain `seed`.
    pub fn new(name: &'static str, seed: u64) -> Self {
        Report {
            name,
            seed,
            text: String::new(),
            scalars: Vec::new(),
            intervals: Vec::new(),
            points: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Records a key scalar.
    pub fn scalar(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.scalars.push((name.into(), value));
        self
    }

    /// Records a proportion with its Wilson interval.
    pub fn interval(&mut self, name: impl Into<String>, p: Proportion) -> &mut Self {
        self.intervals.push((name.into(), p));
        self
    }

    /// Appends a per-point JSON object.
    pub fn point(&mut self, point: Json) -> &mut Self {
        self.points.push(point);
        self
    }

    /// Records an acceptance check.
    pub fn check(
        &mut self,
        name: impl Into<String>,
        passed: bool,
        detail: impl Into<String>,
    ) -> &mut Self {
        self.checks.push(Check {
            name: name.into(),
            passed,
            detail: detail.into(),
        });
        self
    }

    /// True if every acceptance check passed (vacuously true with none).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// A one-line pass/fail summary of the checks, for the text output.
    pub fn check_summary(&self) -> String {
        if self.checks.is_empty() {
            return String::new();
        }
        let mut out = String::from("checks:\n");
        for c in &self.checks {
            let mark = if c.passed { "PASS" } else { "FAIL" };
            out.push_str(&format!("  [{mark}] {} — {}\n", c.name, c.detail));
        }
        out
    }

    /// Serializes as one `qnlg.bench.v1` JSON object.
    pub fn to_json(&self, ctx: &RunContext) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("schema".into(), Json::str("qnlg.bench.v1")),
            ("experiment".into(), Json::str(self.name)),
            ("quick".into(), Json::Bool(ctx.quick)),
            ("seed".into(), Json::uint(self.seed)),
            ("threads".into(), Json::uint(ctx.threads as u64)),
            ("git".into(), Json::str(ctx.git.clone())),
            ("passed".into(), Json::Bool(self.passed())),
            (
                "checks".into(),
                Json::Arr(
                    self.checks
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("name", Json::str(c.name.clone())),
                                ("passed", Json::Bool(c.passed)),
                                ("detail", Json::str(c.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "scalars".into(),
                Json::Obj(
                    self.scalars
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v)))
                        .collect(),
                ),
            ),
            (
                "intervals".into(),
                Json::Obj(
                    self.intervals
                        .iter()
                        .map(|(k, p)| (k.clone(), proportion_to_json(p)))
                        .collect(),
                ),
            ),
            ("points".into(), Json::Arr(self.points.clone())),
        ];
        pairs.push((
            "obs".into(),
            match &ctx.obs {
                Some(snap) => obs_to_json(snap),
                None => Json::Null,
            },
        ));
        pairs.push((
            "perf".into(),
            match &ctx.perf {
                Some(p) => Json::obj([
                    ("elapsed_ns", Json::uint(p.elapsed_ns)),
                    ("pairs_per_sec", Json::num(p.pairs_per_sec)),
                    ("tasks_per_sec", Json::num(p.tasks_per_sec)),
                    ("rounds_per_sec", Json::num(p.rounds_per_sec)),
                    ("decisions_per_sec", Json::num(p.decisions_per_sec)),
                    ("p50_ns", Json::num(p.p50_ns)),
                    ("p99_ns", Json::num(p.p99_ns)),
                    ("p999_ns", Json::num(p.p999_ns)),
                ]),
                None => Json::Null,
            },
        ));
        pairs.push((
            "series".into(),
            match &ctx.series {
                Some(s) => s.to_json(),
                None => Json::Null,
            },
        ));
        Json::Obj(pairs)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)?;
        let summary = self.check_summary();
        if !summary.is_empty() {
            write!(f, "\n{summary}")?;
        }
        Ok(())
    }
}

/// Wall-clock performance of one experiment run. Like `threads` and
/// `git`, this describes the producing machine, not the experiment's
/// deterministic result — determinism comparisons strip it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfStats {
    /// Wall-clock nanoseconds for the experiment proper (excludes
    /// serialization).
    pub elapsed_ns: u64,
    /// Entangled pairs emitted per wall-clock second
    /// (`qnet.epr.emitted / elapsed`); 0 when the experiment runs no
    /// distributor.
    pub pairs_per_sec: f64,
    /// Load-balancer task assignments per wall-clock second
    /// (`lb.tasks.assigned / elapsed`); 0 when no simulator runs.
    pub tasks_per_sec: f64,
    /// Multiparty game rounds played per wall-clock second
    /// (`games.ghz.rounds / elapsed`); 0 when no game kernel runs.
    pub rounds_per_sec: f64,
    /// Served placement decisions per wall-clock second of *hot-path
    /// busy time* (`qnlg.serve.hot.decisions / qnlg.serve.hot.ns`):
    /// the serve experiment's measured drain loops only, so open-loop
    /// pacing and refill time don't dilute the figure. 0 when no
    /// service runs.
    pub decisions_per_sec: f64,
    /// Median served decision latency in ns (from the
    /// `qnlg.serve.decision_latency_ns` histogram; bucket upper
    /// bounds). 0 when no service runs.
    pub p50_ns: f64,
    /// 99th-percentile served decision latency in ns.
    pub p99_ns: f64,
    /// 99.9th-percentile served decision latency in ns.
    pub p999_ns: f64,
}

impl PerfStats {
    /// Derives throughput from an elapsed time and the obs counters
    /// captured over the same span.
    pub fn from_elapsed(elapsed: std::time::Duration, snap: Option<&obs::Snapshot>) -> Self {
        let elapsed_ns = (elapsed.as_nanos() as u64).max(1);
        let secs = elapsed_ns as f64 / 1e9;
        let counter = |name: &str| -> f64 {
            snap.and_then(|s| s.counters.iter().find(|(n, _)| n == name))
                .map(|(_, v)| *v as f64)
                .unwrap_or(0.0)
        };
        // Decision throughput is per second of hot-path busy time, not
        // per second of total experiment wall clock: the serve soak
        // spends most of its elapsed time paced (open-loop) or refilling.
        let hot_ns = counter("qnlg.serve.hot.ns");
        let decisions_per_sec = if hot_ns > 0.0 {
            counter("qnlg.serve.hot.decisions") / (hot_ns / 1e9)
        } else {
            0.0
        };
        let latency = snap.and_then(|s| s.hist("qnlg.serve.decision_latency_ns"));
        let pct = |q: f64| -> f64 {
            latency
                .and_then(|h| h.percentile(q))
                .map(|v| v as f64)
                .unwrap_or(0.0)
        };
        PerfStats {
            elapsed_ns,
            pairs_per_sec: counter("qnet.epr.emitted") / secs,
            tasks_per_sec: counter("lb.tasks.assigned") / secs,
            rounds_per_sec: counter("games.ghz.rounds") / secs,
            decisions_per_sec,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            p999_ns: pct(0.999),
        }
    }
}

/// Run-environment fields attached at serialization time (they are not
/// part of the experiment's deterministic result).
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Whether the run used the quick (CI) Monte-Carlo budget.
    pub quick: bool,
    /// Worker threads the sweep pool used.
    pub threads: usize,
    /// `git describe` of the producing tree, or `"unknown"`.
    pub git: String,
    /// Metrics snapshot covering exactly this experiment's run.
    pub obs: Option<obs::Snapshot>,
    /// Wall-clock timing of this experiment's run.
    pub perf: Option<PerfStats>,
    /// Windowed counter time series covering this experiment's run.
    pub series: Option<trace::series::SeriesSnapshot>,
}

impl RunContext {
    /// The context `repro` uses: current pool width and git revision.
    pub fn current(quick: bool, obs: Option<obs::Snapshot>) -> Self {
        RunContext {
            quick,
            threads: runtime::thread_count(),
            git: git_describe(),
            obs,
            perf: None,
            series: None,
        }
    }
}

/// `git describe --always --dirty` of the working tree, `"unknown"` when
/// git or the repository is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn proportion_to_json(p: &Proportion) -> Json {
    Json::obj([
        ("estimate", Json::Num(p.estimate)),
        ("lo", Json::Num(p.lo)),
        ("hi", Json::Num(p.hi)),
        ("trials", Json::uint(p.trials)),
    ])
}

/// Serializes an obs snapshot: counters and gauges verbatim, histograms
/// as summary objects (count/sum/min/max/mean plus p50/p99 upper
/// bounds). Metric names under `time.` are wall-clock and therefore
/// non-deterministic by contract.
pub fn obs_to_json(snap: &obs::Snapshot) -> Json {
    let hist_json = |h: &obs::HistSnapshot| {
        Json::obj([
            ("count", Json::uint(h.count)),
            ("sum", Json::uint(h.sum)),
            ("min", if h.count > 0 { Json::uint(h.min) } else { Json::Null }),
            ("max", if h.count > 0 { Json::uint(h.max) } else { Json::Null }),
            ("mean", Json::num(h.mean())),
            (
                "p50",
                h.percentile(0.5).map_or(Json::Null, Json::uint),
            ),
            (
                "p99",
                h.percentile(0.99).map_or(Json::Null, Json::uint),
            ),
        ])
    };
    Json::obj([
        (
            "counters",
            Json::Obj(
                snap.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::uint(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                snap.gauges
                    .iter()
                    .map(|(n, g)| {
                        (
                            n.clone(),
                            Json::obj([
                                ("value", Json::Int(g.value)),
                                (
                                    "high_water",
                                    if g.high_water == i64::MIN {
                                        Json::Null
                                    } else {
                                        Json::Int(g.high_water)
                                    },
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "hists",
            Json::Obj(
                snap.hists
                    .iter()
                    .map(|(n, h)| (n.clone(), hist_json(h)))
                    .collect(),
            ),
        ),
    ])
}

/// Serializes a full [`loadbalance::metrics::SimResult`] as a JSON
/// object — the per-point payload of the Figure 4 family.
pub fn sim_result_to_json(r: &loadbalance::metrics::SimResult) -> Json {
    Json::obj([
        ("strategy", Json::str(r.strategy)),
        ("load", Json::num(r.load)),
        ("avg_queue_len", Json::num(r.avg_queue_len)),
        ("avg_wait", Json::num(r.avg_wait)),
        ("p50_wait", Json::num(r.p50_wait)),
        ("p99_wait", Json::num(r.p99_wait)),
        ("max_queue_len", Json::uint(r.max_queue_len as u64)),
        ("served", Json::uint(r.served)),
        ("generated", Json::uint(r.generated)),
        ("cc_colocation_rate", Json::num(r.cc_colocation_rate)),
        ("split_rate", Json::num(r.split_rate)),
        ("cc_rounds", Json::uint(r.cc_rounds)),
        ("cc_colocated", Json::uint(r.cc_colocated)),
        ("other_rounds", Json::uint(r.other_rounds)),
        ("other_split", Json::uint(r.other_split)),
        (
            "queue_len_series",
            Json::Arr(r.queue_len_series.iter().map(|&v| Json::num(v)).collect()),
        ),
    ])
}

/// The artifact schema's required top-level fields, shared by the
/// `check-artifacts` validator and the schema tests.
pub const REQUIRED_FIELDS: &[&str] = &[
    "schema",
    "experiment",
    "quick",
    "seed",
    "threads",
    "git",
    "passed",
    "checks",
    "scalars",
    "intervals",
    "points",
    "obs",
    "perf",
    "series",
];

/// Validates one artifact line against the `qnlg.bench.v1` schema.
///
/// # Errors
/// A message naming the parse failure or the first missing/mistyped
/// field.
pub fn validate_artifact_line(line: &str) -> Result<Json, String> {
    let doc = Json::parse(line)?;
    for field in REQUIRED_FIELDS {
        if doc.get(field).is_none() {
            return Err(format!("missing required field '{field}'"));
        }
    }
    match doc.get("schema").and_then(Json::as_str) {
        Some("qnlg.bench.v1") => {}
        other => return Err(format!("unsupported schema {other:?}")),
    }
    if doc.get("points").and_then(Json::as_arr).is_none() {
        return Err("'points' is not an array".into());
    }
    if doc.get("checks").and_then(Json::as_arr).is_none() {
        return Err("'checks' is not an array".into());
    }
    if doc.get("seed").and_then(Json::as_i64).is_none() {
        return Err("'seed' is not an integer".into());
    }
    if doc.get("threads").and_then(Json::as_i64).is_none() {
        return Err("'threads' is not an integer".into());
    }
    // `perf` must be present; when populated (not the determinism-pinned
    // null) it needs a well-typed elapsed time and throughputs.
    if let Some(perf) = doc.get("perf").filter(|p| !matches!(p, Json::Null)) {
        if perf.get("elapsed_ns").and_then(Json::as_i64).is_none() {
            return Err("'perf.elapsed_ns' is not an integer".into());
        }
        for field in ["pairs_per_sec", "tasks_per_sec"] {
            if perf.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("'perf.{field}' is not a number"));
            }
        }
        // Later schema additions (PR 8's rounds_per_sec, the serve
        // metrics) are optional for backward compatibility with old
        // artifacts, but must be numbers when present.
        for field in [
            "rounds_per_sec",
            "decisions_per_sec",
            "p50_ns",
            "p99_ns",
            "p999_ns",
        ] {
            if let Some(v) = perf.get(field) {
                if v.as_f64().is_none() {
                    return Err(format!("'perf.{field}' is not a number"));
                }
            }
        }
    }
    // `series` must be present; when populated (not the determinism-pinned
    // null) it needs a window width and a windows array.
    if let Some(series) = doc.get("series").filter(|s| !matches!(s, Json::Null)) {
        if series.get("window_ns").and_then(Json::as_i64).is_none() {
            return Err("'series.window_ns' is not an integer".into());
        }
        if series.get("windows").and_then(Json::as_arr).is_none() {
            return Err("'series.windows' is not an array".into());
        }
    }
    Ok(doc)
}

/// Writes one artifact file into `dir`, creating the directory (and any
/// missing parents) first. This is the single write path `repro` uses for
/// `BENCH_*`/`TRACE_*` outputs so `--out some/new/dir` always works.
///
/// # Errors
/// The underlying I/O error, prefixed with the offending path.
pub fn write_artifact(
    dir: &std::path::Path,
    name: &str,
    contents: &str,
) -> Result<std::path::PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(name);
    std::fs::write(&path, contents).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new("sample", 7);
        r.text = "a table\n".into();
        r.scalar("knee", 1.2);
        r.interval("cc", qmath::stats::wilson(850, 1000));
        r.point(Json::obj([("load", Json::num(1.0))]));
        r.check("sane", true, "1.2 < 2.0");
        r
    }

    #[test]
    fn report_roundtrips_through_schema() {
        let r = sample_report();
        let ctx = RunContext {
            quick: true,
            threads: 4,
            git: "test".into(),
            obs: None,
            perf: Some(PerfStats {
                elapsed_ns: 1_500_000,
                pairs_per_sec: 2e6,
                tasks_per_sec: 4e5,
                rounds_per_sec: 3e6,
                decisions_per_sec: 8e6,
                p50_ns: 127.0,
                p99_ns: 511.0,
                p999_ns: 1023.0,
            }),
            series: None,
        };
        let line = r.to_json(&ctx).render();
        let doc = validate_artifact_line(&line).expect("valid artifact");
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("sample"));
        let perf = doc.get("perf").unwrap();
        assert_eq!(perf.get("elapsed_ns").unwrap().as_i64(), Some(1_500_000));
        assert!(perf.get("pairs_per_sec").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(perf.get("decisions_per_sec").unwrap().as_f64(), Some(8e6));
        assert_eq!(perf.get("p99_ns").unwrap().as_f64(), Some(511.0));
        assert_eq!(doc.get("seed").unwrap().as_i64(), Some(7));
        assert_eq!(doc.get("passed").unwrap().as_bool(), Some(true));
        let interval = doc.get("intervals").unwrap().get("cc").unwrap();
        assert!(interval.get("lo").unwrap().as_f64().unwrap() < 0.85);
        assert!(interval.get("hi").unwrap().as_f64().unwrap() > 0.85);
    }

    #[test]
    fn failed_check_fails_report() {
        let mut r = sample_report();
        assert!(r.passed());
        r.check("broken", false, "2 > 1 failed");
        assert!(!r.passed());
        assert!(r.check_summary().contains("[FAIL] broken"));
    }

    #[test]
    fn validator_rejects_bad_lines() {
        assert!(validate_artifact_line("not json").is_err());
        assert!(validate_artifact_line("{}").is_err());
        assert!(
            validate_artifact_line(r#"{"schema":"qnlg.bench.v2"}"#).is_err(),
            "wrong schema version must be rejected"
        );
    }

    #[test]
    fn validator_accepts_old_perf_blocks_and_rejects_bad_new_fields() {
        // A pre-PR-8 artifact: perf without any of the later additions.
        let old = r#"{"schema":"qnlg.bench.v1","experiment":"sample","seed":7,
            "quick":true,"threads":1,"git":"x","passed":true,"points":[],
            "checks":[],"scalars":{},"intervals":{},"obs":null,"series":null,
            "perf":{"elapsed_ns":5,"pairs_per_sec":1.0,"tasks_per_sec":1.0}}"#;
        let line = old.replace('\n', " ");
        validate_artifact_line(&line).expect("optional perf fields may be absent");

        // But when present, the serve metrics must be numbers.
        let bad = line.replace(
            r#""tasks_per_sec":1.0"#,
            r#""tasks_per_sec":1.0,"decisions_per_sec":"fast""#,
        );
        let err = validate_artifact_line(&bad).expect_err("string decisions_per_sec");
        assert!(err.contains("decisions_per_sec"), "got: {err}");
    }

    #[test]
    fn validator_checks_series_shape() {
        let r = sample_report();
        let mut ctx = RunContext {
            quick: true,
            threads: 4,
            git: "test".into(),
            obs: None,
            perf: None,
            series: None,
        };
        // Null series is the determinism-pinned form and must validate.
        let line = r.to_json(&ctx).render();
        let doc = validate_artifact_line(&line).expect("null series is valid");
        assert!(matches!(doc.get("series"), Some(Json::Null)));

        // A populated series round-trips with its windows intact.
        trace::series::start(1_000);
        trace::series::tick(5_000);
        ctx.series = Some(trace::series::finish());
        let populated = r.to_json(&ctx).render();
        let doc = validate_artifact_line(&populated).expect("populated series is valid");
        let series = doc.get("series").unwrap();
        assert_eq!(series.get("window_ns").unwrap().as_i64(), Some(1_000));
        assert!(series.get("windows").unwrap().as_arr().is_some());

        // A malformed series (windows not an array) is rejected.
        let bad = line.replace(
            r#""series":null"#,
            r#""series":{"window_ns":1000,"windows":1}"#,
        );
        assert_ne!(bad, line, "replacement must hit the null series");
        assert!(validate_artifact_line(&bad).is_err());
    }

    #[test]
    fn write_artifact_creates_missing_directories() {
        let dir = std::env::temp_dir().join(format!(
            "qnlg-write-artifact-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let nested = dir.join("deep").join("out");
        assert!(!nested.exists(), "precondition: target dir absent");
        let path = write_artifact(&nested, "BENCH_x.json", "{\"ok\":true}\n")
            .expect("writes through missing parents");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"ok\":true}\n"
        );
        // Second write into the now-existing dir overwrites cleanly.
        write_artifact(&nested, "BENCH_x.json", "{}\n").expect("rewrite");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn display_appends_check_summary() {
        let r = sample_report();
        let shown = format!("{r}");
        assert!(shown.starts_with("a table"));
        assert!(shown.contains("[PASS] sane"));
    }
}
