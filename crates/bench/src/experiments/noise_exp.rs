//! Experiment E6: the §3 error-margin caveat, quantified.
//!
//! Three ablations: (a) CHSH win probability vs Werner visibility — the
//! advantage dies exactly at v = 1/√2; (b) the end-to-end Figure 4 effect
//! of degraded visibility and finite pair availability; (c) QNIC storage
//! time vs CHSH value (a pair held for time t suffers dephasing
//! (1 − e^{−t/τ})/2 per half).

use crate::report::Report;
use crate::table::{f2, f4, Table};
use games::chsh::{ChshGame, QuantumChshStrategy};
use games::game::empirical_win_rate;
use games::ChshVariant;
use loadbalance::server::Discipline;
use loadbalance::sim::{run_simulation, SimConfig};
use loadbalance::strategy::{QuantumMode, Strategy};
use loadbalance::task::BernoulliWorkload;
use obs::json::Json;
use qmath::stats::wilson;
use qsim::noise::{werner, KrausChannel, WERNER_CHSH_THRESHOLD};
use qsim::SharedPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the noise ablations.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new("noise", 6);
    let mut out = String::new();

    // (a) CHSH vs visibility — one pool point per visibility, each on its
    // own seed stream.
    let rounds = if quick { 20_000 } else { 200_000 };
    let vis = [1.0, 0.9, 0.8, WERNER_CHSH_THRESHOLD, 0.6, 0.5];
    let rates = runtime::par_sweep(crate::point_seed(6, 0, 0), &vis, |_, &v, rng| {
        let mut s = QuantumChshStrategy::with_source(
            move || SharedPair::werner(v).expect("valid visibility"),
            ChshVariant::Standard,
        );
        empirical_win_rate(&ChshGame::standard(), &mut s, rounds, rng)
    });
    let mut t = Table::new(vec!["visibility", "CHSH win prob", "theory", "advantage?"]);
    for (&v, &rate) in vis.iter().zip(&rates) {
        let theory = 0.5 + v * std::f64::consts::SQRT_2 / 4.0;
        t.row(vec![
            f4(v),
            f4(rate),
            f4(theory),
            (if rate > 0.75 { "yes" } else { "NO" }).to_string(),
        ]);
        report.interval(
            format!("chsh.v{v:.4}"),
            wilson((rate * rounds as f64).round() as u64, rounds as u64),
        );
        report.point(Json::obj([
            ("part", Json::str("visibility")),
            ("visibility", Json::num(v)),
            ("win_rate", Json::num(rate)),
            ("theory", Json::num(theory)),
            ("rounds", Json::uint(rounds as u64)),
        ]));
    }
    out.push_str(&format!(
        "E6a — CHSH vs Werner visibility ({rounds} rounds/point; threshold 1/√2 ≈ 0.7071)\n\n{}\n",
        t.render()
    ));

    // (b) End-to-end: Figure 4 point at load 1.2 under degraded hardware.
    let (n, steps) = if quick { (40, 600) } else { (100, 3_000) };
    let load = 1.2;
    let run_point = |strategy: Strategy, seed: u64| -> f64 {
        let config = SimConfig {
            n_balancers: n,
            n_servers: (n as f64 / load).round() as usize,
            timesteps: steps,
            warmup: steps / 4,
            discipline: Discipline::PaperPairedC,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        run_simulation(config, strategy, &mut BernoulliWorkload::paper(), &mut rng)
            .avg_queue_len
    };
    let mut rows: Vec<(String, Strategy, u64)> = vec![
        (
            "classical uniform-random".into(),
            Strategy::UniformRandom,
            crate::point_seed(6, 1, 0),
        ),
        (
            "classical paired-split".into(),
            Strategy::PairedAlwaysSplit,
            crate::point_seed(6, 1, 1),
        ),
    ];
    for (vi, v) in [1.0, 0.9, 0.8, WERNER_CHSH_THRESHOLD, 0.5].iter().enumerate() {
        rows.push((
            format!("quantum, visibility {v:.3}"),
            Strategy::PairedQuantum {
                mode: QuantumMode::FastSampling,
                availability: 1.0,
                visibility: *v,
            },
            crate::point_seed(6, 2, vi as u64),
        ));
    }
    for (ai, a) in [0.9, 0.7, 0.5].iter().enumerate() {
        rows.push((
            format!("quantum, availability {a:.1}"),
            Strategy::PairedQuantum {
                mode: QuantumMode::FastSampling,
                availability: *a,
                visibility: 1.0,
            },
            crate::point_seed(6, 3, ai as u64),
        ));
    }
    let queues = runtime::par_map(&rows, |_, (_, strategy, seed)| run_point(*strategy, *seed));
    let mut t = Table::new(vec!["configuration", "avg queue @ load 1.2"]);
    for ((label, _, _), q) in rows.iter().zip(&queues) {
        t.row(vec![label.clone(), f2(*q)]);
        report.point(Json::obj([
            ("part", Json::str("end_to_end")),
            ("configuration", Json::str(label.clone())),
            ("avg_queue_len", Json::num(*q)),
            ("load", Json::num(load)),
        ]));
    }
    out.push_str(&format!(
        "E6b — end-to-end load balancing under degraded hardware (N = {n})\n\n{}\n",
        t.render()
    ));

    // (c) Storage-time ablation: hold both halves for t, play CHSH.
    let rounds_c = if quick { 5_000 } else { 50_000 };
    let tau = 100e-6; // 100 µs QNIC memory lifetime (§3)
    let ratios = [0.0, 0.1, 0.25, 0.5, 1.0, 2.0];
    let rates_c = runtime::par_sweep(crate::point_seed(6, 4, 0), &ratios, |_, &ratio, rng| {
        let held = ratio * tau;
        let ch = KrausChannel::storage_decay(held, tau).expect("valid params");
        // Build the decohered pair once; clone per round.
        let rho0 = werner(1.0).expect("valid");
        let rho = ch.apply(&rho0, 0).expect("qubit 0");
        let rho = ch.apply(&rho, 1).expect("qubit 1");
        let mut s = QuantumChshStrategy::with_source(
            move || SharedPair::from_density(rho.clone()).expect("two qubits"),
            ChshVariant::Standard,
        );
        empirical_win_rate(&ChshGame::standard(), &mut s, rounds_c, rng)
    });
    let mut t = Table::new(vec!["hold time / τ", "CHSH win prob", "advantage?"]);
    for (&ratio, &rate) in ratios.iter().zip(&rates_c) {
        t.row(vec![
            format!("{ratio:.2}"),
            f4(rate),
            (if rate > 0.755 {
                "yes"
            } else if rate > 0.745 {
                "marginal"
            } else {
                "NO"
            })
            .to_string(),
        ]);
        report.interval(
            format!("chsh.hold{ratio:.2}"),
            wilson((rate * rounds_c as f64).round() as u64, rounds_c as u64),
        );
        report.point(Json::obj([
            ("part", Json::str("storage_decay")),
            ("hold_over_tau", Json::num(ratio)),
            ("win_rate", Json::num(rate)),
            ("rounds", Json::uint(rounds_c as u64)),
        ]));
    }
    out.push_str(&format!(
        "E6c — QNIC storage decoherence (τ = 100 µs, dephasing on both halves, \
         {rounds_c} rounds/point)\n\n{}",
        t.render()
    ));

    report.scalar("chsh_rate.v1.0", rates[0]);
    report.scalar("chsh_rate.v0.5", rates[5]);
    report.scalar("werner_threshold", WERNER_CHSH_THRESHOLD);

    // Acceptance: full visibility must clear the classical bound and
    // v = 0.5 must fall below it — the §3 threshold is the point of E6.
    report.check(
        "advantage-at-full-visibility",
        rates[0] > 0.8,
        format!("win rate {:.4} > 0.8 at v = 1.0", rates[0]),
    );
    report.check(
        "no-advantage-below-threshold",
        rates[5] < 0.76,
        format!("win rate {:.4} < 0.76 at v = 0.5", rates[5]),
    );

    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn threshold_visible_in_report() {
        let report = super::run(true);
        let out = format!("{report}");
        // Visibility 0.5 must show NO advantage; visibility 1.0 must show yes.
        assert!(out.contains("NO"), "{out}");
        assert!(out.contains("yes"), "{out}");
        assert!(report.passed(), "{out}");
    }
}
