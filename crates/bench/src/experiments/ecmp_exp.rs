//! Experiment E4: the §4.2 ECMP negative result.
//!
//! Three parts: (1) the no-signaling reduction verified to machine
//! precision, (2) a collision-probability comparison of classical and
//! entangled strategies, (3) a strategy search supporting the paper's
//! conjecture, plus the pigeonhole bound that settles the 2-active /
//! 2-path family outright.

use crate::table::{f4, Table};
use ecmp::model::{run_rounds, EcmpScenario};
use ecmp::search::{exhaustive_quantum_search, pigeonhole_lower_bound};
use ecmp::strategy::{EntangledStateKind, GlobalEntangled, IidRandom, SharedPermutation};
use ecmp::reduction_deviation;
use qsim::bell;
use qsim::measure::Basis1;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the full ECMP experiment.
pub fn run(quick: bool) -> String {
    let rounds = if quick { 10_000 } else { 200_000 };
    let mut rng = StdRng::seed_from_u64(crate::point_seed(4, 0, 0));
    let mut out = String::new();

    // Part 1: reduction invariance — deterministic, fanned out over the
    // pool one basis triple at a time.
    let angles = [0.0, 0.5, 1.1, 2.3];
    let states = [bell::ghz(3), bell::w_state(3)];
    let mut triples = Vec::new();
    for si in 0..states.len() {
        for &ta in &angles {
            for &tb in &angles {
                for &tc in &angles {
                    triples.push((si, ta, tb, tc));
                }
            }
        }
    }
    let worst = runtime::par_map(&triples, |_, &(si, ta, tb, tc)| {
        reduction_deviation(
            &states[si],
            &Basis1::angle(ta),
            &Basis1::angle(tb),
            &Basis1::angle(tc),
        )
        .expect("3-party state")
    })
    .into_iter()
    .fold(0.0f64, f64::max);
    out.push_str(&format!(
        "E4 — §4.2 no-signaling reduction: max |P_traced − P_C-measured-first| \
         over GHZ/W × {} basis triples = {worst:.2e}\n\n",
        2 * angles.len().pow(3)
    ));

    // Part 2: collision probabilities for the minimal scenario. Each
    // strategy row runs on its own seed stream, concurrently.
    let scenario = EcmpScenario::minimal();
    let rows = [
        "iid-random",
        "shared-permutation",
        "ghz-spread-angles",
        "w-spread-angles",
    ];
    let row_ids: Vec<usize> = (0..rows.len()).collect();
    let probs = runtime::par_sweep(crate::point_seed(4, 1, 0), &row_ids, |_, &row, rng| {
        match row {
            0 => run_rounds(scenario, &mut IidRandom, rounds, rng).collision_probability,
            1 => {
                let mut s = SharedPermutation::new(3, 2, rng);
                run_rounds(scenario, &mut s, rounds, rng).collision_probability
            }
            2 => {
                let mut s = GlobalEntangled::new(EntangledStateKind::Ghz, vec![0.0, 2.094, 4.189]);
                run_rounds(scenario, &mut s, rounds, rng).collision_probability
            }
            _ => {
                let mut s = GlobalEntangled::new(EntangledStateKind::W, vec![0.0, 2.094, 4.189]);
                run_rounds(scenario, &mut s, rounds, rng).collision_probability
            }
        }
    });
    let mut t = Table::new(vec!["strategy", "P(collision)"]);
    for (name, p) in rows.iter().zip(&probs) {
        t.row(vec![name.to_string(), f4(*p)]);
    }
    t.row(vec![
        "pigeonhole floor (any)".to_string(),
        f4(pigeonhole_lower_bound(3)),
    ]);
    out.push_str(&format!(
        "Collision probability, N=3 switches / M=2 paths / K=2 active:\n\n{}\n",
        t.render()
    ));

    // Part 3: the conjecture search.
    let (cands, per) = if quick { (20, 2_000) } else { (100, 10_000) };
    let result = exhaustive_quantum_search(cands, per, &mut rng);
    out.push_str(&format!(
        "Strategy search: best of {} quantum strategies = {:.4} vs classical \
         optimum {:.4} → no quantum advantage found\n\n",
        result.evaluated, result.best_quantum, result.classical
    ));

    // Pigeonhole bounds table (the family is settled analytically).
    let mut t2 = Table::new(vec!["N switches (2 active, 2 paths)", "floor", "classical"]);
    for n in 2..=8 {
        t2.row(vec![
            n.to_string(),
            f4(pigeonhole_lower_bound(n)),
            f4(ecmp::classical_optimum_two_active(n)),
        ]);
    }
    out.push_str(&format!(
        "Pigeonhole bound = classical optimum for every N (quantum cannot help):\n\n{}",
        t2.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_shows_no_advantage() {
        let out = super::run(true);
        assert!(out.contains("no quantum advantage found"));
        assert!(out.contains("no-signaling reduction"));
    }
}
