//! Experiment E4: the §4.2 ECMP negative result.
//!
//! Three parts: (1) the no-signaling reduction verified to machine
//! precision, (2) a collision-probability comparison of classical and
//! entangled strategies, (3) a strategy search supporting the paper's
//! conjecture, plus the pigeonhole bound that settles the 2-active /
//! 2-path family outright.

use crate::report::Report;
use crate::table::{f4, Table};
use ecmp::model::{run_rounds, EcmpScenario};
use ecmp::search::{exhaustive_quantum_search, pigeonhole_lower_bound};
use ecmp::strategy::{EntangledStateKind, GlobalEntangled, IidRandom, SharedPermutation};
use ecmp::reduction_deviation;
use obs::json::Json;
use qmath::stats::wilson;
use qsim::bell;
use qsim::measure::Basis1;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the full ECMP experiment.
pub fn run(quick: bool) -> Report {
    let rounds = if quick { 10_000 } else { 200_000 };
    let mut rng = StdRng::seed_from_u64(crate::point_seed(4, 0, 0));
    let mut report = Report::new("ecmp", 4);
    let mut out = String::new();

    // Part 1: reduction invariance — deterministic, fanned out over the
    // pool one basis triple at a time.
    let angles = [0.0, 0.5, 1.1, 2.3];
    let states = [bell::ghz(3), bell::w_state(3)];
    let mut triples = Vec::new();
    for si in 0..states.len() {
        for &ta in &angles {
            for &tb in &angles {
                for &tc in &angles {
                    triples.push((si, ta, tb, tc));
                }
            }
        }
    }
    let worst = runtime::par_map(&triples, |_, &(si, ta, tb, tc)| {
        reduction_deviation(
            &states[si],
            &Basis1::angle(ta),
            &Basis1::angle(tb),
            &Basis1::angle(tc),
        )
        .expect("3-party state")
    })
    .into_iter()
    .fold(0.0f64, f64::max);
    out.push_str(&format!(
        "E4 — §4.2 no-signaling reduction: max |P_traced − P_C-measured-first| \
         over GHZ/W × {} basis triples = {worst:.2e}\n\n",
        2 * angles.len().pow(3)
    ));

    // Part 2: collision probabilities for the minimal scenario. Each
    // strategy row runs on its own seed stream, concurrently.
    let scenario = EcmpScenario::minimal();
    let rows = [
        "iid-random",
        "shared-permutation",
        "ghz-spread-angles",
        "w-spread-angles",
    ];
    let row_ids: Vec<usize> = (0..rows.len()).collect();
    let probs = runtime::par_sweep(crate::point_seed(4, 1, 0), &row_ids, |_, &row, rng| {
        match row {
            0 => run_rounds(scenario, &mut IidRandom, rounds, rng).collision_probability,
            1 => {
                let mut s = SharedPermutation::new(3, 2, rng);
                run_rounds(scenario, &mut s, rounds, rng).collision_probability
            }
            2 => {
                let mut s = GlobalEntangled::new(EntangledStateKind::Ghz, vec![0.0, 2.094, 4.189]);
                run_rounds(scenario, &mut s, rounds, rng).collision_probability
            }
            _ => {
                let mut s = GlobalEntangled::new(EntangledStateKind::W, vec![0.0, 2.094, 4.189]);
                run_rounds(scenario, &mut s, rounds, rng).collision_probability
            }
        }
    });
    let mut t = Table::new(vec!["strategy", "P(collision)"]);
    for (name, p) in rows.iter().zip(&probs) {
        t.row(vec![name.to_string(), f4(*p)]);
        report.interval(
            format!("collision.{name}"),
            wilson((p * rounds as f64).round() as u64, rounds as u64),
        );
        report.point(Json::obj([
            ("strategy", Json::str(*name)),
            ("collision_probability", Json::num(*p)),
            ("rounds", Json::uint(rounds as u64)),
        ]));
    }
    t.row(vec![
        "pigeonhole floor (any)".to_string(),
        f4(pigeonhole_lower_bound(3)),
    ]);
    out.push_str(&format!(
        "Collision probability, N=3 switches / M=2 paths / K=2 active:\n\n{}\n",
        t.render()
    ));

    // Part 3: the conjecture search.
    let (cands, per) = if quick { (20, 2_000) } else { (100, 10_000) };
    let result = exhaustive_quantum_search(cands, per, &mut rng);
    out.push_str(&format!(
        "Strategy search: best of {} quantum strategies = {:.4} vs classical \
         optimum {:.4} → no quantum advantage found\n\n",
        result.evaluated, result.best_quantum, result.classical
    ));

    // Pigeonhole bounds table (the family is settled analytically).
    let mut t2 = Table::new(vec!["N switches (2 active, 2 paths)", "floor", "classical"]);
    for n in 2..=8 {
        t2.row(vec![
            n.to_string(),
            f4(pigeonhole_lower_bound(n)),
            f4(ecmp::classical_optimum_two_active(n)),
        ]);
    }
    out.push_str(&format!(
        "Pigeonhole bound = classical optimum for every N (quantum cannot help):\n\n{}",
        t2.render()
    ));

    report.scalar("reduction_deviation.max", worst);
    report.scalar("search.best_quantum", result.best_quantum);
    report.scalar("search.classical_optimum", result.classical);
    report.scalar("search.evaluated", result.evaluated as f64);
    report.scalar("pigeonhole_floor.n3", pigeonhole_lower_bound(3));

    // Acceptance: the reduction must hold to machine precision, and the
    // search must not beat the classical optimum (the §4.2 negative
    // result) beyond Monte-Carlo noise.
    report.check(
        "no-signaling-reduction",
        worst < 1e-9,
        format!("max deviation {worst:.2e} < 1e-9"),
    );
    report.check(
        "no-quantum-advantage",
        result.best_quantum <= result.classical + 0.02,
        format!(
            "best quantum {:.4} ≤ classical {:.4} + 0.02",
            result.best_quantum, result.classical
        ),
    );

    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_shows_no_advantage() {
        let report = super::run(true);
        let out = format!("{report}");
        assert!(out.contains("no quantum advantage found"));
        assert!(out.contains("no-signaling reduction"));
        assert!(report.passed(), "{out}");
    }
}
