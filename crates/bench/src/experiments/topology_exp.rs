//! Experiment E10: metro-scale entanglement topology — repeater chains,
//! multiplexed sources, and contention-aware pair routing.
//!
//! The paper's architecture (Fig. 1) distributes pairs point-to-point;
//! a metro deployment distributes them over a *graph* of repeater
//! chains. Three topologies map where the CHSH coordination advantage
//! survives the network:
//!
//! - (a) **line chain × hop count**: end-to-end visibility
//!   `v = ∏ v_hop · ideality^(h−1)` pinned to 1e-12 against the
//!   hop-by-hop density-matrix oracle, with CHSH played over the
//!   delivered Werner pair at each depth. At the paper's §3 parameters
//!   the witness dies between 4 and 8 hops.
//! - (b) **star × fanout, one shared multiplexed source**: per-pair
//!   delivered rate falls as `1/fanout` — the contention scheduler
//!   splits the emission budget exactly, and highest-demand-first
//!   starves light flows that round-robin serves.
//! - (c) **2-tier metro tree under an edge-cut schedule**: a cut primary
//!   trunk re-routes cross-rack pairs onto a sub-threshold backup core
//!   (blast radius: both cross-rack pairs, never the intra-rack pair);
//!   cutting both trunk planes starves them outright. A per-pair
//!   [`FallbackGovernor`] watches delivered visibility and trips out of
//!   quantum mode, then recovers through the classical tier once the
//!   cut clears.

use crate::report::Report;
use crate::table::{f4, Table};
use games::chsh::QuantumChshStrategy;
use games::game::empirical_win_rate;
use games::{ChshGame, ChshVariant};
use loadbalance::{CoordinationMode, FallbackGovernor, HysteresisConfig};
use obs::json::Json;
use qmath::stats::wilson;
use qnet::{
    line_chain, metro_tree, route_epoch, star, FaultClock, FaultKind, FaultPlan, FaultWindow,
    MetroTreeParams, PairDemand, Policy, SimTime, SwapModel,
};
use qsim::noise::WERNER_CHSH_THRESHOLD;
use qsim::SharedPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §3-grade hardware: 0.98 elementary-pair visibility per hop.
const HOP_VISIBILITY: f64 = 0.98;
/// Line-chain hop length (km); 10 km ≈ metro rack-to-rack span.
const HOP_KM: f64 = 10.0;
/// Linear-optics-plus-boost Bell-state measurement: 90% herald rate,
/// 3% white-noise admixture per successful swap.
const SWAP_SUCCESS: f64 = 0.9;
const SWAP_IDEALITY: f64 = 0.97;

/// Closed-form CHSH win probability over a Werner pair of visibility v.
fn chsh_theory(v: f64) -> f64 {
    0.5 + v * std::f64::consts::SQRT_2 / 4.0
}

/// The blast-radius fault schedule, in epochs (1 ms each): one primary
/// trunk cut at [`CUT_ONE`], every trunk plane cut at [`CUT_ALL`], all
/// clear at [`CUT_CLEAR`].
const CUT_ONE: u64 = 6;
const CUT_ALL: u64 = 8;
const CUT_CLEAR: u64 = 10;
const TREE_EPOCHS: u64 = 16;

/// Runs the metro-topology experiment with the ambient worker count.
pub fn run(quick: bool) -> Report {
    run_with_threads(runtime::thread_count(), quick)
}

/// Runs the metro-topology experiment with an explicit worker count
/// (the determinism tests sweep this).
pub fn run_with_threads(threads: usize, quick: bool) -> Report {
    let mut report = Report::new("topology", 10);
    let mut out = String::new();
    let swap = SwapModel::new(SWAP_SUCCESS, SWAP_IDEALITY).expect("constants are valid");

    // (a) Line chain × hop count: closed form vs oracle vs played CHSH.
    let hops_grid: &[usize] = if quick { &[1, 4, 8] } else { &[1, 2, 4, 8] };
    let rounds: usize = if quick { 5_000 } else { 50_000 };
    let specs: Vec<_> = hops_grid
        .iter()
        .map(|&h| {
            let (g, _, _) = line_chain(h, HOP_KM, HOP_VISIBILITY, swap, 1).expect("valid line");
            let path: Vec<u32> = (0..h as u32).collect();
            g.chain_spec(&path).expect("line path is connected")
        })
        .collect();
    let rates = runtime::par_sweep_threads(
        threads,
        crate::point_seed(10, 0, 0),
        hops_grid,
        |i, _, rng| {
            let v = specs[i].end_to_end_visibility();
            let mut s = QuantumChshStrategy::with_source(
                move || SharedPair::werner(v).expect("valid visibility"),
                ChshVariant::Standard,
            );
            empirical_win_rate(&ChshGame::standard(), &mut s, rounds, rng)
        },
    );
    let mut worst_oracle = 0.0f64;
    let mut worst_chsh = 0.0f64;
    let mut t = Table::new(vec![
        "hops",
        "v_e2e",
        "oracle dev",
        "p_deliver",
        "CHSH win",
        "theory",
        "witness?",
    ]);
    for ((&h, spec), &rate) in hops_grid.iter().zip(&specs).zip(&rates) {
        let v = spec.end_to_end_visibility();
        let mut rng = StdRng::seed_from_u64(crate::point_seed(10, 3, h as u64));
        let oracle = spec
            .oracle_visibility(&mut rng)
            .expect("validated spec simulates");
        let dev = (oracle - v).abs();
        worst_oracle = worst_oracle.max(dev);
        let theory = chsh_theory(v);
        worst_chsh = worst_chsh.max((rate - theory).abs());
        t.row(vec![
            h.to_string(),
            f4(v),
            format!("{dev:.1e}"),
            f4(spec.success_probability()),
            f4(rate),
            f4(theory),
            (if spec.witnesses_chsh() { "yes" } else { "NO" }).to_string(),
        ]);
        report.scalar(format!("line.v_e2e.h{h}"), v);
        report.interval(
            format!("line.chsh.h{h}"),
            wilson((rate * rounds as f64).round() as u64, rounds as u64),
        );
        report.point(Json::obj([
            ("part", Json::str("line")),
            ("hops", Json::uint(h as u64)),
            ("v_e2e", Json::num(v)),
            ("oracle_deviation", Json::num(dev)),
            ("success_probability", Json::num(spec.success_probability())),
            ("win_rate", Json::num(rate)),
            ("theory", Json::num(theory)),
            ("rounds", Json::uint(rounds as u64)),
            ("witnesses_chsh", Json::Bool(spec.witnesses_chsh())),
        ]));
    }
    out.push_str(&format!(
        "E10a — repeater chain vs hop count ({rounds} CHSH rounds/point; \
         v_hop = {HOP_VISIBILITY}, ideality = {SWAP_IDEALITY}, threshold 1/√2 ≈ 0.7071)\n\n{}\n",
        t.render()
    ));

    // (b) Star × fanout: one shared source, budget split by contention.
    let fanouts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let star_budget: u64 = if quick { 4_000 } else { 40_000 };
    let star_epochs: u64 = if quick { 4 } else { 8 };
    let mut star_rows: Vec<(usize, u64, u64, u64)> = Vec::new(); // (fanout, per-pair min/max granted, delivered)
    let mut budget_conserved = true;
    let mut t = Table::new(vec![
        "fanout",
        "granted/pair",
        "delivered/pair",
        "deliver rate",
    ]);
    for (fi, &fanout) in fanouts.iter().enumerate() {
        let (g, pairs) = star(fanout, 5.0, HOP_VISIBILITY, swap, star_budget).expect("valid star");
        let demands: Vec<PairDemand> = pairs
            .iter()
            .map(|&(from, to)| PairDemand {
                from,
                to,
                demand: star_budget, // saturate: contention decides
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(crate::point_seed(10, 1, fi as u64));
        let mut granted = vec![0u64; fanout];
        let mut delivered = vec![0u64; fanout];
        for epoch in 0..star_epochs {
            let outcomes = route_epoch(&g, &demands, &[], Policy::RoundRobin, epoch, &mut rng);
            for (i, o) in outcomes.iter().enumerate() {
                granted[i] += o.granted;
                delivered[i] += o.delivered;
            }
        }
        let total_granted: u64 = granted.iter().sum();
        // Every attempt costs 2 emissions of the one shared source.
        budget_conserved &= total_granted * 2 == star_budget * star_epochs;
        let gmin = *granted.iter().min().expect("fanout >= 1");
        let gmax = *granted.iter().max().expect("fanout >= 1");
        let dsum: u64 = delivered.iter().sum();
        star_rows.push((fanout, gmin, gmax, dsum));
        report.scalar(format!("star.granted_per_pair.f{fanout}"), gmax as f64);
        report.interval(format!("star.deliver.f{fanout}"), wilson(dsum, total_granted));
        report.point(Json::obj([
            ("part", Json::str("star")),
            ("fanout", Json::uint(fanout as u64)),
            ("budget_per_epoch", Json::uint(star_budget)),
            ("epochs", Json::uint(star_epochs)),
            ("granted_min", Json::uint(gmin)),
            ("granted_max", Json::uint(gmax)),
            ("delivered_total", Json::uint(dsum)),
        ]));
        t.row(vec![
            fanout.to_string(),
            gmax.to_string(),
            (dsum / fanout as u64).to_string(),
            f4(dsum as f64 / total_granted as f64),
        ]);
    }
    out.push_str(&format!(
        "E10b — star contention on one multiplexed source \
         ({star_budget} emissions/epoch × {star_epochs} epochs, round-robin)\n\n{}\n",
        t.render()
    ));

    // Policy comparison on the fanout-4 star: a heavy flow against three
    // light ones. HDF hands the heavy flow the residual budget; RR
    // shares it evenly once the light flows are satisfied.
    {
        let fanout = 4usize;
        let budgets = [star_budget];
        let usage = vec![vec![(0u32, 2u64)]; fanout];
        let per_attempt_budget = star_budget / 2;
        let light = per_attempt_budget / 16;
        let mut demand = vec![light; fanout];
        demand[0] = star_budget; // the heavy flow wants everything
        for policy in [Policy::RoundRobin, Policy::HighestDemandFirst] {
            let grants = qnet::allocate(&budgets, &usage, &demand, policy);
            report.point(Json::obj([
                ("part", Json::str("policy")),
                ("policy", Json::str(policy.name())),
                ("heavy_granted", Json::uint(grants[0])),
                ("light_granted", Json::uint(grants[1])),
            ]));
        }
    }

    // (c) Metro tree under the edge-cut schedule: blast radius and
    // per-pair visibility-aware fallback.
    let params = MetroTreeParams {
        leaf_km: 2.0,
        leaf_visibility: 0.98,
        trunk_km: 15.0,
        trunk_visibility: 0.99,
        backup_km: 25.0,
        backup_visibility: 0.85,
        leaf_budget: 2_000,
        trunk_budget: 2_000,
    };
    let (g, tree) = metro_tree(swap, params).expect("valid tree");
    let [s0, s1, s2, s3] = tree.servers;
    // Pairs 0 and 1 are cross-rack (ride the trunks); pair 2 is
    // intra-rack (leaf edges only — outside any trunk blast radius).
    let tree_pairs = [
        PairDemand { from: s0, to: s2, demand: 64 },
        PairDemand { from: s1, to: s3, demand: 64 },
        PairDemand { from: s0, to: s1, demand: 64 },
    ];
    let mut plan = FaultPlan::none();
    let ms = |e: u64| SimTime::from_secs_f64(e as f64 * 1e-3);
    plan.push(FaultWindow {
        start: ms(CUT_ONE),
        end: ms(CUT_CLEAR),
        kind: FaultKind::EdgeCut { edge: tree.primary_trunks[0] },
    });
    for edge in [tree.primary_trunks[1], tree.backup_trunks[0], tree.backup_trunks[1]] {
        plan.push(FaultWindow {
            start: ms(CUT_ALL),
            end: ms(CUT_CLEAR),
            kind: FaultKind::EdgeCut { edge },
        });
    }
    let mut clock = FaultClock::new(&plan);
    // Thresholds scaled to the healthy chain's delivery probability, so
    // the governor reads "fraction of nominal" rather than absolute rate.
    let cross_route = qnet::best_path(&g, s0, s2, &[]).expect("pristine tree routes");
    let p_nominal = g
        .chain_spec(&cross_route.edges)
        .expect("route is a path")
        .success_probability();
    let hysteresis = HysteresisConfig {
        window: 2,
        trip: 0.4 * p_nominal,
        recover: 0.7 * p_nominal,
        deep_trip: 0.05 * p_nominal,
        deep_recover: 0.2 * p_nominal,
        min_dwell: 2,
    };
    let mut governors = [
        FallbackGovernor::new(hysteresis),
        FallbackGovernor::new(hysteresis),
    ];
    let mut rng = StdRng::seed_from_u64(crate::point_seed(10, 2, 0));
    let mut affected = [false; 2]; // cross pairs pushed sub-threshold
    let mut intra_unaffected = true;
    let mut starved_pair_epochs = 0u64;
    let mut tripped = [false; 2];
    let mut t = Table::new(vec!["epoch", "faults", "pair", "route", "v_e2e", "delivered", "mode"]);
    for epoch in 0..TREE_EPOCHS {
        clock.advance_through(ms(epoch));
        let downed = clock.downed_edges(g.edges().len());
        let n_cuts = downed.iter().filter(|&&d| d).count();
        let outcomes = route_epoch(&g, &tree_pairs, &downed, Policy::RoundRobin, epoch, &mut rng);
        for (i, o) in outcomes.iter().enumerate() {
            let label = ["s0-s2", "s1-s3", "s0-s1"][i];
            let mode = if i < 2 {
                let mode = governors[i].observe_delivery(o.delivered, tree_pairs[i].demand, o.visibility);
                if mode != CoordinationMode::Quantum {
                    tripped[i] = true;
                }
                if o.route.is_some() && o.visibility <= WERNER_CHSH_THRESHOLD {
                    affected[i] = true;
                }
                if o.granted == 0 {
                    starved_pair_epochs += 1;
                }
                mode.name()
            } else {
                // The intra-rack pair never crosses a trunk: it must ride
                // out every cut at full visibility and full grants.
                intra_unaffected &= o.visibility > WERNER_CHSH_THRESHOLD
                    && o.granted == tree_pairs[i].demand;
                "-"
            };
            let route = match &o.route {
                Some(r) => format!("{} hops", r.edges.len()),
                None => "CUT".to_string(),
            };
            t.row(vec![
                epoch.to_string(),
                n_cuts.to_string(),
                label.to_string(),
                route,
                f4(o.visibility),
                o.delivered.to_string(),
                mode.to_string(),
            ]);
            report.point(Json::obj([
                ("part", Json::str("tree")),
                ("epoch", Json::uint(epoch)),
                ("pair", Json::str(label)),
                ("cut_edges", Json::uint(n_cuts as u64)),
                ("routed", Json::Bool(o.route.is_some())),
                ("hops", Json::uint(o.route.as_ref().map_or(0, |r| r.edges.len() as u64))),
                ("visibility", Json::num(o.visibility)),
                ("granted", Json::uint(o.granted)),
                ("delivered", Json::uint(o.delivered)),
                ("mode", Json::str(mode)),
            ]));
        }
    }
    let recovered = governors
        .iter()
        .all(|gov| gov.mode() == CoordinationMode::Quantum);
    let affected_pairs = affected.iter().filter(|&&a| a).count() as u64;
    report.scalar("tree.affected_pairs", affected_pairs as f64);
    report.scalar("tree.starved_pair_epochs", starved_pair_epochs as f64);
    report.point(Json::obj([
        ("part", Json::str("blast")),
        ("affected_pairs", Json::uint(affected_pairs)),
        ("intra_unaffected", Json::Bool(intra_unaffected)),
        ("starved_pair_epochs", Json::uint(starved_pair_epochs)),
        ("governors_tripped", Json::uint(tripped.iter().filter(|&&x| x).count() as u64)),
        ("governors_recovered", Json::Bool(recovered)),
    ]));
    out.push_str(&format!(
        "E10c — metro tree, trunk cut at epoch {CUT_ONE}, all planes cut at \
         {CUT_ALL}, clear at {CUT_CLEAR}\n\n{}",
        t.render()
    ));

    // Acceptance.
    report.check(
        "chain-visibility-pinned-to-oracle",
        worst_oracle < 1e-12,
        format!("max |closed form − density-matrix oracle| = {worst_oracle:.2e} < 1e-12"),
    );
    let monotone = specs
        .windows(2)
        .all(|w| w[1].end_to_end_visibility() < w[0].end_to_end_visibility());
    report.check(
        "visibility-monotone-in-hops",
        monotone,
        format!(
            "v_e2e strictly decreases over hops {:?} ({:.4} → {:.4})",
            hops_grid,
            specs.first().map_or(f64::NAN, |s| s.end_to_end_visibility()),
            specs.last().map_or(f64::NAN, |s| s.end_to_end_visibility()),
        ),
    );
    let chsh_tol = if quick { 0.03 } else { 0.012 };
    report.check(
        "chsh-win-matches-closed-form",
        worst_chsh < chsh_tol,
        format!("max |win rate − (1/2 + v·√2/4)| = {worst_chsh:.4} < {chsh_tol}"),
    );
    let deep_spec = specs.last().expect("grid is non-empty");
    let shallow_spec = specs.first().expect("grid is non-empty");
    report.check(
        "non-witnessing-flagged",
        shallow_spec.witnesses_chsh() && !deep_spec.witnesses_chsh(),
        format!(
            "{} hops witness (v = {:.4}); {} hops cannot (v = {:.4} ≤ 1/√2)",
            shallow_spec.hops(),
            shallow_spec.end_to_end_visibility(),
            deep_spec.hops(),
            deep_spec.end_to_end_visibility(),
        ),
    );
    let split_exact = star_rows.iter().all(|&(_, gmin, gmax, _)| gmax - gmin <= 1);
    let rate_falls = star_rows
        .windows(2)
        .all(|w| w[1].2 < w[0].2); // per-pair granted falls with fanout
    report.check(
        "star-contention-splits-rate",
        split_exact && rate_falls,
        format!(
            "per-pair grants even to ±1 and fall with fanout: {:?}",
            star_rows
                .iter()
                .map(|&(f, _, gmax, _)| (f, gmax))
                .collect::<Vec<_>>(),
        ),
    );
    report.check(
        "budget-conserved",
        budget_conserved,
        format!(
            "every epoch spends exactly its {star_budget}-emission budget \
             (2 emissions per granted attempt)"
        ),
    );
    report.check(
        "downed-edge-blast-radius",
        affected_pairs == 2 && intra_unaffected && starved_pair_epochs == 4,
        format!(
            "{affected_pairs} cross-rack pairs pushed sub-threshold (> 1), \
             intra-rack pair untouched, {starved_pair_epochs} starved \
             pair-epochs while both planes were cut"
        ),
    );
    report.check(
        "degrade-trips-on-visibility",
        tripped.iter().all(|&x| x) && recovered,
        format!(
            "both cross-rack governors left quantum mode during the cut \
             and re-entered it by epoch {TREE_EPOCHS} \
             (transitions: {} and {})",
            governors[0].transitions(),
            governors[1].transitions(),
        ),
    );

    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_its_checks() {
        let report = run(true);
        assert!(report.passed(), "{report}");
        let out = format!("{report}");
        assert!(out.contains("E10a"), "{out}");
        assert!(out.contains("CUT"), "{out}");
    }

    #[test]
    fn chsh_theory_hits_known_points() {
        assert!((chsh_theory(1.0) - 0.853_553_390_593_273_8).abs() < 1e-12);
        assert!((chsh_theory(std::f64::consts::FRAC_1_SQRT_2) - 0.75).abs() < 1e-12);
    }
}
