//! Experiment E-faults: graceful degradation of the entanglement plane.
//!
//! Figure-4-style load balancing with the hardware in the loop and a
//! deterministic fault schedule running against it: periodic both-link
//! outages (duration swept), plus one source brownout, one QNIC capacity
//! clamp, and one decoherence spike per run. The strategy is
//! [`loadbalance::Degrading`] — the hysteretic fallback governor over the
//! live pipeline — so the question the sweep answers is the paper's
//! robustness caveat: *when the quantum plane faults, does the system
//! degrade to classical coordination gracefully, or fall off a cliff?*
//!
//! The grid is outage duration × QNIC buffer depth. For each point we
//! report the average queue length and the fraction of pair decisions
//! that were actually coordinated with a quantum pair; knees (queue > 10)
//! are reported per buffer depth — the acceptance criterion is that there
//! is *no* knee in the outage axis, i.e. queues stay within a constant
//! factor of the pure-classical baselines however long the outages get.

use crate::report::Report;
use crate::table::{f2, Table};
use loadbalance::degrade::{Degrading, HysteresisConfig};
use loadbalance::metrics::knee_load;
use loadbalance::server::Discipline;
use loadbalance::sim::{run_simulation, run_simulation_with, SimConfig};
use loadbalance::strategy::Strategy;
use loadbalance::task::BernoulliWorkload;
use obs::json::Json;
use qmath::stats::wilson;
use qnet::{
    ConsumePolicy, DistributorConfig, EprSource, FaultKind, FaultPlan, FaultWindow, FiberLink,
    LinkSide, SimTime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Outage periods repeat every 4 ms; hysteresis windows are ~0.8 ms, so
/// the governor gets several trip/recover cycles per run.
const OUTAGE_PERIOD: Duration = Duration::from_micros(4_000);

/// Everything measured at one (outage duration, buffer depth) grid point.
struct FaultPoint {
    avg_queue: f64,
    coordinated: f64,
    quantum_rounds: u64,
    pair_rounds: u64,
    governor_transitions: u64,
    fault_transitions: u64,
    lost_outage: u64,
    suppressed: u64,
    clamp_evicted: u64,
}

/// The deterministic fault schedule for one run: periodic both-link
/// outages of the given duration, plus one brownout, one clamp, and one
/// decoherence spike at fixed offsets (so all four fault kinds are
/// exercised). Zero duration means the fault-free control arm.
fn fault_plan(outage: Duration, horizon: SimTime) -> FaultPlan {
    if outage.is_zero() {
        return FaultPlan::none();
    }
    let mut plan = FaultPlan::periodic(
        FaultKind::LinkOutage(LinkSide::Both),
        SimTime::from_micros(1_000),
        OUTAGE_PERIOD,
        outage,
        horizon,
    );
    plan.push(FaultWindow {
        start: SimTime::from_micros(10_000),
        end: SimTime::from_micros(14_000),
        kind: FaultKind::SourceBrownout { rate_factor: 0.25 },
    });
    plan.push(FaultWindow {
        start: SimTime::from_micros(20_000),
        end: SimTime::from_micros(24_000),
        kind: FaultKind::QnicClamp { capacity: 2 },
    });
    plan.push(FaultWindow {
        start: SimTime::from_micros(30_000),
        end: SimTime::from_micros(34_000),
        kind: FaultKind::DecoherenceSpike {
            lifetime_factor: 0.2,
        },
    });
    plan
}

fn sim_point(
    n_balancers: usize,
    steps: u64,
    load: f64,
    outage: Duration,
    qnic_capacity: usize,
    seed: u64,
) -> FaultPoint {
    let config = SimConfig {
        n_balancers,
        n_servers: (n_balancers as f64 / load).round() as usize,
        timesteps: steps,
        warmup: steps / 4,
        discipline: Discipline::PaperPairedC,
    };
    let timestep = Duration::from_micros(100);
    let horizon = SimTime::ZERO + timestep * (steps as u32 + 1);
    let pipeline = DistributorConfig {
        source: EprSource::new(3e4, 0.98),
        link_a: FiberLink::new(0.5),
        link_b: FiberLink::new(0.5),
        qnic_capacity,
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(80),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults: fault_plan(outage, horizon),
        emission: qnet::EmissionMode::Batched,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut strat = Degrading::new(
        config.n_balancers,
        config.n_servers,
        pipeline,
        timestep,
        HysteresisConfig::default(),
        &mut rng,
    );
    let r = run_simulation_with(config, &mut strat, &mut BernoulliWorkload::paper(), &mut rng);
    let stats = strat.pipeline().stats();
    let dist = strat.pipeline().distributor_stats();
    let rounds = strat.governor().rounds();
    FaultPoint {
        avg_queue: r.avg_queue_len,
        coordinated: strat.coordinated_fraction(),
        quantum_rounds: stats.quantum_rounds,
        pair_rounds: rounds.iter().sum::<u64>() * strat.pipeline().n_pairs() as u64,
        governor_transitions: strat.governor().transitions(),
        fault_transitions: strat.pipeline().fault_transitions(),
        lost_outage: dist.lost_outage,
        suppressed: dist.suppressed,
        clamp_evicted: dist.clamp_evicted,
    }
}

/// Runs the fault-injection sweep.
pub fn run(quick: bool) -> Report {
    run_with_threads(runtime::thread_count(), quick)
}

/// Worker-count seam for [`run`]: per-point seeds depend only on grid
/// coordinates, so the report is byte-identical at any thread count (the
/// chaos-determinism test sweeps this).
pub fn run_with_threads(threads: usize, quick: bool) -> Report {
    let (n, steps) = if quick { (40, 600) } else { (100, 2_000) };
    let load = 1.15;
    let durations: Vec<Duration> = [0u64, 800, 1_600, 3_200]
        .iter()
        .map(|&us| Duration::from_micros(us))
        .collect();
    let capacities = [4usize, 16, 48];

    // Pure-classical baselines: always-split (the best classical pairing)
    // and uniform random (the floor the deep-fault mode degenerates to).
    let baselines = runtime::par_map_threads(threads, &[0usize, 1], |_, &arm| {
        let config = SimConfig {
            n_balancers: n,
            n_servers: (n as f64 / load).round() as usize,
            timesteps: steps,
            warmup: steps / 4,
            discipline: Discipline::PaperPairedC,
        };
        let strategy = if arm == 0 { Strategy::PairedAlwaysSplit } else { Strategy::UniformRandom };
        let mut rng = StdRng::seed_from_u64(crate::point_seed(43, 9, arm as u64));
        run_simulation(config, strategy, &mut BernoulliWorkload::paper(), &mut rng).avg_queue_len
    });
    let (split_queue, random_queue) = (baselines[0], baselines[1]);

    let points = runtime::grid2(durations.len(), capacities.len());
    let flat = runtime::par_map_threads(threads, &points, |_, &(di, ci)| {
        sim_point(
            n,
            steps,
            load,
            durations[di],
            capacities[ci],
            crate::point_seed(43, di as u64, ci as u64),
        )
    });
    let mut cells: Vec<Vec<Option<FaultPoint>>> =
        (0..durations.len()).map(|_| (0..capacities.len()).map(|_| None).collect()).collect();
    for (&(di, ci), r) in points.iter().zip(flat) {
        cells[di][ci] = Some(r);
    }
    let cell = |di: usize, ci: usize| -> &FaultPoint {
        cells[di][ci].as_ref().expect("every grid cell filled")
    };

    let mut header: Vec<String> = vec!["outage \\ buffer depth".into()];
    header.extend(capacities.iter().map(|c| format!("cap {c}")));
    let mut t = Table::new(header);
    for (di, d) in durations.iter().enumerate() {
        let mut row = vec![if d.is_zero() {
            "none (control)".to_string()
        } else {
            format!("{} µs / {} µs", d.as_micros(), OUTAGE_PERIOD.as_micros())
        }];
        row.extend((0..capacities.len()).map(|ci| {
            let p = cell(di, ci);
            format!("q̄ {} ({:.0}% coord)", f2(p.avg_queue), 100.0 * p.coordinated)
        }));
        t.row(row);
    }

    let mut report = Report::new("fig4-faults", 43);
    report.scalar("baseline.paired-split.avg_queue_len", split_queue);
    report.scalar("baseline.uniform-random.avg_queue_len", random_queue);

    // Knees along the outage axis (in ms), one curve per buffer depth.
    // The load is saturating by design, so the absolute queue is large
    // even fault-free; the knee threshold is therefore *relative* — the
    // outage duration at which the degraded system gets meaningfully
    // worse than the best classical baseline. Graceful degradation = no
    // knee: queues never cross it however long the outages get.
    let knee_threshold = 1.25 * split_queue;
    let mut knees = String::new();
    for (ci, c) in capacities.iter().enumerate() {
        let pts: Vec<(f64, f64)> = durations
            .iter()
            .enumerate()
            .map(|(di, d)| (d.as_secs_f64() * 1e3, cell(di, ci).avg_queue))
            .collect();
        let knee = knee_load(&pts, knee_threshold);
        report.scalar(format!("knee.cap{c}"), knee.unwrap_or(f64::INFINITY));
        let shown = knee.map(|k| format!("{k:.1} ms")).unwrap_or_else(|| "none".into());
        knees.push_str(&format!(
            "  cap {c:<3} queue knee (q̄ > 1.25 × classical split) at outage = {shown}\n"
        ));
    }

    let mut total_governor_transitions = 0u64;
    let mut max_queue = 0.0f64;
    for (di, d) in durations.iter().enumerate() {
        for (ci, c) in capacities.iter().enumerate() {
            let p = cell(di, ci);
            total_governor_transitions += p.governor_transitions;
            max_queue = max_queue.max(p.avg_queue);
            report.point(Json::obj([
                ("outage_us", Json::uint(d.as_micros() as u64)),
                ("qnic_capacity", Json::uint(*c as u64)),
                ("avg_queue_len", Json::num(p.avg_queue)),
                ("coordinated_fraction", Json::num(p.coordinated)),
                ("quantum_rounds", Json::uint(p.quantum_rounds)),
                ("pair_rounds", Json::uint(p.pair_rounds)),
                ("governor_transitions", Json::uint(p.governor_transitions)),
                ("fault_transitions", Json::uint(p.fault_transitions)),
                ("lost_outage", Json::uint(p.lost_outage)),
                ("suppressed", Json::uint(p.suppressed)),
                ("clamp_evicted", Json::uint(p.clamp_evicted)),
            ]));
        }
    }
    report.scalar("governor_transitions.total", total_governor_transitions as f64);

    // Coordinated-round intervals for the control and the worst case.
    let control = cell(0, 1);
    let worst = cell(durations.len() - 1, 1);
    if control.pair_rounds > 0 {
        report.interval(
            "coordinated.control",
            wilson(control.quantum_rounds, control.pair_rounds),
        );
    }
    if worst.pair_rounds > 0 {
        report.interval(
            "coordinated.max_outage",
            wilson(worst.quantum_rounds, worst.pair_rounds),
        );
    }

    // Acceptance criteria. The control threshold is set well clear of
    // the degraded rows (≈ 0.18–0.59) rather than at the control's own
    // mean (≈ 0.90, where a seed-dependent wobble of half a percent
    // would flip the check): pairs now become consumable at fiber
    // arrival rather than at emission, which shifts the marginal
    // supply/demand balance by a fraction of a percent.
    report.check(
        "control-coordinated",
        control.coordinated > 0.85,
        format!(
            "fault-free control coordinates {:.1}% of decisions quantum-side",
            100.0 * control.coordinated
        ),
    );
    report.check(
        "degrades-under-outage",
        worst.coordinated < 1.0 && worst.coordinated < control.coordinated,
        format!(
            "coordinated fraction {:.3} < control {:.3} at max outage",
            worst.coordinated, control.coordinated
        ),
    );
    report.check(
        "fallback-exercised",
        total_governor_transitions > 0,
        format!("{total_governor_transitions} governor transitions across the grid"),
    );
    let cliff_bound = 1.5 * split_queue.max(random_queue);
    report.check(
        "no-queue-cliff",
        max_queue <= cliff_bound,
        format!(
            "max degraded queue {max_queue:.2} ≤ 1.5 × classical baseline {:.2}",
            split_queue.max(random_queue)
        ),
    );

    report.text = format!(
        "E-faults — graceful degradation under entanglement-plane faults\n\
         (load {load}, N = {n}, {steps} steps, outages every \
         {} µs + brownout/clamp/spike; baselines: split q̄ {}, random q̄ {}):\n\n{}\n{knees}",
        OUTAGE_PERIOD.as_micros(),
        f2(split_queue),
        f2(random_queue),
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_passes_and_degrades() {
        let report = run(true);
        let out = format!("{report}");
        assert!(report.passed(), "{out}");
        assert!(out.contains("none (control)"), "{out}");
    }
}
